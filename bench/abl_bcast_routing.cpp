// Ablation: broadcast cost per routing scheme (paper §III-C).
//
// A broadcast consumes C*(N-1) remote messages under NoRoute/NodeLocal but
// only N-1 under NodeRemote/NLNR, which push the fan-out into shared
// memory. [executed] floods the real mailbox with broadcasts and reports
// the wire traffic per scheme; [model] prices a broadcast-heavy workload at
// paper scale.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "core/ygm.hpp"

namespace {

using namespace ygm;

void executed_flood() {
  const routing::topology topo(4, 4);
  constexpr int kBcasts = 500;
  bench::banner(
      "[executed] broadcast flood on 4x4 rank-threads, " +
          std::to_string(kBcasts) + " broadcasts per rank",
      "Every rank broadcasts; the tree structure behind each formula is "
      "verified exhaustively in tests/test_routing.cpp.");
  bench::table t({"scheme", "remote msgs/bcast (formula)", "wire bytes",
                  "wire packets", "local bytes", "wall (s)"});
  for (const auto kind : routing::all_schemes) {
    double wall = 0;
    core::mailbox_stats agg;
    mpisim::run(topo.num_ranks(), [&](mpisim::comm& c) {
      core::comm_world world(c, topo, kind);
      std::uint64_t sink = 0;
      core::mailbox<std::uint64_t> mb(
          world, [&](const std::uint64_t& v) { sink += v; }, 4096);
      c.barrier();
      const double t0 = c.wtime();
      for (int i = 0; i < kBcasts; ++i) {
        mb.send_bcast(static_cast<std::uint64_t>(i));
      }
      mb.wait_empty();
      const double dt = c.allreduce(c.wtime() - t0, mpisim::op_max{});
      const auto stats_rows = c.gather(mb.stats(), 0);
      if (c.rank() == 0) {
        wall = dt;
        for (const auto& s : stats_rows) agg += s;
      }
    });
    const routing::router r(kind, topo);
    t.add_row({std::string(routing::to_string(kind)),
               std::to_string(r.bcast_remote_messages()),
               format_bytes(static_cast<double>(agg.remote_bytes)),
               std::to_string(agg.remote_packets),
               format_bytes(static_cast<double>(agg.local_bytes)),
               bench::fmt(wall)});
  }
  t.print();
}

void model_flood() {
  const int C = bench::paper_cores_per_node;
  bench::banner(
      "[model] broadcast-heavy workload at paper scale",
      "10^4 broadcasts of 64 B per core, 36 cores/node; NodeRemote/NLNR "
      "push the C-fold fan-out into shared memory.");
  bench::table t({"nodes", "scheme", "wire bytes/core", "time (s)"});
  net::traffic_model tm;
  tm.bcast_count = 1e4;
  tm.bcast_msg_bytes = 64;
  const auto np = net::network_params::quartz_like();
  for (const int n : {32, 256, 1024}) {
    for (const auto kind : routing::all_schemes) {
      if (!bench::scheme_applicable(kind, n)) continue;
      const routing::router r(kind, routing::topology(n, C));
      const auto res = net::evaluate(r, np, bench::paper_mailbox_bytes, tm);
      t.add_row({std::to_string(n), std::string(routing::to_string(kind)),
                 format_bytes(res.remote_bytes), bench::fmt(res.total_s)});
    }
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  const ygm::bench::telemetry_guard telemetry(argc, argv);
  (void)argc;
  (void)argv;
  std::printf("Ablation: broadcast routing cost (paper §III-C)\n");
  executed_flood();
  model_flood();
  return 0;
}
