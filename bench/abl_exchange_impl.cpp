// Ablation: exchange implementation — asynchronous mailbox vs the
// synchronous ALLTOALLV phases of paper §III-A ("On systems with optimized
// ALLTOALL implementations ... better bandwidth utilization and performance
// by implementing these exchanges using ALLTOALLV").
//
// Both implementations run the SAME routing schemes over the SAME traffic;
// the difference is purely send/recv streaming + termination detection vs
// one collective per phase. Balanced traffic favors the collective variant
// (fewer, larger, perfectly scheduled transfers); imbalanced arrival times
// favor the mailbox (no phase barriers) — together with abl_imbalance this
// brackets when each §III-A choice wins.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/collective_exchange.hpp"
#include "core/ygm.hpp"

namespace {

using namespace ygm;

struct result {
  double wall = 0;
  std::uint64_t delivered = 0;
};

result run_mailbox(const routing::topology& topo, routing::scheme_kind kind,
                   int msgs, double stagger_s) {
  result out;
  mpisim::run(topo.num_ranks(), [&](mpisim::comm& c) {
    core::comm_world world(c, topo, kind);
    std::uint64_t got = 0;
    core::mailbox<std::uint64_t> mb(
        world, [&](const std::uint64_t&) { ++got; }, 4096);
    xoshiro256 rng(3 + static_cast<std::uint64_t>(c.rank()));
    c.barrier();
    const double t0 = c.wtime();
    if (stagger_s > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          stagger_s * c.rank() / c.size()));
    }
    for (int i = 0; i < msgs; ++i) {
      mb.send(static_cast<int>(rng.below(
                  static_cast<std::uint64_t>(c.size()))),
              rng());
    }
    mb.wait_empty();
    const double dt = c.allreduce(c.wtime() - t0, mpisim::op_max{});
    const auto total = c.allreduce(got, mpisim::op_sum{});
    if (c.rank() == 0) {
      out.wall = dt;
      out.delivered = total;
    }
  });
  return out;
}

result run_collective(const routing::topology& topo,
                      routing::scheme_kind kind, int msgs, double stagger_s) {
  result out;
  mpisim::run(topo.num_ranks(), [&](mpisim::comm& c) {
    core::comm_world world(c, topo, kind);
    core::collective_exchange<std::uint64_t> ex(world);
    xoshiro256 rng(3 + static_cast<std::uint64_t>(c.rank()));
    c.barrier();
    const double t0 = c.wtime();
    if (stagger_s > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          stagger_s * c.rank() / c.size()));
    }
    std::vector<std::pair<int, std::uint64_t>> outgoing;
    outgoing.reserve(static_cast<std::size_t>(msgs));
    for (int i = 0; i < msgs; ++i) {
      outgoing.emplace_back(static_cast<int>(rng.below(
                                static_cast<std::uint64_t>(c.size()))),
                            rng());
    }
    const auto delivered = ex.exchange(std::move(outgoing));
    const double dt = c.allreduce(c.wtime() - t0, mpisim::op_max{});
    const auto total = c.allreduce(
        static_cast<std::uint64_t>(delivered.size()), mpisim::op_sum{});
    if (c.rank() == 0) {
      out.wall = dt;
      out.delivered = total;
    }
  });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const ygm::bench::telemetry_guard telemetry(argc, argv);
  const int msgs =
      static_cast<int>(bench::flag_int(argc, argv, "msgs", 4000));

  std::printf("Ablation: mailbox vs ALLTOALLV exchange phases "
              "(paper §III-A)\n");
  const routing::topology topo(4, 4);

  bench::banner("[executed] balanced arrival (everyone enters together)",
                std::to_string(msgs) + " uniform messages per rank on 4x4.");
  bench::table t1({"scheme", "mailbox (s)", "alltoallv phases (s)",
                   "delivered"});
  for (const auto kind : routing::all_schemes) {
    const auto m = run_mailbox(topo, kind, msgs, 0);
    const auto a = run_collective(topo, kind, msgs, 0);
    t1.add_row({std::string(routing::to_string(kind)), bench::fmt(m.wall),
                bench::fmt(a.wall),
                std::to_string(m.delivered) + "/" +
                    std::to_string(a.delivered)});
  }
  t1.print();

  bench::banner(
      "[executed] staggered arrival (ranks enter over a 40 ms window)",
      "The collective variant cannot start a phase until the last rank "
      "arrives; the mailbox streams immediately.");
  bench::table t2({"scheme", "mailbox (s)", "alltoallv phases (s)"});
  for (const auto kind :
       {routing::scheme_kind::node_remote, routing::scheme_kind::nlnr}) {
    const auto m = run_mailbox(topo, kind, msgs, 0.04);
    const auto a = run_collective(topo, kind, msgs, 0.04);
    t2.add_row({std::string(routing::to_string(kind)), bench::fmt(m.wall),
                bench::fmt(a.wall)});
  }
  t2.print();
  std::printf(
      "\nNote: mpisim's ALLTOALLV is a plain pairwise implementation, so the\n"
      "mailbox wins even balanced runs here; the paper's §III-A point is that\n"
      "the phase structure is implementation-swappable — on machines with\n"
      "vendor-optimized collectives (BG/Q Sequoia) the collective variant won.\n");
  return 0;
}
