// Ablation: communication hot-spot — the paper's second §III failure mode
// for synchronous collectives: "if one process is the recipient of a large
// proportion of the total communication in an exchange that reoccurs
// frequently, then it will fall behind other processes which must then
// wait on it."
//
// Workload: K production rounds. Every rank pays a production cost P per
// round and sends most of its messages to rank 0, whose receive callback
// pays a drain cost (so rank 0's per-round drain D exceeds P). Rank 0's
// drain is on the critical path either way, so the MAX wall time is the
// same for both implementations — the §III claim is about everyone else:
// under synchronous exchanges the other 15 ranks idle inside every
// ALLTOALLV while rank 0 drains (completing their own work at ~K*(P+D)),
// where the mailbox lets them finish at ~K*P and only then park in
// termination ("poor resource utilization ... many processes are left
// idle"). The bench therefore reports the mean per-rank completion time
// (when a rank finished producing and serving its own share) next to the
// wall time.
//
// (Costs are modelled with sleeps: on this single-CPU host a busy-wait
// would steal cycles from the other rank-threads, which is precisely the
// coupling the experiment must NOT introduce.)
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/ygm.hpp"

namespace {

using namespace ygm;

struct workload {
  int rounds = 6;
  int msgs_per_round = 800;
  double hot_fraction = 0.8;      // share of traffic aimed at rank 0
  double produce_s = 0.004;       // per-round production cost, every rank
  double drain_per_msg_s = 2e-6;  // rank 0's per-message handling cost
};

int pick_dest(xoshiro256& rng, int size, double hot_fraction) {
  if (rng.uniform() < hot_fraction) return 0;
  return static_cast<int>(rng.below(static_cast<std::uint64_t>(size)));
}

// Rank 0's drain cost, batched so the sleep granularity stays sane.
struct hot_drain {
  double per_msg_s;
  int pending = 0;
  void operator()(int batch = 200) {
    if (++pending >= batch) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(per_msg_s * pending));
      pending = 0;
    }
  }
};

struct result {
  double wall = 0;       // global completion (max over ranks)
  double mean_done = 0;  // mean time at which ranks finished their own work
};

result run_sync(const routing::topology& topo, const workload& w) {
  result out;
  mpisim::run(topo.num_ranks(), [&](mpisim::comm& c) {
    xoshiro256 rng(23 + static_cast<std::uint64_t>(c.rank()));
    hot_drain drain{w.drain_per_msg_s};
    std::uint64_t sink = 0;
    c.barrier();
    const double t0 = c.wtime();
    for (int round = 0; round < w.rounds; ++round) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(w.produce_s));
      std::vector<std::vector<std::uint64_t>> out(
          static_cast<std::size_t>(c.size()));
      for (int i = 0; i < w.msgs_per_round; ++i) {
        out[static_cast<std::size_t>(
               pick_dest(rng, c.size(), w.hot_fraction))]
            .push_back(rng());
      }
      // The superstep boundary: every rank idles until rank 0 drains.
      const auto in = c.alltoallv(out);
      for (const auto& v : in) {
        for (const auto x : v) {
          sink += x;
          if (c.rank() == 0) drain();
        }
      }
    }
    const double done = c.wtime() - t0;  // my own work is finished here
    const double dt = c.allreduce(done, mpisim::op_max{});
    const double mean =
        c.allreduce(done, mpisim::op_sum{}) / c.size();
    if (c.rank() == 0) {
      out.wall = dt;
      out.mean_done = mean;
    }
    (void)sink;
  });
  return out;
}

result run_async(const routing::topology& topo, routing::scheme_kind kind,
                 const workload& w) {
  result out;
  mpisim::run(topo.num_ranks(), [&](mpisim::comm& c) {
    core::comm_world world(c, topo, kind);
    hot_drain drain{w.drain_per_msg_s};
    std::uint64_t sink = 0;
    core::mailbox<std::uint64_t> mb(
        world,
        [&](const std::uint64_t& v) {
          sink += v;
          if (c.rank() == 0) drain();
        },
        4096);
    xoshiro256 rng(23 + static_cast<std::uint64_t>(c.rank()));
    c.barrier();
    const double t0 = c.wtime();
    for (int round = 0; round < w.rounds; ++round) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(w.produce_s));
      for (int i = 0; i < w.msgs_per_round; ++i) {
        mb.send(pick_dest(rng, c.size(), w.hot_fraction), rng());
      }
      mb.poll();  // producers keep forwarding; rank 0 drains what arrived
    }
    const double done = c.wtime() - t0;  // own production finished
    mb.wait_empty();
    const double dt = c.allreduce(c.wtime() - t0, mpisim::op_max{});
    const double mean =
        c.allreduce(done, mpisim::op_sum{}) / c.size();
    if (c.rank() == 0) {
      out.wall = dt;
      out.mean_done = mean;
    }
    (void)sink;
  });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const ygm::bench::telemetry_guard telemetry(argc, argv);
  workload w;
  w.rounds = static_cast<int>(bench::flag_int(argc, argv, "rounds", 6));

  std::printf("Ablation: communication hot-spot (paper §III: a heavily "
              "addressed process stalls synchronous exchanges)\n");
  const routing::topology topo(4, 4);

  // Reference costs for the expectation printed below.
  const double hot_msgs_per_round =
      w.hot_fraction * w.msgs_per_round * topo.num_ranks();
  const double drain_per_round = hot_msgs_per_round * w.drain_per_msg_s;

  bench::banner(
      "[executed] 4x4 ranks, " + std::to_string(w.rounds) +
          " rounds, varying share of traffic aimed at rank 0",
      "Every rank produces for " + bench::fmt(w.produce_s) +
          " s per round; at hot=0.8 rank 0 drains ~" +
          bench::fmt(drain_per_round) +
          " s per round. Wall time is pinned to rank 0's drain in both "
          "models; the utilization win shows in the mean completion.");
  bench::table t({"hot fraction", "sync wall (s)", "sync mean done (s)",
                  "async wall (s)", "async mean done (s)",
                  "idle time reclaimed"});
  for (const double hot : {0.0, 0.4, 0.8}) {
    workload ws = w;
    ws.hot_fraction = hot;
    const auto sync_r = run_sync(topo, ws);
    const auto async_r =
        run_async(topo, routing::scheme_kind::node_remote, ws);
    t.add_row({bench::fmt(hot, 2), bench::fmt(sync_r.wall),
               bench::fmt(sync_r.mean_done), bench::fmt(async_r.wall),
               bench::fmt(async_r.mean_done),
               bench::fmt(sync_r.mean_done / async_r.mean_done, 2) + "x"});
  }
  t.print();
  return 0;
}
