// Ablation: MPI-only vs hybrid (MPI+threads) mailbox — the paper's §VII
// ongoing work. The MPI-only mailbox serializes every local routing hop
// into a packet the receiver parses back; the hybrid hands node-local
// records over in shared memory (reference-counted, so broadcast fan-out
// shares one buffer). This bench drives identical traffic through both and
// reports wall time, on-node copies saved, and wire traffic (which must be
// identical — the hybrid changes only the local plane).
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/hybrid_mailbox.hpp"
#include "core/ygm.hpp"

namespace {

using namespace ygm;

struct run_result {
  double wall = 0;
  core::mailbox_stats stats;
  std::uint64_t handoffs = 0;
};

template <class Mailbox>
run_result drive(const routing::topology& topo, routing::scheme_kind kind,
                 int p2p_per_rank, int bcasts_per_rank, std::size_t payload) {
  run_result out;
  mpisim::run(topo.num_ranks(), [&](mpisim::comm& c) {
    core::comm_world world(c, topo, kind);
    std::uint64_t sink = 0;
    Mailbox mb(world, [&](const std::vector<std::uint64_t>& v) {
      sink += v.empty() ? 0 : v.front();
    }, 8192);
    const std::vector<std::uint64_t> body(payload / 8, 7);

    xoshiro256 rng(31 + static_cast<std::uint64_t>(c.rank()));
    c.barrier();
    const double t0 = c.wtime();
    for (int i = 0; i < p2p_per_rank; ++i) {
      mb.send(static_cast<int>(rng.below(
                  static_cast<std::uint64_t>(c.size()))),
              body);
    }
    for (int i = 0; i < bcasts_per_rank; ++i) {
      mb.send_bcast(body);
    }
    mb.wait_empty();
    const double dt = c.allreduce(c.wtime() - t0, mpisim::op_max{});
    const auto stats_rows = c.gather(mb.stats(), 0);
    std::uint64_t handoffs = 0;
    if constexpr (requires { mb.shared_handoffs(); }) {
      handoffs = c.allreduce(mb.shared_handoffs(), mpisim::op_sum{});
    }
    if (c.rank() == 0) {
      out.wall = dt;
      out.handoffs = handoffs;
      for (const auto& s : stats_rows) out.stats += s;
    }
  });
  return out;
}

void compare(const routing::topology& topo, routing::scheme_kind kind,
             int p2p, int bcasts, std::size_t payload, bench::table& t) {
  using msg = std::vector<std::uint64_t>;
  const auto plain =
      drive<core::mailbox<msg>>(topo, kind, p2p, bcasts, payload);
  const auto hybrid =
      drive<core::hybrid_mailbox<msg>>(topo, kind, p2p, bcasts, payload);
  t.add_row({std::to_string(topo.nodes) + "x" + std::to_string(topo.cores),
             std::string(routing::to_string(kind)),
             std::to_string(p2p) + "/" + std::to_string(bcasts),
             bench::fmt(plain.wall), bench::fmt(hybrid.wall),
             format_bytes(static_cast<double>(plain.stats.local_bytes)),
             std::to_string(hybrid.handoffs),
             format_bytes(static_cast<double>(plain.stats.remote_bytes)),
             format_bytes(static_cast<double>(hybrid.stats.remote_bytes))});
}

}  // namespace

int main(int argc, char** argv) {
  const ygm::bench::telemetry_guard telemetry(argc, argv);
  const int p2p =
      static_cast<int>(bench::flag_int(argc, argv, "p2p", 3000));
  const int bcasts =
      static_cast<int>(bench::flag_int(argc, argv, "bcasts", 100));
  const std::size_t payload = static_cast<std::size_t>(
      bench::flag_int(argc, argv, "payload", 64));

  std::printf("Ablation: MPI-only vs hybrid MPI+threads mailbox "
              "(paper §VII)\n");
  bench::banner(
      "[executed] identical traffic through both mailboxes",
      "'local copied' is what the MPI-only path serializes on-node; "
      "'handoffs' are the zero-copy shared-memory transfers replacing it. "
      "Wire traffic is the invariant. Caveat: on this single-CPU host the "
      "per-record inbox locking of oversubscribed threads can cost more "
      "wall time than the copies it saves — the copy-elimination counters, "
      "not wall time, are the §VII effect this substrate can measure.");
  bench::table t({"machine", "scheme", "p2p/bcast per rank", "plain wall (s)",
                  "hybrid wall (s)", "local copied (plain)", "handoffs",
                  "wire (plain)", "wire (hybrid)"});
  for (const auto kind :
       {routing::scheme_kind::node_local, routing::scheme_kind::node_remote,
        routing::scheme_kind::nlnr}) {
    compare(routing::topology(1, 8), kind, p2p, bcasts, payload, t);
    compare(routing::topology(4, 4), kind, p2p, bcasts, payload, t);
  }
  t.print();
  return 0;
}
