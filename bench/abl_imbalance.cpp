// Ablation: asynchronous mailbox vs bulk-synchronous ALLTOALLV under
// computational imbalance — the paper's core motivation (§I, §III): with
// synchronous collectives "applications ... move at the speed of their
// slowest processors", while mailbox ranks enter and leave the
// communication context independently.
//
// Workload: K production rounds. In round k, every rank computes (a busy
// delay) and produces M messages for random peers. The straggler ROTATES:
// in round k, rank k mod P takes `skew` times longer (data-dependent load,
// as in graph problems where the heavy vertex moves with the frontier).
//   synchronous:  compute; pack per-destination buffers; ALLTOALLV; apply —
//                 every superstep costs the MAX compute of that round, so
//                 the whole run costs ~ K * skew * base.
//   asynchronous: compute; mb.send() as produced; one wait_empty at the
//                 end — each rank's rounds just add up, so the critical
//                 path is max over ranks of TOTAL compute,
//                 ~ K * base * (1 + (skew-1)/P).
// The async advantage approaches the skew factor as P grows (paper §I:
// synchronous applications "move at the speed of their slowest
// processors").
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/ygm.hpp"

namespace {

using namespace ygm;

// A real busy-wait would fight for this host's single CPU across
// oversubscribed rank-threads; sleeping models "this rank is busy not
// communicating" without perturbing the other ranks — which is exactly the
// phenomenon under study.
void compute_delay(double seconds) {
  std::this_thread::sleep_for(
      std::chrono::duration<double>(seconds));
}

struct workload {
  int rounds = 8;
  int msgs_per_round = 200;
  double base_compute_s = 0.004;
  double skew = 4.0;  // straggler multiplier (rotates: rank k%P in round k)
};

double run_sync(const routing::topology& topo, const workload& w) {
  double wall = 0;
  mpisim::run(topo.num_ranks(), [&](mpisim::comm& c) {
    xoshiro256 rng(17 + static_cast<std::uint64_t>(c.rank()));
    std::uint64_t sink = 0;
    c.barrier();
    const double t0 = c.wtime();
    for (int round = 0; round < w.rounds; ++round) {
      const bool straggler = round % c.size() == c.rank();
      compute_delay(w.base_compute_s * (straggler ? w.skew : 1.0));
      std::vector<std::vector<std::uint64_t>> out(
          static_cast<std::size_t>(c.size()));
      for (int i = 0; i < w.msgs_per_round; ++i) {
        out[rng.below(static_cast<std::uint64_t>(c.size()))].push_back(
            rng());
      }
      // The superstep boundary: nobody proceeds until everyone exchanged.
      const auto in = c.alltoallv(out);
      for (const auto& v : in) {
        for (const auto x : v) sink += x;
      }
    }
    const double dt = c.allreduce(c.wtime() - t0, mpisim::op_max{});
    if (c.rank() == 0) wall = dt;
    (void)sink;
  });
  return wall;
}

double run_async(const routing::topology& topo, routing::scheme_kind kind,
                 const workload& w) {
  double wall = 0;
  mpisim::run(topo.num_ranks(), [&](mpisim::comm& c) {
    core::comm_world world(c, topo, kind);
    std::uint64_t sink = 0;
    core::mailbox<std::uint64_t> mb(
        world, [&](const std::uint64_t& v) { sink += v; }, 4096);
    xoshiro256 rng(17 + static_cast<std::uint64_t>(c.rank()));
    c.barrier();
    const double t0 = c.wtime();
    for (int round = 0; round < w.rounds; ++round) {
      const bool straggler = round % c.size() == c.rank();
      compute_delay(w.base_compute_s * (straggler ? w.skew : 1.0));
      for (int i = 0; i < w.msgs_per_round; ++i) {
        mb.send(static_cast<int>(
                    rng.below(static_cast<std::uint64_t>(c.size()))),
                rng());
      }
      mb.poll();  // keep forwarding while others stream
    }
    mb.wait_empty();
    const double dt = c.allreduce(c.wtime() - t0, mpisim::op_max{});
    if (c.rank() == 0) wall = dt;
    (void)sink;
  });
  return wall;
}

}  // namespace

int main(int argc, char** argv) {
  const ygm::bench::telemetry_guard telemetry(argc, argv);
  workload w;
  w.rounds = static_cast<int>(bench::flag_int(argc, argv, "rounds", 16));
  w.skew = static_cast<double>(bench::flag_int(argc, argv, "skew", 4));

  std::printf("Ablation: asynchronous mailbox vs synchronous ALLTOALLV "
              "supersteps under compute imbalance (paper §I motivation)\n");
  bench::banner(
      "[executed] rotating straggler, " + std::to_string(w.rounds) +
          " production rounds",
      "Ideal sync wall ~ rounds * skew * base; ideal async wall ~ rounds * "
      "base * (1 + (skew-1)/P): the gap is the barrier tax the mailbox "
      "removes.");

  bench::table t({"machine", "skew", "sync alltoallv (s)",
                  "async NodeRemote (s)", "async NLNR (s)", "speedup"});
  for (const double skew : {1.0, 4.0, 8.0}) {
    workload ws = w;
    ws.skew = skew;
    const routing::topology topo(4, 4);
    const double sync_wall = run_sync(topo, ws);
    const double nr =
        run_async(topo, routing::scheme_kind::node_remote, ws);
    const double nlnr = run_async(topo, routing::scheme_kind::nlnr, ws);
    t.add_row({"4x4", bench::fmt(skew, 2), bench::fmt(sync_wall),
               bench::fmt(nr), bench::fmt(nlnr),
               bench::fmt(sync_wall / std::min(nr, nlnr), 2) + "x"});
  }
  t.print();
  std::printf(
      "\nNote: with skew 1.0 (no straggler) the two models should be close;\n"
      "the async advantage should grow toward the skew factor.\n");
  return 0;
}
