// Ablation: mailbox capacity (the paper's Fig. 8d observation).
//
// With a fixed mailbox, average wire-packet size shrinks as the machine
// grows until coalescing stops paying; the paper had to scale the mailbox
// as 2^10 * N to keep the WDC SpMV scaling. This ablation isolates that
// effect: [model] sweeps capacity at a fixed large machine, [executed]
// sweeps capacity for the real mailbox under uniform traffic.
#include <cstdio>
#include <string>

#include "apps/degree_count.hpp"
#include "bench_util.hpp"
#include "common/units.hpp"
#include "core/ygm.hpp"
#include "graph/generators.hpp"

namespace {

using namespace ygm;

void model_sweep() {
  const int nodes = 256;
  const int C = bench::paper_cores_per_node;
  bench::banner(
      "[model] mailbox capacity sweep, NodeRemote on 256 nodes x 36 cores",
      "Uniform all-to-all, 256 MiB per core; packet size is the mailbox's "
      "share per partner.");
  net::traffic_model tm;
  tm.p2p_bytes = 256.0 * 1024 * 1024;
  tm.p2p_msg_bytes = 10;
  const routing::router r(routing::scheme_kind::node_remote,
                          routing::topology(nodes, C));
  bench::table t({"mailbox", "avg wire packet", "wire bw achieved",
                  "time (s)"});
  const auto np = net::network_params::quartz_like();
  for (std::size_t cap = 1 << 12; cap <= (std::size_t{1} << 24); cap <<= 2) {
    const auto res = net::evaluate(r, np, cap, tm);
    t.add_row({format_bytes(static_cast<double>(cap)),
               format_bytes(res.remote_packet_bytes),
               format_rate(np.remote.bandwidth(res.remote_packet_bytes)),
               bench::fmt(res.total_s)});
  }
  t.print();

  bench::banner(
      "[model] fixed 2^18 vs scaled 2^10*N mailbox across machine sizes",
      "NodeRemote, 256 MiB per core; the scaled mailbox holds packet sizes "
      "steady as N grows.");
  bench::table s({"nodes", "fixed: packet", "fixed: time (s)",
                  "scaled: packet", "scaled: time (s)"});
  for (const int n : bench::paper_node_counts()) {
    const routing::router rr(routing::scheme_kind::node_remote,
                             routing::topology(n, C));
    const auto fixed = net::evaluate(rr, np, bench::paper_mailbox_bytes, tm);
    const auto scaled = net::evaluate(
        rr, np, static_cast<std::size_t>(1024) * static_cast<std::size_t>(n),
        tm);
    s.add_row({std::to_string(n), format_bytes(fixed.remote_packet_bytes),
               bench::fmt(fixed.total_s),
               format_bytes(scaled.remote_packet_bytes),
               bench::fmt(scaled.total_s)});
  }
  s.print();
}

void executed_sweep() {
  bench::banner("[executed] mailbox capacity sweep, degree counting on 4x4 "
                "rank-threads, NodeRemote",
                "Same workload at every capacity; watch the wire packet "
                "size and flush count move.");
  const routing::topology topo(4, 4);
  const std::uint64_t edges = 1 << 17;
  bench::table t({"mailbox", "flushes", "avg wire packet", "wall (s)",
                  "modeled (s)"});
  for (std::size_t cap : {std::size_t{64}, std::size_t{512},
                          std::size_t{4096}, std::size_t{32768},
                          std::size_t{262144}}) {
    double wall = 0;
    core::mailbox_stats agg;
    mpisim::run(topo.num_ranks(), [&](mpisim::comm& c) {
      core::comm_world world(c, topo, routing::scheme_kind::node_remote);
      const graph::erdos_renyi_generator gen(edges / 16, edges, 99, c.rank(),
                                             c.size());
      c.barrier();
      const double t0 = c.wtime();
      const auto res = apps::degree_count(world, gen, cap);
      const double dt = c.allreduce(c.wtime() - t0, mpisim::op_max{});
      const auto stats_rows = c.gather(res.stats, 0);
      if (c.rank() == 0) {
        wall = dt;
        for (const auto& s : stats_rows) agg += s;
      }
    });
    const double modeled =
        agg.modeled_comm_seconds(net::network_params::quartz_like()) /
        topo.num_ranks();
    t.add_row({format_bytes(static_cast<double>(cap)),
               std::to_string(agg.flushes),
               format_bytes(agg.avg_remote_packet_bytes()), bench::fmt(wall),
               bench::fmt(modeled)});
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  const ygm::bench::telemetry_guard telemetry(argc, argv);
  (void)argc;
  (void)argv;
  std::printf("Ablation: mailbox capacity vs coalescing effectiveness "
              "(paper Fig. 8d discussion)\n");
  model_sweep();
  executed_sweep();
  return 0;
}
