// Shared infrastructure for the figure-reproduction benches.
//
// Every bench reports two kinds of rows (see DESIGN.md §2):
//   [executed] the real mailbox running on mpisim rank-threads at a scale
//              this one-CPU machine can execute (up to ~32 ranks), with
//              wall time AND the time its recorded traffic would cost on
//              the modeled Quartz-like network;
//   [model]    the analytic evaluator sweeping the same workload to the
//              paper's full scale (up to 1024 nodes x 36 cores).
// The executed rows validate the model's ordering where both exist.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/evaluator.hpp"
#include "net/params.hpp"
#include "routing/router.hpp"
#include "telemetry/causal.hpp"
#include "telemetry/json_util.hpp"
#include "telemetry/telemetry.hpp"

namespace ygm::bench {

/// Machine constants of the paper's experiments.
inline constexpr int paper_cores_per_node = 36;  // Quartz: 2x 18-core Xeon
inline constexpr std::size_t paper_mailbox_bytes = std::size_t{1} << 18;

/// The paper's rule of thumb (§VI): NLNR is not used below 32 nodes, where
/// a layer cannot form and Node Remote is the better choice.
inline bool scheme_applicable(routing::scheme_kind k, int nodes) {
  return k != routing::scheme_kind::nlnr || nodes >= 32;
}

/// Node counts the paper's scaling plots sweep.
inline std::vector<int> paper_node_counts() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
}

// ----------------------------------------------------------- flag parsing

inline bool has_flag(int argc, char** argv, const std::string& name) {
  const std::string key = "--" + name;
  for (int i = 1; i < argc; ++i) {
    if (key == argv[i]) return true;
  }
  return false;
}

inline std::int64_t flag_int(int argc, char** argv, const std::string& name,
                             std::int64_t fallback) {
  const std::string key = "--" + name;
  for (int i = 1; i + 1 < argc; ++i) {
    if (key == argv[i]) return std::stoll(argv[i + 1]);
  }
  return fallback;
}

/// String-valued flag, accepted as "--name value" or "--name=value".
inline std::string flag_str(int argc, char** argv, const std::string& name,
                            const std::string& fallback = "") {
  const std::string key = "--" + name;
  const std::string key_eq = key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == key && i + 1 < argc) return argv[i + 1];
    if (arg.rfind(key_eq, 0) == 0) return arg.substr(key_eq.size());
  }
  return fallback;
}

/// Double-valued flag, accepted as "--name value" or "--name=value".
inline double flag_double(int argc, char** argv, const std::string& name,
                          double fallback) {
  const std::string s = flag_str(argc, argv, name);
  return s.empty() ? fallback : std::stod(s);
}

// ------------------------------------------------------------- telemetry

/// Catch telemetry-flag typos: any argument spelled like one of our
/// namespaced flag families (`--trace-*`, `--telemetry-*`) that is not a
/// flag we actually parse is a hard usage error. These flags silently
/// change what gets recorded; a typo like `--trace-sampel=1` must not
/// silently run untraced.
inline void check_telemetry_flags(int argc, char** argv) {
  static constexpr std::string_view known[] = {
      "--trace-out", "--trace-sample", "--telemetry-summary"};
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--trace-", 0) != 0 && arg.rfind("--telemetry-", 0) != 0) {
      continue;
    }
    const std::string_view name = arg.substr(0, arg.find('='));
    bool ok = false;
    for (const auto k : known) ok = ok || name == k;
    if (ok) continue;
    std::fprintf(stderr,
                 "error: unknown telemetry flag '%s'\n"
                 "known flags: --trace-out=<file> --trace-sample=<rate> "
                 "--telemetry-summary\n"
                 "             --metrics-out=<file> --postmortem-out=<file> "
                 "--stall-timeout-ms=<ms>\n",
                 std::string(name).c_str());
    std::exit(2);
  }
}

// ------------------------------------------------------------ JSON report
//
// `--bench-json=<file>` makes every bench emit its result tables (and any
// programmatic metrics registered with add_metric) as one JSON document, in
// addition to the text/CSV tables — the machine-readable form the BENCH_*
// perf-trajectory files are built from. Sections follow banner() calls;
// every table printed under a banner lands in that section.

/// Reject malformed `--bench-json` spellings with exit 2, exactly like the
/// `--trace-*` family: a typo must not silently run without the report.
inline void check_bench_flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--bench-", 0) != 0) continue;
    const auto eq = arg.find('=');
    const std::string_view name = arg.substr(0, eq);
    std::string_view value;
    if (eq != std::string_view::npos) {
      value = arg.substr(eq + 1);
    } else if (name == "--bench-json" && i + 1 < argc &&
               argv[i + 1][0] != '-') {
      value = argv[i + 1];
    }
    if (name != "--bench-json" || value.empty()) {
      std::fprintf(stderr,
                   "error: malformed bench flag '%s'\n"
                   "known form: --bench-json=<file>\n",
                   std::string(arg).c_str());
      std::exit(2);
    }
  }
}

class json_report {
 public:
  static json_report& instance() {
    static json_report r;
    return r;
  }

  void enable(std::string path, std::string bench_name) {
    path_ = std::move(path);
    bench_ = std::move(bench_name);
  }

  bool enabled() const noexcept { return !path_.empty(); }

  /// Start a new section (banner() calls this; title/note mirror the text
  /// output). Inert unless enabled.
  void begin_section(std::string title, std::string note) {
    if (!enabled()) return;
    sections_.push_back({std::move(title), std::move(note), {}, {}});
  }

  /// Record one printed table into the current section.
  void add_table(const std::vector<std::string>& headers,
                 const std::vector<std::vector<std::string>>& rows) {
    if (!enabled()) return;
    current().tables.emplace_back(headers, rows);
  }

  /// Attach a named numeric result to the current section (for values a
  /// table formats lossily — parse-back tooling reads these).
  void add_metric(std::string key, double value) {
    if (!enabled()) return;
    current().metrics.emplace_back(std::move(key), value);
  }

  /// Write the document; returns false on I/O failure. Called by the
  /// telemetry_guard destructor — benches never call it directly.
  bool write() const {
    if (!enabled()) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) return false;
    namespace tj = ygm::telemetry;
    std::fprintf(f, "{\"bench\": \"%s\",\n \"sections\": [",
                 tj::json_escape(bench_).c_str());
    for (std::size_t s = 0; s < sections_.size(); ++s) {
      const auto& sec = sections_[s];
      std::fprintf(f, "%s\n  {\"title\": \"%s\", \"note\": \"%s\",\n",
                   s == 0 ? "" : ",", tj::json_escape(sec.title).c_str(),
                   tj::json_escape(sec.note).c_str());
      std::fprintf(f, "   \"tables\": [");
      for (std::size_t t = 0; t < sec.tables.size(); ++t) {
        const auto& [headers, rows] = sec.tables[t];
        std::fprintf(f, "%s{\"headers\": [", t == 0 ? "" : ", ");
        for (std::size_t c = 0; c < headers.size(); ++c) {
          std::fprintf(f, "%s\"%s\"", c == 0 ? "" : ", ",
                       tj::json_escape(headers[c]).c_str());
        }
        std::fprintf(f, "], \"rows\": [");
        for (std::size_t r = 0; r < rows.size(); ++r) {
          std::fprintf(f, "%s[", r == 0 ? "" : ", ");
          for (std::size_t c = 0; c < rows[r].size(); ++c) {
            std::fprintf(f, "%s\"%s\"", c == 0 ? "" : ", ",
                         tj::json_escape(rows[r][c]).c_str());
          }
          std::fputc(']', f);
        }
        std::fprintf(f, "]}");
      }
      std::fprintf(f, "],\n   \"metrics\": {");
      for (std::size_t m = 0; m < sec.metrics.size(); ++m) {
        std::fprintf(f, "%s\"%s\": %s", m == 0 ? "" : ", ",
                     tj::json_escape(sec.metrics[m].first).c_str(),
                     tj::json_number(sec.metrics[m].second).c_str());
      }
      std::fprintf(f, "}}");
    }
    std::fprintf(f, "\n]}\n");
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
  }

  const std::string& path() const noexcept { return path_; }

 private:
  struct section {
    std::string title;
    std::string note;
    std::vector<std::pair<std::vector<std::string>,
                          std::vector<std::vector<std::string>>>>
        tables;
    std::vector<std::pair<std::string, double>> metrics;
  };

  section& current() {
    if (sections_.empty()) sections_.push_back({"", "", {}, {}});
    return sections_.back();
  }

  std::string path_;
  std::string bench_;
  std::vector<section> sections_;
};

/// Per-bench telemetry driver. Construct first thing in main(); when any of
///   --trace-out=<file>.json     Chrome trace_event JSON (chrome://tracing
///                               or https://ui.perfetto.dev)
///   --metrics-out=<file>.json   merged counters/gauges/histograms
///   --telemetry-summary         end-of-run text summary table
///   --trace-sample=<rate>       causal-tracing sample rate in [0, 1]
///   --postmortem-out=<file>     stall-watchdog flight-recorder destination
///                               (arms a 10 s watchdog if none configured)
///   --stall-timeout-ms=<ms>     stall-watchdog window (0 disables)
///   --bench-json=<file>         JSON report of every table + metric
///   YGM_TELEMETRY=1             environment fallback (implies summary)
/// is present, a telemetry session is installed globally, every mpisim::run
/// in the bench records per-rank lanes, and the destructor writes the
/// requested outputs. With none present no session exists and the
/// instrumentation costs one thread-local load + branch per hook. Unknown
/// `--trace-*`/`--telemetry-*` flags are rejected with exit code 2.
class telemetry_guard {
 public:
  telemetry_guard(int argc, char** argv)
      : trace_out_(flag_str(argc, argv, "trace-out")),
        metrics_out_(flag_str(argc, argv, "metrics-out")),
        summary_(has_flag(argc, argv, "telemetry-summary")) {
    check_telemetry_flags(argc, argv);
    check_bench_flags(argc, argv);
    const std::string bench_json = flag_str(argc, argv, "bench-json");
    if (!bench_json.empty()) {
      std::string name = argc > 0 ? argv[0] : "bench";
      const auto slash = name.find_last_of('/');
      if (slash != std::string::npos) name = name.substr(slash + 1);
      json_report::instance().enable(bench_json, std::move(name));
    }
    const double sample = flag_double(argc, argv, "trace-sample", -1);
    const std::string postmortem = flag_str(argc, argv, "postmortem-out");
    const double stall_ms = flag_double(argc, argv, "stall-timeout-ms", -1);
    if (sample >= 0) telemetry::causal::set_sample_rate(sample);
    if (!postmortem.empty()) {
      telemetry::causal::set_postmortem_path(postmortem);
    }
    if (stall_ms >= 0) telemetry::causal::set_stall_timeout_ms(stall_ms);
    if (!postmortem.empty() && telemetry::causal::stall_timeout_ms() <= 0) {
      telemetry::causal::set_stall_timeout_ms(10000);
    }
    const char* env = std::getenv("YGM_TELEMETRY");
    if (env != nullptr && env[0] != '\0' && env[0] != '0') summary_ = true;
    // Causal tracing and the watchdog both need per-rank lanes, so either
    // knob forces a session even without an export destination.
    const bool lanes_needed = sample > 0 || !postmortem.empty() ||
                              telemetry::causal::stall_timeout_ms() > 0;
    if (trace_out_.empty() && metrics_out_.empty() && !summary_ &&
        !lanes_needed) {
      return;
    }
    session_ = std::make_unique<telemetry::session>();
    telemetry::set_global(session_.get());
  }

  ~telemetry_guard() {
    auto& report = json_report::instance();
    if (report.enabled()) {
      if (report.write()) {
        std::fprintf(stderr, "bench: wrote JSON report to %s\n",
                     report.path().c_str());
      } else {
        std::fprintf(stderr, "bench: FAILED to write %s\n",
                     report.path().c_str());
      }
    }
    if (session_ == nullptr) return;
    telemetry::set_global(nullptr);
    if (!trace_out_.empty()) {
      if (session_->write_chrome_trace(trace_out_)) {
        std::fprintf(stderr, "telemetry: wrote Chrome trace to %s\n",
                     trace_out_.c_str());
      } else {
        std::fprintf(stderr, "telemetry: FAILED to write %s\n",
                     trace_out_.c_str());
      }
    }
    if (!metrics_out_.empty()) {
      if (session_->write_metrics_json(metrics_out_)) {
        std::fprintf(stderr, "telemetry: wrote metrics to %s\n",
                     metrics_out_.c_str());
      } else {
        std::fprintf(stderr, "telemetry: FAILED to write %s\n",
                     metrics_out_.c_str());
      }
    }
    if (summary_) session_->print_summary();
  }

  telemetry_guard(const telemetry_guard&) = delete;
  telemetry_guard& operator=(const telemetry_guard&) = delete;

  bool active() const noexcept { return session_ != nullptr; }
  telemetry::session* session() const noexcept { return session_.get(); }

 private:
  std::string trace_out_;
  std::string metrics_out_;
  bool summary_ = false;
  std::unique_ptr<telemetry::session> session_;
};

// ---------------------------------------------------------- table output

/// Set YGM_BENCH_CSV=1 to make every bench table print machine-readable
/// CSV instead of the aligned text layout (for plotting scripts).
inline bool csv_mode() {
  static const bool enabled = [] {
    const char* v = std::getenv("YGM_BENCH_CSV");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
  }();
  return enabled;
}

/// Minimal fixed-width table printer (plain text, one row per line).
class table {
 public:
  explicit table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    json_report::instance().add_table(headers_, rows_);
    if (csv_mode()) {
      print_csv();
      return;
    }
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    const auto line = [&](const std::vector<std::string>& cells) {
      std::string out = "  ";
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& cell = c < cells.size() ? cells[c] : "";
        out += cell;
        out.append(width[c] - cell.size() + 2, ' ');
      }
      std::puts(out.c_str());
    };
    line(headers_);
    std::string rule;
    for (auto w : width) rule.append(w + 2, '-');
    std::printf("  %s\n", rule.c_str());
    for (const auto& row : rows_) line(row);
  }

 private:
  void print_csv() const {
    const auto line = [](const std::vector<std::string>& cells) {
      std::string out;
      for (std::size_t c = 0; c < cells.size(); ++c) {
        if (c != 0) out += ',';
        // Cells are numeric or short labels; strip any stray commas rather
        // than quoting.
        for (const char ch : cells[c]) {
          out += ch == ',' ? ';' : ch;
        }
      }
      std::puts(out.c_str());
    };
    line(headers_);
    for (const auto& row : rows_) line(row);
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int precision = 3) {
  char buf[64];
  if (v != 0 && (v < 1e-3 || v >= 1e7)) {
    std::snprintf(buf, sizeof buf, "%.*e", precision - 1, v);
  } else {
    std::snprintf(buf, sizeof buf, "%.*g", precision + 2, v);
  }
  return buf;
}

inline std::string fmt_int(double v) {
  char buf[64];
  if (v >= 1e7) {
    std::snprintf(buf, sizeof buf, "%.2e", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  }
  return buf;
}

/// Section banner shared by all benches. Also opens a new section in the
/// --bench-json report, so tables printed after a banner land under it.
inline void banner(const std::string& title, const std::string& note) {
  json_report::instance().begin_section(title, note);
  std::printf("\n== %s ==\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
}

}  // namespace ygm::bench
