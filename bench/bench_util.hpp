// Shared infrastructure for the figure-reproduction benches.
//
// Every bench reports two kinds of rows (see DESIGN.md §2):
//   [executed] the real mailbox running on mpisim rank-threads at a scale
//              this one-CPU machine can execute (up to ~32 ranks), with
//              wall time AND the time its recorded traffic would cost on
//              the modeled Quartz-like network;
//   [model]    the analytic evaluator sweeping the same workload to the
//              paper's full scale (up to 1024 nodes x 36 cores).
// The executed rows validate the model's ordering where both exist.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/evaluator.hpp"
#include "net/params.hpp"
#include "routing/router.hpp"
#include "telemetry/causal.hpp"
#include "telemetry/telemetry.hpp"

namespace ygm::bench {

/// Machine constants of the paper's experiments.
inline constexpr int paper_cores_per_node = 36;  // Quartz: 2x 18-core Xeon
inline constexpr std::size_t paper_mailbox_bytes = std::size_t{1} << 18;

/// The paper's rule of thumb (§VI): NLNR is not used below 32 nodes, where
/// a layer cannot form and Node Remote is the better choice.
inline bool scheme_applicable(routing::scheme_kind k, int nodes) {
  return k != routing::scheme_kind::nlnr || nodes >= 32;
}

/// Node counts the paper's scaling plots sweep.
inline std::vector<int> paper_node_counts() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
}

// ----------------------------------------------------------- flag parsing

inline bool has_flag(int argc, char** argv, const std::string& name) {
  const std::string key = "--" + name;
  for (int i = 1; i < argc; ++i) {
    if (key == argv[i]) return true;
  }
  return false;
}

inline std::int64_t flag_int(int argc, char** argv, const std::string& name,
                             std::int64_t fallback) {
  const std::string key = "--" + name;
  for (int i = 1; i + 1 < argc; ++i) {
    if (key == argv[i]) return std::stoll(argv[i + 1]);
  }
  return fallback;
}

/// String-valued flag, accepted as "--name value" or "--name=value".
inline std::string flag_str(int argc, char** argv, const std::string& name,
                            const std::string& fallback = "") {
  const std::string key = "--" + name;
  const std::string key_eq = key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == key && i + 1 < argc) return argv[i + 1];
    if (arg.rfind(key_eq, 0) == 0) return arg.substr(key_eq.size());
  }
  return fallback;
}

/// Double-valued flag, accepted as "--name value" or "--name=value".
inline double flag_double(int argc, char** argv, const std::string& name,
                          double fallback) {
  const std::string s = flag_str(argc, argv, name);
  return s.empty() ? fallback : std::stod(s);
}

// ------------------------------------------------------------- telemetry

/// Catch telemetry-flag typos: any argument spelled like one of our
/// namespaced flag families (`--trace-*`, `--telemetry-*`) that is not a
/// flag we actually parse is a hard usage error. These flags silently
/// change what gets recorded; a typo like `--trace-sampel=1` must not
/// silently run untraced.
inline void check_telemetry_flags(int argc, char** argv) {
  static constexpr std::string_view known[] = {
      "--trace-out", "--trace-sample", "--telemetry-summary"};
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--trace-", 0) != 0 && arg.rfind("--telemetry-", 0) != 0) {
      continue;
    }
    const std::string_view name = arg.substr(0, arg.find('='));
    bool ok = false;
    for (const auto k : known) ok = ok || name == k;
    if (ok) continue;
    std::fprintf(stderr,
                 "error: unknown telemetry flag '%s'\n"
                 "known flags: --trace-out=<file> --trace-sample=<rate> "
                 "--telemetry-summary\n"
                 "             --metrics-out=<file> --postmortem-out=<file> "
                 "--stall-timeout-ms=<ms>\n",
                 std::string(name).c_str());
    std::exit(2);
  }
}

/// Per-bench telemetry driver. Construct first thing in main(); when any of
///   --trace-out=<file>.json     Chrome trace_event JSON (chrome://tracing
///                               or https://ui.perfetto.dev)
///   --metrics-out=<file>.json   merged counters/gauges/histograms
///   --telemetry-summary         end-of-run text summary table
///   --trace-sample=<rate>       causal-tracing sample rate in [0, 1]
///   --postmortem-out=<file>     stall-watchdog flight-recorder destination
///                               (arms a 10 s watchdog if none configured)
///   --stall-timeout-ms=<ms>     stall-watchdog window (0 disables)
///   YGM_TELEMETRY=1             environment fallback (implies summary)
/// is present, a telemetry session is installed globally, every mpisim::run
/// in the bench records per-rank lanes, and the destructor writes the
/// requested outputs. With none present no session exists and the
/// instrumentation costs one thread-local load + branch per hook. Unknown
/// `--trace-*`/`--telemetry-*` flags are rejected with exit code 2.
class telemetry_guard {
 public:
  telemetry_guard(int argc, char** argv)
      : trace_out_(flag_str(argc, argv, "trace-out")),
        metrics_out_(flag_str(argc, argv, "metrics-out")),
        summary_(has_flag(argc, argv, "telemetry-summary")) {
    check_telemetry_flags(argc, argv);
    const double sample = flag_double(argc, argv, "trace-sample", -1);
    const std::string postmortem = flag_str(argc, argv, "postmortem-out");
    const double stall_ms = flag_double(argc, argv, "stall-timeout-ms", -1);
    if (sample >= 0) telemetry::causal::set_sample_rate(sample);
    if (!postmortem.empty()) {
      telemetry::causal::set_postmortem_path(postmortem);
    }
    if (stall_ms >= 0) telemetry::causal::set_stall_timeout_ms(stall_ms);
    if (!postmortem.empty() && telemetry::causal::stall_timeout_ms() <= 0) {
      telemetry::causal::set_stall_timeout_ms(10000);
    }
    const char* env = std::getenv("YGM_TELEMETRY");
    if (env != nullptr && env[0] != '\0' && env[0] != '0') summary_ = true;
    // Causal tracing and the watchdog both need per-rank lanes, so either
    // knob forces a session even without an export destination.
    const bool lanes_needed = sample > 0 || !postmortem.empty() ||
                              telemetry::causal::stall_timeout_ms() > 0;
    if (trace_out_.empty() && metrics_out_.empty() && !summary_ &&
        !lanes_needed) {
      return;
    }
    session_ = std::make_unique<telemetry::session>();
    telemetry::set_global(session_.get());
  }

  ~telemetry_guard() {
    if (session_ == nullptr) return;
    telemetry::set_global(nullptr);
    if (!trace_out_.empty()) {
      if (session_->write_chrome_trace(trace_out_)) {
        std::fprintf(stderr, "telemetry: wrote Chrome trace to %s\n",
                     trace_out_.c_str());
      } else {
        std::fprintf(stderr, "telemetry: FAILED to write %s\n",
                     trace_out_.c_str());
      }
    }
    if (!metrics_out_.empty()) {
      if (session_->write_metrics_json(metrics_out_)) {
        std::fprintf(stderr, "telemetry: wrote metrics to %s\n",
                     metrics_out_.c_str());
      } else {
        std::fprintf(stderr, "telemetry: FAILED to write %s\n",
                     metrics_out_.c_str());
      }
    }
    if (summary_) session_->print_summary();
  }

  telemetry_guard(const telemetry_guard&) = delete;
  telemetry_guard& operator=(const telemetry_guard&) = delete;

  bool active() const noexcept { return session_ != nullptr; }
  telemetry::session* session() const noexcept { return session_.get(); }

 private:
  std::string trace_out_;
  std::string metrics_out_;
  bool summary_ = false;
  std::unique_ptr<telemetry::session> session_;
};

// ---------------------------------------------------------- table output

/// Set YGM_BENCH_CSV=1 to make every bench table print machine-readable
/// CSV instead of the aligned text layout (for plotting scripts).
inline bool csv_mode() {
  static const bool enabled = [] {
    const char* v = std::getenv("YGM_BENCH_CSV");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
  }();
  return enabled;
}

/// Minimal fixed-width table printer (plain text, one row per line).
class table {
 public:
  explicit table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    if (csv_mode()) {
      print_csv();
      return;
    }
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    const auto line = [&](const std::vector<std::string>& cells) {
      std::string out = "  ";
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& cell = c < cells.size() ? cells[c] : "";
        out += cell;
        out.append(width[c] - cell.size() + 2, ' ');
      }
      std::puts(out.c_str());
    };
    line(headers_);
    std::string rule;
    for (auto w : width) rule.append(w + 2, '-');
    std::printf("  %s\n", rule.c_str());
    for (const auto& row : rows_) line(row);
  }

 private:
  void print_csv() const {
    const auto line = [](const std::vector<std::string>& cells) {
      std::string out;
      for (std::size_t c = 0; c < cells.size(); ++c) {
        if (c != 0) out += ',';
        // Cells are numeric or short labels; strip any stray commas rather
        // than quoting.
        for (const char ch : cells[c]) {
          out += ch == ',' ? ';' : ch;
        }
      }
      std::puts(out.c_str());
    };
    line(headers_);
    for (const auto& row : rows_) line(row);
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int precision = 3) {
  char buf[64];
  if (v != 0 && (v < 1e-3 || v >= 1e7)) {
    std::snprintf(buf, sizeof buf, "%.*e", precision - 1, v);
  } else {
    std::snprintf(buf, sizeof buf, "%.*g", precision + 2, v);
  }
  return buf;
}

inline std::string fmt_int(double v) {
  char buf[64];
  if (v >= 1e7) {
    std::snprintf(buf, sizeof buf, "%.2e", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  }
  return buf;
}

/// Section banner shared by all benches.
inline void banner(const std::string& title, const std::string& note) {
  std::printf("\n== %s ==\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
}

}  // namespace ygm::bench
