// Figure 5: network bandwidth between two ranks as a function of message
// size, with the eager->rendezvous dip at 16 KiB, annotated with the average
// message sizes each routing scheme achieves for a fixed volume
// (paper §III-E: O(V/NC) NoRoute, O(V/N) NodeLocal/NodeRemote, O(VC/N)
// NLNR at 32 cores/node).
//
// Two series are printed: the calibrated Quartz-like network model (the
// wire this repo's benches price traffic on) and an executed mpisim
// ping-pong (in-process shared memory, so absolute numbers differ wildly —
// it validates the runtime, not the wire).
#include <cstdio>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "core/comm_world.hpp"
#include "core/mailbox.hpp"
#include "mpisim/runtime.hpp"
#include "ser/serialize.hpp"

namespace {

using namespace ygm;

// Rank-0 results must travel through run_collect's serialized channel:
// with YGM_TRANSPORT=socket the rank bodies are forked processes, so
// writing captured locals from inside the lambda would be lost.
template <class T>
T collect_rank0(int nranks, const std::function<T(mpisim::comm&)>& body) {
  mpisim::run_options opts;
  opts.nranks = nranks;
  const auto blobs = mpisim::run_collect(opts, [&](mpisim::comm& c) {
    const T v = body(c);
    std::vector<std::byte> out;
    if (c.rank() == 0) ser::append_bytes(v, out);
    return out;
  });
  return ser::from_bytes<T>({blobs[0].data(), blobs[0].size()});
}

void model_curve() {
  const auto np = net::network_params::quartz_like();
  bench::banner("Fig. 5 [model] point-to-point bandwidth vs message size",
                "Quartz-like model: MVAPICH-style eager<16KiB, rendezvous "
                "above (the dip).");
  bench::table t({"msg size", "remote bw", "local bw", "regime"});
  const auto row = [&](std::size_t s) {
    t.add_row({format_bytes(static_cast<double>(s)),
               format_rate(np.remote.bandwidth(static_cast<double>(s))),
               format_rate(np.local.bandwidth(static_cast<double>(s))),
               s < np.remote.eager_threshold ? "eager" : "rendezvous"});
  };
  for (std::size_t s = 8; s <= (std::size_t{64} << 20); s *= 4) {
    // Make the protocol-switch dip explicit when the stride crosses it.
    if (s >= np.remote.eager_threshold &&
        s / 4 < np.remote.eager_threshold) {
      row(np.remote.eager_threshold - 1);
      row(np.remote.eager_threshold);
    }
    row(s);
  }
  t.print();

  // The paper's annotation: where each scheme's average message lands for a
  // fixed per-core volume on a 32-core/node machine.
  const double V = 256.0 * 1024 * 1024;  // 256 MiB per core
  const int C = 32;
  bench::banner("Fig. 5 annotation: average remote message size per scheme",
                "V = 256 MiB per core, C = 32 cores/node (paper values).");
  bench::table a({"scheme", "formula", "N=64", "N=1024"});
  const auto scheme_row = [&](const char* scheme, const char* formula,
                              double at64, double at1024) {
    a.add_row({scheme, formula,
               format_bytes(at64) + " @ " +
                   format_rate(np.remote.bandwidth(at64)),
               format_bytes(at1024) + " @ " +
                   format_rate(np.remote.bandwidth(at1024))});
  };
  scheme_row("NoRoute", "V/((N-1)C)", V / (63.0 * C), V / (1023.0 * C));
  scheme_row("NodeLocal/NodeRemote", "V/(N-1)", V / 63.0, V / 1023.0);
  scheme_row("NLNR", "VC/N", V * C / 64.0, V * C / 1024.0);
  a.print();
}

void executed_pingpong() {
  bench::banner("Fig. 5 [executed] mpisim ping-pong between two rank-threads",
                "In-process shared memory; validates the transport, not the "
                "modeled wire.");
  bench::table t({"msg size", "round trips", "achieved rate"});
  for (std::size_t s = 1024; s <= (std::size_t{4} << 20); s *= 4) {
    const int reps = s <= 65536 ? 200 : 25;
    const double rate = collect_rank0<double>(2, [&](mpisim::comm& c) {
      std::vector<std::byte> payload(s);
      c.barrier();
      const double t0 = c.wtime();
      for (int i = 0; i < reps; ++i) {
        if (c.rank() == 0) {
          c.send_bytes(1, 0, std::vector<std::byte>(payload));
          (void)c.recv_bytes(1, 0);
        } else {
          (void)c.recv_bytes(0, 0);
          c.send_bytes(0, 0, std::vector<std::byte>(payload));
        }
      }
      const double dt = c.wtime() - t0;
      return c.rank() == 0 ? 2.0 * static_cast<double>(s) * reps / dt : 0.0;
    });
    t.add_row({format_bytes(static_cast<double>(s)), std::to_string(reps),
               format_rate(rate)});
  }
  t.print();
}

// All-to-all through a real NLNR mailbox on a 2-node x 2-core shape. The
// bandwidth numbers come from the ping-pong above; this section exists so a
// --trace-sample run emits multi-leg causal journeys that tools/ygm_trace
// can stitch and cross-check (the CI smoke pipes this bench's trace through
// `ygm_trace --selfcheck`).
void executed_mailbox_all_to_all() {
  bench::banner("Fig. 5 [executed] NLNR mailbox all-to-all, 2 nodes x 2 "
                "cores",
                "Coalesced multi-hop traffic; pair with --trace-sample=1.0 "
                "and ygm_trace for the per-hop breakdown.");
  const routing::topology topo(2, 2);
  constexpr int msgs_per_pair = 100;
  bench::table t({"msgs sent", "delivered", "wall (s)"});
  using row_t = std::tuple<std::uint64_t, std::uint64_t, double>;
  const auto [sent, delivered, wall] =
      collect_rank0<row_t>(topo.num_ranks(), [&](mpisim::comm& c) {
        core::comm_world world(c, topo, routing::scheme_kind::nlnr);
        std::uint64_t local_recv = 0;
        core::mailbox<std::uint64_t> mb(
            world, [&](const std::uint64_t&) { ++local_recv; }, 4096);
        c.barrier();
        const double t0 = c.wtime();
        std::uint64_t local_sent = 0;
        for (int i = 0; i < msgs_per_pair; ++i) {
          for (int d = 0; d < c.size(); ++d) {
            if (d == c.rank()) continue;
            mb.send(d, static_cast<std::uint64_t>(i));
            ++local_sent;
          }
        }
        mb.wait_empty();
        const double dt = c.allreduce(c.wtime() - t0, mpisim::op_max{});
        const auto s = c.allreduce(local_sent, mpisim::op_sum{});
        const auto r = c.allreduce(local_recv, mpisim::op_sum{});
        return row_t{s, r, dt};
      });
  t.add_row({std::to_string(sent), std::to_string(delivered),
             bench::fmt(wall)});
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  const ygm::bench::telemetry_guard telemetry(argc, argv);
  (void)argc;
  (void)argv;
  std::printf("Fig. 5 reproduction: bandwidth vs message size "
              "(paper: MVAPICH 2.3 / Omni-Path on Quartz)\n");
  model_curve();
  executed_pingpong();
  executed_mailbox_all_to_all();
  return 0;
}
