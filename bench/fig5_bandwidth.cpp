// Figure 5: network bandwidth between two ranks as a function of message
// size, with the eager->rendezvous dip at 16 KiB, annotated with the average
// message sizes each routing scheme achieves for a fixed volume
// (paper §III-E: O(V/NC) NoRoute, O(V/N) NodeLocal/NodeRemote, O(VC/N)
// NLNR at 32 cores/node).
//
// Two series are printed: the calibrated Quartz-like network model (the
// wire this repo's benches price traffic on) and an executed mpisim
// ping-pong (in-process shared memory, so absolute numbers differ wildly —
// it validates the runtime, not the wire).
#include <cstdio>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "mpisim/runtime.hpp"

namespace {

using namespace ygm;

void model_curve() {
  const auto np = net::network_params::quartz_like();
  bench::banner("Fig. 5 [model] point-to-point bandwidth vs message size",
                "Quartz-like model: MVAPICH-style eager<16KiB, rendezvous "
                "above (the dip).");
  bench::table t({"msg size", "remote bw", "local bw", "regime"});
  const auto row = [&](std::size_t s) {
    t.add_row({format_bytes(static_cast<double>(s)),
               format_rate(np.remote.bandwidth(static_cast<double>(s))),
               format_rate(np.local.bandwidth(static_cast<double>(s))),
               s < np.remote.eager_threshold ? "eager" : "rendezvous"});
  };
  for (std::size_t s = 8; s <= (std::size_t{64} << 20); s *= 4) {
    // Make the protocol-switch dip explicit when the stride crosses it.
    if (s >= np.remote.eager_threshold &&
        s / 4 < np.remote.eager_threshold) {
      row(np.remote.eager_threshold - 1);
      row(np.remote.eager_threshold);
    }
    row(s);
  }
  t.print();

  // The paper's annotation: where each scheme's average message lands for a
  // fixed per-core volume on a 32-core/node machine.
  const double V = 256.0 * 1024 * 1024;  // 256 MiB per core
  const int C = 32;
  bench::banner("Fig. 5 annotation: average remote message size per scheme",
                "V = 256 MiB per core, C = 32 cores/node (paper values).");
  bench::table a({"scheme", "formula", "N=64", "N=1024"});
  const auto scheme_row = [&](const char* scheme, const char* formula,
                              double at64, double at1024) {
    a.add_row({scheme, formula,
               format_bytes(at64) + " @ " +
                   format_rate(np.remote.bandwidth(at64)),
               format_bytes(at1024) + " @ " +
                   format_rate(np.remote.bandwidth(at1024))});
  };
  scheme_row("NoRoute", "V/((N-1)C)", V / (63.0 * C), V / (1023.0 * C));
  scheme_row("NodeLocal/NodeRemote", "V/(N-1)", V / 63.0, V / 1023.0);
  scheme_row("NLNR", "VC/N", V * C / 64.0, V * C / 1024.0);
  a.print();
}

void executed_pingpong() {
  bench::banner("Fig. 5 [executed] mpisim ping-pong between two rank-threads",
                "In-process shared memory; validates the transport, not the "
                "modeled wire.");
  bench::table t({"msg size", "round trips", "achieved rate"});
  for (std::size_t s = 1024; s <= (std::size_t{4} << 20); s *= 4) {
    const int reps = s <= 65536 ? 200 : 25;
    double rate = 0;
    mpisim::run(2, [&](mpisim::comm& c) {
      std::vector<std::byte> payload(s);
      c.barrier();
      const double t0 = c.wtime();
      for (int i = 0; i < reps; ++i) {
        if (c.rank() == 0) {
          c.send_bytes(1, 0, std::vector<std::byte>(payload));
          (void)c.recv_bytes(1, 0);
        } else {
          (void)c.recv_bytes(0, 0);
          c.send_bytes(0, 0, std::vector<std::byte>(payload));
        }
      }
      const double dt = c.wtime() - t0;
      if (c.rank() == 0) {
        rate = 2.0 * static_cast<double>(s) * reps / dt;
      }
    });
    t.add_row({format_bytes(static_cast<double>(s)), std::to_string(reps),
               format_rate(rate)});
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  const ygm::bench::telemetry_guard telemetry(argc, argv);
  (void)argc;
  (void)argv;
  std::printf("Fig. 5 reproduction: bandwidth vs message size "
              "(paper: MVAPICH 2.3 / Omni-Path on Quartz)\n");
  model_curve();
  executed_pingpong();
  return 0;
}
