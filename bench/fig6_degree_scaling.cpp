// Figure 6: degree-counting scaling (paper §VI-A).
//
//   (a) weak scaling: 2^28 vertices and 2^32 edges per node, mailbox 2^18,
//       out to 1024 nodes of 36 cores;
//   (b) strong scaling: 2^32 vertices and 2^37 edges total.
//
// Expected shape (paper): NoRoute collapses past ~4 nodes; NodeLocal and
// NodeRemote track each other (uniform traffic, no broadcasts) and scale to
// ~128 nodes; NLNR costs more at moderate scale (third hop) but keeps
// scaling to 1024 nodes because its packets shrink C times slower.
//
// [model] rows evaluate the full paper scale; [executed] rows run the real
// mailbox on rank-threads at machine-feasible scale and cross-check the
// ordering. Flags: --weak / --strong to select one study, --edges-per-rank,
// --capacity for the executed runs.
#include <cstdio>
#include <string>

#include "apps/degree_count.hpp"
#include "bench_util.hpp"
#include "common/units.hpp"
#include "core/ygm.hpp"
#include "graph/generators.hpp"

namespace {

using namespace ygm;

// Wire bytes per degree message: 8-byte vertex payload + ~2 bytes of record
// framing (varint header + length).
constexpr double kMsgBytes = 10.0;

void model_scaling(bool weak, const net::network_params& np,
                   const char* machine) {
  const int C = bench::paper_cores_per_node;
  bench::banner(
      std::string("Fig. 6") + (weak ? "a [model] weak" : "b [model] strong") +
          " scaling of degree counting, 36 cores/node, mailbox 2^18 B, " +
          machine + " network",
      weak ? "2^28 vertices + 2^32 edges per node (paper parameters)."
           : "2^32 vertices, 2^37 edges total (paper parameters).");

  bench::table t({"nodes", "scheme", "edges/sec", "avg wire packet",
                  "remote partners/core", "time (s)"});
  for (const int n : bench::paper_node_counts()) {
    const double total_edges =
        weak ? static_cast<double>(n) * 4294967296.0   // 2^32 per node
             : 137438953472.0;                         // 2^37 total
    const double edges_per_core = total_edges / (static_cast<double>(n) * C);
    net::traffic_model tm;
    tm.p2p_bytes = 2.0 * edges_per_core * kMsgBytes;
    tm.p2p_msg_bytes = kMsgBytes;

    for (const auto kind : routing::all_schemes) {
      if (!bench::scheme_applicable(kind, n)) continue;
      const routing::router r(kind, routing::topology(n, C));
      const auto res = net::evaluate(r, np, bench::paper_mailbox_bytes, tm);
      const double time = res.total_s;
      t.add_row({std::to_string(n), std::string(routing::to_string(kind)),
                 time > 0 ? format_count(total_edges / time) : "-",
                 format_bytes(res.remote_packet_bytes),
                 bench::fmt_int(res.max_remote_partners),
                 bench::fmt(time)});
    }
  }
  t.print();
}

void executed_scaling(bool weak, std::uint64_t edges_per_rank,
                      std::size_t capacity) {
  bench::banner(
      std::string("Fig. 6") + (weak ? "a" : "b") +
          " [executed] degree counting on mpisim rank-threads",
      "Wall time is thread-contended on this host. 'simulated' is the "
      "causal virtual-time of the run on the Quartz-like network; 'modeled' "
      "prices the recorded traffic analytically.");

  bench::table t({"nodes x cores", "scheme", "edges", "wall (s)",
                  "simulated (s)", "modeled (s)", "avg wire packet",
                  "wire bytes/rank"});
  const std::uint64_t total_edges_strong = edges_per_rank * 8;

  for (const auto& [nodes, cores] :
       {std::pair{1, 4}, {2, 4}, {4, 4}, {8, 4}}) {
    const routing::topology topo(nodes, cores);
    const std::uint64_t edges =
        weak ? edges_per_rank * static_cast<std::uint64_t>(topo.num_ranks())
             : total_edges_strong;
    const std::uint64_t verts = edges / 16;

    for (const auto kind : routing::all_schemes) {
      double wall = 0;
      double simulated = 0;
      core::mailbox_stats agg;
      mpisim::run(topo.num_ranks(), [&](mpisim::comm& c) {
        core::comm_world world(c, topo, kind);
        world.attach_virtual_network(net::network_params::quartz_like());
        const graph::erdos_renyi_generator gen(verts, edges, 12345, c.rank(),
                                               c.size());
        c.barrier();
        const double t0 = c.wtime();
        const auto res = apps::degree_count(world, gen, capacity);
        const double dt = c.allreduce(c.wtime() - t0, mpisim::op_max{});
        const double vt = world.virtual_elapsed();
        // Aggregate the traffic counters at rank 0.
        const auto stats_rows = c.gather(res.stats, 0);
        if (c.rank() == 0) {
          wall = dt;
          simulated = vt;
          for (const auto& s : stats_rows) agg += s;
        }
      });
      const auto np = net::network_params::quartz_like();
      const double modeled =
          agg.modeled_comm_seconds(np) / topo.num_ranks();  // per-core avg
      t.add_row({std::to_string(nodes) + "x" + std::to_string(cores),
                 std::string(routing::to_string(kind)),
                 std::to_string(edges), bench::fmt(wall),
                 bench::fmt(simulated), bench::fmt(modeled),
                 format_bytes(agg.avg_remote_packet_bytes()),
                 format_bytes(static_cast<double>(agg.remote_bytes) /
                              topo.num_ranks())});
    }
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  const ygm::bench::telemetry_guard telemetry(argc, argv);
  const bool weak_only = bench::has_flag(argc, argv, "weak");
  const bool strong_only = bench::has_flag(argc, argv, "strong");
  const auto edges_per_rank = static_cast<std::uint64_t>(
      bench::flag_int(argc, argv, "edges-per-rank", 1 << 14));
  const auto capacity = static_cast<std::size_t>(
      bench::flag_int(argc, argv, "capacity", 1 << 12));

  const bool bgq = bench::has_flag(argc, argv, "network-bgq");
  const auto np = bgq ? net::network_params::bgq_like()
                      : net::network_params::quartz_like();
  const char* machine = bgq ? "BG/Q-like" : "Quartz-like";

  std::printf("Fig. 6 reproduction: degree counting scaling "
              "(paper §VI-A, Erdős–Rényi edges)\n");
  if (!strong_only) {
    model_scaling(/*weak=*/true, np, machine);
    executed_scaling(/*weak=*/true, edges_per_rank, capacity);
  }
  if (!weak_only) {
    model_scaling(/*weak=*/false, np, machine);
    executed_scaling(/*weak=*/false, edges_per_rank, capacity);
  }
  return 0;
}
