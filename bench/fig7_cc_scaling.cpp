// Figure 7: connected-components scaling with delegates and asynchronous
// broadcasts (paper §VI-B).
//
//   (a) weak scaling: RMAT (Graph500) 2^26 vertices + 2^30 edges per node,
//       delegate threshold scaled with the expected max degree; the paper
//       also plots the growth in broadcast operations.
//   (b) strong scaling: 2^30 vertices, 2^34 edges.
//
// Expected shape (paper): NoRoute scales poorly; NodeLocal/NodeRemote win
// below ~128 nodes; NLNR wins beyond. NodeRemote gains over NodeLocal as
// broadcast volume grows (each broadcast costs it C times fewer remote
// messages).
//
// [model] rows use the analytic evaluator plus the closed-form RMAT degree
// tail (graph/degree_model.hpp) to predict delegate counts and broadcast
// volume at paper scale; [executed] rows run the full CC pipeline (degree
// count -> delegate selection -> label propagation with bcast sync) on
// rank-threads.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/connected_components.hpp"
#include "apps/degree_count.hpp"
#include "bench_util.hpp"
#include "common/units.hpp"
#include "core/ygm.hpp"
#include "graph/degree_model.hpp"
#include "graph/rmat.hpp"

namespace {

using namespace ygm;

constexpr double kLabelMsgBytes = 14.0;  // vertex + label varints + framing
constexpr double kSyncMsgBytes = 12.0;   // slot + label + framing
constexpr int kModelPasses = 7;          // RMAT diameters are small
constexpr double kImproveRounds = 2.0;   // avg bcast rounds per delegate

void model_scaling(bool weak) {
  const int C = bench::paper_cores_per_node;
  bench::banner(
      std::string("Fig. 7") + (weak ? "a [model] weak" : "b [model] strong") +
          " scaling of connected components, 36 cores/node, mailbox 2^18 B",
      weak ? "RMAT 2^26 verts + 2^30 edges per node; threshold scaled with "
             "expected max degree; broadcast growth per paper Fig. 7a."
           : "RMAT 2^30 verts, 2^34 edges total.");

  bench::table t({"nodes", "scheme", "edges/sec", "delegates", "broadcasts",
                  "time (s)"});
  const auto params = graph::rmat_params::graph500();

  for (const int n : bench::paper_node_counts()) {
    // Weak scaling grows the graph with the machine.
    const int scale =
        weak ? 26 + static_cast<int>(std::lround(std::log2(n))) : 30;
    const double total_edges = weak ? static_cast<double>(n) * (1ULL << 30)
                                    : static_cast<double>(1ULL << 34);
    const double ncores = static_cast<double>(n) * C;

    // Delegate threshold scaled like the expected max degree, anchored so a
    // single node uses threshold 2^12 (a deliberately generous delegate
    // count, as in the paper: "thresholds were chosen to give a larger
    // number of delegates than would typically be desired").
    const graph::rmat_degree_model dm(
        scale, static_cast<std::uint64_t>(total_edges), params);
    const double anchor_scale = weak ? 26 : 30;
    const double threshold =
        4096.0 * std::pow(2 * (params.a + params.b), scale - anchor_scale);
    const double delegates = dm.count_degree_at_least(threshold);
    const double heavy_fraction =
        dm.endpoint_fraction_degree_at_least(threshold);

    // Per pass: every non-delegate edge endpoint sends one label message;
    // delegate-incident endpoints are handled locally and paid for with
    // broadcasts instead.
    const double label_msgs_per_core =
        2.0 * (total_edges / ncores) * (1.0 - heavy_fraction);
    const double bcasts_total = delegates * kImproveRounds * kModelPasses;

    net::traffic_model tm;
    tm.p2p_bytes = label_msgs_per_core * kLabelMsgBytes * kModelPasses;
    tm.p2p_msg_bytes = kLabelMsgBytes;
    tm.bcast_count = bcasts_total / ncores;
    tm.bcast_msg_bytes = kSyncMsgBytes;

    for (const auto kind : routing::all_schemes) {
      if (!bench::scheme_applicable(kind, n)) continue;
      const routing::router r(kind, routing::topology(n, C));
      const auto res = net::evaluate(r, net::network_params::quartz_like(),
                                     bench::paper_mailbox_bytes, tm);
      t.add_row({std::to_string(n), std::string(routing::to_string(kind)),
                 res.total_s > 0
                     ? format_count(total_edges * kModelPasses / res.total_s)
                     : "-",
                 bench::fmt_int(delegates), bench::fmt_int(bcasts_total),
                 bench::fmt(res.total_s)});
    }
  }
  t.print();
}

void executed_scaling(bool weak, int scale_per_rank) {
  bench::banner(
      std::string("Fig. 7") + (weak ? "a" : "b") +
          " [executed] connected components on mpisim rank-threads",
      "Full pipeline: degree count -> delegate selection -> label "
      "propagation with async-bcast replica sync.");

  bench::table t({"nodes x cores", "scheme", "edges", "delegates", "passes",
                  "broadcasts", "wall (s)", "modeled (s)"});

  for (const auto& [nodes, cores] :
       {std::pair{1, 4}, {2, 4}, {4, 4}, {8, 4}}) {
    const routing::topology topo(nodes, cores);
    const int scale =
        weak ? scale_per_rank + static_cast<int>(
                                    std::lround(std::log2(topo.num_ranks())))
             : scale_per_rank + 3;
    const std::uint64_t edges = 8ULL << scale;
    // Threshold scaled with expected max degree, anchored at 64 for the
    // smallest run.
    const auto params = graph::rmat_params::graph500();
    const int anchor =
        weak ? scale_per_rank : scale_per_rank + 3;
    const auto threshold = static_cast<std::uint64_t>(std::lround(
        64.0 * std::pow(2 * (params.a + params.b), scale - anchor)));

    for (const auto kind : routing::all_schemes) {
      double wall = 0;
      std::uint64_t bcasts = 0;
      std::uint64_t ndelegates = 0;
      int passes = 0;
      core::mailbox_stats agg;
      mpisim::run(topo.num_ranks(), [&](mpisim::comm& c) {
        core::comm_world world(c, topo, kind);
        const graph::rmat_generator gen(scale, edges, params, 31337, c.rank(),
                                        c.size());
        const graph::round_robin_partition part{c.size()};

        const auto deg = apps::degree_count(world, gen);
        const auto delegates = graph::select_delegates(
            world, deg.local_degrees, part, std::max<std::uint64_t>(
                                                threshold, 2));

        std::vector<graph::edge> mine;
        mine.reserve(gen.local_edge_count());
        gen.for_each([&](const graph::edge& e) { mine.push_back(e); });

        c.barrier();
        const double t0 = c.wtime();
        const auto res =
            apps::connected_components(world, mine, gen.num_vertices(),
                                       delegates, /*capacity=*/4096);
        const double dt = c.allreduce(c.wtime() - t0, mpisim::op_max{});
        const auto bc = c.allreduce(res.broadcasts, mpisim::op_sum{});
        const auto stats_rows = c.gather(res.stats, 0);
        if (c.rank() == 0) {
          wall = dt;
          bcasts = bc;
          passes = res.passes;
          ndelegates = delegates.size();
          for (const auto& s : stats_rows) agg += s;
        }
      });
      const double modeled =
          agg.modeled_comm_seconds(net::network_params::quartz_like()) /
          topo.num_ranks();
      t.add_row({std::to_string(nodes) + "x" + std::to_string(cores),
                 std::string(routing::to_string(kind)),
                 std::to_string(edges), std::to_string(ndelegates),
                 std::to_string(passes), std::to_string(bcasts),
                 bench::fmt(wall), bench::fmt(modeled)});
    }
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  const ygm::bench::telemetry_guard telemetry(argc, argv);
  const bool weak_only = bench::has_flag(argc, argv, "weak");
  const bool strong_only = bench::has_flag(argc, argv, "strong");
  const int scale_per_rank =
      static_cast<int>(bench::flag_int(argc, argv, "scale-per-rank", 9));

  std::printf("Fig. 7 reproduction: connected components scaling "
              "(paper §VI-B, RMAT/Graph500 graphs, delegates + async "
              "broadcasts)\n");
  if (!strong_only) {
    model_scaling(/*weak=*/true);
    executed_scaling(/*weak=*/true, scale_per_rank);
  }
  if (!weak_only) {
    model_scaling(/*weak=*/false);
    executed_scaling(/*weak=*/false, scale_per_rank);
  }
  return 0;
}
