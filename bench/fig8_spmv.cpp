// Figure 8: SpMV scaling, YGM (Algorithm 2, with delegates) vs the
// CombBLAS-lite 2D synchronous baseline (paper §VI-C).
//
//   (a) weak scaling on Graph500 RMAT (0.57/0.19/0.19/0.05), 2^24 vertices
//       per node, edge factor 16, YGM using delegates;
//   (b) growth of the delegate count in (a);
//   (c) the same experiment on uniform RMAT (0.25 x 4), no delegates;
//   (d) strong scaling on the WDC 2012 webgraph — substituted here by a
//       high-skew synthetic graph (DESIGN.md §2) — with the mailbox scaled
//       as 2^10 * N, as the paper found necessary.
//
// Expected shape (paper): CombBLAS wins at small node counts; YGM overtakes
// past ~64 nodes, NLNR best at the largest scales, with or without
// delegates; with the scaled mailbox, 8d shows YGM and CombBLAS tracking
// each other.
//
// Flags: --rmat / --uniform / --web select one study; --scale sets the
// executed problem size.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/spmv.hpp"
#include "bench_util.hpp"
#include "common/units.hpp"
#include "core/ygm.hpp"
#include "graph/degree_model.hpp"
#include "graph/rmat.hpp"
#include "linalg/combblas_lite.hpp"

namespace {

using namespace ygm;

constexpr double kYMsgBytes = 15.0;   // row varint + 8-byte product + framing
constexpr double kFlopSeconds = 1e-9;  // CSC-streamed sparse multiply-add

// 2D blocks of a matrix spread over q^2 processors become hypersparse
// (fewer nonzeros than rows), so CombBLAS iterates them through DCSC
// indirection — several times the cost of a streamed CSC pass (Buluç &
// Gilbert, cited by the paper) — and skewed graphs additionally imbalance
// the blocks.
constexpr double kDcscFlopSeconds = 3e-9;

// Synchronous 2D SpMV cost on the modeled network: broadcast an x block
// down each grid column and reduce a y block across each row, each a
// log2(q)-deep tree of block-sized transfers on the critical path.
double model_combblas_seconds(double n_total, double nnz_total, int nodes,
                              bool skewed) {
  const auto np = net::network_params::quartz_like();
  const double ncores = static_cast<double>(nodes) *
                        bench::paper_cores_per_node;
  const double q = std::floor(std::sqrt(ncores));
  const double block_bytes = n_total / q * 8.0;
  const double depth = std::max(1.0, std::log2(q));
  const double comm = 2.0 * depth * np.remote.transfer_time(block_bytes);
  const double imbalance = skewed ? 1.5 : 1.15;
  const double compute = nnz_total / ncores * kDcscFlopSeconds * imbalance;
  return comm + compute;
}

double model_ygm_seconds(const routing::router& r, double nnz_total,
                         double heavy_fraction, std::size_t mailbox_bytes) {
  const double ncores =
      static_cast<double>(r.topo().nodes) * r.topo().cores;
  const double nnz_per_core = nnz_total / ncores;
  // A nonzero generates a message only if neither its column (replicated x)
  // nor its row (replicated y) is delegated.
  const double msg_fraction =
      (1.0 - heavy_fraction) * (1.0 - heavy_fraction);
  net::traffic_model tm;
  tm.p2p_bytes = nnz_per_core * msg_fraction * kYMsgBytes;
  tm.p2p_msg_bytes = kYMsgBytes;
  const auto res = net::evaluate(r, net::network_params::quartz_like(),
                                 mailbox_bytes, tm);
  return res.total_s + nnz_per_core * kFlopSeconds;
}

void model_weak(bool skewed) {
  const int C = bench::paper_cores_per_node;
  const auto params = skewed ? graph::rmat_params::graph500()
                             : graph::rmat_params::uniform();
  bench::banner(
      skewed ? "Fig. 8a/8b [model] weak scaling, Graph500 RMAT, YGM with "
               "delegates vs CombBLAS-lite"
             : "Fig. 8c [model] weak scaling, uniform RMAT, no delegates",
      "2^24 vertices per node, edge factor 16, 36 cores/node, mailbox 2^18 "
      "B.");

  bench::table t({"nodes", "delegates", "edges/sec CombBLAS",
                  "edges/sec YGM-NodeRemote", "edges/sec YGM-NLNR"});
  for (const int n : bench::paper_node_counts()) {
    const int scale = 24 + static_cast<int>(std::lround(std::log2(n)));
    const double n_total = static_cast<double>(n) * (1ULL << 24);
    const double nnz_total = 16.0 * n_total;

    double heavy = 0;
    double delegates = 0;
    if (skewed) {
      const graph::rmat_degree_model dm(
          scale, static_cast<std::uint64_t>(nnz_total), params);
      const double threshold =
          4096.0 * std::pow(2 * (params.a + params.b), scale - 24);
      heavy = dm.endpoint_fraction_degree_at_least(threshold);
      delegates = dm.count_degree_at_least(threshold);
    }

    const double cb = model_combblas_seconds(n_total, nnz_total, n, skewed);
    const auto ygm_rate = [&](routing::scheme_kind k) -> std::string {
      if (!bench::scheme_applicable(k, n)) return "-";
      const routing::router r(k, routing::topology(n, C));
      const double s = model_ygm_seconds(r, nnz_total, heavy,
                                         bench::paper_mailbox_bytes);
      return format_count(nnz_total / s);
    };
    t.add_row({std::to_string(n),
               skewed ? bench::fmt_int(delegates) : "0",
               format_count(nnz_total / cb),
               ygm_rate(routing::scheme_kind::node_remote),
               ygm_rate(routing::scheme_kind::nlnr)});
  }
  t.print();
}

void model_web_strong() {
  const int C = bench::paper_cores_per_node;
  const auto params = graph::rmat_params::webgraph_like();
  bench::banner(
      "Fig. 8d [model] strong scaling, webgraph-like graph (WDC 2012 "
      "substitute), mailbox 2^10 * N",
      "Fixed graph: 2^32 vertices, edge factor 30 (the WDC shape); mailbox "
      "capacity grows with the node count, as the paper required.");

  const int scale = 32;
  const double n_total = static_cast<double>(1ULL << scale);
  const double nnz_total = 30.0 * n_total;
  const graph::rmat_degree_model dm(
      scale, static_cast<std::uint64_t>(nnz_total), params);
  const double threshold = 1 << 20;
  const double heavy = dm.endpoint_fraction_degree_at_least(threshold);

  bench::table t({"nodes", "mailbox", "edges/sec CombBLAS",
                  "edges/sec YGM-NLNR (scaled box)",
                  "edges/sec YGM-NLNR (fixed 2^18)"});
  for (const int n : bench::paper_node_counts()) {
    if (n < 32) continue;  // NLNR region, as in the paper's plot
    const std::size_t scaled_box = std::size_t{1} << 10 << static_cast<int>(
                                       std::lround(std::log2(n)));
    const routing::router r(routing::scheme_kind::nlnr,
                            routing::topology(n, C));
    const double cb = model_combblas_seconds(n_total, nnz_total, n, true);
    const double scaled = model_ygm_seconds(r, nnz_total, heavy, scaled_box);
    const double fixed =
        model_ygm_seconds(r, nnz_total, heavy, bench::paper_mailbox_bytes);
    t.add_row({std::to_string(n),
               format_bytes(static_cast<double>(scaled_box)),
               format_count(nnz_total / cb), format_count(nnz_total / scaled),
               format_count(nnz_total / fixed)});
  }
  t.print();
}

// ------------------------------------------------------------- executed

void executed_weak(bool skewed, int base_scale) {
  const auto params = skewed ? graph::rmat_params::graph500()
                             : graph::rmat_params::uniform();
  bench::banner(
      std::string("Fig. 8") + (skewed ? "a/8b" : "c") +
          " [executed] SpMV on mpisim rank-threads, YGM vs CombBLAS-lite",
      "Square grids (CombBLAS-lite requirement); YGM uses NodeRemote "
      "routing.");

  bench::table t({"ranks", "scale", "nnz", "delegates", "YGM wall (s)",
                  "CombBLAS wall (s)", "YGM modeled (s)"});

  for (const auto& [ranks, cores] : {std::pair{4, 2}, {16, 4}}) {
    const int scale = base_scale + (ranks == 16 ? 2 : 0);
    const std::uint64_t n = 1ULL << scale;
    const std::uint64_t nnz = 8 * n;

    double ygm_wall = 0;
    double cb_wall = 0;
    std::uint64_t ndelegates = 0;
    core::mailbox_stats agg;
    mpisim::run(ranks, [&](mpisim::comm& c) {
      core::comm_world world(c, cores, routing::scheme_kind::node_remote);
      const graph::round_robin_partition part{c.size()};
      const graph::rmat_generator gen(scale, nnz, params, 777, c.rank(),
                                      c.size());

      std::vector<linalg::triplet> mine;
      mine.reserve(gen.local_edge_count());
      gen.for_each([&](const graph::edge& e) {
        mine.push_back({e.src, e.dst, 1.0});
      });

      // Delegate selection from column occupancy (skewed mode only).
      graph::delegate_set delegates;
      if (skewed) {
        std::vector<std::uint64_t> coldeg(part.local_count(c.rank(), n), 0);
        core::mailbox<std::uint64_t> colmb(
            world,
            [&](const std::uint64_t& v) { ++coldeg[part.local_index(v)]; });
        for (const auto& tpl : mine) colmb.send(part.owner(tpl.col), tpl.col);
        colmb.wait_empty();
        delegates = graph::select_delegates(world, coldeg, part, 128);
      }

      apps::dist_spmv A(world, n, mine, delegates, /*capacity=*/4096);
      std::vector<double> x(part.local_count(c.rank(), n), 1.0);
      c.barrier();
      double t0 = c.wtime();
      const auto res = A.multiply(x);
      const double dt1 = c.allreduce(c.wtime() - t0, mpisim::op_max{});

      linalg::combblas_lite B(c, n, mine);
      std::vector<double> xb(B.block_size(B.grid_col()), 1.0);
      c.barrier();
      t0 = c.wtime();
      (void)B.spmv(xb);
      const double dt2 = c.allreduce(c.wtime() - t0, mpisim::op_max{});

      const auto stats_rows = c.gather(res.stats, 0);
      if (c.rank() == 0) {
        ygm_wall = dt1;
        cb_wall = dt2;
        ndelegates = delegates.size();
        for (const auto& s : stats_rows) agg += s;
      }
    });
    const double modeled =
        agg.modeled_comm_seconds(net::network_params::quartz_like()) / ranks;
    t.add_row({std::to_string(ranks), std::to_string(scale),
               std::to_string(nnz), std::to_string(ndelegates),
               bench::fmt(ygm_wall), bench::fmt(cb_wall),
               bench::fmt(modeled)});
  }
  t.print();
}

void executed_web_strong(int scale) {
  bench::banner(
      "Fig. 8d [executed] strong scaling on the webgraph-like graph",
      "Fixed graph; rank counts 4 -> 36; mailbox scaled with the node "
      "count.");
  const std::uint64_t n = 1ULL << scale;
  const std::uint64_t nnz = 16 * n;
  const auto params = graph::rmat_params::webgraph_like();

  bench::table t({"ranks", "mailbox", "YGM wall (s)", "CombBLAS wall (s)"});
  for (const auto& [ranks, cores] : {std::pair{4, 2}, {16, 4}, {36, 6}}) {
    const std::size_t capacity = 256u * static_cast<std::size_t>(ranks);
    double ygm_wall = 0;
    double cb_wall = 0;
    mpisim::run(ranks, [&](mpisim::comm& c) {
      core::comm_world world(c, cores, routing::scheme_kind::node_remote);
      const graph::round_robin_partition part{c.size()};
      const graph::rmat_generator gen(scale, nnz, params, 555, c.rank(),
                                      c.size());
      std::vector<linalg::triplet> mine;
      gen.for_each([&](const graph::edge& e) {
        mine.push_back({e.src, e.dst, 1.0});
      });

      apps::dist_spmv A(world, n, mine, {}, capacity);
      std::vector<double> x(part.local_count(c.rank(), n), 1.0);
      c.barrier();
      double t0 = c.wtime();
      (void)A.multiply(x);
      const double dt1 = c.allreduce(c.wtime() - t0, mpisim::op_max{});

      linalg::combblas_lite B(c, n, mine);
      std::vector<double> xb(B.block_size(B.grid_col()), 1.0);
      c.barrier();
      t0 = c.wtime();
      (void)B.spmv(xb);
      const double dt2 = c.allreduce(c.wtime() - t0, mpisim::op_max{});
      if (c.rank() == 0) {
        ygm_wall = dt1;
        cb_wall = dt2;
      }
    });
    t.add_row({std::to_string(ranks),
               format_bytes(static_cast<double>(capacity)),
               bench::fmt(ygm_wall), bench::fmt(cb_wall)});
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  const ygm::bench::telemetry_guard telemetry(argc, argv);
  const bool rmat = bench::has_flag(argc, argv, "rmat");
  const bool uniform = bench::has_flag(argc, argv, "uniform");
  const bool web = bench::has_flag(argc, argv, "web");
  const bool all = !rmat && !uniform && !web;
  const int scale =
      static_cast<int>(bench::flag_int(argc, argv, "scale", 12));

  std::printf("Fig. 8 reproduction: SpMV scaling, YGM vs CombBLAS-lite "
              "(paper §VI-C)\n");
  if (all || rmat) {
    model_weak(/*skewed=*/true);
    executed_weak(/*skewed=*/true, scale);
  }
  if (all || uniform) {
    model_weak(/*skewed=*/false);
    executed_weak(/*skewed=*/false, scale);
  }
  if (all || web) {
    model_web_strong();
    executed_web_strong(scale);
  }
  return 0;
}
