// Micro-benchmarks (google-benchmark) for the CPU-bound substrate paths the
// mailbox's per-message costs are built from: serialization, varints,
// packet framing, and routing-hop computation. These are the "cpu_s_per_msg"
// terms of the network model; run them to re-calibrate
// net::network_params on new hardware.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/packet.hpp"
#include "graph/rmat.hpp"
#include "linalg/csc.hpp"
#include "routing/router.hpp"
#include "ser/serialize.hpp"

namespace {

using namespace ygm;

void BM_VarintEncode(benchmark::State& state) {
  std::vector<std::byte> out;
  std::uint64_t v = 0;
  for (auto _ : state) {
    out.clear();
    ser::varint_encode(v, out);
    v = v * 6364136223846793005ULL + 1;
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VarintEncode);

void BM_VarintDecode(benchmark::State& state) {
  std::vector<std::byte> buf;
  xoshiro256 rng(1);
  for (int i = 0; i < 1024; ++i) {
    ser::varint_encode(rng() >> (rng() % 64), buf);
  }
  const std::byte* p = buf.data();
  const std::byte* end = buf.data() + buf.size();
  for (auto _ : state) {
    if (p == end) p = buf.data();
    benchmark::DoNotOptimize(ser::varint_decode(p, end));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VarintDecode);

void BM_SerializePodVector(benchmark::State& state) {
  std::vector<std::uint64_t> v(static_cast<std::size_t>(state.range(0)));
  xoshiro256 rng(2);
  for (auto& x : v) x = rng();
  std::vector<std::byte> out;
  for (auto _ : state) {
    out.clear();
    ser::append_bytes(v, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(v.size() * 8));
}
BENCHMARK(BM_SerializePodVector)->Range(8, 1 << 14);

void BM_RoundTripStringMap(benchmark::State& state) {
  std::map<std::string, std::vector<std::uint32_t>> m;
  for (int i = 0; i < 32; ++i) {
    m["key-" + std::to_string(i)] = std::vector<std::uint32_t>(16, 7);
  }
  for (auto _ : state) {
    const auto bytes = ser::to_bytes(m);
    auto back =
        ser::from_bytes<std::map<std::string, std::vector<std::uint32_t>>>(
            {bytes.data(), bytes.size()});
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_RoundTripStringMap);

void BM_PacketAppendParse(benchmark::State& state) {
  // The mailbox's hot path: frame a message record, then parse it back.
  const std::vector<std::byte> payload(16);
  std::vector<std::byte> packet;
  for (auto _ : state) {
    packet.clear();
    for (int i = 0; i < 64; ++i) {
      core::packet_append(packet, false, i, {payload.data(), payload.size()});
    }
    core::packet_reader reader({packet.data(), packet.size()});
    while (!reader.done()) {
      benchmark::DoNotOptimize(reader.next());
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_PacketAppendParse);

void BM_NextHop(benchmark::State& state) {
  const auto kind = static_cast<routing::scheme_kind>(state.range(0));
  const routing::router r(kind, routing::topology(1024, 36));
  xoshiro256 rng(3);
  const int nc = 1024 * 36;
  for (auto _ : state) {
    const int s = static_cast<int>(rng.below(nc));
    int d = static_cast<int>(rng.below(nc));
    if (d == s) d = (d + 1) % nc;
    benchmark::DoNotOptimize(r.next_hop(s, d));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string(routing::to_string(kind)));
}
BENCHMARK(BM_NextHop)->DenseRange(0, 3);

void BM_BcastTreeExpansion(benchmark::State& state) {
  const routing::router r(routing::scheme_kind::nlnr,
                          routing::topology(64, 8));
  xoshiro256 rng(4);
  for (auto _ : state) {
    const int origin = static_cast<int>(rng.below(512));
    benchmark::DoNotOptimize(r.bcast_next_hops(origin, origin));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BcastTreeExpansion);

void BM_ScrambleVertex(benchmark::State& state) {
  xoshiro256 rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::scramble_vertex(rng(), 32));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScrambleVertex);

void BM_RmatSample(benchmark::State& state) {
  const graph::rmat_generator g(24, 1, graph::rmat_params::graph500(), 1, 0,
                                1);
  xoshiro256 rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RmatSample);

void BM_CscMultiply(benchmark::State& state) {
  const std::uint64_t n = 4096;
  xoshiro256 rng(7);
  std::vector<linalg::triplet> t;
  for (int i = 0; i < 1 << 16; ++i) {
    t.push_back({rng.below(n), rng.below(n), 1.0});
  }
  const auto m = linalg::csc_matrix::from_triplets(n, n, std::move(t));
  const std::vector<double> x(n, 1.0);
  std::vector<double> y(n, 0.0);
  for (auto _ : state) {
    m.multiply_add(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(m.num_nonzeros()));
}
BENCHMARK(BM_CscMultiply);

}  // namespace
