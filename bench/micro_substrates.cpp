// Micro-benchmarks (google-benchmark) for the CPU-bound substrate paths the
// mailbox's per-message costs are built from: serialization, varints,
// packet framing, and routing-hop computation. These are the "cpu_s_per_msg"
// terms of the network model; run them to re-calibrate
// net::network_params on new hardware.
//
// Before the google-benchmark suite, an executed section measures whole
// worlds on each transport backend (inproc threads vs. multi-process Unix
// sockets vs. multi-process shared-memory rings) and reports msgs/s through
// the --bench-json pipeline; BENCH_transport.json at the repo root is the
// committed baseline.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/comm_world.hpp"
#include "core/hybrid_mailbox.hpp"
#include "core/mailbox.hpp"
#include "core/packet.hpp"
#include "graph/rmat.hpp"
#include "linalg/csc.hpp"
#include "mpisim/runtime.hpp"
#include "routing/router.hpp"
#include "ser/serialize.hpp"
#include "transport/endpoint.hpp"

namespace {

using namespace ygm;

void BM_VarintEncode(benchmark::State& state) {
  std::vector<std::byte> out;
  std::uint64_t v = 0;
  for (auto _ : state) {
    out.clear();
    ser::varint_encode(v, out);
    v = v * 6364136223846793005ULL + 1;
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VarintEncode);

void BM_VarintDecode(benchmark::State& state) {
  std::vector<std::byte> buf;
  xoshiro256 rng(1);
  for (int i = 0; i < 1024; ++i) {
    ser::varint_encode(rng() >> (rng() % 64), buf);
  }
  const std::byte* p = buf.data();
  const std::byte* end = buf.data() + buf.size();
  for (auto _ : state) {
    if (p == end) p = buf.data();
    benchmark::DoNotOptimize(ser::varint_decode(p, end));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VarintDecode);

void BM_SerializePodVector(benchmark::State& state) {
  std::vector<std::uint64_t> v(static_cast<std::size_t>(state.range(0)));
  xoshiro256 rng(2);
  for (auto& x : v) x = rng();
  std::vector<std::byte> out;
  for (auto _ : state) {
    out.clear();
    ser::append_bytes(v, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(v.size() * 8));
}
BENCHMARK(BM_SerializePodVector)->Range(8, 1 << 14);

void BM_RoundTripStringMap(benchmark::State& state) {
  std::map<std::string, std::vector<std::uint32_t>> m;
  for (int i = 0; i < 32; ++i) {
    m["key-" + std::to_string(i)] = std::vector<std::uint32_t>(16, 7);
  }
  for (auto _ : state) {
    const auto bytes = ser::to_bytes(m);
    auto back =
        ser::from_bytes<std::map<std::string, std::vector<std::uint32_t>>>(
            {bytes.data(), bytes.size()});
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_RoundTripStringMap);

void BM_PacketAppendParse(benchmark::State& state) {
  // The mailbox's hot path: frame a message record, then parse it back.
  const std::vector<std::byte> payload(16);
  std::vector<std::byte> packet;
  for (auto _ : state) {
    packet.clear();
    for (int i = 0; i < 64; ++i) {
      core::packet_append(packet, false, i, {payload.data(), payload.size()});
    }
    core::packet_reader reader({packet.data(), packet.size()});
    while (!reader.done()) {
      benchmark::DoNotOptimize(reader.next());
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_PacketAppendParse);

void BM_NextHop(benchmark::State& state) {
  const auto kind = static_cast<routing::scheme_kind>(state.range(0));
  const routing::router r(kind, routing::topology(1024, 36));
  xoshiro256 rng(3);
  const int nc = 1024 * 36;
  for (auto _ : state) {
    const int s = static_cast<int>(rng.below(nc));
    int d = static_cast<int>(rng.below(nc));
    if (d == s) d = (d + 1) % nc;
    benchmark::DoNotOptimize(r.next_hop(s, d));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string(routing::to_string(kind)));
}
BENCHMARK(BM_NextHop)->DenseRange(0, 3);

void BM_BcastTreeExpansion(benchmark::State& state) {
  const routing::router r(routing::scheme_kind::nlnr,
                          routing::topology(64, 8));
  xoshiro256 rng(4);
  for (auto _ : state) {
    const int origin = static_cast<int>(rng.below(512));
    benchmark::DoNotOptimize(r.bcast_next_hops(origin, origin));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BcastTreeExpansion);

void BM_ScrambleVertex(benchmark::State& state) {
  xoshiro256 rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::scramble_vertex(rng(), 32));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScrambleVertex);

void BM_RmatSample(benchmark::State& state) {
  const graph::rmat_generator g(24, 1, graph::rmat_params::graph500(), 1, 0,
                                1);
  xoshiro256 rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RmatSample);

void BM_CscMultiply(benchmark::State& state) {
  const std::uint64_t n = 4096;
  xoshiro256 rng(7);
  std::vector<linalg::triplet> t;
  for (int i = 0; i < 1 << 16; ++i) {
    t.push_back({rng.below(n), rng.below(n), 1.0});
  }
  const auto m = linalg::csc_matrix::from_triplets(n, n, std::move(t));
  const std::vector<double> x(n, 1.0);
  std::vector<double> y(n, 0.0);
  for (auto _ : state) {
    m.multiply_add(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(m.num_nonzeros()));
}
BENCHMARK(BM_CscMultiply);

// ------------------------- executed per-backend substrate message rates
//
// Unlike the loops above, these spin up whole worlds (threads or forked
// processes), so they run once per backend instead of under the
// google-benchmark timer, and publish their rates with add_metric so a
// --bench-json run captures them. The same workload runs on both backends:
// the inproc/socket spread *is* the measurement — it prices what leaving
// the shared address space costs per message.

// (delivered msgs world-wide, payload bytes delivered, wall seconds by the
// slowest rank) — serialized through run_collect's result channel because
// socket rank bodies are forked processes.
using rate_row = std::tuple<std::uint64_t, std::uint64_t, double>;

rate_row collect_rate(transport::backend_kind backend, int nranks,
                      const std::function<rate_row(mpisim::comm&)>& body) {
  mpisim::run_options opts;
  opts.nranks = nranks;
  opts.backend = backend;
  opts.chaos = mpisim::chaos_config{};  // pin faults off, ignore YGM_CHAOS
  const auto blobs =
      mpisim::run_collect(opts, [&](mpisim::comm& c) {
        const rate_row r = body(c);
        std::vector<std::byte> out;
        if (c.rank() == 0) ser::append_bytes(r, out);
        return out;
      });
  return ser::from_bytes<rate_row>({blobs[0].data(), blobs[0].size()});
}

// Raw endpoint flood: every rank sends `msgs` framed envelopes to every
// peer, then drains. No mailbox, no routing — the bare post/recv cost.
rate_row p2p_flood(transport::backend_kind backend, int nranks, int msgs,
                   std::size_t payload_bytes) {
  return collect_rate(backend, nranks, [&](mpisim::comm& c) {
    c.barrier();
    const double t0 = c.wtime();
    for (int i = 0; i < msgs; ++i) {
      for (int d = 0; d < c.size(); ++d) {
        if (d == c.rank()) continue;
        c.send_bytes(d, 0, std::vector<std::byte>(payload_bytes));
      }
    }
    std::uint64_t recvd = 0;
    for (int d = 0; d < c.size(); ++d) {
      if (d == c.rank()) continue;
      for (int i = 0; i < msgs; ++i) {
        (void)c.recv_bytes(d, 0);
        ++recvd;
      }
    }
    const double wall = c.allreduce(c.wtime() - t0, mpisim::op_max{});
    const auto total = c.allreduce(recvd, mpisim::op_sum{});
    return rate_row{total, total * payload_bytes, wall};
  });
}

// NLNR mailbox all-to-all: the full stack (routing, packet framing,
// termination detection) over the backend. The mailbox type decides the
// node-local strategy — core::mailbox always coalesces, hybrid_mailbox
// grades on the endpoint's locality capability (zero-copy handoff on
// inproc, per-record direct messages on shm, coalesced fallback on
// socket).
template <class MailboxT, class Msg>
rate_row mailbox_all_to_all(transport::backend_kind backend,
                            routing::topology topo, int msgs) {
  return collect_rate(backend, topo.num_ranks(), [&](mpisim::comm& c) {
    core::comm_world world(c, topo, routing::scheme_kind::nlnr);
    std::uint64_t local_recv = 0;
    MailboxT mb(
        world, [&](const Msg&) { ++local_recv; }, 4096);
    const Msg m{};
    c.barrier();
    const double t0 = c.wtime();
    for (int i = 0; i < msgs; ++i) {
      for (int d = 0; d < c.size(); ++d) {
        if (d == c.rank()) continue;
        mb.send(d, m);
      }
    }
    mb.wait_empty();
    const double wall = c.allreduce(c.wtime() - t0, mpisim::op_max{});
    const auto total = c.allreduce(local_recv, mpisim::op_sum{});
    return rate_row{total, total * sizeof(Msg), wall};
  });
}

void report_rate(bench::table& t, const std::string& backend,
                 const std::string& workload, const rate_row& r) {
  const auto [delivered, bytes, wall] = r;
  const double msgs_per_sec =
      wall > 0 ? static_cast<double>(delivered) / wall : 0;
  const double mb_per_sec =
      wall > 0 ? static_cast<double>(bytes) / wall / 1e6 : 0;
  t.add_row({backend, workload, std::to_string(delivered), bench::fmt(wall),
             bench::fmt(msgs_per_sec), bench::fmt(mb_per_sec)});
  auto& rep = bench::json_report::instance();
  const std::string key = "substrate." + backend + "." + workload;
  rep.add_metric(key + ".msgs_per_sec", msgs_per_sec);
  rep.add_metric(key + ".mb_per_sec", mb_per_sec);
}

void substrate_message_rates() {
  bench::banner(
      "Executed message rates per transport backend (4 ranks)",
      "Same workloads on inproc (threads, shared memory), socket (forked "
      "processes, Unix-domain sockets), and shm (forked processes, "
      "shared-memory SPSC rings); the socket/shm spread prices the kernel "
      "socket path against a user-space ring crossing the same process "
      "boundary. Acceptance gate: shm must hold >= 1.5x the socket msgs/s "
      "on mailbox_local (hybrid mailbox, 1 KiB records, all traffic "
      "node-local).");
  constexpr int p2p_msgs = 1500;       // per (rank, peer) pair
  constexpr std::size_t p2p_bytes = 64;
  constexpr int mbx_msgs = 20000;      // per (rank, peer) pair
  constexpr int local_msgs = 4000;     // per (rank, peer) pair, 1 KiB each
  // 1 KiB records for the node-local row: the hybrid's locality grading
  // targets payload-carrying records (per-record handoff saves copies, not
  // tiny-record framing), so the gate row measures exactly that regime.
  using local_record = std::array<std::uint64_t, 128>;
  bench::table t(
      {"backend", "workload", "delivered", "wall (s)", "msgs/s", "MB/s"});
  for (const auto backend :
       {transport::backend_kind::inproc, transport::backend_kind::socket,
        transport::backend_kind::shm}) {
    const std::string name(transport::to_string(backend));
    report_rate(t, name, "p2p", p2p_flood(backend, 4, p2p_msgs, p2p_bytes));
    report_rate(t, name, "mailbox",
                mailbox_all_to_all<core::mailbox<std::uint64_t>,
                                   std::uint64_t>(
                    backend, routing::topology(2, 2), mbx_msgs));
    // Node-local shape (one node, four cores): every hop stays inside the
    // node, so the hybrid's locality grading is the whole story — this is
    // the row the shm-over-socket acceptance gate in BENCH_transport.json
    // reads.
    report_rate(t, name, "mailbox_local",
                mailbox_all_to_all<core::hybrid_mailbox<local_record>,
                                   local_record>(
                    backend, routing::topology(1, 4), local_msgs));
  }
  t.print();
}

}  // namespace

// Custom main instead of benchmark_main: the telemetry_guard owns the
// --bench-json report and the executed substrate section runs outside the
// google-benchmark timer. ReportUnrecognizedArguments is deliberately not
// called — the guard's own flags (--bench-json, --trace-*, ...) stay in
// argv and google-benchmark must tolerate them.
int main(int argc, char** argv) {
  const ygm::bench::telemetry_guard telemetry(argc, argv);
  substrate_message_rates();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
