// Flood memory bound under credit backpressure (docs/BACKPRESSURE.md).
//
// The bugfix this bench guards: a hot producer flooding one destination
// used to grow the runtime's queues without limit — the producer's sends
// always succeeded immediately and every queued packet sat in memory until
// the receiver got around to draining. Credit flow control bounds the
// per-destination in-flight bytes; the producer pays for the bound with
// send-side stall time. This bench measures both sides of that trade on
// the same asymmetric workload, once with credit on and once in the
// pre-fix configuration (credit off, transport queue cap off):
//
//   peak_in_flight_bytes   producer's max unacked bytes (credit on only;
//                          must stay <= the budget)
//   rss_delta_bytes        process VmHWM growth across the run — the
//                          RSS-proxy for "how much memory the flood cost"
//   send_stall_p50/p99_us  per-send latency percentiles; with credit on
//                          the tail IS the backpressure stall
//
// The credit-on run executes first: VmHWM is monotone per process, so the
// bounded run must set its (small) high-water mark before the unbounded
// run blows the mark out by the full flood volume.
//
// BENCH_flood.json tracks flood.credit_on.peak_in_flight_bytes (bounded by
// budget) against flood.credit_off.rss_delta_bytes (the unbounded
// baseline). `--tiny` shrinks the flood for the CI smoke; `--bench-json`
// writes the machine-readable report.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/comm_world.hpp"
#include "core/launch.hpp"
#include "core/mailbox.hpp"
#include "mpisim/runtime.hpp"
#include "routing/router.hpp"
#include "ser/serialize.hpp"

namespace {

using namespace ygm;

struct knobs {
  int msgs = 131072;                       ///< flood messages, rank 0 -> 1
  std::size_t payload = 256;               ///< bytes per message
  std::size_t budget = 64 * 1024;          ///< credit budget (on-runs)
  std::size_t capacity = 8 * 1024;         ///< mailbox coalescing capacity
};

/// Process peak-RSS proxy in bytes (Linux VmHWM; 0 where unavailable).
std::uint64_t peak_rss_bytes() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtoull(line.c_str() + 6, nullptr, 10) * 1024;
    }
  }
  return 0;
}

struct flood_msg {
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> filler;
  template <class Ar>
  void serialize(Ar& ar) {
    ar & seq & filler;
  }
};

/// Rank 0's measurements, shipped back through the collect channel.
struct flood_out {
  std::uint64_t peak_in_flight = 0;
  std::uint64_t stalls = 0;
  std::uint64_t rss_delta = 0;
  double p50_us = 0;
  double p99_us = 0;
  double max_us = 0;
  double send_s = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar & peak_in_flight & stalls & rss_delta & p50_us & p99_us & max_us &
        send_s;
  }
};

double pct(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// One flood: rank 0 hammers rank 1; rank 1 sleeps through the burst and
/// only drains at wait_empty, so queued bytes have nowhere to hide.
flood_out run_flood(bool credit_on, const knobs& kn) {
  run_options o;
  o.nranks = 2;
  o.credit_bytes = credit_on ? kn.budget : std::size_t{0};
  // Pre-fix baseline: no transport-level queue cap either, so the flood's
  // memory cost is exactly the unbounded behavior being fixed.
  if (!credit_on) o.outq_cap_bytes = std::size_t{0};
  flood_out out;
  const auto blobs = launch_collect(o, [&](mpisim::comm& c) {
    core::comm_world world(c, routing::topology(1, 2),
                           routing::scheme_kind::no_route);
    std::uint64_t received = 0;
    core::mailbox<flood_msg> mb(
        world, [&](const flood_msg&) { ++received; }, kn.capacity);
    flood_out local;
    if (c.rank() == 0) {
      const std::uint64_t rss0 = peak_rss_bytes();
      flood_msg m;
      m.filler.assign(kn.payload, 0x5a);
      std::vector<double> lat;
      lat.reserve(static_cast<std::size_t>(kn.msgs));
      const auto burst0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kn.msgs; ++i) {
        m.seq = static_cast<std::uint64_t>(i);
        const auto t0 = std::chrono::steady_clock::now();
        mb.send(1, m);
        lat.push_back(std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
      }
      local.send_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - burst0)
                         .count();
      mb.wait_empty();
      local.rss_delta = peak_rss_bytes() - rss0;
      local.peak_in_flight = mb.credit_peak_in_flight();
      local.stalls = mb.stats().credit_stalls;
      std::sort(lat.begin(), lat.end());
      local.p50_us = pct(lat, 0.5);
      local.p99_us = pct(lat, 0.99);
      local.max_us = lat.empty() ? 0 : lat.back();
    } else {
      // Slow consumer: stay out of the runtime while the flood builds.
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      mb.wait_empty();
    }
    std::vector<std::byte> blob;
    ser::append_bytes(local, blob);
    return blob;
  });
  out = ser::from_bytes<flood_out>({blobs[0].data(), blobs[0].size()});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::telemetry_guard telemetry_flags(argc, argv);

  knobs kn;
  if (bench::has_flag(argc, argv, "tiny")) {
    kn.msgs = 32768;
  }
  kn.msgs = static_cast<int>(bench::flag_int(argc, argv, "msgs", kn.msgs));
  kn.payload = static_cast<std::size_t>(
      bench::flag_int(argc, argv, "payload",
                      static_cast<long long>(kn.payload)));
  kn.budget = static_cast<std::size_t>(
      bench::flag_int(argc, argv, "budget",
                      static_cast<long long>(kn.budget)));

  const double flood_mib = static_cast<double>(kn.msgs) *
                           static_cast<double>(kn.payload) / (1024.0 * 1024.0);
  std::printf("Flood memory bound: 2 ranks, rank 0 -> rank 1, %d msgs x "
              "%zu B (%.1f MiB), budget %zu B\n",
              kn.msgs, kn.payload, flood_mib, kn.budget);

  bench::banner(
      "flood: bounded vs unbounded",
      "Hot producer vs sleeping consumer. credit_on bounds unacked bytes at "
      "the budget (producer stalls); credit_off is the pre-fix baseline — "
      "no credit, no transport queue cap, memory grows with the flood. "
      "rss_delta is the VmHWM growth across the run (credit_on runs first; "
      "VmHWM is monotone).");

  auto& rep = bench::json_report::instance();
  bench::table t({"config", "peak in-flight B", "rss delta B", "stalls",
                  "send p50 us", "send p99 us", "send max us"});
  // Bounded run FIRST (see banner note on VmHWM monotonicity).
  double on_rss = 0, off_rss = 0;
  for (const bool credit_on : {true, false}) {
    const auto r = run_flood(credit_on, kn);
    const std::string name = credit_on ? "credit_on" : "credit_off";
    t.add_row({name, std::to_string(r.peak_in_flight),
               std::to_string(r.rss_delta), std::to_string(r.stalls),
               bench::fmt(r.p50_us), bench::fmt(r.p99_us),
               bench::fmt(r.max_us)});
    rep.add_metric("flood." + name + ".peak_in_flight_bytes",
                   static_cast<double>(r.peak_in_flight));
    rep.add_metric("flood." + name + ".rss_delta_bytes",
                   static_cast<double>(r.rss_delta));
    rep.add_metric("flood." + name + ".credit_stalls",
                   static_cast<double>(r.stalls));
    rep.add_metric("flood." + name + ".send_stall_p50_us", r.p50_us);
    rep.add_metric("flood." + name + ".send_stall_p99_us", r.p99_us);
    rep.add_metric("flood." + name + ".send_stall_max_us", r.max_us);
    rep.add_metric("flood." + name + ".send_phase_s", r.send_s);
    (credit_on ? on_rss : off_rss) = static_cast<double>(r.rss_delta);
    if (credit_on && r.peak_in_flight > kn.budget) {
      std::fprintf(stderr,
                   "perf_flood: BOUND VIOLATED: peak in-flight %llu B > "
                   "budget %zu B\n",
                   static_cast<unsigned long long>(r.peak_in_flight),
                   kn.budget);
      return 1;
    }
  }
  t.print();

  // Headline: how much memory the bound saves. Floor the bounded run's
  // delta at one page so the ratio stays finite when the bounded flood
  // fits entirely in already-mapped pages.
  const double ratio = off_rss / std::max(on_rss, 4096.0);
  rep.add_metric("flood.unbounded_vs_bounded_rss_ratio", ratio);
  std::printf("\n  unbounded/bounded rss-delta ratio: %.1f (flood %.1f MiB, "
              "budget %zu B)\n",
              ratio, flood_mib, kn.budget);
  return 0;
}
