// Message-rate baseline for the mailbox hot path (docs/PERF.md).
//
// Exercises the steady-state send -> flush -> drain -> forward cycle that
// the zero-copy work targets, and reports msgs/sec, wire MB/sec, and the
// packet-buffer-pool counters (pool hit rate, heap allocations per
// message). Three workloads:
//
//   p2p   small-message all-to-all under all four routing schemes — the
//         headline number BENCH_hotpath.json tracks before/after;
//   bcast broadcast fan-out along each scheme's tree;
//   fwd   forward-heavy NLNR point-to-point on a wider topology, where
//         most records are re-queued by intermediaries (the forward path).
//
// Each workload runs both mailbox implementations (core::mailbox and
// core::hybrid_mailbox). Run with --bench-json=<file> to capture the
// machine-readable report; `--tiny` shrinks everything for the CI smoke.
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/comm_world.hpp"
#include "core/hybrid_mailbox.hpp"
#include "core/mailbox.hpp"
#include "mpisim/runtime.hpp"
#include "routing/router.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace ygm;

struct knobs {
  int p2p_rounds = 20000;   ///< all-to-all rounds per rank
  int bcast_rounds = 4000;  ///< broadcasts per rank
  int fwd_rounds = 3000;    ///< forward-heavy all-to-all rounds per rank
  std::size_t capacity = std::size_t{1} << 14;  ///< small: many packet cycles
};

struct run_result {
  std::uint64_t delivered = 0;
  std::uint64_t hops = 0;      ///< hops_sent summed over ranks
  std::uint64_t bytes = 0;     ///< wire/handoff bytes
  double wall = 0;             ///< max over ranks, seconds
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  std::uint64_t alloc_bytes = 0;
};

std::uint64_t counter_or(const telemetry::metrics_registry& m,
                         std::string_view name) {
  const auto it = m.counters().find(name);
  return it == m.counters().end() ? 0 : it->second;
}

const char* scheme_name(routing::scheme_kind k) {
  switch (k) {
    case routing::scheme_kind::no_route: return "NoRoute";
    case routing::scheme_kind::node_local: return "NodeLocal";
    case routing::scheme_kind::node_remote: return "NodeRemote";
    case routing::scheme_kind::nlnr: return "NLNR";
  }
  return "?";
}

/// Run `body(world)` on a fresh mpisim world and collect the telemetry
/// counters that world recorded (pool + mailbox families).
template <class Body>
run_result run_world(int nranks, const Body& body) {
  run_result res;
  auto& ses = *telemetry::global();
  const int w0 = ses.world_count();
  double wall = 0;
  mpisim::run(nranks, [&](mpisim::comm& c) {
    const double dt = body(c);
    if (c.rank() == 0) wall = dt;
  });
  res.wall = wall;
  telemetry::metrics_registry m;
  for (int w = w0; w < ses.world_count(); ++w) {
    m.merge(ses.merged_metrics(w));
  }
  res.delivered = counter_or(m, "mailbox.deliveries");
  res.hops = counter_or(m, "mailbox.hops_sent");
  res.bytes =
      counter_or(m, "mailbox.local_bytes") + counter_or(m, "mailbox.remote_bytes");
  // Pool counters are absent on builds that predate the buffer pool (the
  // "before" snapshot in BENCH_hotpath.json) — read them defensively.
  res.pool_hits = counter_or(m, "pool.hits");
  res.pool_misses = counter_or(m, "pool.misses");
  res.alloc_bytes = counter_or(m, "alloc.bytes");
  return res;
}

// ------------------------------------------------------------- workloads

/// Every rank sends `rounds` small messages to every other rank.
template <class MailboxT>
run_result all_to_all(const routing::topology& topo, routing::scheme_kind k,
                      int rounds, std::size_t capacity) {
  return run_world(topo.num_ranks(), [&](mpisim::comm& c) {
    core::comm_world world(c, topo, k);
    std::uint64_t sink = 0;
    MailboxT mb(
        world, [&](const std::uint64_t& v) { sink += v; }, capacity);
    c.barrier();
    const double t0 = c.wtime();
    for (int i = 0; i < rounds; ++i) {
      for (int d = 0; d < c.size(); ++d) {
        if (d == c.rank()) continue;
        mb.send(d, static_cast<std::uint64_t>(i));
      }
    }
    mb.wait_empty();
    return c.allreduce(c.wtime() - t0, mpisim::op_max{});
  });
}

/// Every rank broadcasts `rounds` small messages.
template <class MailboxT>
run_result bcast_storm(const routing::topology& topo, routing::scheme_kind k,
                       int rounds, std::size_t capacity) {
  return run_world(topo.num_ranks(), [&](mpisim::comm& c) {
    core::comm_world world(c, topo, k);
    std::uint64_t sink = 0;
    MailboxT mb(
        world, [&](const std::uint64_t& v) { sink += v; }, capacity);
    c.barrier();
    const double t0 = c.wtime();
    for (int i = 0; i < rounds; ++i) {
      mb.send_bcast(static_cast<std::uint64_t>(i));
    }
    mb.wait_empty();
    return c.allreduce(c.wtime() - t0, mpisim::op_max{});
  });
}

// ------------------------------------------------------------- reporting

void report(bench::table& t, const std::string& section,
            const std::string& scheme, const std::string& impl,
            const run_result& r) {
  const double msgs_per_sec =
      r.wall > 0 ? static_cast<double>(r.delivered) / r.wall : 0;
  const double mb_per_sec =
      r.wall > 0 ? static_cast<double>(r.bytes) / r.wall / 1e6 : 0;
  const std::uint64_t acquires = r.pool_hits + r.pool_misses;
  const double hit_pct =
      acquires > 0
          ? 100.0 * static_cast<double>(r.pool_hits) /
                static_cast<double>(acquires)
          : 0;
  const double allocs_per_msg =
      r.delivered > 0 ? static_cast<double>(r.pool_misses) /
                            static_cast<double>(r.delivered)
                      : 0;
  t.add_row({scheme, impl, std::to_string(r.delivered),
             bench::fmt(r.wall), bench::fmt(msgs_per_sec),
             bench::fmt(mb_per_sec), bench::fmt(hit_pct),
             bench::fmt(allocs_per_msg, 4)});
  const std::string key = section + "." + scheme + "." + impl;
  auto& rep = bench::json_report::instance();
  rep.add_metric(key + ".msgs_per_sec", msgs_per_sec);
  rep.add_metric(key + ".mb_per_sec", mb_per_sec);
  rep.add_metric(key + ".allocs_per_msg", allocs_per_msg);
  rep.add_metric(key + ".pool_hit_pct", hit_pct);
}

std::vector<std::string> columns() {
  return {"scheme", "impl",   "delivered", "wall (s)",
          "msgs/s", "MB/s",   "pool hit%", "allocs/msg"};
}

constexpr routing::scheme_kind all_schemes[] = {
    routing::scheme_kind::no_route, routing::scheme_kind::node_local,
    routing::scheme_kind::node_remote, routing::scheme_kind::nlnr};

}  // namespace

int main(int argc, char** argv) {
  const ygm::bench::telemetry_guard telemetry_flags(argc, argv);
  // The pool/mailbox counters this bench reports require a telemetry
  // session; install one ourselves when no --trace-*/--metrics-* flag did.
  std::unique_ptr<telemetry::session> own_session;
  if (telemetry::global() == nullptr) {
    own_session = std::make_unique<telemetry::session>();
    telemetry::set_global(own_session.get());
  }

  knobs kn;
  if (bench::has_flag(argc, argv, "tiny")) {
    kn.p2p_rounds = 40;
    kn.bcast_rounds = 20;
    kn.fwd_rounds = 30;
    kn.capacity = 4096;
  }
  kn.p2p_rounds = static_cast<int>(
      bench::flag_int(argc, argv, "msgs", kn.p2p_rounds));
  kn.bcast_rounds = static_cast<int>(
      bench::flag_int(argc, argv, "bcasts", kn.bcast_rounds));
  kn.fwd_rounds = static_cast<int>(
      bench::flag_int(argc, argv, "fwd", kn.fwd_rounds));
  kn.capacity = static_cast<std::size_t>(
      bench::flag_int(argc, argv, "capacity",
                      static_cast<std::int64_t>(kn.capacity)));

  std::printf("Mailbox hot-path baseline: small-message rates through the "
              "full send->flush->drain->forward cycle\n");

  const routing::topology topo(4, 2);   // 4 nodes x 2 cores = 8 ranks
  const routing::topology wide(8, 2);   // forward-heavy NLNR shape

  bench::banner("p2p all-to-all, small messages",
                "8-byte payloads, 8 ranks (4 nodes x 2 cores), capacity " +
                    std::to_string(kn.capacity) + " B. The BENCH_hotpath "
                    "headline rows.");
  {
    bench::table t(columns());
    for (const auto k : all_schemes) {
      report(t, "p2p", scheme_name(k), "mailbox",
             all_to_all<core::mailbox<std::uint64_t>>(topo, k, kn.p2p_rounds,
                                                      kn.capacity));
      report(t, "p2p", scheme_name(k), "hybrid",
             all_to_all<core::hybrid_mailbox<std::uint64_t>>(
                 topo, k, kn.p2p_rounds, kn.capacity));
    }
    t.print();
  }

  bench::banner("p2p all-to-all, flush churn",
                "Same workload at 256 B capacity: a flush every few records, "
                "so the packet buffer cycle (grow/ship/drop vs pool) "
                "dominates.");
  {
    bench::table t(columns());
    for (const auto k : {routing::scheme_kind::no_route,
                         routing::scheme_kind::nlnr}) {
      report(t, "churn", scheme_name(k), "mailbox",
             all_to_all<core::mailbox<std::uint64_t>>(topo, k, kn.p2p_rounds,
                                                      256));
      report(t, "churn", scheme_name(k), "hybrid",
             all_to_all<core::hybrid_mailbox<std::uint64_t>>(
                 topo, k, kn.p2p_rounds, 256));
    }
    t.print();
  }

  bench::banner("broadcast storm",
                "Every rank broadcasts along the scheme's tree; delivered = "
                "ranks x (ranks-1) x rounds.");
  {
    bench::table t(columns());
    for (const auto k : all_schemes) {
      report(t, "bcast", scheme_name(k), "mailbox",
             bcast_storm<core::mailbox<std::uint64_t>>(topo, k,
                                                       kn.bcast_rounds,
                                                       kn.capacity));
      report(t, "bcast", scheme_name(k), "hybrid",
             bcast_storm<core::hybrid_mailbox<std::uint64_t>>(
                 topo, k, kn.bcast_rounds, kn.capacity));
    }
    t.print();
  }

  bench::banner("forward-heavy NLNR all-to-all",
                "16 ranks (8 nodes x 2 cores): most records cross an "
                "intermediary, exercising the span-based forward path.");
  {
    bench::table t(columns());
    report(t, "fwd", "NLNR", "mailbox",
           all_to_all<core::mailbox<std::uint64_t>>(
               wide, routing::scheme_kind::nlnr, kn.fwd_rounds, kn.capacity));
    report(t, "fwd", "NLNR", "hybrid",
           all_to_all<core::hybrid_mailbox<std::uint64_t>>(
               wide, routing::scheme_kind::nlnr, kn.fwd_rounds, kn.capacity));
    t.print();
  }

  return 0;
}
