// Live-telemetry overhead A/B (docs/TELEMETRY.md §Live telemetry).
//
// The live layer promises to be always-on-able: the time-series sampler
// snapshots every rank's counters/gauges on a period, and the hot path pays
// one relaxed atomic store per gauge publish plus the existing tls()-gated
// counter bumps. This bench runs the same all-to-all mailbox workload with
// the sampler off (sample_ms=0, the baseline), at the default period
// (100 ms), and at an aggressive 10 ms, all with telemetry lanes installed,
// and reports msgs/s for each:
//
//   live.sample_0.msgs_per_sec     baseline (lanes on, sampler off)
//   live.sample_100.msgs_per_sec   default period
//   live.sample_10.msgs_per_sec    10x default pressure
//   live.overhead_pct_100          (baseline/sample_100 - 1) * 100
//   live.overhead_pct_10           same vs the 10 ms run
//
// Each rate is the best of --trials interleaved rounds (A/B/A/B, so drift
// hits every configuration equally) after one discarded warm-up round —
// the first launch pays allocator/page-cache warm-up that would otherwise
// masquerade as sampler overhead.
//
// Acceptance (checked on the committed full-scale BENCH_live.json, not the
// CI smoke — tiny runs are too noisy to gate on): overhead_pct_100 <= 2.
// `--tiny` shrinks the workload for the ctest shard; `--bench-json` writes
// the machine-readable report.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/comm_world.hpp"
#include "core/launch.hpp"
#include "core/mailbox.hpp"
#include "mpisim/runtime.hpp"
#include "routing/router.hpp"
#include "ser/serialize.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace ygm;

struct knobs {
  int msgs = 100000;  ///< p2p messages per rank per epoch
  int epochs = 3;
  std::size_t capacity = 8 * 1024;  ///< mailbox coalescing capacity
  int nodes = 2, cores = 2;
  int trials = 5;  ///< timed rounds per configuration (best-of)
};

struct ping {
  std::uint64_t seq = 0;
  std::uint64_t payload = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar & seq & payload;
  }
};

struct rank_out {
  std::uint64_t sent = 0;
  double secs = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar & sent & secs;
  }
};

/// One configuration: all ranks spray p2p messages round-robin, wait for
/// drain each epoch; rate = total sent / slowest rank's wall time.
double run_rate(int sample_ms, const knobs& kn) {
  run_options o;
  o.nranks = kn.nodes * kn.cores;
  o.sample_ms = sample_ms;
  const auto blobs = launch_collect(o, [&](mpisim::comm& c) {
    core::comm_world world(c, routing::topology(kn.nodes, kn.cores),
                           routing::scheme_kind::node_local);
    std::uint64_t received = 0;
    core::mailbox<ping> mb(
        world, [&](const ping&) { ++received; }, kn.capacity);
    rank_out local;
    const int n = c.size();
    const auto t0 = std::chrono::steady_clock::now();
    for (int e = 0; e < kn.epochs; ++e) {
      ping m;
      for (int i = 0; i < kn.msgs; ++i) {
        m.seq = local.sent++;
        m.payload = static_cast<std::uint64_t>(i);
        mb.send((c.rank() + 1 + i % (n - 1)) % n, m);
      }
      mb.wait_empty();
    }
    local.secs = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    std::vector<std::byte> blob;
    ser::append_bytes(local, blob);
    return blob;
  });
  std::uint64_t total = 0;
  double slowest = 0;
  for (const auto& b : blobs) {
    const auto r = ser::from_bytes<rank_out>({b.data(), b.size()});
    total += r.sent;
    slowest = std::max(slowest, r.secs);
  }
  return slowest > 0 ? static_cast<double>(total) / slowest : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::telemetry_guard telemetry_flags(argc, argv);

  knobs kn;
  if (bench::has_flag(argc, argv, "tiny")) {
    kn.msgs = 4000;
    kn.epochs = 1;
    kn.trials = 2;
  }
  kn.msgs = static_cast<int>(bench::flag_int(argc, argv, "msgs", kn.msgs));
  kn.epochs =
      static_cast<int>(bench::flag_int(argc, argv, "epochs", kn.epochs));
  kn.trials =
      static_cast<int>(bench::flag_int(argc, argv, "trials", kn.trials));

  // The sampler samples telemetry lanes, so every configuration — including
  // the sample_ms=0 baseline — runs with a session installed. That isolates
  // the sampler's marginal cost from the (already measured, tls()-gated)
  // cost of the lanes themselves.
  std::unique_ptr<telemetry::session> tsession;
  if (telemetry::global() == nullptr) {
    tsession = std::make_unique<telemetry::session>();
    telemetry::set_global(tsession.get());
  }

  std::printf("Live sampler overhead: %d ranks, %d msgs/rank x %d epochs\n",
              kn.nodes * kn.cores, kn.msgs, kn.epochs);

  bench::banner(
      "live sampler: msgs/s vs sample period",
      "Same all-to-all workload, telemetry lanes installed in every run; "
      "only the time-series sampler period varies. sample_0 is the "
      "sampler-off baseline; the 100 ms default must cost <= 2% of it "
      "(gated on the committed full-scale run, not the CI smoke).");

  // Discarded warm-up round: first-launch allocator and page-cache costs
  // land here instead of in whichever configuration happens to run first.
  {
    knobs warm = kn;
    warm.msgs = std::max(kn.msgs / 4, 1);
    warm.epochs = 1;
    (void)run_rate(0, warm);
  }

  const int kPeriods[] = {0, 100, 10};
  double best[3] = {0, 0, 0};
  for (int trial = 0; trial < kn.trials; ++trial) {
    for (int i = 0; i < 3; ++i) {
      best[i] = std::max(best[i], run_rate(kPeriods[i], kn));
    }
  }

  auto& rep = bench::json_report::instance();
  bench::table t({"sample_ms", "msgs/s", "overhead %"});
  const double baseline = best[0];
  for (int i = 0; i < 3; ++i) {
    const int ms = kPeriods[i];
    const double rate = best[i];
    const double overhead =
        ms == 0 || rate <= 0 ? 0 : (baseline / rate - 1.0) * 100.0;
    t.add_row({std::to_string(ms), bench::fmt_int(rate),
               ms == 0 ? "-" : bench::fmt(overhead)});
    rep.add_metric("live.sample_" + std::to_string(ms) + ".msgs_per_sec",
                   rate);
    if (ms != 0) {
      rep.add_metric("live.overhead_pct_" + std::to_string(ms), overhead);
    }
  }
  t.print();

  if (tsession != nullptr) telemetry::set_global(nullptr);
  return 0;
}
