// Communication/computation overlap under the progress engine
// (docs/PROGRESS.md).
//
// The paper's pseudo-asynchronous model (§IV) only makes progress when a
// rank touches the runtime, so a rank that computes for a while starves
// its mailbox: incoming packets sit in the transport until the next poll
// and total time degenerates to compute + comm. The dedicated progress
// engine is supposed to break exactly that serialization. This bench
// measures how much it does, with the classic three-run decomposition:
//
//   T_c   compute only      (busy-wait rounds, no traffic)
//   T_m   comm only         (send bursts + wait_empty, no compute)
//   T_b   both interleaved  (each round: busy-wait, then a send burst)
//
//   overlap = clamp((T_c + T_m - T_b) / min(T_c, T_m), 0, 1)
//
// 0 means fully serialized (T_b = T_c + T_m), 1 means fully hidden
// (T_b = max(T_c, T_m)). The workload runs once per progress mode:
// polling (the historical runtime: nobody moves messages while the rank
// busy-waits) and engine (compute rounds sit inside a
// progress::guard with deliver::on_engine, so the engine drains, forwards
// and delivers concurrently). The mailbox capacity is large enough that
// sends never trigger a capacity exchange — all incoming progress during
// the compute phase is the engine's doing, none is an accident of the
// send path.
//
// BENCH_overlap.json tracks overlap.engine / overlap.polling (floored
// denominator, see ratio below); the acceptance gate is ratio >= 1.2.
// `--tiny` shrinks everything for the CI smoke; `--bench-json=<file>`
// writes the machine-readable report.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/comm_world.hpp"
#include "core/launch.hpp"
#include "core/mailbox.hpp"
#include "core/progress.hpp"
#include "mpisim/runtime.hpp"
#include "routing/router.hpp"

namespace {

using namespace ygm;

struct knobs {
  int rounds = 48;          ///< compute/send rounds per rank
  int compute_us = 400;     ///< compute phase per round, microseconds
  int burst = 64;           ///< messages per peer per round
  int trials = 7;           ///< min-of-N wall times per workload
  std::size_t capacity = std::size_t{1} << 18;  ///< never flush on capacity
};

/// A latency-bound compute phase: short arithmetic slices separated by
/// clock sleeps, totalling `us` microseconds of wall time away from the
/// runtime. The sliced shape (not a pure cycle-burning spin) matters: on a
/// host with fewer cores than ranks — including the 1-CPU CI machine this
/// repo's benches assume throughout (bench_util.hpp) — a hot spin leaves
/// zero cycles for ANY progress thread, making overlap physically
/// unmeasurable no matter the runtime. The slices model a rank that is
/// out of the runtime but not monopolizing its core: memory stalls,
/// device waits, oversubscribed nodes. Polling mode cannot use the gaps
/// (nobody drains until the rank returns); the engine can.
void compute(int us) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  volatile std::uint64_t sink = 0;
  while (std::chrono::steady_clock::now() < until) {
    const auto slice =
        std::chrono::steady_clock::now() + std::chrono::microseconds(4);
    while (std::chrono::steady_clock::now() < slice) sink = sink + 1;
    std::this_thread::sleep_for(std::chrono::microseconds(40));
  }
}

enum class workload { compute_only, comm_only, both };

/// One timed run: every rank does `rounds` of {compute phase, all-to-all
/// send burst} (phases elided per the workload), then wait_empty. Returns
/// the max-over-ranks wall time of the workload phase.
double run_workload_once(progress::mode pmode, workload w, const knobs& kn) {
  double wall = 0;
  run_options o;
  o.nranks = 8;
  o.progress_mode = pmode;
  launch(o, [&](mpisim::comm& c) {
    const routing::topology topo(4, 2);
    core::comm_world world(c, topo, routing::scheme_kind::nlnr);
    std::atomic<std::uint64_t> sink{0};
    core::mailbox<std::uint64_t> mb(
        world, [&](const std::uint64_t& v) { sink.fetch_add(v); },
        kn.capacity);
    c.barrier();
    const double t0 = c.wtime();
    {
      // Engine runs execute deliveries engine-side so the rank thread
      // never has to stop computing; polling runs take no guard at all.
      std::optional<progress::guard> g;
      if (pmode == progress::mode::engine) {
        g.emplace(world, progress::deliver::on_engine);
      }
      for (int r = 0; r < kn.rounds; ++r) {
        if (w != workload::comm_only) compute(kn.compute_us);
        if (w != workload::compute_only) {
          for (int d = 0; d < c.size(); ++d) {
            if (d == c.rank()) continue;
            for (int k = 0; k < kn.burst; ++k) {
              mb.send(d, static_cast<std::uint64_t>(r + 1));
            }
          }
          mb.flush();
        }
      }
    }
    if (w != workload::compute_only) mb.wait_empty();
    const double dt = c.allreduce(c.wtime() - t0, mpisim::op_max{});
    if (c.rank() == 0) wall = dt;
  });
  return wall;
}

/// Min of `trials` runs. A single-CPU host timeslices the rank threads
/// plus the engine, so individual wall times carry one-sided scheduling
/// noise (a run is only ever slower than the workload, never faster); the
/// minimum is the standard least-interference estimator.
double run_workload(progress::mode pmode, workload w, const knobs& kn) {
  double best = run_workload_once(pmode, w, kn);
  for (int i = 1; i < kn.trials; ++i) {
    best = std::min(best, run_workload_once(pmode, w, kn));
  }
  return best;
}

struct mode_result {
  double t_compute = 0;
  double t_comm = 0;
  double t_both = 0;
  double overlap = 0;
};

mode_result measure(progress::mode pmode, const knobs& kn) {
  mode_result r;
  r.t_compute = run_workload(pmode, workload::compute_only, kn);
  r.t_comm = run_workload(pmode, workload::comm_only, kn);
  r.t_both = run_workload(pmode, workload::both, kn);
  const double denom = std::min(r.t_compute, r.t_comm);
  if (denom > 0) {
    r.overlap = std::clamp(
        (r.t_compute + r.t_comm - r.t_both) / denom, 0.0, 1.0);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::telemetry_guard telemetry_flags(argc, argv);

  knobs kn;
  if (bench::has_flag(argc, argv, "tiny")) {
    kn.rounds = 6;
    kn.compute_us = 200;
    kn.burst = 4;
    kn.trials = 1;
  }
  kn.rounds = static_cast<int>(
      bench::flag_int(argc, argv, "rounds", kn.rounds));
  kn.compute_us = static_cast<int>(
      bench::flag_int(argc, argv, "compute-us", kn.compute_us));
  kn.burst = static_cast<int>(bench::flag_int(argc, argv, "burst", kn.burst));
  kn.trials = static_cast<int>(
      bench::flag_int(argc, argv, "trials", kn.trials));

  std::printf("Progress-engine overlap: compute/comm decomposition, "
              "8 ranks (4 nodes x 2 cores), NLNR, capacity %zu B\n",
              kn.capacity);

  bench::banner(
      "overlap decomposition",
      "T_c = compute only, T_m = comm only, T_b = interleaved; overlap = "
      "clamp((T_c + T_m - T_b)/min(T_c, T_m), 0, 1). Engine rounds run "
      "inside a progress::guard (deliver::on_engine).");

  bench::table t({"progress", "T_c (s)", "T_m (s)", "T_b (s)", "overlap"});
  auto& rep = bench::json_report::instance();
  double overlaps[2] = {0, 0};
  const progress::mode modes[2] = {progress::mode::polling,
                                   progress::mode::engine};
  for (int i = 0; i < 2; ++i) {
    const auto r = measure(modes[i], kn);
    overlaps[i] = r.overlap;
    const std::string name(progress::to_string(modes[i]));
    t.add_row({name, bench::fmt(r.t_compute), bench::fmt(r.t_comm),
               bench::fmt(r.t_both), bench::fmt(r.overlap)});
    rep.add_metric("overlap." + name + ".t_compute", r.t_compute);
    rep.add_metric("overlap." + name + ".t_comm", r.t_comm);
    rep.add_metric("overlap." + name + ".t_both", r.t_both);
    rep.add_metric("overlap." + name + ".overlap", r.overlap);
  }
  t.print();

  // Polling overlap is structurally ~0 (that is the point), so the ratio
  // floors the denominator at 0.05 to stay finite and monotone: a fully
  // serialized polling run and a fully hidden engine run report 20.
  const double ratio = overlaps[1] / std::max(overlaps[0], 0.05);
  rep.add_metric("overlap.engine_vs_polling_ratio", ratio);
  std::printf("\n  overlap engine/polling ratio: %.2f (gate: >= 1.2)\n",
              ratio);
  return 0;
}
