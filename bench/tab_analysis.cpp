// §III-E analysis table: the closed-form quantities the paper derives for
// each routing scheme — remote partners per core, global channel counts,
// average remote message size for a fixed volume, and per-broadcast remote
// message counts. Regenerated from the same router logic the mailbox
// executes (and unit-tested against exhaustive route enumeration in
// tests/test_routing.cpp).
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "net/evaluator.hpp"
#include "routing/router.hpp"

namespace {

using namespace ygm;

void partner_table(int nodes, int cores) {
  const routing::topology topo(nodes, cores);
  bench::banner("§III-E analysis, N=" + std::to_string(nodes) +
                    " nodes x C=" + std::to_string(cores) + " cores",
                "V = 1 GiB of uniform all-to-all volume per core; average "
                "remote message size per the paper's formulas.");
  const double V = 1024.0 * 1024 * 1024;
  bench::table t({"scheme", "remote partners/core", "paper formula",
                  "remote channels", "avg remote msg", "bcast remote msgs",
                  "max hops"});
  for (const auto kind : routing::all_schemes) {
    const routing::router r(kind, topo);
    const int partners = r.remote_out_partners(topo.rank_of(nodes / 2, 1));
    std::string formula;
    switch (kind) {
      case routing::scheme_kind::no_route:
        formula = "(N-1)C";
        break;
      case routing::scheme_kind::node_local:
      case routing::scheme_kind::node_remote:
        formula = "N-1";
        break;
      case routing::scheme_kind::nlnr:
        formula = "~N/C";
        break;
    }
    t.add_row({std::string(routing::to_string(kind)),
               std::to_string(partners), formula,
               std::to_string(r.remote_channel_count()),
               format_bytes(partners > 0 ? V / partners : 0.0),
               std::to_string(r.bcast_remote_messages()),
               std::to_string(r.max_hops())});
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  const ygm::bench::telemetry_guard telemetry(argc, argv);
  (void)argc;
  (void)argv;
  std::printf("§III-E analysis tables (channel structure and message-size "
              "scaling of the routing schemes)\n");
  partner_table(64, 8);
  partner_table(1024, 36);  // the paper's largest configuration
  partner_table(4, 36);     // below the NLNR layer-formation point
  return 0;
}
