#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "ygm_repro::ygm_mpisim" for configuration "RelWithDebInfo"
set_property(TARGET ygm_repro::ygm_mpisim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ygm_repro::ygm_mpisim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libygm_mpisim.a"
  )

list(APPEND _cmake_import_check_targets ygm_repro::ygm_mpisim )
list(APPEND _cmake_import_check_files_for_ygm_repro::ygm_mpisim "${_IMPORT_PREFIX}/lib/libygm_mpisim.a" )

# Import target "ygm_repro::ygm_routing" for configuration "RelWithDebInfo"
set_property(TARGET ygm_repro::ygm_routing APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ygm_repro::ygm_routing PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libygm_routing.a"
  )

list(APPEND _cmake_import_check_targets ygm_repro::ygm_routing )
list(APPEND _cmake_import_check_files_for_ygm_repro::ygm_routing "${_IMPORT_PREFIX}/lib/libygm_routing.a" )

# Import target "ygm_repro::ygm_net" for configuration "RelWithDebInfo"
set_property(TARGET ygm_repro::ygm_net APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ygm_repro::ygm_net PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libygm_net.a"
  )

list(APPEND _cmake_import_check_targets ygm_repro::ygm_net )
list(APPEND _cmake_import_check_files_for_ygm_repro::ygm_net "${_IMPORT_PREFIX}/lib/libygm_net.a" )

# Import target "ygm_repro::ygm_core" for configuration "RelWithDebInfo"
set_property(TARGET ygm_repro::ygm_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ygm_repro::ygm_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libygm_core.a"
  )

list(APPEND _cmake_import_check_targets ygm_repro::ygm_core )
list(APPEND _cmake_import_check_files_for_ygm_repro::ygm_core "${_IMPORT_PREFIX}/lib/libygm_core.a" )

# Import target "ygm_repro::ygm_graph" for configuration "RelWithDebInfo"
set_property(TARGET ygm_repro::ygm_graph APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ygm_repro::ygm_graph PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libygm_graph.a"
  )

list(APPEND _cmake_import_check_targets ygm_repro::ygm_graph )
list(APPEND _cmake_import_check_files_for_ygm_repro::ygm_graph "${_IMPORT_PREFIX}/lib/libygm_graph.a" )

# Import target "ygm_repro::ygm_linalg" for configuration "RelWithDebInfo"
set_property(TARGET ygm_repro::ygm_linalg APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ygm_repro::ygm_linalg PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libygm_linalg.a"
  )

list(APPEND _cmake_import_check_targets ygm_repro::ygm_linalg )
list(APPEND _cmake_import_check_files_for_ygm_repro::ygm_linalg "${_IMPORT_PREFIX}/lib/libygm_linalg.a" )

# Import target "ygm_repro::ygm_apps" for configuration "RelWithDebInfo"
set_property(TARGET ygm_repro::ygm_apps APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ygm_repro::ygm_apps PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libygm_apps.a"
  )

list(APPEND _cmake_import_check_targets ygm_repro::ygm_apps )
list(APPEND _cmake_import_check_files_for_ygm_repro::ygm_apps "${_IMPORT_PREFIX}/lib/libygm_apps.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
