file(REMOVE_RECURSE
  "../bench/abl_bcast_routing"
  "../bench/abl_bcast_routing.pdb"
  "CMakeFiles/abl_bcast_routing.dir/abl_bcast_routing.cpp.o"
  "CMakeFiles/abl_bcast_routing.dir/abl_bcast_routing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_bcast_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
