# Empty dependencies file for abl_bcast_routing.
# This may be replaced when dependencies are built.
