file(REMOVE_RECURSE
  "../bench/abl_exchange_impl"
  "../bench/abl_exchange_impl.pdb"
  "CMakeFiles/abl_exchange_impl.dir/abl_exchange_impl.cpp.o"
  "CMakeFiles/abl_exchange_impl.dir/abl_exchange_impl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_exchange_impl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
