# Empty compiler generated dependencies file for abl_exchange_impl.
# This may be replaced when dependencies are built.
