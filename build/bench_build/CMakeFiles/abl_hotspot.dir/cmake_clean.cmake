file(REMOVE_RECURSE
  "../bench/abl_hotspot"
  "../bench/abl_hotspot.pdb"
  "CMakeFiles/abl_hotspot.dir/abl_hotspot.cpp.o"
  "CMakeFiles/abl_hotspot.dir/abl_hotspot.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_hotspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
