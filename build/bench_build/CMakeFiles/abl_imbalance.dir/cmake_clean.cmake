file(REMOVE_RECURSE
  "../bench/abl_imbalance"
  "../bench/abl_imbalance.pdb"
  "CMakeFiles/abl_imbalance.dir/abl_imbalance.cpp.o"
  "CMakeFiles/abl_imbalance.dir/abl_imbalance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
