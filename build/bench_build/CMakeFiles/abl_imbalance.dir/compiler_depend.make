# Empty compiler generated dependencies file for abl_imbalance.
# This may be replaced when dependencies are built.
