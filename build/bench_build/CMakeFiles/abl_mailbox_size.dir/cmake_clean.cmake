file(REMOVE_RECURSE
  "../bench/abl_mailbox_size"
  "../bench/abl_mailbox_size.pdb"
  "CMakeFiles/abl_mailbox_size.dir/abl_mailbox_size.cpp.o"
  "CMakeFiles/abl_mailbox_size.dir/abl_mailbox_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_mailbox_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
