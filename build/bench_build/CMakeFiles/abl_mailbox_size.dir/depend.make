# Empty dependencies file for abl_mailbox_size.
# This may be replaced when dependencies are built.
