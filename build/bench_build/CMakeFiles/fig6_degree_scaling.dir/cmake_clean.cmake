file(REMOVE_RECURSE
  "../bench/fig6_degree_scaling"
  "../bench/fig6_degree_scaling.pdb"
  "CMakeFiles/fig6_degree_scaling.dir/fig6_degree_scaling.cpp.o"
  "CMakeFiles/fig6_degree_scaling.dir/fig6_degree_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_degree_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
