# Empty compiler generated dependencies file for fig6_degree_scaling.
# This may be replaced when dependencies are built.
