file(REMOVE_RECURSE
  "../bench/fig8_spmv"
  "../bench/fig8_spmv.pdb"
  "CMakeFiles/fig8_spmv.dir/fig8_spmv.cpp.o"
  "CMakeFiles/fig8_spmv.dir/fig8_spmv.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
