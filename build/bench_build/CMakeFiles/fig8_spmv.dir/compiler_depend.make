# Empty compiler generated dependencies file for fig8_spmv.
# This may be replaced when dependencies are built.
