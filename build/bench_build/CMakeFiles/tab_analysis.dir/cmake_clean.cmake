file(REMOVE_RECURSE
  "../bench/tab_analysis"
  "../bench/tab_analysis.pdb"
  "CMakeFiles/tab_analysis.dir/tab_analysis.cpp.o"
  "CMakeFiles/tab_analysis.dir/tab_analysis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
