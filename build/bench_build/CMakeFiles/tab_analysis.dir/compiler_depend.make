# Empty compiler generated dependencies file for tab_analysis.
# This may be replaced when dependencies are built.
