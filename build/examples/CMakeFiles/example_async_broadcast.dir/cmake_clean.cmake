file(REMOVE_RECURSE
  "CMakeFiles/example_async_broadcast.dir/async_broadcast.cpp.o"
  "CMakeFiles/example_async_broadcast.dir/async_broadcast.cpp.o.d"
  "async_broadcast"
  "async_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_async_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
