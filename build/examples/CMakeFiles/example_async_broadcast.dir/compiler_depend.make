# Empty compiler generated dependencies file for example_async_broadcast.
# This may be replaced when dependencies are built.
