file(REMOVE_RECURSE
  "CMakeFiles/example_connected_components.dir/connected_components.cpp.o"
  "CMakeFiles/example_connected_components.dir/connected_components.cpp.o.d"
  "connected_components"
  "connected_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_connected_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
