# Empty compiler generated dependencies file for example_connected_components.
# This may be replaced when dependencies are built.
