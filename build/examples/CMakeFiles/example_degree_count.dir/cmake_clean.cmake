file(REMOVE_RECURSE
  "CMakeFiles/example_degree_count.dir/degree_count.cpp.o"
  "CMakeFiles/example_degree_count.dir/degree_count.cpp.o.d"
  "degree_count"
  "degree_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_degree_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
