# Empty compiler generated dependencies file for example_degree_count.
# This may be replaced when dependencies are built.
