file(REMOVE_RECURSE
  "CMakeFiles/example_graph500_traversal.dir/graph500_traversal.cpp.o"
  "CMakeFiles/example_graph500_traversal.dir/graph500_traversal.cpp.o.d"
  "graph500_traversal"
  "graph500_traversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_graph500_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
