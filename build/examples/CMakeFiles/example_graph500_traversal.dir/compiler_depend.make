# Empty compiler generated dependencies file for example_graph500_traversal.
# This may be replaced when dependencies are built.
