file(REMOVE_RECURSE
  "CMakeFiles/example_kmer_count.dir/kmer_count.cpp.o"
  "CMakeFiles/example_kmer_count.dir/kmer_count.cpp.o.d"
  "kmer_count"
  "kmer_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_kmer_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
