# Empty compiler generated dependencies file for example_kmer_count.
# This may be replaced when dependencies are built.
