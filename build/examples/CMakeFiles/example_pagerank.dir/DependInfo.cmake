
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/pagerank.cpp" "examples/CMakeFiles/example_pagerank.dir/pagerank.cpp.o" "gcc" "examples/CMakeFiles/example_pagerank.dir/pagerank.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/ygm_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ygm_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ygm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ygm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/ygm_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/ygm_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ygm_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
