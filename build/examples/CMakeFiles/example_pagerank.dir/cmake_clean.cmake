file(REMOVE_RECURSE
  "CMakeFiles/example_pagerank.dir/pagerank.cpp.o"
  "CMakeFiles/example_pagerank.dir/pagerank.cpp.o.d"
  "pagerank"
  "pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
