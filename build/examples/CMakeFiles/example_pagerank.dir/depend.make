# Empty dependencies file for example_pagerank.
# This may be replaced when dependencies are built.
