file(REMOVE_RECURSE
  "CMakeFiles/example_spmv.dir/spmv.cpp.o"
  "CMakeFiles/example_spmv.dir/spmv.cpp.o.d"
  "spmv"
  "spmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
