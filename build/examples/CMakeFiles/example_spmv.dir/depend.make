# Empty dependencies file for example_spmv.
# This may be replaced when dependencies are built.
