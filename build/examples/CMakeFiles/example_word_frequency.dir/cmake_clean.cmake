file(REMOVE_RECURSE
  "CMakeFiles/example_word_frequency.dir/word_frequency.cpp.o"
  "CMakeFiles/example_word_frequency.dir/word_frequency.cpp.o.d"
  "word_frequency"
  "word_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_word_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
