# Empty dependencies file for example_word_frequency.
# This may be replaced when dependencies are built.
