# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--ranks" "8" "--cores" "4")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_degree_count "/root/repo/build/examples/degree_count" "--scale" "10" "--nodes" "2" "--cores" "2")
set_tests_properties(example_degree_count PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_connected_components "/root/repo/build/examples/connected_components" "--scale" "9" "--edge-factor" "4")
set_tests_properties(example_connected_components PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spmv "/root/repo/build/examples/spmv" "--scale" "8")
set_tests_properties(example_spmv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_async_broadcast "/root/repo/build/examples/async_broadcast" "--samples" "2000")
set_tests_properties(example_async_broadcast PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_graph500_traversal "/root/repo/build/examples/graph500_traversal" "--scale" "9" "--roots" "2")
set_tests_properties(example_graph500_traversal PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_word_frequency "/root/repo/build/examples/word_frequency" "--docs-per-rank" "200")
set_tests_properties(example_word_frequency PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pagerank "/root/repo/build/examples/pagerank" "--scale" "9" "--iters" "3")
set_tests_properties(example_pagerank PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kmer_count "/root/repo/build/examples/kmer_count" "--reads-per-rank" "100")
set_tests_properties(example_kmer_count PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_graph_analytics "/root/repo/build/examples/graph_analytics" "--scale" "9")
set_tests_properties(example_graph_analytics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
