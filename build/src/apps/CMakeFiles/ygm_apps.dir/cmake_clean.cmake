file(REMOVE_RECURSE
  "CMakeFiles/ygm_apps.dir/connected_components.cpp.o"
  "CMakeFiles/ygm_apps.dir/connected_components.cpp.o.d"
  "CMakeFiles/ygm_apps.dir/spmv.cpp.o"
  "CMakeFiles/ygm_apps.dir/spmv.cpp.o.d"
  "libygm_apps.a"
  "libygm_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ygm_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
