file(REMOVE_RECURSE
  "libygm_apps.a"
)
