# Empty dependencies file for ygm_apps.
# This may be replaced when dependencies are built.
