
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/comm_world.cpp" "src/core/CMakeFiles/ygm_core.dir/comm_world.cpp.o" "gcc" "src/core/CMakeFiles/ygm_core.dir/comm_world.cpp.o.d"
  "/root/repo/src/core/termination.cpp" "src/core/CMakeFiles/ygm_core.dir/termination.cpp.o" "gcc" "src/core/CMakeFiles/ygm_core.dir/termination.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpisim/CMakeFiles/ygm_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/ygm_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ygm_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
