file(REMOVE_RECURSE
  "CMakeFiles/ygm_core.dir/comm_world.cpp.o"
  "CMakeFiles/ygm_core.dir/comm_world.cpp.o.d"
  "CMakeFiles/ygm_core.dir/termination.cpp.o"
  "CMakeFiles/ygm_core.dir/termination.cpp.o.d"
  "libygm_core.a"
  "libygm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ygm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
