file(REMOVE_RECURSE
  "libygm_core.a"
)
