# Empty compiler generated dependencies file for ygm_core.
# This may be replaced when dependencies are built.
