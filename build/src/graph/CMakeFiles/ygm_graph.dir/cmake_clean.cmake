file(REMOVE_RECURSE
  "CMakeFiles/ygm_graph.dir/degree_model.cpp.o"
  "CMakeFiles/ygm_graph.dir/degree_model.cpp.o.d"
  "CMakeFiles/ygm_graph.dir/delegates.cpp.o"
  "CMakeFiles/ygm_graph.dir/delegates.cpp.o.d"
  "CMakeFiles/ygm_graph.dir/rmat.cpp.o"
  "CMakeFiles/ygm_graph.dir/rmat.cpp.o.d"
  "libygm_graph.a"
  "libygm_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ygm_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
