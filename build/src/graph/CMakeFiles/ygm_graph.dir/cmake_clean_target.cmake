file(REMOVE_RECURSE
  "libygm_graph.a"
)
