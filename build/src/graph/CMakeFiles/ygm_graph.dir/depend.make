# Empty dependencies file for ygm_graph.
# This may be replaced when dependencies are built.
