file(REMOVE_RECURSE
  "CMakeFiles/ygm_linalg.dir/combblas_lite.cpp.o"
  "CMakeFiles/ygm_linalg.dir/combblas_lite.cpp.o.d"
  "CMakeFiles/ygm_linalg.dir/csc.cpp.o"
  "CMakeFiles/ygm_linalg.dir/csc.cpp.o.d"
  "libygm_linalg.a"
  "libygm_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ygm_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
