file(REMOVE_RECURSE
  "libygm_linalg.a"
)
