# Empty compiler generated dependencies file for ygm_linalg.
# This may be replaced when dependencies are built.
