
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpisim/comm.cpp" "src/mpisim/CMakeFiles/ygm_mpisim.dir/comm.cpp.o" "gcc" "src/mpisim/CMakeFiles/ygm_mpisim.dir/comm.cpp.o.d"
  "/root/repo/src/mpisim/mail_slot.cpp" "src/mpisim/CMakeFiles/ygm_mpisim.dir/mail_slot.cpp.o" "gcc" "src/mpisim/CMakeFiles/ygm_mpisim.dir/mail_slot.cpp.o.d"
  "/root/repo/src/mpisim/runtime.cpp" "src/mpisim/CMakeFiles/ygm_mpisim.dir/runtime.cpp.o" "gcc" "src/mpisim/CMakeFiles/ygm_mpisim.dir/runtime.cpp.o.d"
  "/root/repo/src/mpisim/world.cpp" "src/mpisim/CMakeFiles/ygm_mpisim.dir/world.cpp.o" "gcc" "src/mpisim/CMakeFiles/ygm_mpisim.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
