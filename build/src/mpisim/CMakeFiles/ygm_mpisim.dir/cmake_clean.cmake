file(REMOVE_RECURSE
  "CMakeFiles/ygm_mpisim.dir/comm.cpp.o"
  "CMakeFiles/ygm_mpisim.dir/comm.cpp.o.d"
  "CMakeFiles/ygm_mpisim.dir/mail_slot.cpp.o"
  "CMakeFiles/ygm_mpisim.dir/mail_slot.cpp.o.d"
  "CMakeFiles/ygm_mpisim.dir/runtime.cpp.o"
  "CMakeFiles/ygm_mpisim.dir/runtime.cpp.o.d"
  "CMakeFiles/ygm_mpisim.dir/world.cpp.o"
  "CMakeFiles/ygm_mpisim.dir/world.cpp.o.d"
  "libygm_mpisim.a"
  "libygm_mpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ygm_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
