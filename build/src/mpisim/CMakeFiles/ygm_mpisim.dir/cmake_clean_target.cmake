file(REMOVE_RECURSE
  "libygm_mpisim.a"
)
