# Empty dependencies file for ygm_mpisim.
# This may be replaced when dependencies are built.
