file(REMOVE_RECURSE
  "CMakeFiles/ygm_net.dir/evaluator.cpp.o"
  "CMakeFiles/ygm_net.dir/evaluator.cpp.o.d"
  "libygm_net.a"
  "libygm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ygm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
