file(REMOVE_RECURSE
  "libygm_net.a"
)
