# Empty compiler generated dependencies file for ygm_net.
# This may be replaced when dependencies are built.
