file(REMOVE_RECURSE
  "CMakeFiles/ygm_routing.dir/router.cpp.o"
  "CMakeFiles/ygm_routing.dir/router.cpp.o.d"
  "libygm_routing.a"
  "libygm_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ygm_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
