file(REMOVE_RECURSE
  "libygm_routing.a"
)
