# Empty dependencies file for ygm_routing.
# This may be replaced when dependencies are built.
