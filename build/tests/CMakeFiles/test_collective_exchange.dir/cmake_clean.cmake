file(REMOVE_RECURSE
  "CMakeFiles/test_collective_exchange.dir/test_collective_exchange.cpp.o"
  "CMakeFiles/test_collective_exchange.dir/test_collective_exchange.cpp.o.d"
  "test_collective_exchange"
  "test_collective_exchange.pdb"
  "test_collective_exchange[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collective_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
