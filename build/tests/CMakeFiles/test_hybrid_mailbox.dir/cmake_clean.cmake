file(REMOVE_RECURSE
  "CMakeFiles/test_hybrid_mailbox.dir/test_hybrid_mailbox.cpp.o"
  "CMakeFiles/test_hybrid_mailbox.dir/test_hybrid_mailbox.cpp.o.d"
  "test_hybrid_mailbox"
  "test_hybrid_mailbox.pdb"
  "test_hybrid_mailbox[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hybrid_mailbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
