# Empty dependencies file for test_hybrid_mailbox.
# This may be replaced when dependencies are built.
