# Empty dependencies file for test_kcore.
# This may be replaced when dependencies are built.
