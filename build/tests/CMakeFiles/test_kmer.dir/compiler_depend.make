# Empty compiler generated dependencies file for test_kmer.
# This may be replaced when dependencies are built.
