# Empty dependencies file for test_termination.
# This may be replaced when dependencies are built.
