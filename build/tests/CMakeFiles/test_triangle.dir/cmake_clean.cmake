file(REMOVE_RECURSE
  "CMakeFiles/test_triangle.dir/test_triangle.cpp.o"
  "CMakeFiles/test_triangle.dir/test_triangle.cpp.o.d"
  "test_triangle"
  "test_triangle.pdb"
  "test_triangle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_triangle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
