# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_ser[1]_include.cmake")
include("/root/repo/build/tests/test_mpisim[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_mailbox[1]_include.cmake")
include("/root/repo/build/tests/test_termination[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_containers[1]_include.cmake")
include("/root/repo/build/tests/test_traversal[1]_include.cmake")
include("/root/repo/build/tests/test_hybrid_mailbox[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_kmer[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_collective_exchange[1]_include.cmake")
include("/root/repo/build/tests/test_model_validation[1]_include.cmake")
include("/root/repo/build/tests/test_triangle[1]_include.cmake")
include("/root/repo/build/tests/test_kcore[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_virtual_time[1]_include.cmake")
