include(CMakeFindDependencyMacro)
find_dependency(Threads)
include("${CMAKE_CURRENT_LIST_DIR}/ygm_repro-targets.cmake")
