// Asynchronous broadcast demo: a replicated top-k tracker.
//
// Every rank streams random samples; whenever a sample makes it into the
// rank's view of the global top-k, the candidate is broadcast so all
// replicas converge — the paper's "lazy synchronization of replicated
// state" pattern (§I, §III-C) in its simplest form. Broadcast traffic rides
// the routing scheme's tree, so NodeRemote/NLNR spend only N-1 remote
// messages per broadcast where NodeLocal spends C*(N-1).
//
//   ./async_broadcast [--nodes 4] [--cores 4] [--k 8] [--samples 10000]
//                     [--scheme NodeRemote]
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/ygm.hpp"
#include "example_util.hpp"

namespace {

/// A bounded set of the k largest values seen.
class top_k {
 public:
  explicit top_k(std::size_t k) : k_(k) {}

  /// True if v entered the set (i.e. peers should hear about it).
  bool offer(std::uint64_t v) {
    if (values_.size() < k_) {
      return values_.insert(v).second;
    }
    if (v <= *values_.begin() || values_.count(v) != 0) return false;
    values_.erase(values_.begin());
    values_.insert(v);
    return true;
  }

  const std::set<std::uint64_t>& values() const noexcept { return values_; }

 private:
  std::size_t k_;
  std::set<std::uint64_t> values_;
};

}  // namespace

int main(int argc, char** argv) {
  const int nodes =
      static_cast<int>(ygm::examples::flag_int(argc, argv, "nodes", 4));
  const int cores =
      static_cast<int>(ygm::examples::flag_int(argc, argv, "cores", 4));
  const std::size_t k = static_cast<std::size_t>(
      ygm::examples::flag_int(argc, argv, "k", 8));
  const std::uint64_t samples = static_cast<std::uint64_t>(
      ygm::examples::flag_int(argc, argv, "samples", 10000));
  const auto scheme = ygm::examples::flag_scheme(
      argc, argv, ygm::routing::scheme_kind::node_remote);

  const ygm::routing::topology topo(nodes, cores);

  ygm::mpisim::run(topo.num_ranks(), [&](ygm::mpisim::comm& c) {
    ygm::core::comm_world world(c, topo, scheme);

    top_k best(k);
    ygm::core::mailbox<std::uint64_t>* mbp = nullptr;
    ygm::core::mailbox<std::uint64_t> mb(
        world,
        [&](const std::uint64_t& v) {
          // A candidate can cascade: if it improves this replica too, no
          // further broadcast is needed (the origin reached everyone), so
          // just fold it in.
          best.offer(v);
        });
    mbp = &mb;
    (void)mbp;

    ygm::xoshiro256 rng(2026 + static_cast<std::uint64_t>(c.rank()));
    std::uint64_t broadcasts = 0;
    for (std::uint64_t i = 0; i < samples; ++i) {
      const std::uint64_t sample = rng();
      if (best.offer(sample)) {
        mb.send_bcast(sample);
        ++broadcasts;
      }
    }
    mb.wait_empty();

    // Verify convergence: every replica must hold the same set.
    std::vector<std::uint64_t> mine(best.values().begin(),
                                    best.values().end());
    auto reference = mine;
    c.bcast(reference, 0);
    const bool agree = reference == mine;
    const auto all_agree =
        c.allreduce(static_cast<int>(agree), ygm::mpisim::op_land{});
    const auto total_bcasts = c.allreduce(broadcasts, ygm::mpisim::op_sum{});
    const auto remote_bytes =
        c.allreduce(mb.stats().remote_bytes, ygm::mpisim::op_sum{});

    if (c.rank() == 0) {
      std::cout << "async_broadcast: top-" << k << " over "
                << samples * static_cast<std::uint64_t>(c.size())
                << " samples on " << nodes << "x" << cores
                << " ranks, scheme " << ygm::routing::to_string(scheme)
                << "\n";
      std::cout << "  broadcasts issued " << total_bcasts << "\n";
      std::cout << "  wire traffic      "
                << ygm::format_bytes(static_cast<double>(remote_bytes))
                << " (scheme tree: "
                << world.route().bcast_remote_messages()
                << " remote msgs per bcast)\n";
      std::cout << "  replicas agree    " << (all_agree ? "yes" : "NO")
                << "\n";
      std::cout << "  global top-" << k << ":";
      for (auto v : mine) std::cout << ' ' << (v >> 48);
      std::cout << " (x 2^48)\n";
    }
  });
  return 0;
}
