// Connected components with delegates on an RMAT graph (paper §V-B).
//
// Shows the full delegate pipeline: count degrees with Algorithm 1, select
// hubs above a threshold, replicate them, and run label propagation with
// asynchronous broadcasts synchronizing the replicas.
//
//   ./connected_components [--nodes 2] [--cores 4] [--scale 12]
//                          [--edge-factor 8] [--threshold 64]
//                          [--scheme NLNR]
#include <cstdint>
#include <iostream>
#include <map>
#include <vector>

#include "apps/connected_components.hpp"
#include "apps/degree_count.hpp"
#include "core/ygm.hpp"
#include "example_util.hpp"
#include "graph/rmat.hpp"

int main(int argc, char** argv) {
  const int nodes =
      static_cast<int>(ygm::examples::flag_int(argc, argv, "nodes", 2));
  const int cores =
      static_cast<int>(ygm::examples::flag_int(argc, argv, "cores", 4));
  const int scale =
      static_cast<int>(ygm::examples::flag_int(argc, argv, "scale", 12));
  const std::uint64_t edge_factor = static_cast<std::uint64_t>(
      ygm::examples::flag_int(argc, argv, "edge-factor", 8));
  const std::uint64_t threshold = static_cast<std::uint64_t>(
      ygm::examples::flag_int(argc, argv, "threshold", 64));
  const auto scheme = ygm::examples::flag_scheme(
      argc, argv, ygm::routing::scheme_kind::nlnr);

  const ygm::routing::topology topo(nodes, cores);
  const std::uint64_t n = std::uint64_t{1} << scale;
  const std::uint64_t m = n * edge_factor;

  ygm::mpisim::run(topo.num_ranks(), [&](ygm::mpisim::comm& c) {
    ygm::core::comm_world world(c, topo, scheme);
    const ygm::graph::rmat_generator gen(
        scale, m, ygm::graph::rmat_params::graph500(), 7, c.rank(), c.size());

    // Phase 1: degrees (Algorithm 1) feed delegate selection.
    const auto degrees = ygm::apps::degree_count(world, gen);
    const ygm::graph::round_robin_partition part{c.size()};
    const auto delegates = ygm::graph::select_delegates(
        world, degrees.local_degrees, part, threshold);

    // Phase 2: label propagation with replica broadcasts.
    std::vector<ygm::graph::edge> mine;
    mine.reserve(gen.local_edge_count());
    gen.for_each([&](const ygm::graph::edge& e) { mine.push_back(e); });

    const double t0 = c.wtime();
    const auto cc = ygm::apps::connected_components(world, mine, n, delegates);
    const double wall = c.allreduce(c.wtime() - t0, ygm::mpisim::op_max{});

    // Count components: one per locally owned vertex that is its own label.
    std::uint64_t local_roots = 0;
    for (std::uint64_t i = 0; i < cc.local_labels.size(); ++i) {
      if (cc.local_labels[i] == part.global_id(c.rank(), i)) ++local_roots;
    }
    const auto components = c.allreduce(local_roots, ygm::mpisim::op_sum{});
    const auto broadcasts = c.allreduce(cc.broadcasts, ygm::mpisim::op_sum{});

    // Size of the giant component (vertices labelled with the global
    // minimum label).
    std::uint64_t local_giant = 0;
    std::uint64_t local_min = ~std::uint64_t{0};
    for (const auto l : cc.local_labels) local_min = std::min(local_min, l);
    const auto giant_label = c.allreduce(local_min, ygm::mpisim::op_min{});
    for (const auto l : cc.local_labels) {
      if (l == giant_label) ++local_giant;
    }
    const auto giant = c.allreduce(local_giant, ygm::mpisim::op_sum{});

    if (c.rank() == 0) {
      std::cout << "connected_components: RMAT scale " << scale << ", |E|="
                << m << " on " << nodes << "x" << cores << " ranks, scheme "
                << ygm::routing::to_string(scheme) << "\n";
      std::cout << "  delegates      " << delegates.size()
                << " (degree >= " << threshold << ")\n";
      std::cout << "  components     " << components << "\n";
      std::cout << "  giant size     " << giant << " vertices\n";
      std::cout << "  passes         " << cc.passes << "\n";
      std::cout << "  broadcasts     " << broadcasts << "\n";
      std::cout << "  wall time      " << wall << " s\n";
    }
  });
  return 0;
}
