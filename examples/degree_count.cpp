// Degree counting (paper Algorithm 1) on an Erdős–Rényi edge stream.
//
// Demonstrates the paper's minimal YGM application: every edge spawns two
// point-to-point messages; owners count. Prints per-scheme mailbox traffic
// so the coalescing effect of the routing schemes is visible.
//
//   ./degree_count [--nodes 4] [--cores 4] [--scale 14] [--edge-factor 16]
//                  [--scheme NodeRemote] [--capacity 4096]
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "apps/degree_count.hpp"
#include "common/units.hpp"
#include "core/ygm.hpp"
#include "example_util.hpp"
#include "graph/generators.hpp"

int main(int argc, char** argv) {
  const int nodes =
      static_cast<int>(ygm::examples::flag_int(argc, argv, "nodes", 4));
  const int cores =
      static_cast<int>(ygm::examples::flag_int(argc, argv, "cores", 4));
  const int scale =
      static_cast<int>(ygm::examples::flag_int(argc, argv, "scale", 14));
  const std::uint64_t edge_factor = static_cast<std::uint64_t>(
      ygm::examples::flag_int(argc, argv, "edge-factor", 16));
  const std::size_t capacity = static_cast<std::size_t>(
      ygm::examples::flag_int(argc, argv, "capacity", 4096));
  const auto scheme = ygm::examples::flag_scheme(
      argc, argv, ygm::routing::scheme_kind::node_remote);

  const ygm::routing::topology topo(nodes, cores);
  const std::uint64_t num_vertices = std::uint64_t{1} << scale;
  const std::uint64_t num_edges = num_vertices * edge_factor;

  ygm::mpisim::run(topo.num_ranks(), [&](ygm::mpisim::comm& c) {
    ygm::core::comm_world world(c, topo, scheme);
    const ygm::graph::erdos_renyi_generator gen(num_vertices, num_edges, 42,
                                                c.rank(), c.size());

    const double t0 = c.wtime();
    const auto res = ygm::apps::degree_count(world, gen, capacity);
    const double dt = c.wtime() - t0;

    // Aggregate outcomes.
    const std::uint64_t local_max =
        res.local_degrees.empty()
            ? 0
            : *std::max_element(res.local_degrees.begin(),
                                res.local_degrees.end());
    const auto global_max = c.allreduce(local_max, ygm::mpisim::op_max{});
    std::uint64_t local_sum = 0;
    for (auto d : res.local_degrees) local_sum += d;
    const auto degree_sum = c.allreduce(local_sum, ygm::mpisim::op_sum{});
    const auto remote_bytes =
        c.allreduce(res.stats.remote_bytes, ygm::mpisim::op_sum{});
    const auto remote_packets =
        c.allreduce(res.stats.remote_packets, ygm::mpisim::op_sum{});
    const auto wall = c.allreduce(dt, ygm::mpisim::op_max{});

    if (c.rank() == 0) {
      std::cout << "degree_count: |V|=2^" << scale << " |E|=" << num_edges
                << " on " << nodes << "x" << cores << " ranks, scheme "
                << ygm::routing::to_string(scheme) << "\n";
      std::cout << "  degree sum   " << degree_sum << " (= 2|E| = "
                << 2 * num_edges << ")\n";
      std::cout << "  max degree   " << global_max << "\n";
      std::cout << "  wall time    " << wall << " s\n";
      std::cout << "  wire traffic " << ygm::format_bytes(
                       static_cast<double>(remote_bytes))
                << " in " << remote_packets << " packets (avg "
                << ygm::format_bytes(remote_packets
                                         ? static_cast<double>(remote_bytes) /
                                               static_cast<double>(
                                                   remote_packets)
                                         : 0.0)
                << ")\n";
    }
  });
  return 0;
}
