// Tiny command-line helpers shared by the example programs.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "routing/router.hpp"

namespace ygm::examples {

/// Value of "--name value" (or "--name=value"), else fallback.
inline std::string flag(int argc, char** argv, const std::string& name,
                        const std::string& fallback) {
  const std::string key = "--" + name;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == key && i + 1 < argc) return argv[i + 1];
    if (arg.rfind(key + "=", 0) == 0) return arg.substr(key.size() + 1);
  }
  return fallback;
}

inline std::int64_t flag_int(int argc, char** argv, const std::string& name,
                             std::int64_t fallback) {
  const auto v = flag(argc, argv, name, "");
  return v.empty() ? fallback : std::stoll(v);
}

/// Parse a routing scheme name ("NoRoute", "NodeLocal", "NodeRemote",
/// "NLNR"), case-sensitive, defaulting on unknown input.
inline routing::scheme_kind flag_scheme(int argc, char** argv,
                                        routing::scheme_kind fallback) {
  const auto v = flag(argc, argv, "scheme", "");
  for (auto k : routing::all_schemes) {
    if (v == routing::to_string(k)) return k;
  }
  if (!v.empty()) {
    std::cerr << "unknown --scheme '" << v << "', using "
              << routing::to_string(fallback) << "\n";
  }
  return fallback;
}

}  // namespace ygm::examples
