// Graph500-style traversal runs: BFS and SSSP kernels over an RMAT graph,
// reporting TEPS (traversed edges per second) with the harmonic mean over
// roots, as the benchmark specifies. The paper cites YGM carrying LLNL's
// Graph500 submission on Sierra (§I); this example is that workload in
// miniature.
//
//   ./graph500_traversal [--nodes 2] [--cores 4] [--scale 12]
//                        [--edge-factor 16] [--roots 4] [--scheme NLNR]
#include <cstdint>
#include <iostream>
#include <vector>

#include "apps/bfs.hpp"
#include "apps/sssp.hpp"
#include "common/units.hpp"
#include "core/ygm.hpp"
#include "example_util.hpp"
#include "graph/rmat.hpp"

int main(int argc, char** argv) {
  const int nodes =
      static_cast<int>(ygm::examples::flag_int(argc, argv, "nodes", 2));
  const int cores =
      static_cast<int>(ygm::examples::flag_int(argc, argv, "cores", 4));
  const int scale =
      static_cast<int>(ygm::examples::flag_int(argc, argv, "scale", 12));
  const std::uint64_t edge_factor = static_cast<std::uint64_t>(
      ygm::examples::flag_int(argc, argv, "edge-factor", 16));
  const int nroots =
      static_cast<int>(ygm::examples::flag_int(argc, argv, "roots", 4));
  const auto scheme = ygm::examples::flag_scheme(
      argc, argv, ygm::routing::scheme_kind::nlnr);

  const ygm::routing::topology topo(nodes, cores);
  const std::uint64_t n = std::uint64_t{1} << scale;
  const std::uint64_t m = n * edge_factor;

  ygm::mpisim::run(topo.num_ranks(), [&](ygm::mpisim::comm& c) {
    ygm::core::comm_world world(c, topo, scheme);
    const ygm::graph::rmat_generator gen(
        scale, m, ygm::graph::rmat_params::graph500(), 2026, c.rank(),
        c.size());
    std::vector<ygm::graph::edge> mine;
    mine.reserve(gen.local_edge_count());
    gen.for_each([&](const ygm::graph::edge& e) { mine.push_back(e); });

    // Kernel 1 equivalent: build the distributed graph once.
    const double tb0 = c.wtime();
    const ygm::apps::local_adjacency adj(world, mine, n, /*weighted=*/true);
    const double build = c.allreduce(c.wtime() - tb0, ygm::mpisim::op_max{});

    // Roots: deterministic pseudo-random vertices (skip isolated ones by
    // retrying with the scramble).
    double bfs_inv_teps = 0;
    double sssp_inv_teps = 0;
    std::uint64_t reached_total = 0;
    for (int r = 0; r < nroots; ++r) {
      const ygm::graph::vertex_id root =
          ygm::splitmix64(0xabc0 + static_cast<std::uint64_t>(r)) % n;

      double t0 = c.wtime();
      const auto b = ygm::apps::bfs(world, adj, root);
      const double bfs_wall =
          c.allreduce(c.wtime() - t0, ygm::mpisim::op_max{});

      t0 = c.wtime();
      const auto s = ygm::apps::sssp(world, adj, root);
      const double sssp_wall =
          c.allreduce(c.wtime() - t0, ygm::mpisim::op_max{});

      // Traversed edges: degree sum of reached vertices / 2 approximated by
      // counting relaxation fan-out; Graph500 counts input edges within the
      // reached component.
      std::uint64_t reached = 0;
      for (const auto l : b.local_levels) {
        if (l != ygm::apps::bfs_unreached) ++reached;
      }
      reached = c.allreduce(reached, ygm::mpisim::op_sum{});
      reached_total += reached;
      const double traversed =
          static_cast<double>(m) * (static_cast<double>(reached) /
                                    static_cast<double>(n));
      bfs_inv_teps += bfs_wall / traversed;
      sssp_inv_teps += sssp_wall / traversed;

      if (c.rank() == 0) {
        std::cout << "  root " << root << ": reached " << reached
                  << " vertices, BFS " << bfs_wall << " s, SSSP "
                  << sssp_wall << " s\n";
      }
    }

    if (c.rank() == 0) {
      std::cout << "graph500_traversal: RMAT scale " << scale << " |E|=" << m
                << " on " << nodes << "x" << cores << " ranks, scheme "
                << ygm::routing::to_string(scheme) << "\n";
      std::cout << "  graph build   " << build << " s\n";
      std::cout << "  harmonic-mean BFS  TEPS "
                << ygm::format_count(nroots / bfs_inv_teps) << "\n";
      std::cout << "  harmonic-mean SSSP TEPS "
                << ygm::format_count(nroots / sssp_inv_teps) << "\n";
    }
  });
  return 0;
}
