// Graph-analytics tour: one RMAT graph, five kernels, one communication
// layer. Runs degree statistics (Algorithm 1), connected components (both
// the paper's label propagation and the disjoint-set alternative it
// suggests), triangle counting, and k-core decomposition over the same
// comm_world — the HavoqGT-style workload mix the paper positions YGM
// under (§I).
//
//   ./graph_analytics [--nodes 2] [--cores 4] [--scale 11] [--edge-factor 8]
//                     [--k 4] [--scheme NLNR]
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "apps/cc_disjoint_set.hpp"
#include "apps/connected_components.hpp"
#include "apps/degree_count.hpp"
#include "apps/kcore.hpp"
#include "apps/triangle_count.hpp"
#include "core/ygm.hpp"
#include "example_util.hpp"
#include "graph/rmat.hpp"

int main(int argc, char** argv) {
  const int nodes =
      static_cast<int>(ygm::examples::flag_int(argc, argv, "nodes", 2));
  const int cores =
      static_cast<int>(ygm::examples::flag_int(argc, argv, "cores", 4));
  const int scale =
      static_cast<int>(ygm::examples::flag_int(argc, argv, "scale", 11));
  const std::uint64_t edge_factor = static_cast<std::uint64_t>(
      ygm::examples::flag_int(argc, argv, "edge-factor", 8));
  const std::uint64_t k = static_cast<std::uint64_t>(
      ygm::examples::flag_int(argc, argv, "k", 4));
  const auto scheme = ygm::examples::flag_scheme(
      argc, argv, ygm::routing::scheme_kind::nlnr);

  const ygm::routing::topology topo(nodes, cores);
  const std::uint64_t n = std::uint64_t{1} << scale;
  const std::uint64_t m = n * edge_factor;

  ygm::mpisim::run(topo.num_ranks(), [&](ygm::mpisim::comm& c) {
    ygm::core::comm_world world(c, topo, scheme);
    const ygm::graph::rmat_generator gen(
        scale, m, ygm::graph::rmat_params::graph500(), 606, c.rank(),
        c.size());
    std::vector<ygm::graph::edge> mine;
    mine.reserve(gen.local_edge_count());
    gen.for_each([&](const ygm::graph::edge& e) { mine.push_back(e); });

    // 1. Degrees (Algorithm 1).
    double t0 = c.wtime();
    const auto deg = ygm::apps::degree_count(world, gen);
    const double t_deg = c.allreduce(c.wtime() - t0, ygm::mpisim::op_max{});
    const std::uint64_t local_max =
        deg.local_degrees.empty()
            ? 0
            : *std::max_element(deg.local_degrees.begin(),
                                deg.local_degrees.end());
    const auto max_degree = c.allreduce(local_max, ygm::mpisim::op_max{});

    // 2a. Connected components, label propagation (no delegates here;
    //     see the connected_components example for the delegate pipeline).
    t0 = c.wtime();
    const auto cc = ygm::apps::connected_components(world, mine, n, {});
    const double t_cc = c.allreduce(c.wtime() - t0, ygm::mpisim::op_max{});

    // 2b. Connected components, disjoint-set (Shiloach-Vishkin style).
    t0 = c.wtime();
    const auto ds = ygm::apps::connected_components_disjoint_set(world, mine, n);
    const double t_ds = c.allreduce(c.wtime() - t0, ygm::mpisim::op_max{});
    bool agree = cc.local_labels == ds.local_labels;
    agree = c.allreduce(static_cast<int>(agree), ygm::mpisim::op_land{}) != 0;

    // 3. Triangles.
    t0 = c.wtime();
    const auto tri = ygm::apps::triangle_count(world, mine, n);
    const double t_tri = c.allreduce(c.wtime() - t0, ygm::mpisim::op_max{});

    // 4. k-core.
    const ygm::apps::local_adjacency adj(world, mine, n, /*weighted=*/false);
    t0 = c.wtime();
    const auto core = ygm::apps::k_core(world, adj, k);
    const double t_core = c.allreduce(c.wtime() - t0, ygm::mpisim::op_max{});

    if (c.rank() == 0) {
      std::cout << "graph_analytics: RMAT scale " << scale << " |E|=" << m
                << " on " << nodes << "x" << cores << " ranks, scheme "
                << ygm::routing::to_string(scheme) << "\n";
      std::cout << "  max degree       " << max_degree << "  (" << t_deg
                << " s)\n";
      std::cout << "  components (LP)  " << "passes=" << cc.passes << "  ("
                << t_cc << " s)\n";
      std::cout << "  components (DS)  " << ds.components << "  (" << t_ds
                << " s)  labels agree: " << (agree ? "yes" : "NO") << "\n";
      std::cout << "  triangles        " << tri.triangles << " from "
                << tri.wedges_checked << " wedges  (" << t_tri << " s)\n";
      std::cout << "  " << k << "-core size      " << core.survivors
                << " vertices, " << core.removal_messages
                << " cascade msgs  (" << t_core << " s)\n";
    }
  });
  return 0;
}
