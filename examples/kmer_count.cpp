// Frequent k-mer counting over synthetic DNA reads — the HipMer/Meraculous
// genome-assembly workload the paper identifies as a natural YGM
// application (§II). A known motif is planted into the reads so the run
// has a verifiable answer.
//
//   ./kmer_count [--nodes 2] [--cores 4] [--reads-per-rank 400] [--k 21]
//                [--scheme NodeRemote]
#include <cstdint>
#include <iostream>
#include <string>

#include "apps/kmer_count.hpp"
#include "core/ygm.hpp"
#include "example_util.hpp"

int main(int argc, char** argv) {
  const int nodes =
      static_cast<int>(ygm::examples::flag_int(argc, argv, "nodes", 2));
  const int cores =
      static_cast<int>(ygm::examples::flag_int(argc, argv, "cores", 4));
  const int reads = static_cast<int>(
      ygm::examples::flag_int(argc, argv, "reads-per-rank", 400));
  const int k = static_cast<int>(ygm::examples::flag_int(argc, argv, "k", 21));
  const auto scheme = ygm::examples::flag_scheme(
      argc, argv, ygm::routing::scheme_kind::node_remote);

  // The motif every rank plants into every 8th read.
  const std::string motif = "ACGTACGTTTAGGCCAGGTAC";

  const ygm::routing::topology topo(nodes, cores);
  ygm::mpisim::run(topo.num_ranks(), [&](ygm::mpisim::comm& c) {
    ygm::core::comm_world world(c, topo, scheme);

    const auto my_reads = ygm::apps::synthetic_reads(
        c.rank(), reads, /*read_length=*/120, /*seed=*/777, motif,
        /*plant_every=*/8);

    const double t0 = c.wtime();
    const auto res = ygm::apps::count_kmers(world, my_reads, k,
                                            /*min_count=*/50);
    const double wall = c.allreduce(c.wtime() - t0, ygm::mpisim::op_max{});

    if (c.rank() == 0) {
      std::cout << "kmer_count: " << reads << " reads/rank x "
                << topo.num_ranks() << " ranks, k=" << k << ", scheme "
                << ygm::routing::to_string(scheme) << "\n";
      std::cout << "  k-mer instances " << res.total_kmers << ", distinct "
                << res.distinct_kmers << "\n";
      std::cout << "  wall time       " << wall << " s\n";
      std::cout << "  frequent k-mers (>=50 occurrences):\n";
      for (const auto& [kmer, count] : res.frequent) {
        std::cout << "    " << ygm::apps::unpack_kmer(kmer, k) << "  x"
                  << count << "\n";
      }
      const auto planted = ygm::apps::canonical_kmer(
          ygm::apps::pack_kmer(std::string_view(motif).substr(
              0, static_cast<std::size_t>(k))),
          k);
      bool found = false;
      for (const auto& [kmer, count] : res.frequent) {
        found = found || kmer == planted;
      }
      std::cout << "  planted motif found: " << (found ? "yes" : "NO")
                << "\n";
    }
  });
  return 0;
}
