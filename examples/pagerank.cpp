// PageRank by power iteration over the distributed SpMV — a taste of the
// "GraphBLAS on top of YGM" direction the paper names as future work
// (§VII): the graph kernel is just y = A^T x with a rank-normalizing
// update, and the delegate machinery absorbs the hub columns of the
// scale-free web-like graph.
//
//   ./pagerank [--nodes 2] [--cores 4] [--scale 11] [--edge-factor 8]
//              [--iters 10] [--threshold 64] [--scheme NodeRemote]
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "apps/degree_count.hpp"
#include "apps/spmv.hpp"
#include "core/ygm.hpp"
#include "example_util.hpp"
#include "graph/rmat.hpp"

int main(int argc, char** argv) {
  const int nodes =
      static_cast<int>(ygm::examples::flag_int(argc, argv, "nodes", 2));
  const int cores =
      static_cast<int>(ygm::examples::flag_int(argc, argv, "cores", 4));
  const int scale =
      static_cast<int>(ygm::examples::flag_int(argc, argv, "scale", 11));
  const std::uint64_t edge_factor = static_cast<std::uint64_t>(
      ygm::examples::flag_int(argc, argv, "edge-factor", 8));
  const int iters =
      static_cast<int>(ygm::examples::flag_int(argc, argv, "iters", 10));
  const std::uint64_t threshold = static_cast<std::uint64_t>(
      ygm::examples::flag_int(argc, argv, "threshold", 64));
  const auto scheme = ygm::examples::flag_scheme(
      argc, argv, ygm::routing::scheme_kind::node_remote);
  constexpr double kDamping = 0.85;

  const ygm::routing::topology topo(nodes, cores);
  const std::uint64_t n = std::uint64_t{1} << scale;
  const std::uint64_t m = n * edge_factor;

  ygm::mpisim::run(topo.num_ranks(), [&](ygm::mpisim::comm& c) {
    ygm::core::comm_world world(c, topo, scheme);
    const ygm::graph::round_robin_partition part{c.size()};
    const ygm::graph::rmat_generator gen(
        scale, m, ygm::graph::rmat_params::webgraph_like(), 404, c.rank(),
        c.size());

    // Column-stochastic link matrix: A[i][j] = 1/outdeg(j) for j -> i.
    // Out-degrees first (Algorithm 1 over the directed source endpoints).
    std::vector<std::uint64_t> outdeg(part.local_count(c.rank(), n), 0);
    {
      ygm::core::mailbox<ygm::graph::vertex_id> mb(
          world, [&](const ygm::graph::vertex_id& v) {
            ++outdeg[part.local_index(v)];
          });
      gen.for_each(
          [&](const ygm::graph::edge& e) { mb.send(part.owner(e.src), e.src); });
      mb.wait_empty();
    }
    // Ship each rank its columns' out-degrees on demand: simplest is a
    // second pass where the column owner normalizes, so build triplets
    // with weight 1 and divide by outdeg at the owner after ingestion —
    // here we instead route (j -> owner(j)) and let owner emit normalized
    // triplets, which dist_spmv then redistributes.
    std::vector<ygm::linalg::triplet> mine;
    {
      ygm::core::mailbox<ygm::graph::edge> mb(
          world, [&](const ygm::graph::edge& e) {
            const auto d = outdeg[part.local_index(e.src)];
            mine.push_back({e.dst, e.src, d > 0 ? 1.0 / static_cast<double>(d)
                                                : 0.0});
          });
      gen.for_each([&](const ygm::graph::edge& e) {
        mb.send(part.owner(e.src), e);
      });
      mb.wait_empty();
    }

    // Delegate the heavy columns (hub pages).
    const auto delegates =
        ygm::graph::select_delegates(world, outdeg, part, threshold);
    ygm::apps::dist_spmv A(world, n, mine, delegates);

    // Power iteration: x <- (1-d)/n + d * A x.
    std::vector<double> x(part.local_count(c.rank(), n),
                          1.0 / static_cast<double>(n));
    const double t0 = c.wtime();
    double delta = 0;
    for (int it = 0; it < iters; ++it) {
      const auto y = A.multiply(x);
      delta = 0;
      for (std::uint64_t j = 0; j < x.size(); ++j) {
        const double next =
            (1.0 - kDamping) / static_cast<double>(n) +
            kDamping * y.local_y[j];
        delta += std::abs(next - x[j]);
        x[j] = next;
      }
      delta = c.allreduce(delta, ygm::mpisim::op_sum{});
    }
    const double wall = c.allreduce(c.wtime() - t0, ygm::mpisim::op_max{});

    // Report: total mass (should approach 1 as dangling mass is small) and
    // the largest rank value.
    double mass = 0;
    double local_max = 0;
    for (const auto v : x) {
      mass += v;
      local_max = std::max(local_max, v);
    }
    mass = c.allreduce(mass, ygm::mpisim::op_sum{});
    const auto top = c.allreduce(local_max, ygm::mpisim::op_max{});

    if (c.rank() == 0) {
      std::cout << "pagerank: webgraph-like RMAT scale " << scale
                << " |E|=" << m << " on " << nodes << "x" << cores
                << " ranks, scheme " << ygm::routing::to_string(scheme)
                << "\n";
      std::cout << "  delegated hubs " << delegates.size() << "\n";
      std::cout << "  iterations     " << iters << " (final |dx| = " << delta
                << ")\n";
      std::cout << "  rank mass      " << mass << "\n";
      std::cout << "  max pagerank   " << top << " (" << top * n
                << "x uniform)\n";
      std::cout << "  wall time      " << wall << " s\n";
    }
  });
  return 0;
}
