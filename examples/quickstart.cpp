// Quickstart: the smallest complete YGM program.
//
// A distributed word-count: every rank holds a shard of a text corpus and
// mails each word to the rank that owns it (hash partitioning); owners count
// occurrences in their receive callback. One wait_empty() finishes the job —
// no barriers, no alltoall, no rank ever waits on ranks it doesn't talk to.
//
//   ./quickstart [--ranks 8] [--cores 4] [--scheme NLNR]
#include <cstdint>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/ygm.hpp"
#include "example_util.hpp"

namespace {

// A toy corpus, sharded round-robin by line.
const char* kCorpus[] = {
    "the quick brown fox jumps over the lazy dog",
    "you have got mail said the mailbox to the rank",
    "the rank sent the mail through the quick mailbox",
    "lazy ranks wait on barriers quick ranks use mailboxes",
    "the fox and the dog read the mail together",
    "asynchronous mail beats synchronous barriers every time",
    "got mail got mail got mail said every rank at once",
    "the mailbox routes the mail along local and remote hops",
};

}  // namespace

int main(int argc, char** argv) {
  const int ranks = static_cast<int>(
      ygm::examples::flag_int(argc, argv, "ranks", 8));
  const int cores = static_cast<int>(
      ygm::examples::flag_int(argc, argv, "cores", 4));
  const auto scheme = ygm::examples::flag_scheme(
      argc, argv, ygm::routing::scheme_kind::nlnr);

  if (ranks % cores != 0) {
    std::cerr << "--ranks must be a multiple of --cores\n";
    return 1;
  }

  ygm::mpisim::run(ranks, [&](ygm::mpisim::comm& c) {
    // 1. Describe the machine: ranks laid out as (nodes x cores), with one
    //    routing scheme shared by every mailbox on this world.
    ygm::core::comm_world world(c, cores, scheme);

    // 2. Create a mailbox by declaring what happens when a message arrives.
    std::map<std::string, std::uint64_t> counts;
    ygm::core::mailbox<std::string> mb(
        world, [&](const std::string& word) { ++counts[word]; });

    // 3. Send messages whenever computation produces them.
    for (std::size_t line = 0; line < std::size(kCorpus); ++line) {
      if (static_cast<int>(line % static_cast<std::size_t>(c.size())) !=
          c.rank()) {
        continue;
      }
      std::istringstream words(kCorpus[line]);
      std::string word;
      while (words >> word) {
        const int owner = static_cast<int>(
            ygm::splitmix64(std::hash<std::string>{}(word)) %
            static_cast<std::uint64_t>(c.size()));
        mb.send(owner, word);
      }
    }

    // 4. One collective call drains everything, including the routing
    //    intermediaries between other ranks.
    mb.wait_empty();

    // Report: rank 0 gathers per-rank top words for a tidy printout.
    std::ostringstream local;
    for (const auto& [word, n] : counts) {
      if (n >= 3) local << "    " << word << ": " << n << "\n";
    }
    const auto reports = c.gather(local.str(), 0);
    if (c.rank() == 0) {
      std::cout << "quickstart: " << ranks << " ranks as " << ranks / cores
                << " nodes x " << cores << " cores, scheme "
                << ygm::routing::to_string(scheme) << "\n";
      std::cout << "words seen at least 3 times (by owning rank):\n";
      for (int r = 0; r < c.size(); ++r) {
        if (!reports[static_cast<std::size_t>(r)].empty()) {
          std::cout << "  rank " << r << ":\n"
                    << reports[static_cast<std::size_t>(r)];
        }
      }
    }
  });
  return 0;
}
