// Sparse matrix-vector product (paper Algorithm 2), verified against both
// the serial oracle and the CombBLAS-lite 2D baseline.
//
//   ./spmv [--grid 2] [--cores 2] [--scale 10] [--edge-factor 8]
//          [--threshold 32] [--scheme NodeRemote]
//
// The rank count is grid*grid (CombBLAS-lite needs a square grid) and must
// be a multiple of --cores.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "apps/spmv.hpp"
#include "core/ygm.hpp"
#include "example_util.hpp"
#include "graph/rmat.hpp"
#include "linalg/combblas_lite.hpp"

int main(int argc, char** argv) {
  const int grid =
      static_cast<int>(ygm::examples::flag_int(argc, argv, "grid", 2));
  const int cores =
      static_cast<int>(ygm::examples::flag_int(argc, argv, "cores", 2));
  const int scale =
      static_cast<int>(ygm::examples::flag_int(argc, argv, "scale", 10));
  const std::uint64_t edge_factor = static_cast<std::uint64_t>(
      ygm::examples::flag_int(argc, argv, "edge-factor", 8));
  const std::uint64_t threshold = static_cast<std::uint64_t>(
      ygm::examples::flag_int(argc, argv, "threshold", 32));
  const auto scheme = ygm::examples::flag_scheme(
      argc, argv, ygm::routing::scheme_kind::node_remote);

  const int ranks = grid * grid;
  if (ranks % cores != 0) {
    std::cerr << "grid*grid must be a multiple of --cores\n";
    return 1;
  }
  const std::uint64_t n = std::uint64_t{1} << scale;
  const std::uint64_t nnz = n * edge_factor;

  ygm::mpisim::run(ranks, [&](ygm::mpisim::comm& c) {
    ygm::core::comm_world world(c, cores, scheme);
    const ygm::graph::round_robin_partition part{c.size()};

    // Matrix from an RMAT edge stream; x_i = sin(i) so any index error
    // shows up in the values.
    const ygm::graph::rmat_generator gen(
        scale, nnz, ygm::graph::rmat_params::graph500(), 99, c.rank(),
        c.size());
    std::vector<ygm::linalg::triplet> mine;
    std::vector<std::uint64_t> col_degrees(part.local_count(c.rank(), n), 0);
    gen.for_each([&](const ygm::graph::edge& e) {
      mine.push_back({e.src, e.dst, 1.0 + static_cast<double>(e.src % 3)});
    });

    // Delegate the heavy columns (count column occupancy via Algorithm 1
    // style messages folded into a tiny mailbox).
    ygm::core::mailbox<std::uint64_t> degree_mb(
        world, [&](const std::uint64_t& v) {
          ++col_degrees[part.local_index(v)];
        });
    for (const auto& t : mine) degree_mb.send(part.owner(t.col), t.col);
    degree_mb.wait_empty();
    const auto delegates =
        ygm::graph::select_delegates(world, col_degrees, part, threshold);

    ygm::apps::dist_spmv A(world, n, mine, delegates);
    std::vector<double> x_local(part.local_count(c.rank(), n));
    for (std::uint64_t i = 0; i < x_local.size(); ++i) {
      x_local[i] =
          std::sin(static_cast<double>(part.global_id(c.rank(), i)));
    }

    double t0 = c.wtime();
    const auto res = A.multiply(x_local);
    const auto ygm_wall = c.allreduce(c.wtime() - t0, ygm::mpisim::op_max{});

    // CombBLAS-lite on the same matrix and vector.
    ygm::linalg::combblas_lite B(c, n, mine);
    std::vector<double> x_block(B.block_size(B.grid_col()), 0.0);
    if (B.on_diagonal()) {
      for (std::uint64_t i = 0; i < x_block.size(); ++i) {
        x_block[i] = std::sin(
            static_cast<double>(B.block_begin(B.grid_col()) + i));
      }
    }
    t0 = c.wtime();
    const auto y_block = B.spmv(x_block);
    const auto cb_wall = c.allreduce(c.wtime() - t0, ygm::mpisim::op_max{});

    // Cross-check the two distributed results entry by entry.
    double max_diff = 0;
    if (B.on_diagonal()) {
      const std::uint64_t r0 = B.block_begin(B.grid_row());
      for (std::uint64_t i = 0; i < y_block.size(); ++i) {
        const std::uint64_t row = r0 + i;
        double ygm_value;
        if (delegates.contains(row)) {
          ygm_value = res.delegate_y[delegates.slot(row)];
        } else if (part.owner(row) == c.rank()) {
          ygm_value = res.local_y[part.local_index(row)];
        } else {
          continue;  // owned by another rank; checked there via symmetry
        }
        max_diff = std::max(max_diff, std::abs(ygm_value - y_block[i]));
      }
    }
    const auto diff = c.allreduce(max_diff, ygm::mpisim::op_max{});

    if (c.rank() == 0) {
      std::cout << "spmv: n=2^" << scale << " nnz=" << nnz << " on " << grid
                << "x" << grid << " ranks (" << cores
                << " cores/node), scheme " << ygm::routing::to_string(scheme)
                << "\n";
      std::cout << "  delegated columns " << delegates.size() << "\n";
      std::cout << "  YGM wall          " << ygm_wall << " s ("
                << res.stats.app_sends << " msgs from rank 0)\n";
      std::cout << "  CombBLAS-lite     " << cb_wall << " s\n";
      std::cout << "  max |YGM - 2D|    " << diff
                << (diff < 1e-9 ? "  (agree)" : "  (MISMATCH!)") << "\n";
    }
  });
  return 0;
}
