// Distributed containers showcase: stream synthetic documents through a
// counting_set (global word frequencies), keep per-word metadata in a
// distributed map, and collect outliers in a bag — three containers
// sharing one comm_world and one routing scheme, all riding YGM mailboxes.
//
//   ./word_frequency [--nodes 2] [--cores 4] [--docs-per-rank 2000]
//                    [--scheme NodeRemote]
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "containers/bag.hpp"
#include "containers/counting_set.hpp"
#include "containers/map.hpp"
#include "core/ygm.hpp"
#include "example_util.hpp"

namespace {

// A Zipf-ish synthetic vocabulary: word w is drawn with weight ~ 1/(w+1).
std::string sample_word(ygm::xoshiro256& rng) {
  static const char* kStems[] = {"mail",  "rank",   "node",  "core",
                                 "route", "packet", "async", "graph",
                                 "sparse", "vector"};
  const double u = rng.uniform();
  std::size_t w = 0;
  double mass = 0;
  constexpr double kTotal = 2.9289682539682538;  // H_10
  for (; w < 10; ++w) {
    mass += 1.0 / (static_cast<double>(w) + 1.0);
    if (u < mass / kTotal) break;
  }
  if (w >= 10) w = 9;
  return kStems[w];
}

}  // namespace

int main(int argc, char** argv) {
  const int nodes =
      static_cast<int>(ygm::examples::flag_int(argc, argv, "nodes", 2));
  const int cores =
      static_cast<int>(ygm::examples::flag_int(argc, argv, "cores", 4));
  const int docs = static_cast<int>(
      ygm::examples::flag_int(argc, argv, "docs-per-rank", 2000));
  const auto scheme = ygm::examples::flag_scheme(
      argc, argv, ygm::routing::scheme_kind::node_remote);

  const ygm::routing::topology topo(nodes, cores);
  ygm::mpisim::run(topo.num_ranks(), [&](ygm::mpisim::comm& c) {
    ygm::core::comm_world world(c, topo, scheme);

    ygm::container::counting_set<std::string> frequencies(world);
    ygm::container::map<std::string, std::uint64_t> first_seen(
        world,
        // Reducer keeps the earliest sighting.
        [](const std::uint64_t& a, const std::uint64_t& b) {
          return a < b ? a : b;
        });
    ygm::container::bag<std::string> rare_words(world);

    ygm::xoshiro256 rng(505 + static_cast<std::uint64_t>(c.rank()));
    for (int d = 0; d < docs; ++d) {
      const int words = 3 + static_cast<int>(rng.below(6));
      for (int i = 0; i < words; ++i) {
        const auto word = sample_word(rng);
        frequencies.async_insert(word);
        first_seen.async_reduce(
            word, static_cast<std::uint64_t>(c.rank()) * 1000000 +
                      static_cast<std::uint64_t>(d));
      }
    }
    frequencies.wait_empty();
    first_seen.wait_empty();

    // Second phase: file locally owned words below a global threshold into
    // the bag. global_total() is collective — compute it once, outside the
    // loop.
    const std::uint64_t rare_threshold = frequencies.global_total() / 100;
    for (const auto& [word, count] : frequencies.local_counts()) {
      if (count < rare_threshold) {
        rare_words.async_insert(word);
      }
    }
    rare_words.wait_empty();

    // All of these are collectives — compute them on every rank, then only
    // rank 0 prints.
    const auto top = frequencies.top_k(5);
    const auto total_words = frequencies.global_total();
    const auto distinct_words = frequencies.global_unique();
    const auto rare_count = rare_words.global_size();
    const auto map_size = first_seen.global_size();
    if (c.rank() == 0) {
      std::cout << "word_frequency: " << docs << " docs/rank on " << nodes
                << "x" << cores << " ranks, scheme "
                << ygm::routing::to_string(scheme) << "\n";
      std::cout << "  total words " << total_words << ", distinct "
                << distinct_words << "\n";
      std::cout << "  top 5:";
      for (const auto& [w, n] : top) std::cout << ' ' << w << '(' << n << ')';
      std::cout << "\n  rare words " << rare_count << "\n";
      std::cout << "  map size    " << map_size << "\n";
    }
  });
  return 0;
}
