// Asynchronous breadth-first search.
//
// The paper cites YGM's use in LLNL's Graph500 submission (§I), whose
// benchmark kernel is BFS. This is the natural YGM formulation: a level
// message (v, depth) improves v's level at its owner and cascades to v's
// neighbors — label-correcting rather than level-synchronous, so no
// barriers separate frontiers; wait_empty() detects when the cascade has
// died out. Vertices may be relabelled a few times while better paths race
// in, but the fixpoint is the true BFS level (it is unit-weight SSSP with
// monotone updates).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "apps/graph_ingest.hpp"
#include "core/comm_world.hpp"
#include "core/mailbox.hpp"
#include "core/stats.hpp"

namespace ygm::apps {

inline constexpr std::uint64_t bfs_unreached =
    std::numeric_limits<std::uint64_t>::max();

struct bfs_result {
  /// levels[j] = BFS depth of the vertex with local index j, or
  /// bfs_unreached.
  std::vector<std::uint64_t> local_levels;
  std::uint64_t relaxations = 0;  ///< level-improvement events on this rank
  core::mailbox_stats stats;
};

/// Collective BFS from `root` over a prebuilt adjacency.
bfs_result inline bfs(core::comm_world& world, const local_adjacency& adj,
                      graph::vertex_id root,
                      std::size_t mailbox_capacity =
                          core::default_mailbox_capacity) {
  const auto& part = adj.partition();
  bfs_result out;
  out.local_levels.assign(adj.local_vertex_count(), bfs_unreached);

  struct level_msg {
    graph::vertex_id v = 0;
    std::uint64_t level = 0;
  };

  core::mailbox<level_msg>* mbp = nullptr;
  core::mailbox<level_msg> mb(
      world,
      [&](const level_msg& m) {
        const std::uint64_t j = part.local_index(m.v);
        if (m.level < out.local_levels[j]) {
          out.local_levels[j] = m.level;
          ++out.relaxations;
          for (const auto& nb : adj.neighbors(j)) {
            mbp->send(part.owner(nb.id), level_msg{nb.id, m.level + 1});
          }
        }
      },
      mailbox_capacity);
  mbp = &mb;

  if (part.owner(root) == world.rank()) {
    mb.send(world.rank(), level_msg{root, 0});
  }
  mb.wait_empty();

  out.stats = mb.stats();
  return out;
}

/// Serial oracle (test support): BFS levels over a full edge list.
std::vector<std::uint64_t> inline bfs_reference(
    graph::vertex_id num_vertices, const std::vector<graph::edge>& edges,
    graph::vertex_id root) {
  std::vector<std::vector<graph::vertex_id>> adj(num_vertices);
  for (const auto& e : edges) {
    adj[e.src].push_back(e.dst);
    adj[e.dst].push_back(e.src);
  }
  std::vector<std::uint64_t> level(num_vertices, bfs_unreached);
  std::vector<graph::vertex_id> frontier{root};
  level[root] = 0;
  while (!frontier.empty()) {
    std::vector<graph::vertex_id> next;
    for (const auto v : frontier) {
      for (const auto u : adj[v]) {
        if (level[u] == bfs_unreached) {
          level[u] = level[v] + 1;
          next.push_back(u);
        }
      }
    }
    frontier = std::move(next);
  }
  return level;
}

}  // namespace ygm::apps
