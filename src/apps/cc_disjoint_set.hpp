// Connected components via the distributed disjoint_set container —
// the Shiloach-Vishkin-style alternative the paper points at (§V-B:
// "a Shiloach-Vishkin implementation could be implemented using YGM").
// One async_union per edge plus a pointer-jumping compression replaces
// O(diam G) whole-graph passes; tests cross-check it against both the
// label-propagation implementation and the serial union-find oracle.
#pragma once

#include <cstdint>
#include <vector>

#include "containers/disjoint_set.hpp"
#include "core/comm_world.hpp"
#include "core/stats.hpp"
#include "graph/edge.hpp"

namespace ygm::apps {

struct cc_ds_result {
  /// labels[j] = component label (minimum member id) of the vertex with
  /// local index j.
  std::vector<std::uint64_t> local_labels;
  std::uint64_t components = 0;
  core::mailbox_stats stats;  ///< union-plane traffic
};

cc_ds_result inline connected_components_disjoint_set(
    core::comm_world& world, const std::vector<graph::edge>& local_edges,
    graph::vertex_id num_vertices,
    std::size_t mailbox_capacity = core::default_mailbox_capacity) {
  container::disjoint_set ds(world, num_vertices, mailbox_capacity);
  for (const auto& e : local_edges) {
    ds.async_union(e.src, e.dst);
  }
  ds.wait_empty();
  ds.compress();

  cc_ds_result out;
  out.local_labels = ds.local_parents();
  out.components = ds.num_sets();
  out.stats = ds.stats();
  return out;
}

}  // namespace ygm::apps
