#include "apps/connected_components.hpp"

#include <numeric>
#include <utility>

#include "common/assert.hpp"
#include "core/mailbox.hpp"
#include "mpisim/ops.hpp"

namespace ygm::apps {

namespace {

using graph::vertex_id;

/// One direction of a stored edge after ingestion, in the four locality
/// classes delegates induce.
struct edge_store {
  // (owned u, any v): push label(u) to owner(v) each pass.
  struct plain {
    std::uint64_t lidx_u;
    vertex_id v;
  };
  // (owned u, delegate v): fold label(u) into the local replica of v.
  struct to_delegate {
    std::uint64_t lidx_u;
    std::uint64_t slot_v;
  };
  // (delegate u, owned v): fold the local replica of u into label(v).
  struct from_delegate {
    std::uint64_t slot_u;
    std::uint64_t lidx_v;
  };
  // (delegate u, delegate v): replica-to-replica, stored where generated.
  struct deleg_deleg {
    std::uint64_t slot_u;
    std::uint64_t slot_v;
  };

  std::vector<plain> plain_edges;
  std::vector<to_delegate> to_delegates;
  std::vector<from_delegate> from_delegates;
  std::vector<deleg_deleg> dd_edges;
};

struct label_msg {
  vertex_id v = 0;
  vertex_id label = 0;
};

struct delegate_msg {
  std::uint64_t slot = 0;
  vertex_id label = 0;
};

}  // namespace

cc_result connected_components(core::comm_world& world,
                               const std::vector<graph::edge>& local_edges,
                               vertex_id num_vertices,
                               const graph::delegate_set& delegates,
                               std::size_t mailbox_capacity) {
  const graph::round_robin_partition part{world.size()};
  cc_result out;

  // ------------------------------------------------------------- state
  const std::uint64_t nlocal = part.local_count(world.rank(), num_vertices);
  out.local_labels.resize(nlocal);
  for (std::uint64_t i = 0; i < nlocal; ++i) {
    out.local_labels[i] = part.global_id(world.rank(), i);
  }
  out.delegate_labels = delegates.ids();  // replica label = own id initially

  auto& labels = out.local_labels;
  auto& dlabels = out.delegate_labels;

  // ---------------------------------------------------------- ingestion
  edge_store store;
  const auto classify = [&](vertex_id u, vertex_id v) {
    const bool udel = delegates.contains(u);
    const bool vdel = delegates.contains(v);
    if (udel && vdel) {
      store.dd_edges.push_back({delegates.slot(u), delegates.slot(v)});
    } else if (udel) {
      YGM_ASSERT(part.owner(v) == world.rank());
      store.from_delegates.push_back({delegates.slot(u), part.local_index(v)});
    } else if (vdel) {
      YGM_ASSERT(part.owner(u) == world.rank());
      store.to_delegates.push_back({part.local_index(u), delegates.slot(v)});
    } else {
      YGM_ASSERT(part.owner(u) == world.rank());
      store.plain_edges.push_back({part.local_index(u), v});
    }
  };

  {
    core::mailbox<graph::edge> ingest(
        world, [&](const graph::edge& e) { classify(e.src, e.dst); },
        mailbox_capacity);
    const auto route = [&](vertex_id u, vertex_id v) {
      YGM_CHECK(u < num_vertices && v < num_vertices,
                "edge endpoint out of range");
      const bool udel = delegates.contains(u);
      const bool vdel = delegates.contains(v);
      if (udel && vdel) {
        classify(u, v);  // replica state is everywhere; store locally
      } else {
        // Delegate edges are colocated with the non-delegate endpoint.
        ingest.send(udel ? part.owner(v) : part.owner(u), graph::edge{u, v});
      }
    };
    for (const auto& e : local_edges) {
      route(e.src, e.dst);
      route(e.dst, e.src);
    }
    ingest.wait_empty();
  }

  // ----------------------------------------------------------- iteration
  bool changed = false;
  std::vector<std::uint8_t> slot_dirty(delegates.size(), 0);
  std::vector<std::uint64_t> dirty_slots;

  const auto improve_delegate = [&](std::uint64_t slot, vertex_id label) {
    if (label < dlabels[slot]) {
      dlabels[slot] = label;
      changed = true;
      if (!slot_dirty[slot]) {
        slot_dirty[slot] = 1;
        dirty_slots.push_back(slot);
      }
    }
  };

  core::mailbox<label_msg> label_mb(
      world,
      [&](const label_msg& m) {
        const std::uint64_t i = part.local_index(m.v);
        if (m.label < labels[i]) {
          labels[i] = m.label;
          changed = true;
        }
      },
      mailbox_capacity);

  // Replica synchronization rides asynchronous broadcasts. A received
  // update is applied but never re-broadcast (the origin already reached
  // every rank).
  core::mailbox<delegate_msg> sync_mb(
      world,
      [&](const delegate_msg& m) {
        if (m.label < dlabels[m.slot]) {
          dlabels[m.slot] = m.label;
          changed = true;
        }
      },
      mailbox_capacity);

  for (;;) {
    ++out.passes;
    changed = false;

    for (const auto& e : store.plain_edges) {
      label_mb.send(part.owner(e.v), label_msg{e.v, labels[e.lidx_u]});
    }
    for (const auto& e : store.to_delegates) {
      improve_delegate(e.slot_v, labels[e.lidx_u]);
    }
    for (const auto& e : store.from_delegates) {
      if (dlabels[e.slot_u] < labels[e.lidx_v]) {
        labels[e.lidx_v] = dlabels[e.slot_u];
        changed = true;
      }
    }
    for (const auto& e : store.dd_edges) {
      improve_delegate(e.slot_v, dlabels[e.slot_u]);
    }
    label_mb.wait_empty();

    // Lazy replica synchronization (paper §V-B1): broadcast only the slots
    // this rank improved since the last sync.
    for (const std::uint64_t slot : dirty_slots) {
      sync_mb.send_bcast(delegate_msg{slot, dlabels[slot]});
      ++out.broadcasts;
      slot_dirty[slot] = 0;
    }
    dirty_slots.clear();
    sync_mb.wait_empty();

    const bool global_changed =
        world.mpi().allreduce(changed, mpisim::op_lor{});
    if (!global_changed) break;
  }

  // Mirror converged replica labels into the owners' label array so the
  // output is a complete labelling of local vertices.
  for (std::uint64_t slot = 0; slot < delegates.size(); ++slot) {
    const vertex_id d = delegates.id_of_slot(slot);
    if (part.owner(d) == world.rank()) {
      labels[part.local_index(d)] = dlabels[slot];
    }
  }

  out.stats = label_mb.stats();
  out.stats += sync_mb.stats();
  return out;
}

std::vector<vertex_id> connected_components_reference(
    vertex_id num_vertices, const std::vector<graph::edge>& edges) {
  std::vector<vertex_id> parent(num_vertices);
  std::iota(parent.begin(), parent.end(), vertex_id{0});

  const auto find = [&](vertex_id v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (const auto& e : edges) {
    const vertex_id a = find(e.src);
    const vertex_id b = find(e.dst);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }
  // Two-phase flattening leaves every root as the minimum of its component
  // (unions always point larger roots at smaller ones).
  std::vector<vertex_id> labels(num_vertices);
  for (vertex_id v = 0; v < num_vertices; ++v) labels[v] = find(v);
  return labels;
}

}  // namespace ygm::apps
