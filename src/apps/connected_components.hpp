// Connected components by label propagation with delegate vertices
// (paper §V-B).
//
// Every vertex starts labelled with its own id; each pass pushes labels
// along every edge and keeps the minimum; passes repeat until no label
// changes, leaving each vertex labelled with the minimum vertex id of its
// component (the paper notes this simple O(diam G) algorithm was chosen to
// stress the mailbox, not to be the fastest CC).
//
// Delegates: high-degree vertices are replicated on every rank; their edges
// are stored colocated with the non-delegate endpoint, so delegate label
// reads and writes are local during a pass, and replicas are synchronized
// between passes with YGM's asynchronous broadcasts — the paper's heaviest
// use of SEND_BCAST (Fig. 7 plots the broadcast growth this produces).
#pragma once

#include <cstdint>
#include <vector>

#include "core/comm_world.hpp"
#include "core/mailbox.hpp"
#include "core/stats.hpp"
#include "graph/delegates.hpp"
#include "graph/edge.hpp"

namespace ygm::apps {

struct cc_result {
  /// labels[i] = component label (minimum member id) of the vertex with
  /// local index i; entries for delegate-owned indices mirror the replica.
  std::vector<graph::vertex_id> local_labels;
  /// Replica labels, one per delegate slot (identical on every rank).
  std::vector<graph::vertex_id> delegate_labels;
  int passes = 0;             ///< graph passes until convergence
  std::uint64_t broadcasts = 0;  ///< send_bcast calls issued by this rank
  core::mailbox_stats stats;     ///< label-mailbox traffic counters
};

/// Collective. `local_edges` is this rank's slice of the (undirected) edge
/// stream, in arbitrary order — ingestion routes each direction to the rank
/// that stores it. `delegates` may be empty (no replication).
cc_result connected_components(
    core::comm_world& world, const std::vector<graph::edge>& local_edges,
    graph::vertex_id num_vertices, const graph::delegate_set& delegates,
    std::size_t mailbox_capacity = core::default_mailbox_capacity);

/// Serial oracle: union-find over a full edge list, labels = min id per
/// component (what label propagation converges to).
std::vector<graph::vertex_id> connected_components_reference(
    graph::vertex_id num_vertices, const std::vector<graph::edge>& edges);

}  // namespace ygm::apps
