// Degree counting (paper Algorithm 1, §V-A).
//
// Streams the edges of a graph through a mailbox: every edge spawns two
// messages — one per endpoint — each delivered to the endpoint's owner,
// where it increments a counter. Vertices are assigned round-robin. This is
// the paper's minimal YGM application: pure communication with O(1) work per
// message, used to expose the routing schemes' bandwidth behaviour (Fig. 6).
#pragma once

#include <cstdint>
#include <vector>

#include "core/comm_world.hpp"
#include "core/mailbox.hpp"
#include "graph/edge.hpp"

namespace ygm::apps {

struct degree_count_result {
  /// degrees[i] = degree of the vertex with local index i on this rank.
  std::vector<std::uint64_t> local_degrees;
  core::mailbox_stats stats;  ///< mailbox traffic counters for the run
};

/// Collective. `gen` must expose num_vertices() and
/// for_each(fn(graph::edge)) producing this rank's slice of the edges
/// (see graph/generators.hpp).
template <class Generator>
degree_count_result degree_count(
    core::comm_world& world, const Generator& gen,
    std::size_t mailbox_capacity = core::default_mailbox_capacity) {
  const graph::round_robin_partition part{world.size()};
  degree_count_result out;
  out.local_degrees.assign(part.local_count(world.rank(), gen.num_vertices()),
                           0);

  core::mailbox<graph::vertex_id> mb(
      world,
      [&](const graph::vertex_id& v) {
        ++out.local_degrees[part.local_index(v)];
      },
      mailbox_capacity);

  gen.for_each([&](const graph::edge& e) {
    mb.send(part.owner(e.src), e.src);
    mb.send(part.owner(e.dst), e.dst);
  });
  mb.wait_empty();

  out.stats = mb.stats();
  return out;
}

}  // namespace ygm::apps
