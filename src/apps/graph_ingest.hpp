// Distributed adjacency construction: route a raw edge stream to a 1D
// owner-partitioned adjacency through the mailbox, stored as flat CSR.
// Shared by the traversal kernels (BFS, SSSP, k-core) — the algorithms
// behind LLNL's Graph500 submission that the paper cites as YGM's
// production use (§I).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "core/comm_world.hpp"
#include "core/mailbox.hpp"
#include "graph/edge.hpp"

namespace ygm::apps {

/// Owner-partitioned adjacency in CSR layout: neighbors(j) spans the
/// out-neighbors of the vertex with local index j (both directions of each
/// undirected input edge are stored).
class local_adjacency {
 public:
  struct neighbor {
    graph::vertex_id id = 0;
    std::uint32_t weight = 1;
  };

  /// Collective. `local_edges` is this rank's slice of the undirected edge
  /// stream; `weighted` additionally derives a deterministic weight in
  /// [1, 255] from the edge endpoints (Graph500-SSSP style synthetic
  /// weights).
  local_adjacency(core::comm_world& world,
                  const std::vector<graph::edge>& local_edges,
                  graph::vertex_id num_vertices, bool weighted,
                  std::size_t mailbox_capacity = core::default_mailbox_capacity)
      : part_{world.size()}, num_vertices_(num_vertices) {
    struct arc {
      graph::vertex_id src = 0;
      graph::vertex_id dst = 0;
      std::uint32_t weight = 1;
    };
    // Ingest into per-vertex staging, then flatten to CSR. The staging
    // vectors cost one transient allocation per vertex; the flat arrays are
    // what the traversal hot loops iterate.
    std::vector<std::vector<neighbor>> staging(
        part_.local_count(world.rank(), num_vertices));
    core::mailbox<arc> ingest(
        world,
        [&](const arc& a) {
          staging[part_.local_index(a.src)].push_back({a.dst, a.weight});
        },
        mailbox_capacity);
    for (const auto& e : local_edges) {
      YGM_CHECK(e.src < num_vertices && e.dst < num_vertices,
                "edge endpoint out of range");
      const std::uint32_t w = weighted ? weight_of(e.src, e.dst) : 1u;
      ingest.send(part_.owner(e.src), arc{e.src, e.dst, w});
      ingest.send(part_.owner(e.dst), arc{e.dst, e.src, w});
    }
    ingest.wait_empty();

    offsets_.reserve(staging.size() + 1);
    offsets_.push_back(0);
    std::uint64_t total = 0;
    for (const auto& nbrs : staging) {
      total += nbrs.size();
      offsets_.push_back(total);
    }
    flat_.reserve(total);
    for (auto& nbrs : staging) {
      flat_.insert(flat_.end(), nbrs.begin(), nbrs.end());
      nbrs.clear();
      nbrs.shrink_to_fit();
    }
  }

  std::span<const neighbor> neighbors(std::uint64_t local_index) const {
    YGM_ASSERT(local_index + 1 < offsets_.size());
    return {flat_.data() + offsets_[local_index],
            flat_.data() + offsets_[local_index + 1]};
  }

  std::uint64_t degree(std::uint64_t local_index) const {
    YGM_ASSERT(local_index + 1 < offsets_.size());
    return offsets_[local_index + 1] - offsets_[local_index];
  }

  std::uint64_t local_vertex_count() const noexcept {
    return offsets_.size() - 1;
  }
  std::uint64_t local_arc_count() const noexcept { return flat_.size(); }
  graph::vertex_id num_vertices() const noexcept { return num_vertices_; }
  const graph::round_robin_partition& partition() const noexcept {
    return part_;
  }

  /// Deterministic synthetic edge weight in [1, 255], symmetric in the
  /// endpoints so both directions agree.
  static std::uint32_t weight_of(graph::vertex_id a, graph::vertex_id b) {
    const auto lo = a < b ? a : b;
    const auto hi = a < b ? b : a;
    return 1 + static_cast<std::uint32_t>(splitmix64(lo * 0x1f3db3u + hi) %
                                          255);
  }

 private:
  graph::round_robin_partition part_;
  graph::vertex_id num_vertices_;
  std::vector<std::uint64_t> offsets_;  // CSR row offsets (size nlocal + 1)
  std::vector<neighbor> flat_;          // CSR payload
};

}  // namespace ygm::apps
