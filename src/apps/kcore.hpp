// k-core decomposition by asynchronous peeling.
//
// The k-core of a graph is the maximal subgraph where every vertex has at
// least k neighbors inside it. Peeling removes under-degree vertices until
// a fixpoint — and each removal is a pure data-dependent cascade: a
// "neighbor removed" message decrements a degree, which may trigger the
// next removal. In BSP form this needs one superstep per peeling wave; on
// the mailbox the entire cascade runs inside a single wait_empty(), making
// it a flagship example of the paper's data-dependent-synchronization
// argument (§II: receive callbacks "can spawn additional messages,
// creating data-dependent synchronizations").
#pragma once

#include <cstdint>
#include <vector>

#include "apps/graph_ingest.hpp"
#include "core/comm_world.hpp"
#include "core/mailbox.hpp"
#include "core/stats.hpp"

namespace ygm::apps {

struct kcore_result {
  /// in_core[j] = the vertex with local index j survives in the k-core.
  std::vector<bool> in_core;
  std::uint64_t survivors = 0;  ///< global k-core size
  std::uint64_t removal_messages = 0;  ///< cascade messages (global)
  core::mailbox_stats stats;
};

/// Collective: compute membership in the k-core over a prebuilt adjacency.
/// Duplicate edges count toward degree exactly as stored in `adj`.
inline kcore_result k_core(core::comm_world& world,
                           const local_adjacency& adj, std::uint64_t k,
                           std::size_t mailbox_capacity =
                               core::default_mailbox_capacity) {
  const auto& part = adj.partition();
  kcore_result out;

  const std::uint64_t nlocal = adj.local_vertex_count();
  std::vector<std::uint64_t> degree(nlocal);
  std::vector<bool> removed(nlocal, false);
  for (std::uint64_t j = 0; j < nlocal; ++j) {
    degree[j] = adj.neighbors(j).size();
  }

  std::uint64_t cascade_msgs = 0;

  core::mailbox<graph::vertex_id>* mbp = nullptr;
  // Message: "one of your neighbors left the core".
  const auto remove_vertex = [&](std::uint64_t j) {
    removed[j] = true;
    for (const auto& nb : adj.neighbors(j)) {
      mbp->send(part.owner(nb.id), nb.id);
      ++cascade_msgs;
    }
  };
  core::mailbox<graph::vertex_id> mb(
      world,
      [&](const graph::vertex_id& v) {
        const std::uint64_t j = part.local_index(v);
        if (removed[j]) return;
        if (--degree[j] < k) remove_vertex(j);
      },
      mailbox_capacity);
  mbp = &mb;

  // Seed the cascade with every initially under-degree vertex; everything
  // else is message-driven. Self-sends deliver immediately, so a later
  // vertex can already have been removed by the time the loop reaches it —
  // the removed check prevents notifying its neighbors twice.
  for (std::uint64_t j = 0; j < nlocal; ++j) {
    if (!removed[j] && degree[j] < k) remove_vertex(j);
  }
  mb.wait_empty();

  out.in_core.resize(nlocal);
  std::uint64_t local_survivors = 0;
  for (std::uint64_t j = 0; j < nlocal; ++j) {
    out.in_core[j] = !removed[j];
    if (!removed[j]) ++local_survivors;
  }
  out.survivors =
      world.mpi().allreduce(local_survivors, mpisim::op_sum{});
  out.removal_messages =
      world.mpi().allreduce(cascade_msgs, mpisim::op_sum{});
  out.stats = mb.stats();
  return out;
}

/// Serial oracle: iterative peeling over a full edge list (degree counts
/// every stored direction, matching local_adjacency's storage).
inline std::vector<bool> k_core_reference(
    graph::vertex_id num_vertices, const std::vector<graph::edge>& edges,
    std::uint64_t k) {
  std::vector<std::vector<graph::vertex_id>> adj(num_vertices);
  for (const auto& e : edges) {
    adj[e.src].push_back(e.dst);
    adj[e.dst].push_back(e.src);
  }
  std::vector<std::uint64_t> degree(num_vertices);
  std::vector<bool> removed(num_vertices, false);
  for (graph::vertex_id v = 0; v < num_vertices; ++v) {
    degree[v] = adj[v].size();
  }
  std::vector<graph::vertex_id> frontier;
  for (graph::vertex_id v = 0; v < num_vertices; ++v) {
    if (degree[v] < k) {
      removed[v] = true;
      frontier.push_back(v);
    }
  }
  while (!frontier.empty()) {
    const auto v = frontier.back();
    frontier.pop_back();
    for (const auto u : adj[v]) {
      if (!removed[u] && --degree[u] < k) {
        removed[u] = true;
        frontier.push_back(u);
      }
    }
  }
  std::vector<bool> in_core(num_vertices);
  for (graph::vertex_id v = 0; v < num_vertices; ++v) {
    in_core[v] = !removed[v];
  }
  return in_core;
}

}  // namespace ygm::apps
