// Distributed k-mer counting — the HipMer/Meraculous workload the paper
// calls out as a natural YGM fit (§II: "HipMer's process for identifying
// frequent k-mers is similar to how we identify high-degree vertices in
// graphs, and can likely benefit from using YGM"; its per-destination
// send buffers flushed at a size threshold are precisely the mailbox).
//
// Each rank streams its local reads (DNA strings), slides a window of k
// bases, canonicalizes each k-mer (min of itself and its reverse
// complement, as assemblers do), packs it into 2 bits per base, and counts
// occurrences through a counting_set. Frequent k-mers — the assembler's
// de Bruijn graph vertices of interest — fall out of top_k / threshold
// queries.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "containers/counting_set.hpp"
#include "core/comm_world.hpp"

namespace ygm::apps {

/// 2-bit base codes; k-mers pack into a u64 for k <= 31 (one tag bit spare).
constexpr int kmer_max_k = 31;

inline int base_code(char b) {
  switch (b) {
    case 'A':
      return 0;
    case 'C':
      return 1;
    case 'G':
      return 2;
    case 'T':
      return 3;
    default:
      return -1;  // N or junk: breaks the window
  }
}

/// Pack a k-mer string into 2 bits/base. Precondition: only ACGT.
inline std::uint64_t pack_kmer(std::string_view kmer) {
  YGM_ASSERT(kmer.size() <= kmer_max_k);
  std::uint64_t packed = 0;
  for (const char b : kmer) {
    const int code = base_code(b);
    YGM_ASSERT(code >= 0);
    packed = (packed << 2) | static_cast<std::uint64_t>(code);
  }
  return packed;
}

/// Reverse complement of a packed k-mer.
inline std::uint64_t reverse_complement(std::uint64_t packed, int k) {
  std::uint64_t rc = 0;
  for (int i = 0; i < k; ++i) {
    rc = (rc << 2) | ((packed ^ 0x3u) & 0x3u);  // complement last base
    packed >>= 2;
  }
  return rc;
}

/// Canonical form: min(kmer, reverse_complement) — strand-independent.
inline std::uint64_t canonical_kmer(std::uint64_t packed, int k) {
  const std::uint64_t rc = reverse_complement(packed, k);
  return packed < rc ? packed : rc;
}

/// Unpack for display/tests.
inline std::string unpack_kmer(std::uint64_t packed, int k) {
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  std::string s(static_cast<std::size_t>(k), 'A');
  for (int i = k - 1; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = kBases[packed & 0x3u];
    packed >>= 2;
  }
  return s;
}

struct kmer_count_result {
  std::uint64_t total_kmers = 0;     ///< k-mer instances streamed (global)
  std::uint64_t distinct_kmers = 0;  ///< distinct canonical k-mers (global)
  /// The (canonical packed k-mer, count) pairs at or above the caller's
  /// frequency threshold, identical on all ranks, sorted by count
  /// descending (capped at max_report entries).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> frequent;
};

/// Collective: count canonical k-mers across all ranks' reads and report
/// those occurring at least `min_count` times (HipMer's frequent-k-mer
/// phase).
inline kmer_count_result count_kmers(
    core::comm_world& world, const std::vector<std::string>& local_reads,
    int k, std::uint64_t min_count, std::size_t max_report = 64,
    std::size_t mailbox_capacity = core::default_mailbox_capacity) {
  YGM_CHECK(k >= 1 && k <= kmer_max_k, "k out of range");

  container::counting_set<std::uint64_t> counts(world, mailbox_capacity);
  const std::uint64_t mask =
      k == 32 ? ~std::uint64_t{0} : ((std::uint64_t{1} << (2 * k)) - 1);

  for (const auto& read : local_reads) {
    std::uint64_t window = 0;
    int valid = 0;  // consecutive valid bases ending here
    for (const char b : read) {
      const int code = base_code(b);
      if (code < 0) {
        valid = 0;
        window = 0;
        continue;
      }
      window = ((window << 2) | static_cast<std::uint64_t>(code)) & mask;
      if (++valid >= k) {
        counts.async_insert(canonical_kmer(window, k));
      }
    }
  }
  counts.wait_empty();

  kmer_count_result out;
  out.total_kmers = counts.global_total();
  out.distinct_kmers = counts.global_unique();
  // Frequent set: local filter then a bounded merge (frequent k-mers are
  // few by construction — that is why HipMer looks for them).
  for (const auto& [kmer, count] : counts.top_k(max_report)) {
    if (count >= min_count) out.frequent.emplace_back(kmer, count);
  }
  return out;
}

/// Synthetic read generator: a random reference genome with occasional
/// junk bases, plus `repeat` planted every `plant_every` reads so a known
/// k-mer is guaranteed frequent (test and demo support).
inline std::vector<std::string> synthetic_reads(
    int rank, int num_reads, int read_length, std::uint64_t seed,
    const std::string& plant = "", int plant_every = 0) {
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  xoshiro256 rng(splitmix64(seed + 31 * static_cast<std::uint64_t>(rank)));
  std::vector<std::string> reads;
  reads.reserve(static_cast<std::size_t>(num_reads));
  for (int r = 0; r < num_reads; ++r) {
    std::string read(static_cast<std::size_t>(read_length), 'A');
    for (auto& b : read) {
      b = rng.below(97) == 0 ? 'N' : kBases[rng.below(4)];
    }
    if (!plant.empty() && plant_every > 0 && r % plant_every == 0 &&
        read.size() >= plant.size()) {
      const auto at = rng.below(read.size() - plant.size() + 1);
      read.replace(static_cast<std::size_t>(at), plant.size(), plant);
    }
    reads.push_back(std::move(read));
  }
  return reads;
}

}  // namespace ygm::apps
