#include "apps/spmv.hpp"

#include <utility>

#include "common/assert.hpp"
#include "mpisim/ops.hpp"

namespace ygm::apps {

namespace {

struct y_msg {
  std::uint64_t row = 0;
  double value = 0.0;
};

}  // namespace

dist_spmv::dist_spmv(core::comm_world& world, std::uint64_t n,
                     const std::vector<linalg::triplet>& local_entries,
                     graph::delegate_set delegates,
                     std::size_t mailbox_capacity)
    : world_(&world),
      n_(n),
      delegates_(std::move(delegates)),
      capacity_(mailbox_capacity),
      part_{world.size()} {
  std::vector<linalg::triplet> own_entries;

  const auto classify = [&](const linalg::triplet& t) {
    if (delegates_.contains(t.col)) {
      // Colocated with the row owner; x_col comes from the replica.
      YGM_ASSERT(part_.owner(t.row) == world_->rank());
      const bool rdel = delegates_.contains(t.row);
      colocated_.push_back({delegates_.slot(t.col),
                            rdel ? delegates_.slot(t.row)
                                 : part_.local_index(t.row),
                            rdel, t.value});
    } else {
      YGM_ASSERT(part_.owner(t.col) == world_->rank());
      // Rebase the column to its local index; rows stay global.
      own_entries.push_back(
          linalg::triplet{t.row, part_.local_index(t.col), t.value});
    }
  };

  {
    core::mailbox<linalg::triplet> ingest(
        world, [&](const linalg::triplet& t) { classify(t); },
        mailbox_capacity);
    for (const auto& t : local_entries) {
      YGM_CHECK(t.row < n_ && t.col < n_, "triplet index out of range");
      const int dest = delegates_.contains(t.col) ? part_.owner(t.row)
                                                 : part_.owner(t.col);
      ingest.send(dest, t);
    }
    ingest.wait_empty();
  }

  own_ = linalg::csc_matrix::from_triplets(
      n_, part_.local_count(world.rank(), n_), std::move(own_entries));
}

spmv_result dist_spmv::multiply(const std::vector<double>& x_local) {
  YGM_CHECK(x_local.size() == part_.local_count(world_->rank(), n_),
            "x_local has wrong length");
  spmv_result out;
  out.local_y.assign(x_local.size(), 0.0);
  out.delegate_y.assign(delegates_.size(), 0.0);

  // Replicate delegated x entries from their owners (small: one value per
  // delegate, gathered collectively).
  std::vector<double> x_rep(delegates_.size(), 0.0);
  {
    std::vector<std::pair<std::uint64_t, double>> mine;
    for (std::uint64_t slot = 0; slot < delegates_.size(); ++slot) {
      const graph::vertex_id d = delegates_.id_of_slot(slot);
      if (part_.owner(d) == world_->rank()) {
        mine.emplace_back(slot, x_local[part_.local_index(d)]);
      }
    }
    const auto all = world_->mpi().allgather(mine);
    for (const auto& v : all) {
      for (const auto& [slot, value] : v) x_rep[slot] = value;
    }
  }

  core::mailbox<y_msg> mb(
      *world_,
      [&](const y_msg& m) {
        out.local_y[part_.local_index(m.row)] += m.value;
      },
      capacity_);

  const int me = world_->rank();
  own_.for_each([&](std::uint64_t row, std::uint64_t local_col, double val) {
    const double prod = val * x_local[local_col];
    if (delegates_.contains(row)) {
      out.delegate_y[delegates_.slot(row)] += prod;
    } else if (part_.owner(row) == me) {
      out.local_y[part_.local_index(row)] += prod;
    } else {
      mb.send(part_.owner(row), y_msg{row, prod});
    }
  });
  for (const auto& e : colocated_) {
    const double prod = e.value * x_rep[e.slot_j];
    if (e.row_is_delegate) {
      out.delegate_y[e.target] += prod;
    } else {
      out.local_y[e.target] += prod;
    }
  }
  mb.wait_empty();

  // Combine delegated entries across ranks (paper: "all delegated entries
  // in y are combined using an ALLREDUCE").
  out.delegate_y =
      world_->mpi().allreduce_vec(out.delegate_y, mpisim::op_sum{});

  // Mirror delegated results into the owners' y for a complete labelling.
  for (std::uint64_t slot = 0; slot < delegates_.size(); ++slot) {
    const graph::vertex_id d = delegates_.id_of_slot(slot);
    if (part_.owner(d) == me) {
      out.local_y[part_.local_index(d)] = out.delegate_y[slot];
    }
  }

  out.stats = mb.stats();
  return out;
}

}  // namespace ygm::apps
