// Distributed sparse matrix-vector product y = A x (paper Algorithm 2,
// §V-C): CSC storage, 1D column partitioning, delegates for high-degree
// rows/columns.
//
// For a non-delegated nonzero a_ij, the owner of column j computes
// a_ij * x_j and mails the product to the owner of row i, which accumulates
// it into y_i — one multiply, one add, one message per edge. Delegated
// columns have x_j replicated everywhere and their nonzeros stored
// colocated with the row owner, so the multiply needs no message; delegated
// rows accumulate into a local y replica that is combined with one
// ALLREDUCE at the end. The delegate machinery converts hub traffic into
// local work exactly as in the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "core/comm_world.hpp"
#include "core/mailbox.hpp"
#include "graph/delegates.hpp"
#include "linalg/csc.hpp"

namespace ygm::apps {

struct spmv_result {
  /// y values for locally owned indices (delegated entries mirrored in
  /// from the replica after the final allreduce).
  std::vector<double> local_y;
  /// Replicated y entries for delegated indices (identical on all ranks).
  std::vector<double> delegate_y;
  core::mailbox_stats stats;
};

/// The distributed operator: build once (collective), multiply repeatedly.
class dist_spmv {
 public:
  /// Collective. `local_entries` is this rank's slice of the triplet
  /// stream, in arbitrary order; ingestion routes each entry to the rank
  /// that stores it (column owner, or row owner when the column is
  /// delegated). `delegates` may be empty and is stored by value (it is
  /// small by design: one entry per hub).
  dist_spmv(core::comm_world& world, std::uint64_t n,
            const std::vector<linalg::triplet>& local_entries,
            graph::delegate_set delegates,
            std::size_t mailbox_capacity = core::default_mailbox_capacity);

  /// Collective y = A*x. `x_local[i]` is the value of x at the vertex with
  /// local index i (round-robin partition); delegated entries are read from
  /// their owners and replicated internally.
  spmv_result multiply(const std::vector<double>& x_local);

  std::uint64_t n() const noexcept { return n_; }
  std::uint64_t local_nonzeros() const noexcept {
    return own_.num_nonzeros() + colocated_.size();
  }

 private:
  struct colocated_entry {
    std::uint64_t slot_j;   // delegated column
    std::uint64_t target;   // row: delegate slot or local index
    bool row_is_delegate;
    double value;
  };

  core::comm_world* world_;
  std::uint64_t n_;
  graph::delegate_set delegates_;
  std::size_t capacity_;
  graph::round_robin_partition part_;
  linalg::csc_matrix own_;  // non-delegated local columns; rows global
  std::vector<colocated_entry> colocated_;
};

}  // namespace ygm::apps
