// Asynchronous single-source shortest paths (the Graph500 SSSP kernel the
// paper cites, §I), as label-correcting Bellman-Ford over the mailbox:
// a distance message relaxes its vertex at the owner and cascades improved
// tentative distances to the neighbors. No delta-stepping buckets or
// barriers — termination is YGM's global quiescence, reached once no
// relaxation can improve anything.
#pragma once

#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "apps/graph_ingest.hpp"
#include "core/comm_world.hpp"
#include "core/mailbox.hpp"
#include "core/stats.hpp"

namespace ygm::apps {

inline constexpr std::uint64_t sssp_unreached =
    std::numeric_limits<std::uint64_t>::max();

struct sssp_result {
  /// distances[j] = shortest distance to the vertex with local index j, or
  /// sssp_unreached.
  std::vector<std::uint64_t> local_distances;
  std::uint64_t relaxations = 0;
  core::mailbox_stats stats;
};

/// Collective SSSP from `root` over a weighted adjacency (build the
/// adjacency with weighted=true).
sssp_result inline sssp(core::comm_world& world, const local_adjacency& adj,
                        graph::vertex_id root,
                        std::size_t mailbox_capacity =
                            core::default_mailbox_capacity) {
  const auto& part = adj.partition();
  sssp_result out;
  out.local_distances.assign(adj.local_vertex_count(), sssp_unreached);

  struct dist_msg {
    graph::vertex_id v = 0;
    std::uint64_t dist = 0;
  };

  core::mailbox<dist_msg>* mbp = nullptr;
  core::mailbox<dist_msg> mb(
      world,
      [&](const dist_msg& m) {
        const std::uint64_t j = part.local_index(m.v);
        if (m.dist < out.local_distances[j]) {
          out.local_distances[j] = m.dist;
          ++out.relaxations;
          for (const auto& nb : adj.neighbors(j)) {
            mbp->send(part.owner(nb.id), dist_msg{nb.id, m.dist + nb.weight});
          }
        }
      },
      mailbox_capacity);
  mbp = &mb;

  if (part.owner(root) == world.rank()) {
    mb.send(world.rank(), dist_msg{root, 0});
  }
  mb.wait_empty();

  out.stats = mb.stats();
  return out;
}

/// Serial oracle: Dijkstra over a full edge list with the same synthetic
/// weights local_adjacency derives.
std::vector<std::uint64_t> inline sssp_reference(
    graph::vertex_id num_vertices, const std::vector<graph::edge>& edges,
    graph::vertex_id root) {
  struct arc {
    graph::vertex_id to;
    std::uint32_t w;
  };
  std::vector<std::vector<arc>> adj(num_vertices);
  for (const auto& e : edges) {
    const auto w = local_adjacency::weight_of(e.src, e.dst);
    adj[e.src].push_back({e.dst, w});
    adj[e.dst].push_back({e.src, w});
  }
  std::vector<std::uint64_t> dist(num_vertices, sssp_unreached);
  using entry = std::pair<std::uint64_t, graph::vertex_id>;
  std::priority_queue<entry, std::vector<entry>, std::greater<>> pq;
  dist[root] = 0;
  pq.push({0, root});
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d != dist[v]) continue;
    for (const auto& a : adj[v]) {
      if (d + a.w < dist[a.to]) {
        dist[a.to] = d + a.w;
        pq.push({dist[a.to], a.to});
      }
    }
  }
  return dist;
}

}  // namespace ygm::apps
