// Distributed triangle counting over the mailbox.
//
// Another irregular, communication-dominated analytics kernel of the kind
// the paper's introduction motivates (HavoqGT ships one). Algorithm:
// orient every edge from the lower to the higher vertex id, store the
// oriented adjacency at the lower endpoint's owner, then for every wedge
// (u; v, w) with v < w send a closure query to owner(v), which checks
// whether w is among v's oriented neighbors. Each triangle {u < v < w} is
// found exactly once, at the wedge centered on u.
//
// Message volume is the wedge count (sum of deg+ choose 2) — the kind of
// all-to-all small-message flood the routing schemes exist to coalesce.
#pragma once

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "core/comm_world.hpp"
#include "core/mailbox.hpp"
#include "core/stats.hpp"
#include "graph/edge.hpp"

namespace ygm::apps {

struct triangle_count_result {
  std::uint64_t triangles = 0;     ///< global count (identical on all ranks)
  std::uint64_t wedges_checked = 0;  ///< closure queries issued globally
  core::mailbox_stats stats;       ///< query-mailbox traffic (this rank)
};

/// Collective. `local_edges` is this rank's slice of the undirected edge
/// stream; parallel edges and self-loops are ignored.
inline triangle_count_result triangle_count(
    core::comm_world& world, const std::vector<graph::edge>& local_edges,
    graph::vertex_id num_vertices,
    std::size_t mailbox_capacity = core::default_mailbox_capacity) {
  const graph::round_robin_partition part{world.size()};

  // ---------------------------------------------- oriented adjacency
  // adj_plus[j] = sorted, deduplicated {w > u} for the locally owned u with
  // local index j.
  std::vector<std::vector<graph::vertex_id>> adj_plus(
      part.local_count(world.rank(), num_vertices));
  {
    core::mailbox<graph::edge> ingest(
        world,
        [&](const graph::edge& e) {
          adj_plus[part.local_index(e.src)].push_back(e.dst);
        },
        mailbox_capacity);
    for (const auto& e : local_edges) {
      YGM_CHECK(e.src < num_vertices && e.dst < num_vertices,
                "edge endpoint out of range");
      if (e.src == e.dst) continue;  // self-loop
      const graph::vertex_id lo = std::min(e.src, e.dst);
      const graph::vertex_id hi = std::max(e.src, e.dst);
      ingest.send(part.owner(lo), graph::edge{lo, hi});
    }
    ingest.wait_empty();
    for (auto& nbrs : adj_plus) {
      std::sort(nbrs.begin(), nbrs.end());
      nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    }
  }

  // -------------------------------------------------- wedge closure
  triangle_count_result out;
  std::uint64_t local_triangles = 0;
  std::uint64_t local_wedges = 0;

  struct wedge_msg {
    graph::vertex_id v = 0;  // closure is checked at owner(v)
    graph::vertex_id w = 0;  // does edge (v, w) exist?
  };

  core::mailbox<wedge_msg> queries(
      world,
      [&](const wedge_msg& m) {
        const auto& nbrs = adj_plus[part.local_index(m.v)];
        if (std::binary_search(nbrs.begin(), nbrs.end(), m.w)) {
          ++local_triangles;
        }
      },
      mailbox_capacity);

  for (std::uint64_t j = 0; j < adj_plus.size(); ++j) {
    const auto& nbrs = adj_plus[j];
    for (std::size_t a = 0; a < nbrs.size(); ++a) {
      for (std::size_t b = a + 1; b < nbrs.size(); ++b) {
        // nbrs is sorted, so nbrs[a] < nbrs[b]: the wedge closes iff
        // (nbrs[a], nbrs[b]) is an oriented edge at owner(nbrs[a]).
        queries.send(part.owner(nbrs[a]), wedge_msg{nbrs[a], nbrs[b]});
        ++local_wedges;
      }
    }
  }
  queries.wait_empty();

  out.triangles =
      world.mpi().allreduce(local_triangles, mpisim::op_sum{});
  out.wedges_checked =
      world.mpi().allreduce(local_wedges, mpisim::op_sum{});
  out.stats = queries.stats();
  return out;
}

/// Serial oracle over a full edge list.
inline std::uint64_t triangle_count_reference(
    graph::vertex_id num_vertices, const std::vector<graph::edge>& edges) {
  std::vector<std::set<graph::vertex_id>> adj(num_vertices);
  for (const auto& e : edges) {
    if (e.src == e.dst) continue;
    const auto lo = std::min(e.src, e.dst);
    const auto hi = std::max(e.src, e.dst);
    adj[lo].insert(hi);
  }
  std::uint64_t count = 0;
  for (graph::vertex_id u = 0; u < num_vertices; ++u) {
    for (const auto v : adj[u]) {
      for (const auto w : adj[u]) {
        if (v < w && adj[v].count(w) != 0) ++count;
      }
    }
  }
  return count;
}

}  // namespace ygm::apps
