// Assertion and error-reporting helpers shared by every YGM library.
//
// Two families:
//   YGM_ASSERT(cond)        - debug-style invariant check; always compiled in
//                             (these libraries are correctness-critical and
//                             the checks are cheap relative to communication).
//   YGM_CHECK(cond, msg)    - user-facing precondition; throws ygm::error
//                             with a formatted message.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ygm {

/// Exception type thrown on precondition violations throughout the library.
class error : public std::runtime_error {
 public:
  explicit error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  std::ostringstream oss;
  oss << "YGM_ASSERT failed: (" << expr << ") at " << file << ":" << line;
  throw ygm::error(oss.str());
}

[[noreturn]] inline void check_fail(const char* expr, const std::string& msg,
                                    const char* file, int line) {
  std::ostringstream oss;
  oss << "YGM_CHECK failed: " << msg << " [(" << expr << ") at " << file << ":"
      << line << "]";
  throw ygm::error(oss.str());
}

}  // namespace detail
}  // namespace ygm

#define YGM_ASSERT(cond)                                   \
  do {                                                     \
    if (!(cond)) {                                         \
      ::ygm::detail::assert_fail(#cond, __FILE__, __LINE__); \
    }                                                      \
  } while (0)

#define YGM_CHECK(cond, msg)                                      \
  do {                                                            \
    if (!(cond)) {                                                \
      ::ygm::detail::check_fail(#cond, (msg), __FILE__, __LINE__); \
    }                                                             \
  } while (0)
