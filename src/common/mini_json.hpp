// A deliberately small recursive-descent JSON parser — enough to read back
// the telemetry exporters' output (Chrome traces, metrics JSON, postmortem
// dumps) in tests and in the tools/ygm_trace offline analyzer, without a
// third-party dependency. Throws std::runtime_error on malformed input.
//
// Numbers are doubles (like JavaScript); integer identifiers that must
// survive a round trip through this parser have to stay below 2^53, which
// the telemetry side guarantees (48-bit journey ids, packed args < 2^48).
#pragma once

#include <cctype>
#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace ygm::common {

struct json_value;
using json_object = std::map<std::string, json_value>;
using json_array = std::vector<json_value>;

struct json_value {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<json_array>, std::shared_ptr<json_object>>
      v = nullptr;

  bool is_object() const {
    return std::holds_alternative<std::shared_ptr<json_object>>(v);
  }
  bool is_array() const {
    return std::holds_alternative<std::shared_ptr<json_array>>(v);
  }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }
  const json_object& obj() const {
    return *std::get<std::shared_ptr<json_object>>(v);
  }
  const json_array& arr() const {
    return *std::get<std::shared_ptr<json_array>>(v);
  }
  double num() const { return std::get<double>(v); }
  const std::string& str() const { return std::get<std::string>(v); }
};

class json_parser {
 public:
  explicit json_parser(std::string_view s) : s_(s) {}

  json_value parse() {
    json_value v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json error at byte " + std::to_string(pos_) +
                             ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  json_value value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return {std::string(string())};
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return {true};
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return {false};
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return {nullptr};
      default:
        return {number()};
    }
  }

  json_value object() {
    expect('{');
    auto out = std::make_shared<json_object>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return {out};
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      (*out)[std::move(key)] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return {out};
    }
  }

  json_value array() {
    expect('[');
    auto out = std::make_shared<json_array>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return {out};
    }
    for (;;) {
      out->push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return {out};
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"':
          case '\\':
          case '/':
            out += e;
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("bad \\u escape");
            out += '?';  // code-point fidelity not needed by our consumers
            pos_ += 4;
            break;
          }
          default:
            fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  double number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    return std::stod(std::string(s_.substr(start, pos_ - start)));
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace ygm::common
