// Deterministic pseudo-random number generation used by the graph
// generators and the property-based tests.
//
// splitmix64 is used both as a seeding mixer and as a cheap stateless hash;
// xoshiro256** is the main stream generator (fast, passes BigCrush, and
// trivially seedable per rank so distributed generation is reproducible).
#pragma once

#include <cstdint>
#include <limits>

namespace ygm {

/// One round of the splitmix64 mixer; also usable as a 64-bit hash.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** by Blackman & Vigna. Satisfies UniformRandomBitGenerator.
class xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    // Expand the 64-bit seed through splitmix64 per the authors' guidance.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x = splitmix64(x);
      word = x;
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace ygm
