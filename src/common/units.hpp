// Small formatting helpers for the benchmark harnesses: humanized byte
// sizes, rates, and fixed-width table cells.
#pragma once

#include <cstdint>
#include <iomanip>
#include <sstream>
#include <string>

namespace ygm {

/// "1.0 KiB", "16.0 MiB", ... (binary prefixes).
inline std::string format_bytes(double bytes) {
  static const char* kSuffix[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int i = 0;
  while (bytes >= 1024.0 && i < 4) {
    bytes /= 1024.0;
    ++i;
  }
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(bytes < 10 && i > 0 ? 1 : 0) << bytes
      << ' ' << kSuffix[i];
  return oss.str();
}

/// "3.2 GB/s" style decimal rate.
inline std::string format_rate(double bytes_per_sec) {
  static const char* kSuffix[] = {"B/s", "KB/s", "MB/s", "GB/s", "TB/s"};
  int i = 0;
  while (bytes_per_sec >= 1000.0 && i < 4) {
    bytes_per_sec /= 1000.0;
    ++i;
  }
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(2) << bytes_per_sec << ' '
      << kSuffix[i];
  return oss.str();
}

/// "1.23e+06" style count rate (e.g. edges/second).
inline std::string format_count(double v) {
  std::ostringstream oss;
  if (v >= 1e5) {
    oss << std::scientific << std::setprecision(2) << v;
  } else {
    oss << std::fixed << std::setprecision(v < 10 ? 2 : 0) << v;
  }
  return oss.str();
}

}  // namespace ygm
