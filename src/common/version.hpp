// Library version (kept in sync with the CMake project version).
#pragma once

#define YGM_VERSION_MAJOR 0
#define YGM_VERSION_MINOR 1
#define YGM_VERSION_PATCH 0
#define YGM_VERSION_STRING "0.1.0"

namespace ygm {

struct version_info {
  int major;
  int minor;
  int patch;
};

constexpr version_info version() noexcept {
  return {YGM_VERSION_MAJOR, YGM_VERSION_MINOR, YGM_VERSION_PATCH};
}

}  // namespace ygm
