// ygm::container::array — a distributed fixed-size array.
//
// Indices are round-robin partitioned (the paper's vertex partitioning);
// async_set overwrites, async_add folds with the reducer fixed at
// construction. The SpMV result vector and label arrays of the
// applications are this pattern.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/assert.hpp"
#include "core/comm_world.hpp"
#include "core/mailbox.hpp"
#include "graph/edge.hpp"
#include "mpisim/ops.hpp"

namespace ygm::container {

template <class T>
class array {
 public:
  using reducer_fn = std::function<T(const T&, const T&)>;

  array(core::comm_world& world, std::uint64_t size, T fill = T{},
        reducer_fn reducer = [](const T& a, const T& b) { return a + b; },
        std::size_t mailbox_capacity = core::default_mailbox_capacity)
      : world_(&world),
        size_(size),
        part_{world.size()},
        reducer_(std::move(reducer)),
        local_(part_.local_count(world.rank(), size), fill),
        mb_(world, [this](const cell_msg& m) { apply(m); },
            mailbox_capacity) {}

  std::uint64_t size() const noexcept { return size_; }

  void async_set(std::uint64_t i, const T& v) {
    YGM_CHECK(i < size_, "array index out of range");
    mb_.send(part_.owner(i), cell_msg{i, v, /*add=*/false});
  }

  /// Fold v into element i with the reducer (default: plus).
  void async_add(std::uint64_t i, const T& v) {
    YGM_CHECK(i < size_, "array index out of range");
    mb_.send(part_.owner(i), cell_msg{i, v, /*add=*/true});
  }

  /// Collective: finish all outstanding updates.
  void wait_empty() { mb_.wait_empty(); }

  /// Locally owned elements, indexed by local index (valid after
  /// wait_empty()). Global id of local index j is
  /// partition().global_id(rank, j).
  const std::vector<T>& local_values() const noexcept { return local_; }
  std::vector<T>& local_values() noexcept { return local_; }

  const graph::round_robin_partition& partition() const noexcept {
    return part_;
  }

  /// Collective: materialize the whole array everywhere (small arrays).
  std::vector<T> gather_all() const {
    const auto shards = world_->mpi().allgather(local_);
    std::vector<T> out(size_);
    for (int r = 0; r < world_->size(); ++r) {
      const auto& shard = shards[static_cast<std::size_t>(r)];
      for (std::uint64_t j = 0; j < shard.size(); ++j) {
        out[part_.global_id(r, j)] = shard[j];
      }
    }
    return out;
  }

  core::comm_world& world() const noexcept { return *world_; }

 private:
  struct cell_msg {
    std::uint64_t index = 0;
    T value{};
    bool add = false;

    template <class Archive>
    void serialize(Archive& ar) {
      ar & index & value & add;
    }
  };

  void apply(const cell_msg& m) {
    auto& slot = local_[part_.local_index(m.index)];
    slot = m.add ? reducer_(slot, m.value) : m.value;
  }

  core::comm_world* world_;
  std::uint64_t size_;
  graph::round_robin_partition part_;
  reducer_fn reducer_;
  std::vector<T> local_;
  core::mailbox<cell_msg> mb_;
};

}  // namespace ygm::container
