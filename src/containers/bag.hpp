// ygm::container::bag — an unordered distributed multiset.
//
// The simplest container the mailbox supports: async_insert() scatters
// items across ranks (hash-balanced), each rank stores its share in a flat
// vector, and local iteration plus a couple of collectives cover the common
// aggregate queries. The paper positions YGM as "a transport layer"; this
// layer shows how little is needed to turn the transport into data
// structures (the pattern the open-source YGM library later shipped).
//
// All async_* calls are buffered through one mailbox; wait_empty() is
// collective and must be called before reading results.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/comm_world.hpp"
#include "core/mailbox.hpp"
#include "mpisim/ops.hpp"

namespace ygm::container {

template <class T>
class bag {
 public:
  explicit bag(core::comm_world& world,
               std::size_t mailbox_capacity = core::default_mailbox_capacity)
      : world_(&world),
        mb_(world, [this](const T& item) { items_.push_back(item); },
            mailbox_capacity),
        spray_(splitmix64(0x6ba6u + static_cast<std::uint64_t>(world.rank()))) {
  }

  /// Insert anywhere (placement is load-balanced, not meaningful).
  void async_insert(const T& item) {
    const int dest = static_cast<int>(
        spray_.below(static_cast<std::uint64_t>(world_->size())));
    mb_.send(dest, item);
  }

  /// Insert into this rank's local shard without communication.
  void local_insert(T item) { items_.push_back(std::move(item)); }

  /// Collective: finish all outstanding inserts.
  void wait_empty() { mb_.wait_empty(); }

  /// This rank's shard (valid after wait_empty()).
  const std::vector<T>& local_items() const noexcept { return items_; }

  std::uint64_t local_size() const noexcept { return items_.size(); }

  /// Collective: total item count across ranks.
  std::uint64_t global_size() const {
    return world_->mpi().allreduce(local_size(), mpisim::op_sum{});
  }

  /// Visit every locally stored item.
  template <class F>
  void for_all(F&& fn) const {
    for (const auto& item : items_) fn(item);
  }

  /// Collective: gather the full contents everywhere (small bags only).
  std::vector<T> gather_all() const {
    const auto shards = world_->mpi().allgather(items_);
    std::vector<T> all;
    for (const auto& s : shards) all.insert(all.end(), s.begin(), s.end());
    return all;
  }

  void local_clear() { items_.clear(); }

  core::comm_world& world() const noexcept { return *world_; }
  const core::mailbox_stats& stats() const noexcept { return mb_.stats(); }

 private:
  core::comm_world* world_;
  std::vector<T> items_;
  core::mailbox<T> mb_;
  xoshiro256 spray_;
};

}  // namespace ygm::container
