// ygm::container::counting_set — distributed frequency counting.
//
// async_insert(key) increments the key's count at its owning rank; the
// degree-counting kernel of the paper (Algorithm 1) is exactly this
// container with vertex ids as keys. Aggregate queries (top-k, totals) are
// cheap collectives over the local shards.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/comm_world.hpp"
#include "core/mailbox.hpp"
#include "mpisim/ops.hpp"

namespace ygm::container {

template <class Key, class Hash = std::hash<Key>>
class counting_set {
 public:
  explicit counting_set(
      core::comm_world& world,
      std::size_t mailbox_capacity = core::default_mailbox_capacity)
      : world_(&world),
        mb_(world, [this](const Key& k) { ++counts_[k]; }, mailbox_capacity) {}

  void async_insert(const Key& k) { mb_.send(owner(k), k); }

  /// Collective: finish all outstanding inserts.
  void wait_empty() { mb_.wait_empty(); }

  /// Local shard (valid after wait_empty()).
  const std::unordered_map<Key, std::uint64_t, Hash>& local_counts() const
      noexcept {
    return counts_;
  }

  /// Count of a locally owned key (0 if absent). Precondition:
  /// owner(k) == world().rank().
  std::uint64_t local_count(const Key& k) const {
    const auto it = counts_.find(k);
    return it == counts_.end() ? 0 : it->second;
  }

  std::uint64_t local_unique() const noexcept { return counts_.size(); }

  /// Collective: number of distinct keys.
  std::uint64_t global_unique() const {
    return world_->mpi().allreduce(local_unique(), mpisim::op_sum{});
  }

  /// Collective: total insert count.
  std::uint64_t global_total() const {
    std::uint64_t local = 0;
    for (const auto& [k, c] : counts_) local += c;
    return world_->mpi().allreduce(local, mpisim::op_sum{});
  }

  /// Collective: the k most frequent (key, count) pairs, identical on every
  /// rank; ties broken arbitrarily but deterministically.
  std::vector<std::pair<Key, std::uint64_t>> top_k(std::size_t k) const {
    std::vector<std::pair<Key, std::uint64_t>> local(counts_.begin(),
                                                     counts_.end());
    const auto by_count = [](const auto& a, const auto& b) {
      return a.second > b.second;
    };
    std::sort(local.begin(), local.end(), by_count);
    if (local.size() > k) local.resize(k);

    const auto all = world_->mpi().allgather(local);
    std::vector<std::pair<Key, std::uint64_t>> merged;
    for (const auto& shard : all) {
      merged.insert(merged.end(), shard.begin(), shard.end());
    }
    std::stable_sort(merged.begin(), merged.end(), by_count);
    if (merged.size() > k) merged.resize(k);
    return merged;
  }

  int owner(const Key& k) const {
    return static_cast<int>(splitmix64(Hash{}(k)) %
                            static_cast<std::uint64_t>(world_->size()));
  }

  core::comm_world& world() const noexcept { return *world_; }
  const core::mailbox_stats& stats() const noexcept { return mb_.stats(); }

 private:
  core::comm_world* world_;
  std::unordered_map<Key, std::uint64_t, Hash> counts_;
  core::mailbox<Key> mb_;
};

}  // namespace ygm::container
