// ygm::container::disjoint_set — asynchronous distributed union-find.
//
// The paper notes its simple O(diam G) label-propagation CC was chosen to
// stress the mailbox and that "a Shiloach-Vishkin implementation could be
// implemented using YGM" (§V-B); this container is that implementation
// path: near-work-optimal connected components from async_union plus a
// pointer-jumping compression, all riding the mailbox.
//
// Protocol: items are round-robin partitioned; parents only ever point to
// smaller ids, so every union message (a, b) walks a's chain toward its
// root, hopping ranks when the chain crosses ownership, and finally links
// root(a) under b (or swaps and retries when b is smaller). Each hop
// strictly decreases the pair, so cascades terminate; wait_empty() then
// certifies global quiescence.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "core/comm_world.hpp"
#include "core/mailbox.hpp"
#include "graph/edge.hpp"
#include "mpisim/ops.hpp"

namespace ygm::container {

class disjoint_set {
 public:
  disjoint_set(core::comm_world& world, std::uint64_t universe,
               std::size_t mailbox_capacity = core::default_mailbox_capacity)
      : world_(&world),
        universe_(universe),
        part_{world.size()},
        unions_(world, [this](const union_msg& m) { handle_union(m); },
                mailbox_capacity),
        queries_(world, [this](const jump_msg& m) { handle_query(m); },
                 mailbox_capacity),
        answers_(world, [this](const jump_msg& m) { handle_answer(m); },
                 mailbox_capacity) {
    parent_.resize(part_.local_count(world.rank(), universe));
    for (std::uint64_t j = 0; j < parent_.size(); ++j) {
      parent_[j] = part_.global_id(world.rank(), j);
    }
  }

  std::uint64_t universe() const noexcept { return universe_; }

  /// Merge the sets containing a and b (asynchronous; complete after
  /// wait_empty()).
  void async_union(std::uint64_t a, std::uint64_t b) {
    YGM_CHECK(a < universe_ && b < universe_, "id outside the universe");
    if (a == b) return;
    // Walk the larger id's chain.
    if (a < b) std::swap(a, b);
    route_union(union_msg{a, b});
  }

  /// Collective: finish all outstanding unions.
  void wait_empty() { unions_.wait_empty(); }

  /// Collective: pointer-jump every parent to its root (rounds of remote
  /// grandparent queries until nothing moves). After this, local_parents()
  /// holds final set labels (the minimum id of each set).
  void compress() {
    for (;;) {
      for (std::uint64_t j = 0; j < parent_.size(); ++j) {
        const std::uint64_t self = part_.global_id(world_->rank(), j);
        if (parent_[j] != self) {
          queries_.send(part_.owner(parent_[j]), jump_msg{self, parent_[j]});
        }
      }
      changed_ = false;
      queries_.wait_empty();
      answers_.wait_empty();
      const bool any =
          world_->mpi().allreduce(changed_, mpisim::op_lor{});
      if (!any) break;
    }
  }

  /// Local labels after compress(): label of global id
  /// partition().global_id(rank, j) is local_parents()[j].
  const std::vector<std::uint64_t>& local_parents() const noexcept {
    return parent_;
  }

  const graph::round_robin_partition& partition() const noexcept {
    return part_;
  }

  /// Collective: number of disjoint sets.
  std::uint64_t num_sets() const {
    std::uint64_t roots = 0;
    for (std::uint64_t j = 0; j < parent_.size(); ++j) {
      if (parent_[j] == part_.global_id(world_->rank(), j)) ++roots;
    }
    return world_->mpi().allreduce(roots, mpisim::op_sum{});
  }

  core::comm_world& world() const noexcept { return *world_; }

  /// Traffic counters of the union plane (for benches).
  const core::mailbox_stats& stats() const noexcept { return unions_.stats(); }

 private:
  struct union_msg {
    std::uint64_t chase = 0;  // walk this id's chain...
    std::uint64_t other = 0;  // ...and link its root toward this id
  };

  struct jump_msg {
    std::uint64_t node = 0;    // whose parent pointer is being jumped
    std::uint64_t target = 0;  // query: the parent / answer: the grandparent
  };

  void route_union(const union_msg& m) {
    unions_.send(part_.owner(m.chase), m);
  }

  void handle_union(const union_msg& m) {
    std::uint64_t a = m.chase;
    const std::uint64_t b = m.other;
    YGM_ASSERT(part_.owner(a) == world_->rank());
    // Chase a's chain while it stays on this rank.
    for (;;) {
      const std::uint64_t p = parent_[part_.local_index(a)];
      if (p == a) break;  // a is a root
      if (part_.owner(p) != world_->rank()) {
        if (p == b) return;  // already joined
        // Continue the walk on the parent's owner. Parents decrease, so
        // this terminates.
        route_union(union_msg{p, b});
        return;
      }
      a = p;
    }
    if (a == b) return;
    if (b < a) {
      parent_[part_.local_index(a)] = b;  // link root under the smaller id
    } else {
      route_union(union_msg{b, a});  // swap roles; strictly smaller pair
    }
  }

  void handle_query(const jump_msg& m) {
    // m.target is owned here; answer with its current parent (the
    // requester's grandparent).
    const std::uint64_t gp = parent_[part_.local_index(m.target)];
    answers_.send(part_.owner(m.node), jump_msg{m.node, gp});
  }

  void handle_answer(const jump_msg& m) {
    auto& p = parent_[part_.local_index(m.node)];
    if (p != m.target) {
      YGM_ASSERT(m.target < p);  // jumps only move down-id
      p = m.target;
      changed_ = true;
    }
  }

  core::comm_world* world_;
  std::uint64_t universe_;
  graph::round_robin_partition part_;
  std::vector<std::uint64_t> parent_;
  bool changed_ = false;
  core::mailbox<union_msg> unions_;
  core::mailbox<jump_msg> queries_;
  core::mailbox<jump_msg> answers_;
};

}  // namespace ygm::container
