// ygm::container::map — a distributed hash map over the mailbox.
//
// Keys are hash-partitioned across ranks. Mutations (insert / reduce /
// erase) are one-way messages; lookups are round trips: async_get ships a
// request to the owner and the reply is delivered back through a second
// mailbox, invoking the caller's callback on the requesting rank. YGM has
// no remote-procedure-call semantics (paper §II), so the message protocol
// is a fixed tagged union rather than shipped closures.
//
// The reduction operator is fixed at construction (like a reducer in a
// combiner tree); async_reduce(k, v) folds v into the stored value with it.
//
// wait_empty() is collective and loops until no rank has outstanding
// requests OR replies, so reply callbacks may themselves issue further
// async operations.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "core/comm_world.hpp"
#include "core/mailbox.hpp"
#include "mpisim/ops.hpp"

namespace ygm::container {

template <class Key, class Value, class Hash = std::hash<Key>>
class map {
 public:
  using get_callback = std::function<void(const Key&, std::optional<Value>)>;
  using reducer_fn = std::function<Value(const Value&, const Value&)>;

  /// `reducer` is used by async_reduce; defaults to "keep the new value".
  explicit map(
      core::comm_world& world,
      reducer_fn reducer = [](const Value&, const Value& b) { return b; },
      std::size_t mailbox_capacity = core::default_mailbox_capacity)
      : world_(&world),
        reducer_(std::move(reducer)),
        requests_(world, [this](const request_msg& m) { serve(m); },
                  mailbox_capacity),
        replies_(world, [this](const reply_msg& m) { resolve(m); },
                 mailbox_capacity) {}

  // ------------------------------------------------------------ mutations

  /// Overwrite the value at key.
  void async_insert(const Key& k, const Value& v) {
    requests_.send(owner(k), request_msg{op_kind::insert, k, v, 0, 0});
  }

  /// Fold v into the stored value with the reducer (insert if absent).
  void async_reduce(const Key& k, const Value& v) {
    requests_.send(owner(k), request_msg{op_kind::reduce, k, v, 0, 0});
  }

  void async_erase(const Key& k) {
    requests_.send(owner(k), request_msg{op_kind::erase, k, Value{}, 0, 0});
  }

  // -------------------------------------------------------------- lookups

  /// Fetch the value at key; cb runs later on THIS rank with
  /// (key, value-or-nullopt). Requires a wait_empty() (or polling) to make
  /// progress.
  void async_get(const Key& k, get_callback cb) {
    const std::uint64_t id = next_request_id_++;
    pending_.emplace(id, std::move(cb));
    requests_.send(owner(k), request_msg{op_kind::get, k, Value{},
                                         world_->rank(), id});
  }

  // ------------------------------------------------------------ progress

  /// Collective: drain requests and replies until globally quiescent, even
  /// when reply callbacks spawn further operations.
  void wait_empty() {
    for (;;) {
      requests_.wait_empty();
      replies_.wait_empty();
      const std::uint64_t activity =
          requests_.stats().app_sends + replies_.stats().app_sends;
      const auto total =
          world_->mpi().allreduce(activity, mpisim::op_sum{});
      if (total == last_activity_) break;
      last_activity_ = total;
    }
    YGM_ASSERT(pending_.empty());
  }

  // ------------------------------------------------------------- queries

  /// Local shard access (valid after wait_empty()).
  const std::unordered_map<Key, Value, Hash>& local_map() const noexcept {
    return store_;
  }

  template <class F>
  void for_all(F&& fn) const {
    for (const auto& [k, v] : store_) fn(k, v);
  }

  std::uint64_t local_size() const noexcept { return store_.size(); }

  /// Collective: global key count.
  std::uint64_t global_size() const {
    return world_->mpi().allreduce(local_size(), mpisim::op_sum{});
  }

  /// Owning rank of a key (hash partitioned; stable across ranks).
  int owner(const Key& k) const {
    return static_cast<int>(splitmix64(Hash{}(k)) %
                            static_cast<std::uint64_t>(world_->size()));
  }

  core::comm_world& world() const noexcept { return *world_; }

 private:
  enum class op_kind : std::uint8_t { insert, reduce, erase, get };

  struct request_msg {
    op_kind op = op_kind::insert;
    Key key{};
    Value value{};
    int requester = 0;
    std::uint64_t request_id = 0;

    template <class Archive>
    void serialize(Archive& ar) {
      ar & op & key & value & requester & request_id;
    }
  };

  struct reply_msg {
    std::uint64_t request_id = 0;
    bool found = false;
    Key key{};
    Value value{};

    template <class Archive>
    void serialize(Archive& ar) {
      ar & request_id & found & key & value;
    }
  };

  void serve(const request_msg& m) {
    switch (m.op) {
      case op_kind::insert:
        store_[m.key] = m.value;
        break;
      case op_kind::reduce: {
        auto [it, inserted] = store_.emplace(m.key, m.value);
        if (!inserted) it->second = reducer_(it->second, m.value);
        break;
      }
      case op_kind::erase:
        store_.erase(m.key);
        break;
      case op_kind::get: {
        const auto it = store_.find(m.key);
        replies_.send(m.requester,
                      reply_msg{m.request_id, it != store_.end(), m.key,
                                it != store_.end() ? it->second : Value{}});
        break;
      }
    }
  }

  void resolve(const reply_msg& m) {
    const auto it = pending_.find(m.request_id);
    YGM_ASSERT(it != pending_.end());
    get_callback cb = std::move(it->second);
    pending_.erase(it);
    cb(m.key, m.found ? std::optional<Value>(m.value) : std::nullopt);
  }

  core::comm_world* world_;
  reducer_fn reducer_;
  std::unordered_map<Key, Value, Hash> store_;
  std::unordered_map<std::uint64_t, get_callback> pending_;
  std::uint64_t next_request_id_ = 0;
  std::uint64_t last_activity_ = ~std::uint64_t{0};
  core::mailbox<request_msg> requests_;
  core::mailbox<reply_msg> replies_;
};

}  // namespace ygm::container
