// ygm::container::set — a distributed set of unique keys.
//
// Hash-partitioned membership with asynchronous inserts/erases and
// round-trip async_contains queries; the delegate-id sets and visited sets
// of the applications are this pattern.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "core/comm_world.hpp"
#include "core/mailbox.hpp"
#include "mpisim/ops.hpp"

namespace ygm::container {

template <class Key, class Hash = std::hash<Key>>
class set {
 public:
  using contains_callback = std::function<void(const Key&, bool)>;

  explicit set(core::comm_world& world,
               std::size_t mailbox_capacity = core::default_mailbox_capacity)
      : world_(&world),
        requests_(world, [this](const request_msg& m) { serve(m); },
                  mailbox_capacity),
        replies_(world, [this](const reply_msg& m) { resolve(m); },
                 mailbox_capacity) {}

  void async_insert(const Key& k) {
    requests_.send(owner(k), request_msg{op_kind::insert, k, 0, 0});
  }

  void async_erase(const Key& k) {
    requests_.send(owner(k), request_msg{op_kind::erase, k, 0, 0});
  }

  /// Membership query; cb runs later on THIS rank with (key, found).
  void async_contains(const Key& k, contains_callback cb) {
    const std::uint64_t id = next_request_id_++;
    pending_.emplace(id, std::move(cb));
    requests_.send(owner(k),
                   request_msg{op_kind::contains, k, world_->rank(), id});
  }

  /// Collective: drain all operations (reply callbacks may chain more).
  void wait_empty() {
    for (;;) {
      requests_.wait_empty();
      replies_.wait_empty();
      const std::uint64_t activity =
          requests_.stats().app_sends + replies_.stats().app_sends;
      const auto total = world_->mpi().allreduce(activity, mpisim::op_sum{});
      if (total == last_activity_) break;
      last_activity_ = total;
    }
    YGM_ASSERT(pending_.empty());
  }

  const std::unordered_set<Key, Hash>& local_items() const noexcept {
    return store_;
  }

  template <class F>
  void for_all(F&& fn) const {
    for (const auto& k : store_) fn(k);
  }

  std::uint64_t local_size() const noexcept { return store_.size(); }

  std::uint64_t global_size() const {
    return world_->mpi().allreduce(local_size(), mpisim::op_sum{});
  }

  int owner(const Key& k) const {
    return static_cast<int>(splitmix64(Hash{}(k)) %
                            static_cast<std::uint64_t>(world_->size()));
  }

  core::comm_world& world() const noexcept { return *world_; }

 private:
  enum class op_kind : std::uint8_t { insert, erase, contains };

  struct request_msg {
    op_kind op = op_kind::insert;
    Key key{};
    int requester = 0;
    std::uint64_t request_id = 0;

    template <class Archive>
    void serialize(Archive& ar) {
      ar & op & key & requester & request_id;
    }
  };

  struct reply_msg {
    std::uint64_t request_id = 0;
    bool found = false;
    Key key{};

    template <class Archive>
    void serialize(Archive& ar) {
      ar & request_id & found & key;
    }
  };

  void serve(const request_msg& m) {
    switch (m.op) {
      case op_kind::insert:
        store_.insert(m.key);
        break;
      case op_kind::erase:
        store_.erase(m.key);
        break;
      case op_kind::contains:
        replies_.send(m.requester,
                      reply_msg{m.request_id, store_.count(m.key) != 0,
                                m.key});
        break;
    }
  }

  void resolve(const reply_msg& m) {
    const auto it = pending_.find(m.request_id);
    YGM_ASSERT(it != pending_.end());
    contains_callback cb = std::move(it->second);
    pending_.erase(it);
    cb(m.key, m.found);
  }

  core::comm_world* world_;
  std::unordered_set<Key, Hash> store_;
  std::unordered_map<std::uint64_t, contains_callback> pending_;
  std::uint64_t next_request_id_ = 0;
  std::uint64_t last_activity_ = ~std::uint64_t{0};
  core::mailbox<request_msg> requests_;
  core::mailbox<reply_msg> replies_;
};

}  // namespace ygm::container
