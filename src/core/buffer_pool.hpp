// Per-rank packet-buffer pool.
//
// The mailbox hot path cycles one `std::vector<std::byte>` per wire packet:
// the sender fills a coalescing buffer, moves it into the transport
// envelope, and the receiver drains it and drops it. Without recycling,
// every cycle re-pays the buffer's whole geometric growth chain (a fresh
// vector grows 1 KiB -> 2 KiB -> ... -> packet size, copying ~1x the packet
// bytes and calling the allocator ~log2(size) times) plus one free at the
// receiver. This pool keeps drained capacity alive: acquire() pops a
// recycled vector, release() returns one, and in the steady state the
// send->flush->drain cycle performs zero heap allocations per packet.
//
// Ownership protocol (docs/PERF.md has the full lifecycle):
//   * each rank thread owns one pool (thread-local — mpisim ranks are
//     threads, so "per-rank" and "per-thread" coincide);
//   * a packet buffer is acquired from the SENDER's pool, travels by move
//     through envelope/mail_slot, and is released to the RECEIVER's pool —
//     symmetric traffic keeps every pool balanced without any locking;
//   * release() takes the buffer by value: the caller provably holds the
//     last reference, so recycled capacity can never alias an in-flight
//     span (the chaos sweep in tests/test_hotpath.cpp cross-checks this).
//
// Bounded retention: one oversized message must not pin its capacity
// forever (the bug this replaces: `scratch_`/per-hop buffers kept their
// high-water capacity for the life of the mailbox). The pool tracks the
// high-water released size over a sliding two-window history and refuses to
// pool any buffer whose capacity exceeds twice that mark — the oversized
// buffer is freed on release instead of being recycled, so capacity decays
// back to the working set within one window.
//
// The overall pool size is bounded by BYTES (max_retained_bytes), not by a
// small buffer count: ranks are threads sharing cores, so a rank that
// sleeps through a scheduler timeslice wakes to its peers' entire backlog
// and releases thousands of packets in one drain burst. A count cap sized
// for the steady state throws that whole burst away and the next
// timeslice's acquires all miss; a byte budget keeps the burst (its total
// capacity is the working set by definition) while still bounding memory.
//
// Layering note: this header lives in core/ (it is the mailbox's packet
// lifecycle) but depends only on common + telemetry, so the mpisim
// transport below may include it to recycle typed send/recv payloads —
// the one sanctioned upward include (see src/CMakeLists.txt).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace ygm::core {

class buffer_pool {
 public:
  /// Total capacity the pool will retain; further releases free their
  /// storage. Sized to absorb a full timeslice burst of small packets.
  static constexpr std::size_t max_retained_bytes = std::size_t{1} << 22;
  /// Metadata bound: most vectors the free-list will hold regardless of
  /// their byte total (keeps the free-list itself from growing unbounded
  /// when packets are tiny). Sized so packets >= 128 B hit the byte
  /// budget first.
  static constexpr std::size_t max_pooled = 32768;
  /// Floor for the retention bound so tiny workloads still recycle.
  static constexpr std::size_t min_retain_bytes = 4096;
  /// Releases per high-water window (two windows of history are kept).
  static constexpr std::uint32_t window_releases = 64;

  /// This thread's pool (one per mpisim rank thread; storage dies with the
  /// thread, so consecutive mpisim::run calls never share stale capacity).
  static buffer_pool& local() {
    static thread_local buffer_pool pool;
    return pool;
  }

  /// Pop a recycled buffer (empty, capacity intact). On a miss, returns a
  /// fresh vector reserving `reserve_hint` bytes and counts the allocation
  /// into the `pool.misses`/`alloc.bytes` telemetry counters.
  std::vector<std::byte> acquire(std::size_t reserve_hint = 0) {
    if (!free_.empty()) {
      std::vector<std::byte> buf = std::move(free_.back());
      free_.pop_back();
      pooled_bytes_ -= buf.capacity();
      ++hits_;
      telemetry::add(telemetry::fast_counter::pool_hits);
      return buf;
    }
    ++misses_;
    telemetry::add(telemetry::fast_counter::pool_misses);
    std::vector<std::byte> buf;
    if (reserve_hint != 0) {
      buf.reserve(reserve_hint);
      alloc_bytes_ += reserve_hint;
      telemetry::add(telemetry::fast_counter::alloc_bytes, reserve_hint);
    }
    return buf;
  }

  /// Return a drained buffer's capacity to the pool. The buffer's current
  /// size feeds the high-water tracking, then it is cleared; oversized or
  /// surplus buffers are freed instead of pooled (bounded retention).
  void release(std::vector<std::byte>&& buf) {
    note_release_size(buf.size());
    if (buf.capacity() == 0 || free_.size() >= max_pooled ||
        buf.capacity() > retain_bound() ||
        pooled_bytes_ + buf.capacity() > max_retained_bytes) {
      if (buf.capacity() != 0) ++drops_;
      return;  // freed as `buf` dies
    }
    buf.clear();
    pooled_bytes_ += buf.capacity();
    free_.push_back(std::move(buf));
  }

  /// Largest buffer capacity release() will currently pool (2x the
  /// two-window high-water released size, floored at min_retain_bytes).
  std::size_t retain_bound() const noexcept {
    const std::size_t hw = std::max(window_max_, prev_window_max_);
    return 2 * std::max(hw, min_retain_bytes);
  }

  // --------------------------------------------------------- inspection
  std::size_t pooled() const noexcept { return free_.size(); }
  /// Sum of the pooled buffers' capacities (the byte-budget numerator).
  std::size_t pooled_bytes() const noexcept { return pooled_bytes_; }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t alloc_bytes() const noexcept { return alloc_bytes_; }
  /// Releases whose storage was freed instead of pooled (bounded retention).
  std::uint64_t drops() const noexcept { return drops_; }

  /// Drop all pooled buffers (tests; also a way to return memory eagerly).
  void trim() {
    free_.clear();
    pooled_bytes_ = 0;
  }

 private:
  void note_release_size(std::size_t n) noexcept {
    window_max_ = std::max(window_max_, n);
    if (++window_count_ >= window_releases) {
      prev_window_max_ = window_max_;
      window_max_ = 0;
      window_count_ = 0;
    }
  }

  std::vector<std::vector<std::byte>> free_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t alloc_bytes_ = 0;
  std::uint64_t drops_ = 0;
  std::size_t pooled_bytes_ = 0;     ///< sum of free_ capacities
  std::size_t window_max_ = 0;       ///< max released size, current window
  std::size_t prev_window_max_ = 0;  ///< max released size, previous window
  std::uint32_t window_count_ = 0;
};

}  // namespace ygm::core
