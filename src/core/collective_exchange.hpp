// Synchronous collective exchange — the ALLTOALLV implementation of the
// routing phases (paper §III-A).
//
// The paper notes the local/remote exchanges "could be implemented with
// ALLTOALLV calls", and that on systems with optimized collectives (IBM
// BG/Q Sequoia) that variant gave better bandwidth utilization. This class
// is that variant: every rank enters exchange() together with its outgoing
// messages, and the scheme's phases run as one ALLTOALLV per phase over the
// appropriate sub-communicator:
//
//   NoRoute     [ alltoallv(world) ]
//   NodeLocal   [ alltoallv(node), alltoallv(core-offset channel) ]
//   NodeRemote  [ alltoallv(core-offset channel), alltoallv(node) ]
//   NLNR        [ alltoallv(node), alltoallv({c, l} pair channel),
//                 alltoallv(node) ]
//
// For NLNR, each core belongs to exactly one remote channel — the one named
// by the unordered pair {its core offset, its node's layer offset} — which
// is how the paper's C(C-1)/2 + C channel count arises.
//
// Unlike the mailbox, this primitive is bulk-synchronous: all ranks must
// call exchange() together, and nobody leaves a phase before everyone
// finishes it. bench/abl_exchange_impl quantifies the trade against the
// asynchronous mailbox.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "core/comm_world.hpp"
#include "ser/serialize.hpp"

namespace ygm::core {

template <class Msg>
class collective_exchange {
 public:
  /// Collective construction (splits the phase sub-communicators).
  explicit collective_exchange(comm_world& world) : world_(&world) {
    const auto& topo = world.topo();
    const int me = world.rank();

    // Local phase communicator: everyone on my node.
    phases_by_kind();
    if (needs_local_) {
      node_comm_.emplace(world.mpi().split(topo.node_of(me), topo.core_of(me)));
      build_translation(*node_comm_, node_to_sub_);
    }
    if (needs_remote_) {
      int color = 0;
      switch (world.route().kind()) {
        case routing::scheme_kind::no_route:
          color = 0;  // one global channel
          break;
        case routing::scheme_kind::node_local:
        case routing::scheme_kind::node_remote:
          color = topo.core_of(me);  // one channel per core offset
          break;
        case routing::scheme_kind::nlnr: {
          // Channel = unordered pair {core offset, layer offset}.
          const int a = topo.core_of(me);
          const int b = topo.layer_offset(topo.node_of(me));
          const int lo = a < b ? a : b;
          const int hi = a < b ? b : a;
          color = lo * topo.cores + hi;
          break;
        }
      }
      remote_comm_.emplace(world.mpi().split(color, me));
      build_translation(*remote_comm_, remote_to_sub_);
    }
  }

  /// Collective: deliver every (destination, message) pair through the
  /// scheme's phases. Returns the messages addressed to this rank.
  std::vector<Msg> exchange(std::vector<std::pair<int, Msg>> outgoing) {
    std::vector<Msg> delivered;
    std::vector<wire> holding;
    holding.reserve(outgoing.size());
    const int me = world_->rank();
    for (auto& [dst, msg] : outgoing) {
      YGM_CHECK(dst >= 0 && dst < world_->size(),
                "exchange destination invalid");
      if (dst == me) {
        delivered.push_back(std::move(msg));
        continue;
      }
      holding.push_back(wire{dst, ser::to_bytes(msg)});
    }

    for (const phase p : phases_) {
      auto& sub = p == phase::local ? *node_comm_ : *remote_comm_;
      auto& to_sub = p == phase::local ? node_to_sub_ : remote_to_sub_;

      std::vector<std::vector<wire>> sendbufs(
          static_cast<std::size_t>(sub.size()));
      std::vector<wire> keep;
      for (auto& w : holding) {
        const int nh = world_->route().next_hop(me, w.dst);
        const auto it = to_sub.find(nh);
        if (it == to_sub.end()) {
          // Next hop is not in this phase's communicator: the message
          // belongs to a later phase (e.g. a same-node destination during
          // NodeRemote's remote phase).
          keep.push_back(std::move(w));
        } else {
          sendbufs[static_cast<std::size_t>(it->second)].push_back(
              std::move(w));
        }
      }
      holding = std::move(keep);

      auto received = sub.alltoallv(sendbufs);
      for (auto& from_rank : received) {
        for (auto& w : from_rank) {
          if (w.dst == me) {
            delivered.push_back(
                ser::from_bytes<Msg>({w.payload.data(), w.payload.size()}));
          } else {
            holding.push_back(std::move(w));
          }
        }
      }
    }
    YGM_CHECK(holding.empty(),
              "undelivered messages after the final phase — routing scheme "
              "and phase structure disagree");
    return delivered;
  }

 private:
  enum class phase { local, remote };

  /// In-flight representation: final destination + serialized payload.
  struct wire {
    int dst = 0;
    std::vector<std::byte> payload;

    template <class Archive>
    void serialize(Archive& ar) {
      ar & dst & payload;
    }
  };

  void phases_by_kind() {
    switch (world_->route().kind()) {
      case routing::scheme_kind::no_route:
        phases_ = {phase::remote};
        needs_remote_ = true;
        break;
      case routing::scheme_kind::node_local:
        phases_ = {phase::local, phase::remote};
        needs_local_ = needs_remote_ = true;
        break;
      case routing::scheme_kind::node_remote:
        phases_ = {phase::remote, phase::local};
        needs_local_ = needs_remote_ = true;
        break;
      case routing::scheme_kind::nlnr:
        phases_ = {phase::local, phase::remote, phase::local};
        needs_local_ = needs_remote_ = true;
        break;
    }
  }

  void build_translation(const mpisim::comm& sub,
                         std::unordered_map<int, int>& to_sub) {
    const auto world_ranks = sub.allgather(world_->rank());
    for (int i = 0; i < static_cast<int>(world_ranks.size()); ++i) {
      to_sub.emplace(world_ranks[static_cast<std::size_t>(i)], i);
    }
  }

  comm_world* world_;
  std::vector<phase> phases_;
  bool needs_local_ = false;
  bool needs_remote_ = false;
  std::optional<mpisim::comm> node_comm_;
  std::optional<mpisim::comm> remote_comm_;
  std::unordered_map<int, int> node_to_sub_;    // world rank -> node subrank
  std::unordered_map<int, int> remote_to_sub_;  // world rank -> chan subrank
};

}  // namespace ygm::core
