// Synchronous collective exchange — the ALLTOALLV implementation of the
// routing phases (paper §III-A).
//
// The paper notes the local/remote exchanges "could be implemented with
// ALLTOALLV calls", and that on systems with optimized collectives (IBM
// BG/Q Sequoia) that variant gave better bandwidth utilization. This class
// is that variant: every rank enters exchange() together with its outgoing
// messages, and the scheme's phases run as one ALLTOALLV per phase over the
// appropriate sub-communicator:
//
//   NoRoute     [ alltoallv(world) ]
//   NodeLocal   [ alltoallv(node), alltoallv(core-offset channel) ]
//   NodeRemote  [ alltoallv(core-offset channel), alltoallv(node) ]
//   NLNR        [ alltoallv(node), alltoallv({c, l} pair channel),
//                 alltoallv(node) ]
//
// For NLNR, each core belongs to exactly one remote channel — the one named
// by the unordered pair {its core offset, its node's layer offset} — which
// is how the paper's C(C-1)/2 + C channel count arises.
//
// Unlike the mailbox, this primitive is bulk-synchronous: all ranks must
// call exchange() together, and nobody leaves a phase before everyone
// finishes it. bench/abl_exchange_impl quantifies the trade against the
// asynchronous mailbox.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "core/comm_world.hpp"
#include "core/packet.hpp"
#include "ser/serialize.hpp"

namespace ygm::core {

template <class Msg>
class collective_exchange {
 public:
  /// Collective construction (splits the phase sub-communicators).
  explicit collective_exchange(comm_world& world) : world_(&world) {
    const auto& topo = world.topo();
    const int me = world.rank();

    // Local phase communicator: everyone on my node.
    phases_by_kind();
    if (needs_local_) {
      node_comm_.emplace(world.mpi().split(topo.node_of(me), topo.core_of(me)));
      build_translation(*node_comm_, node_to_sub_);
    }
    if (needs_remote_) {
      int color = 0;
      switch (world.route().kind()) {
        case routing::scheme_kind::no_route:
          color = 0;  // one global channel
          break;
        case routing::scheme_kind::node_local:
        case routing::scheme_kind::node_remote:
          color = topo.core_of(me);  // one channel per core offset
          break;
        case routing::scheme_kind::nlnr: {
          // Channel = unordered pair {core offset, layer offset}.
          const int a = topo.core_of(me);
          const int b = topo.layer_offset(topo.node_of(me));
          const int lo = a < b ? a : b;
          const int hi = a < b ? b : a;
          color = lo * topo.cores + hi;
          break;
        }
      }
      remote_comm_.emplace(world.mpi().split(color, me));
      build_translation(*remote_comm_, remote_to_sub_);
    }
  }

  /// Collective: deliver every (destination, message) pair through the
  /// scheme's phases. Returns the messages addressed to this rank.
  ///
  /// In-flight messages live in flat packet-format byte buffers (the same
  /// `(addr, len, payload)` framing the mailbox coalesces — see
  /// core/packet.hpp), one buffer per sub-rank: each phase ships ONE
  /// ALLTOALLV of std::byte instead of a vector-of-structs whose
  /// per-message payload vectors each heap-allocate on both sides.
  std::vector<Msg> exchange(std::vector<std::pair<int, Msg>> outgoing) {
    std::vector<Msg> delivered;
    std::vector<std::byte> holding;
    const int me = world_->rank();
    for (auto& [dst, msg] : outgoing) {
      YGM_CHECK(dst >= 0 && dst < world_->size(),
                "exchange destination invalid");
      if (dst == me) {
        delivered.push_back(std::move(msg));
        continue;
      }
      const packet_inplace_result rec = packet_append_inplace(
          holding, /*is_bcast=*/false, dst, len_hint_,
          [&](std::vector<std::byte>& out) { ser::append_bytes(msg, out); });
      len_hint_ = rec.payload_size;
    }

    std::vector<std::byte> keep;
    for (const phase p : phases_) {
      auto& sub = p == phase::local ? *node_comm_ : *remote_comm_;
      auto& to_sub = p == phase::local ? node_to_sub_ : remote_to_sub_;

      std::vector<std::vector<std::byte>> sendbufs(
          static_cast<std::size_t>(sub.size()));
      keep.clear();
      for (packet_reader r({holding.data(), holding.size()}); !r.done();) {
        const packet_record rec = r.next();
        const int nh = world_->route().next_hop(me, rec.addr);
        const auto it = to_sub.find(nh);
        if (it == to_sub.end()) {
          // Next hop is not in this phase's communicator: the message
          // belongs to a later phase (e.g. a same-node destination during
          // NodeRemote's remote phase).
          packet_append(keep, /*is_bcast=*/false, rec.addr, rec.payload);
        } else {
          packet_append(sendbufs[static_cast<std::size_t>(it->second)],
                        /*is_bcast=*/false, rec.addr, rec.payload);
        }
      }
      holding.swap(keep);

      const auto received = sub.alltoallv(sendbufs);
      for (const auto& from_rank : received) {
        for (packet_reader r({from_rank.data(), from_rank.size()});
             !r.done();) {
          const packet_record rec = r.next();
          if (rec.addr == me) {
            delivered.push_back(ser::from_bytes<Msg>(rec.payload));
          } else {
            packet_append(holding, /*is_bcast=*/false, rec.addr, rec.payload);
          }
        }
      }
    }
    YGM_CHECK(holding.empty(),
              "undelivered messages after the final phase — routing scheme "
              "and phase structure disagree");
    return delivered;
  }

 private:
  enum class phase { local, remote };

  void phases_by_kind() {
    switch (world_->route().kind()) {
      case routing::scheme_kind::no_route:
        phases_ = {phase::remote};
        needs_remote_ = true;
        break;
      case routing::scheme_kind::node_local:
        phases_ = {phase::local, phase::remote};
        needs_local_ = needs_remote_ = true;
        break;
      case routing::scheme_kind::node_remote:
        phases_ = {phase::remote, phase::local};
        needs_local_ = needs_remote_ = true;
        break;
      case routing::scheme_kind::nlnr:
        phases_ = {phase::local, phase::remote, phase::local};
        needs_local_ = needs_remote_ = true;
        break;
    }
  }

  void build_translation(const mpisim::comm& sub,
                         std::unordered_map<int, int>& to_sub) {
    const auto world_ranks = sub.allgather(world_->rank());
    for (int i = 0; i < static_cast<int>(world_ranks.size()); ++i) {
      to_sub.emplace(world_ranks[static_cast<std::size_t>(i)], i);
    }
  }

  comm_world* world_;
  std::vector<phase> phases_;
  bool needs_local_ = false;
  bool needs_remote_ = false;
  std::optional<mpisim::comm> node_comm_;
  std::optional<mpisim::comm> remote_comm_;
  std::unordered_map<int, int> node_to_sub_;    // world rank -> node subrank
  std::unordered_map<int, int> remote_to_sub_;  // world rank -> chan subrank
  std::size_t len_hint_ = 0;  // previous payload size seeds length-slot width
};

}  // namespace ygm::core
