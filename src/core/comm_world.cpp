#include "core/comm_world.hpp"

#include <cstdlib>

#include "common/assert.hpp"
#include "core/launch.hpp"
#include "core/progress.hpp"
#include "telemetry/telemetry.hpp"

namespace ygm::core {

namespace {

// Mailbox tag blocks start high enough that applications can use low tags
// for their own direct mpisim traffic on the same communicator.
constexpr int kTagBlockBase = 1 << 20;

routing::topology derive_topology(const mpisim::comm& c, int cores_per_node) {
  YGM_CHECK(cores_per_node >= 1, "cores_per_node must be >= 1");
  YGM_CHECK(c.size() % cores_per_node == 0,
            "communicator size must be a multiple of cores_per_node");
  return routing::topology(c.size() / cores_per_node, cores_per_node);
}

// run_options::credit_bytes > YGM_CREDIT_BYTES > 1 MiB (the launch.hpp
// precedence contract); 0 disables credit gating.
std::size_t resolve_credit_bytes() {
  if (const auto& o = ygm::detail::launch_credit_bytes(); o.has_value()) {
    return *o;
  }
  const char* v = std::getenv("YGM_CREDIT_BYTES");
  if (v != nullptr && *v != '\0') {
    char* end = nullptr;
    const unsigned long long n = std::strtoull(v, &end, 10);
    if (end != nullptr && *end == '\0') return static_cast<std::size_t>(n);
  }
  return std::size_t{1} << 20;  // 1 MiB
}

}  // namespace

comm_world::comm_world(mpisim::comm& c, routing::topology topo,
                       routing::scheme_kind scheme)
    : comm_(&c), router_(scheme, topo), next_tag_(kTagBlockBase) {
  YGM_CHECK(topo.num_ranks() == c.size(),
            "topology does not cover the communicator");
  // A timed launch (run_options::virtual_network) makes every world built
  // during the run timed, identically on all ranks — the same contract
  // attach_virtual_network places on callers.
  if (const auto& np = ygm::detail::launch_virtual_network(); np.has_value()) {
    vnet_ = np;
  }
  credit_bytes_ = resolve_credit_bytes();
  // The progress station exists in every mode (the ygm::progress facade
  // drives it from the rank thread in polling mode); it is handed to the
  // engine only when ygm::launch installed one in this process.
  station_ = std::make_shared<progress::station>(progress::current(),
                                                 &c.get_endpoint());
  if (progress::engine* eng = progress::current()) eng->adopt(station_);
  // Stamp the world's shape and routing scheme onto rank 0's timeline, so
  // offline analyzers (tools/ygm_trace) can reconstruct expected hop counts
  // from the trace file alone.
  if (c.rank() == 0 && telemetry::tls() != nullptr) {
    telemetry::instant_marker cfg("world.config", "nodes", "cores");
    cfg.record(static_cast<std::uint64_t>(topo.nodes),
               static_cast<std::uint64_t>(topo.cores));
    telemetry::instant("world.scheme", "scheme",
                       static_cast<std::uint64_t>(scheme));
  }
}

comm_world::comm_world(mpisim::comm& c, int cores_per_node,
                       routing::scheme_kind scheme)
    : comm_world(c, derive_topology(c, cores_per_node), scheme) {}

comm_world::~comm_world() {
  // After this returns the engine can never touch this world (or the
  // endpoint underneath it) again; mailboxes have already unregistered
  // their pumps in their own destructors.
  station_->shutdown();
}

int comm_world::reserve_tag_block(int count) {
  YGM_CHECK(count > 0, "tag block must be non-empty");
  const int base = next_tag_;
  YGM_CHECK(base + count <= mpisim::tag_ub,
            "tag space exhausted: too many mailboxes on one comm_world");
  next_tag_ += count;
  return base;
}

}  // namespace ygm::core
