// comm_world: the YGM view of the machine.
//
// Binds together the transport (an mpisim communicator), the (node, core)
// topology the ranks are laid out on, and the routing scheme every mailbox
// on this world uses. Also hands out disjoint tag blocks so several
// mailboxes (and their termination detectors) can share one communicator
// without interfering — YGM applications routinely layer multiple mailboxes
// (e.g. connected components uses one for labels and broadcasts).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>

#include "mpisim/comm.hpp"
#include "net/params.hpp"
#include "routing/router.hpp"

namespace ygm::progress {
class station;
}

namespace ygm::core {

class comm_world {
 public:
  /// The communicator's ranks must exactly cover the topology, laid out
  /// node-major (rank = node*C + core), matching typical MPI blocked
  /// placement of consecutive ranks on one physical node.
  comm_world(mpisim::comm& c, routing::topology topo,
             routing::scheme_kind scheme);

  /// Convenience: derive the topology from the communicator size and a
  /// cores-per-node count (size must divide evenly).
  comm_world(mpisim::comm& c, int cores_per_node,
             routing::scheme_kind scheme);

  ~comm_world();

  comm_world(const comm_world&) = delete;
  comm_world& operator=(const comm_world&) = delete;

  int rank() const noexcept { return comm_->rank(); }
  int size() const noexcept { return comm_->size(); }
  int node() const noexcept { return topo().node_of(rank()); }
  int core() const noexcept { return topo().core_of(rank()); }

  const routing::topology& topo() const noexcept { return router_.topo(); }
  const routing::router& route() const noexcept { return router_; }
  mpisim::comm& mpi() const noexcept { return *comm_; }

  /// Reserve a block of point-to-point tags (for a mailbox's data plane and
  /// termination plane). Blocks are disjoint per call, but identical across
  /// ranks only if every rank constructs its mailboxes in the same order —
  /// the same contract MPI communicators place on collective calls.
  int reserve_tag_block(int count);

  // Passthroughs used by applications between communication phases.
  void barrier() const { comm_->barrier(); }
  double wtime() const { return comm_->wtime(); }

  // ------------------------------------------------------ progress control
  //
  // The ygm::progress facade (core/progress.hpp) is the supported surface:
  // wrap compute regions in ygm::progress::guard, call
  // ygm::progress::drain/quiesce instead of reaching for raw mailbox
  // poll_incoming()/flush()/wait_empty() passthroughs. The station exists in
  // every mode; it is registered with a progress engine only when
  // ygm::launch installed one in this process (progress_mode = engine).

  /// This rank's progress station (always present; mailboxes register their
  /// pumps here, the engine and the facade drive them).
  progress::station& progress_station() const noexcept { return *station_; }

  // --------------------------------------------------- debug / chaos knobs

  /// When set, mailboxes round-trip rank-local deliveries through ser::
  /// instead of handing the object straight to the callback. Self-sends
  /// normally bypass serialization entirely, so an asymmetric serialize()
  /// only misbehaves once a message happens to cross ranks — this knob makes
  /// single-rank runs and chaos trials exercise the same code path as remote
  /// traffic.
  void set_serialize_self_sends(bool on) noexcept {
    serialize_self_sends_ = on;
  }
  bool serialize_self_sends() const noexcept { return serialize_self_sends_; }

  // ------------------------------------------------------- flow control

  /// Per-destination credit budget in bytes for mailboxes built on this
  /// world (docs/BACKPRESSURE.md). Resolved at construction as
  /// run_options::credit_bytes > YGM_CREDIT_BYTES > 1 MiB; 0 disables
  /// credit gating. Override BEFORE building mailboxes (they snapshot it,
  /// clamped to at least twice their flush capacity).
  std::size_t credit_bytes() const noexcept { return credit_bytes_; }
  void set_credit_bytes(std::size_t bytes) noexcept { credit_bytes_ = bytes; }

  // -------------------------------------------------------- virtual time
  //
  // Optional conservative virtual-time simulation: when a network model is
  // attached (identically on every rank, BEFORE any mailbox is built), the
  // mailboxes charge this rank's virtual clock for every transfer and
  // message-handling event, and packet arrival times ride the wire — so an
  // executed run also yields the time the SAME run would have taken on the
  // modeled cluster, with true causal critical paths (unlike the analytic
  // evaluator's symmetric average). Clocks only ever advance, so no
  // rollback is needed.

  /// Attach the model (collective by convention; same params everywhere).
  void attach_virtual_network(const net::network_params& np) { vnet_ = np; }

  bool timed() const noexcept { return vnet_.has_value(); }
  const net::network_params& virtual_network() const { return *vnet_; }

  /// This rank's virtual clock (seconds on the modeled machine).
  double virtual_now() const noexcept { return vclock_; }

  /// Advance the clock to an event time (packet arrival).
  void virtual_advance_to(double t) noexcept {
    vclock_ = std::max(vclock_, t);
  }

  /// Charge local CPU handling for n message events.
  void virtual_charge_events(std::uint64_t n) noexcept {
    if (vnet_) vclock_ += static_cast<double>(n) * vnet_->cpu_s_per_msg;
  }

  /// Charge one outgoing packet; returns its arrival time at the receiver.
  double virtual_charge_packet(std::size_t bytes, bool remote) noexcept {
    if (!vnet_) return 0;
    const auto& link = remote ? vnet_->remote : vnet_->local;
    vclock_ += link.transfer_time(static_cast<double>(bytes));
    return vclock_;
  }

  /// Collective: the simulated completion time of the run so far (max over
  /// ranks).
  double virtual_elapsed() const {
    return comm_->allreduce(vclock_, mpisim::op_max{});
  }

 private:
  mpisim::comm* comm_;
  routing::router router_;
  std::shared_ptr<progress::station> station_;
  int next_tag_;
  bool serialize_self_sends_ = false;
  std::size_t credit_bytes_ = 0;  // resolved in the constructor
  std::optional<net::network_params> vnet_;
  double vclock_ = 0;
};

}  // namespace ygm::core
