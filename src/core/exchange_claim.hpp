// RAII claim on a mailbox's "inside an exchange" flag.
//
// The flag has two jobs. (1) Reentrancy: a receive callback that drives
// progress itself (poll()/test_empty() — the external-work-queue pattern)
// must not re-enter the drain loop, or it recurses once per queued packet.
// (2) Engine exclusion: with a progress engine attached, the engine thread
// and the rank thread can both arrive at the same mailbox; whoever claims
// the flag first drains, the other backs off without blocking.
//
// The claim is exception-safe either way: the destructor releases the flag
// only if this claim acquired it, so a throwing receive callback can no
// longer leave the mailbox wedged with the flag stuck true — which the
// previous plain-bool set/clear did.
//
// `concurrent` selects the acquisition strength. Engine mode needs the
// atomic exchange (two threads can race for the claim). Polling mode is
// single-threaded — only reentrancy is possible — so a relaxed
// load-then-store suffices; this matters because test_empty()/poll() sit
// in the wait_empty spin and a locked RMW per iteration is measurable on
// the mailbox hot path.
#pragma once

#include <atomic>

namespace ygm::core {

class exchange_claim {
 public:
  explicit exchange_claim(std::atomic<bool>& flag,
                          bool concurrent = true) noexcept
      : flag_(flag) {
    if (concurrent) {
      entered_ = !flag.exchange(true, std::memory_order_acq_rel);
    } else if (!flag.load(std::memory_order_relaxed)) {
      flag.store(true, std::memory_order_relaxed);
      entered_ = true;
    }
  }

  ~exchange_claim() {
    if (entered_) flag_.store(false, std::memory_order_release);
  }

  exchange_claim(const exchange_claim&) = delete;
  exchange_claim& operator=(const exchange_claim&) = delete;

  /// True when this claim took the flag (the caller owns the drain); false
  /// when someone else — an outer frame or the other thread — holds it.
  bool entered() const noexcept { return entered_; }

 private:
  std::atomic<bool>& flag_;
  bool entered_ = false;
};

}  // namespace ygm::core
