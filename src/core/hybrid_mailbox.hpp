// Hybrid "MPI + threads" mailbox (paper §VII, ongoing work).
//
// The MPI-only mailbox pays an on-node memory copy per local routing hop:
// every local exchange serializes records into a packet that the
// destination parses back out. The paper's hybrid direction gives node-local
// ranks a shared address space so those copies disappear. In this
// reproduction ranks already ARE threads of one process, so the hybrid is
// implemented faithfully: each rank owns a shared inbox, node-local hops
// hand over a reference-counted payload (no serialization, no packet
// framing, and a broadcast's local fan-out shares ONE buffer), while remote
// hops keep the coalesced-packet path over the transport.
//
// Semantics match core::mailbox exactly — same routing schemes, same
// termination counting (shared-queue pushes and pops count as hops) — so
// the two are interchangeable; bench/abl_hybrid measures the difference.
//
// Process-per-rank transports grade the optimization by locality
// capability (transport::locality_level) instead of losing it outright:
// with node_local_map (the shm backend) peers cannot share pointers, but
// bytes cross through shared mappings, so node-local hops post one
// per-record direct message — a single serialize into a pooled buffer the
// transport rings carry in place, skipping the packet coalescing/framing
// layer entirely. Only locality none (socket) falls all the way back to
// the coalesced remote path for every hop.
//
// Trade-off (also true of the paper's design): local traffic is no longer
// coalesced, which costs nothing in shared memory but means the capacity
// bound applies to remote buffers only.
//
// Progress engine: the hybrid registers a pump exactly like core::mailbox
// (see its header for the locking/handoff discipline). The engine drains
// both the shared inbox and the remote packet stream, forwards intermediary
// records in place, and defers deliveries addressed to this rank onto a
// bounded ring of shared_records — no re-serialization, the handoff reuses
// the reference-counted payloads the hybrid already carries.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "core/buffer_pool.hpp"
#include "core/comm_world.hpp"
#include "core/exchange_claim.hpp"
#include "core/mailbox.hpp"
#include "core/progress.hpp"
#include "core/packet.hpp"
#include "core/stats.hpp"
#include "core/termination.hpp"
#include "ser/serialize.hpp"
#include "telemetry/causal.hpp"
#include "telemetry/telemetry.hpp"

namespace ygm::core {

namespace detail {

/// One record handed over in shared memory: the serialized payload is
/// reference-counted so broadcast fan-out and multi-hop forwards share it.
struct shared_record {
  std::shared_ptr<const std::vector<std::byte>> payload;
  int addr = -1;
  bool is_bcast = false;
  double arrival_vtime = 0;  ///< virtual-time arrival stamp (timed worlds)
  // Causal tracing: sampled records carry their context through the shared
  // handoff the same way the annotation record carries it over the wire.
  bool traced = false;
  telemetry::causal::wire_ctx tctx{};
  double trace_push_us = 0;  ///< inbox push time (handoff residency start)
};

/// A rank's node-local inbox (multi-producer, single-consumer).
class shared_inbox {
 public:
  void push(shared_record&& rec) {
    bytes_.fetch_add(rec.payload->size(), std::memory_order_relaxed);
    std::lock_guard lock(mtx_);
    q_.push_back(std::move(rec));
  }

  /// Move everything into `out` (cleared first). The caller's vector swaps
  /// in as the new queue storage, so the two buffers ping-pong and the
  /// steady state allocates nothing.
  void drain(std::vector<shared_record>& out) {
    out.clear();
    {
      std::lock_guard lock(mtx_);
      q_.swap(out);
    }
    std::size_t drained = 0;
    for (const auto& rec : out) drained += rec.payload->size();
    bytes_.fetch_sub(drained, std::memory_order_relaxed);
  }

  /// Undelivered payload bytes currently queued. Peers read this for
  /// flow control: the zero-copy handoff has no reverse packet traffic to
  /// piggyback credit on, so the budget is enforced against the receiver's
  /// inbox depth directly (docs/BACKPRESSURE.md).
  std::size_t queued_bytes() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mtx_;
  std::vector<shared_record> q_;
  std::atomic<std::size_t> bytes_{0};
};

}  // namespace detail

template <class Msg>
class hybrid_mailbox {
 public:
  using recv_callback = std::function<void(const Msg&)>;

  hybrid_mailbox(comm_world& world, recv_callback on_recv,
                 std::size_t capacity_bytes = default_mailbox_capacity)
      : world_(&world),
        on_recv_(std::move(on_recv)),
        capacity_(capacity_bytes),
        data_tag_(world.reserve_tag_block(3 + termination_detector::tags_used)),
        term_(world, data_tag_ + 3),
        inbox_(std::make_unique<detail::shared_inbox>()),
        buffers_(static_cast<std::size_t>(world.size())),
        record_counts_(static_cast<std::size_t>(world.size()), 0),
        credit_budget_(world.credit_bytes() == 0
                           ? 0
                           : std::max(world.credit_bytes(), 2 * capacity_bytes)),
        credit_ack_threshold_(credit_budget_ / 4),
        credit_used_(static_cast<std::size_t>(world.size()), 0),
        credit_owed_(static_cast<std::size_t>(world.size()), 0),
        pending_traces_(static_cast<std::size_t>(world.size())) {
    YGM_CHECK(capacity_ > 0, "mailbox capacity must be positive");
    YGM_CHECK(on_recv_ != nullptr, "mailbox requires a receive callback");
    YGM_CHECK(world.size() < packet_credit_escape,
              "world size collides with the reserved escape-record ranks");
    // Collective setup keyed off the transport's locality capability
    // (transport::locality_level). shared_address_space (inproc): publish
    // every rank's inbox address and hand node-local records over as
    // reference-counted pointers — the full zero-copy path. node_local_map
    // (shm): pointers would alias foreign address spaces, but bytes cross
    // through shared mappings, so node-local records take the per-record
    // direct path (one serialize, no packet coalescing/framing layer, the
    // transport's ring delivers the bytes in place). none (socket): every
    // hop takes the serializing packet path — semantics are preserved,
    // only the copy-saving optimizations are lost.
    const auto locality = world.mpi().get_endpoint().locality();
    shared_space_ =
        locality == transport::locality_level::shared_address_space;
    local_map_ = locality == transport::locality_level::node_local_map;
    if (shared_space_) {
      const auto ptrs = world.mpi().allgather(
          reinterpret_cast<std::uintptr_t>(inbox_.get()));
      peer_inboxes_.resize(ptrs.size());
      for (std::size_t r = 0; r < ptrs.size(); ++r) {
        peer_inboxes_[r] =
            reinterpret_cast<detail::shared_inbox*>(ptrs[r]);
      }
    }
    // Progress-station registration, mirroring core::mailbox (engine mode
    // requires an attached engine and an untimed world).
    station_ = &world.progress_station();
    engine_mode_ = station_->engine_attached() && !world.timed();
    pump_ = std::make_shared<progress::pump>();
    pump_->rank_poll = [this] { poll(); };
    pump_->rank_quiesce = [this] { wait_empty(); };
    if (engine_mode_) {
      deferred_ = std::make_unique<
          progress::mpsc_ring<std::vector<detail::shared_record>>>(
          station_->attached_engine()->opts().ring_slots);
      pump_->engine_advance = [this](bool inline_deliveries) {
        return engine_advance(inline_deliveries);
      };
    }
    station_->add_pump(pump_);
  }

  hybrid_mailbox(const hybrid_mailbox&) = delete;
  hybrid_mailbox& operator=(const hybrid_mailbox&) = delete;

  /// Destruction is collective: peers hold raw pointers to this rank's
  /// shared inbox, so ranks must stop pushing before any inbox dies. The
  /// barrier enforces that; callers should have reached quiescence
  /// (wait_empty) first. Swallows transport errors so unwinding after an
  /// aborted world cannot terminate.
  ~hybrid_mailbox() {
    // Detach from the engine before anything else: after remove_pump the
    // engine can never touch this mailbox again, so the stats publish and
    // the collective barrier below run single-threaded.
    station_->remove_pump(pump_);
    if (auto* rec = telemetry::tls()) {
      stats_.publish(rec->metrics());
      rec->metrics().counter("hybrid.shared_handoffs") += shared_handoffs_;
      rec->metrics().counter("hybrid.local_direct") += local_direct_;
    }
    try {
      world_->mpi().barrier();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
  }

  // ------------------------------------------------------------- sending

  void send(int dest, const Msg& m) {
    YGM_CHECK(dest >= 0 && dest < world_->size(), "send destination invalid");
    auto lk = engine_lock();
    ++stats_.app_sends;
    if (dest == world_->rank()) {
      if (world_->serialize_self_sends()) {
        // Debug/chaos path: self-sends round-trip through ser:: like any
        // remote message, so asymmetric serialize() bugs surface locally.
        std::vector<std::byte> buf;
        ser::append_bytes(m, buf);
        deliver(buf);
        return;
      }
      ++stats_.deliveries;
      telemetry::add(telemetry::fast_counter::deliveries);
      on_recv_(m);
      return;
    }
    // Same deterministic sampling as core::mailbox (self-sends excluded).
    telemetry::causal::wire_ctx tc;
    const bool traced = telemetry::causal::try_begin(
        world_->rank(), trace_seq_++, static_cast<std::uint32_t>(data_tag_),
        tc);
    // Route first: only a node-local next hop needs the reference-counted
    // shared record. A remote next hop serializes in place straight into
    // the coalescing buffer — no shared_ptr, no payload vector.
    const int nh = world_->route().next_hop(world_->rank(), dest);
    credit_gate(nh, lk);
    const bool node_local = world_->topo().same_node(world_->rank(), nh);
    if (shared_space_ && node_local) {
      auto payload = std::make_shared<std::vector<std::byte>>();
      ser::append_bytes(m, *payload);
      len_hint_ = payload->size();  // seeds the local credit gate's estimate
      detail::shared_record rec{std::move(payload), dest, false};
      rec.traced = traced;
      rec.tctx = tc;
      forward(nh, std::move(rec));
    } else if (local_map_ && node_local) {
      // Serialize once, straight into the direct record's pooled buffer —
      // no shared_ptr, no packet framing (post_local_direct below).
      ++stats_.hops_sent;
      world_->virtual_charge_events(1);
      post_local_direct(nh, /*is_bcast=*/false, dest, traced, tc,
                        [&](std::vector<std::byte>& out) {
                          ser::append_bytes(m, out);
                        });
    } else {
      ++stats_.hops_sent;
      world_->virtual_charge_events(1);
      std::size_t before = 0;
      auto& buf = begin_record(nh, before);
      if (traced) append_trace_escape(buf, tc);
      const packet_inplace_result rec = packet_append_inplace(
          buf, /*is_bcast=*/false, dest, len_hint_,
          [&](std::vector<std::byte>& out) { ser::append_bytes(m, out); });
      len_hint_ = rec.payload_size;
      if (traced) note_trace_pending(nh, tc, rec.payload_size);
      finish_record(nh, buf, before);
      if (in_exchange_.load(std::memory_order_relaxed) &&
        queued_bytes_ >= capacity_) {
      flush();
    }
    }
    maybe_exchange();
  }

  void send_bcast(const Msg& m) {
    auto lk = engine_lock();
    ++stats_.app_bcasts;
    auto payload = std::make_shared<std::vector<std::byte>>();
    ser::append_bytes(m, *payload);
    const int me = world_->rank();
    const auto hops = world_->route().bcast_next_hops(me, me);
    // Gate every hop before the first handoff: injection-side backpressure
    // only, and never mid-fan-out.
    for (const int nh : hops) credit_gate(nh, lk);
    for (const int nh : hops) {
      forward(nh, detail::shared_record{payload, me, true});
    }
    maybe_exchange();
  }

  // ------------------------------------------------------------ progress

  void poll() {
    // Lock-free early-out while the engine (or an outer frame) is mid-drain
    // — see core::mailbox::poll(); this read is why in_exchange_ is atomic.
    if (engine_mode_ && in_exchange_.load(std::memory_order_acquire)) return;
    const auto lk = engine_lock();
    if (engine_mode_) drain_deferred_locked();
    poll_incoming();
    if (queued_bytes_ >= capacity_) flush();
  }

  void flush() {
    const auto lk = engine_lock();
    const std::size_t flushed_bytes = queued_bytes_;
    // Live occupancy gauge at per-flush cost (see core::mailbox::flush).
    telemetry::live::gauge_set(telemetry::live::gauge::queued_bytes,
                               static_cast<double>(flushed_bytes));
    bool any = false;
    for (int nh : nonempty_) {
      flush_buffer(nh);
      any = true;
    }
    nonempty_.clear();
    queued_bytes_ = 0;
    if (any) {
      ++stats_.flushes;
      telemetry::instant("mailbox.flush", "bytes", flushed_bytes,
                         world_->timed() ? world_->virtual_now() * 1e6 : -1);
    }
  }

  // ---------------------------------------------------------- termination

  bool test_empty() {
    auto lk = engine_lock();
    return test_empty_locked();
  }

  /// Blocking loop over the same tree detector as test_empty() — see
  /// core::mailbox::wait_empty() for why the two must share one protocol
  /// (mixing the old blocking-allreduce path with test_empty() across ranks
  /// deadlocked).
  void wait_empty() {
    telemetry::span sp("mailbox.wait_empty");
    telemetry::causal::stall_watchdog wd;
    if (!engine_mode_) {
      while (!test_empty()) {
        wd.poll({stats_.hops_sent, stats_.hops_received, term_.rounds(),
                 queued_bytes_, credit_budget_, credit_max_in_flight(),
                 stats_.credit_stalls});
        std::this_thread::yield();
      }
    } else {
      // Park between tests; the engine may advance this mailbox (including
      // termination rounds) only while parked — see core::mailbox.
      std::unique_lock lk(mx_);
      while (!test_empty_locked()) {
        pump_->parked.store(true, std::memory_order_release);
        park_cv_.wait_for(lk, std::chrono::milliseconds(1));
        pump_->parked.store(false, std::memory_order_release);
        wd.poll({stats_.hops_sent, stats_.hops_received, term_.rounds(),
                 queued_bytes_, credit_budget_, credit_max_in_flight(),
                 stats_.credit_stalls});
      }
    }
    sp.arg("hops_sent", stats_.hops_sent);
    if (world_->timed()) sp.vtime_seconds(world_->virtual_now());
  }

  const mailbox_stats& stats() const noexcept { return stats_; }
  comm_world& world() const noexcept { return *world_; }

  /// Zero-copy local handoffs performed (the copies the hybrid saved).
  std::uint64_t shared_handoffs() const noexcept { return shared_handoffs_; }

  /// Effective per-destination flow-control budget (0 = credit disabled);
  /// clamped to >= 2x capacity like core::mailbox.
  std::size_t credit_budget() const noexcept { return credit_budget_; }
  /// High-water mark of the bounded quantity: unacked in-flight bytes on
  /// remote links, destination-inbox depth on zero-copy local links.
  std::uint64_t credit_peak_in_flight() const noexcept { return credit_peak_; }

 private:
  // Route one record to its next hop: shared-memory handoff if local,
  // coalescing buffer if remote.
  void forward(int next_hop, detail::shared_record&& rec) {
    YGM_ASSERT(next_hop != world_->rank());
    ++stats_.hops_sent;
    world_->virtual_charge_events(1);
    if (shared_space_ && world_->topo().same_node(world_->rank(), next_hop)) {
      ++shared_handoffs_;
      ++stats_.local_packets;  // one handoff ~ one (unserialized) packet
      stats_.local_bytes += rec.payload->size();
      telemetry::sample(telemetry::fast_histogram::local_packet_bytes,
                        static_cast<double>(rec.payload->size()));
      if (rec.traced) {
        telemetry::causal::record_hop(rec.tctx,
                                      telemetry::causal::hop_kind::enqueue, -1,
                                      rec.payload->size());
        rec.trace_push_us = telemetry::now_us();
      }
      if (world_->timed()) {
        // A zero-copy handoff still crosses shared memory once.
        rec.arrival_vtime =
            world_->virtual_charge_packet(rec.payload->size(),
                                          /*remote=*/false);
      }
      peer_inboxes_[static_cast<std::size_t>(next_hop)]->push(std::move(rec));
      if (credit_on()) {
        // Track the inbox high-water mark the same way the remote links
        // track unacked bytes: it is the quantity the budget bounds.
        const std::size_t q =
            peer_inboxes_[static_cast<std::size_t>(next_hop)]->queued_bytes();
        if (q > credit_peak_) credit_peak_ = q;
      }
      return;
    }
    if (local_map_ && world_->topo().same_node(world_->rank(), next_hop)) {
      // The payload already exists (arrived or fanned out), so the fill
      // step is one copy into the direct buffer — still no framing layer
      // and no coalescing latency on the node-local leg. Broadcast copies
      // never carry a trace (matches the shared-handoff path).
      post_local_direct(next_hop, rec.is_bcast, rec.addr,
                        rec.traced && !rec.is_bcast, rec.tctx,
                        [&](std::vector<std::byte>& out) {
                          out.insert(out.end(), rec.payload->begin(),
                                     rec.payload->end());
                        });
      return;
    }
    std::size_t before = 0;
    auto& buf = begin_record(next_hop, before);
    if (rec.traced) {
      // Annotation record ahead of the message, exactly like core::mailbox
      // (counted in wire bytes, excluded from hop counts).
      append_trace_escape(buf, rec.tctx);
      note_trace_pending(next_hop, rec.tctx, rec.payload->size());
    }
    packet_append(buf, rec.is_bcast, rec.addr,
                  {rec.payload->data(), rec.payload->size()});
    finish_record(next_hop, buf, before);
    if (in_exchange_.load(std::memory_order_relaxed) &&
        queued_bytes_ >= capacity_) {
      flush();
    }
  }

  // Shared record-append pieces (mirror core::mailbox — see docs/PERF.md).

  /// `before_out` is sampled ahead of the arrival-stamp reservation: the
  /// 8-byte stamp must count toward queued_bytes_ (capacity and byte
  /// accounting agree with actual wire bytes — same audit as core::mailbox).
  std::vector<std::byte>& begin_record(int next_hop, std::size_t& before_out) {
    auto& buf = buffers_[static_cast<std::size_t>(next_hop)];
    before_out = buf.size();
    if (buf.empty()) {
      if (buf.capacity() == 0) {
        buf = buffer_pool::local().acquire(
            std::min<std::size_t>(capacity_, 4096));
      }
      nonempty_.push_back(next_hop);
      if (world_->timed()) buf.resize(sizeof(double));  // arrival-time slot
    }
    return buf;
  }

  void finish_record(int next_hop, const std::vector<std::byte>& buf,
                     std::size_t before) {
    queued_bytes_ += buf.size() - before;
    ++record_counts_[static_cast<std::size_t>(next_hop)];
  }

  /// Live-sketch scheme index (see core::mailbox::scheme_index).
  unsigned scheme_index() const noexcept {
    return static_cast<unsigned>(world_->route().kind());
  }

  /// Live end-to-end latency feed at delivery, from the origin's wire stamp
  /// (see core::mailbox::note_live_e2e for the clock contract).
  void note_live_e2e(const telemetry::causal::wire_ctx& c) noexcept {
    if (c.origin_us <= 0) return;
    const double e2e_us = telemetry::now_us() - c.origin_us;
    if (e2e_us < 0) return;
    telemetry::live::note_latency(scheme_index(),
                                  telemetry::live::latency_kind::e2e, e2e_us);
  }

  void append_trace_escape(std::vector<std::byte>& buf,
                           const telemetry::causal::wire_ctx& trace) {
    trace_scratch_.clear();
    telemetry::causal::encode_wire(trace, trace_scratch_);
    packet_append(buf, /*is_bcast=*/false, packet_trace_escape,
                  trace_scratch_);
    telemetry::count("trace.annotated_records");
  }

  void note_trace_pending(int next_hop,
                          const telemetry::causal::wire_ctx& trace,
                          std::size_t payload_bytes) {
    telemetry::causal::record_hop(trace, telemetry::causal::hop_kind::enqueue,
                                  -1, payload_bytes);
    pending_traces_[static_cast<std::size_t>(next_hop)].push_back(
        {trace, telemetry::now_us(),
         static_cast<std::uint32_t>(payload_bytes)});
  }

  void maybe_exchange() {
    if (queued_bytes_ >= capacity_ &&
        !in_exchange_.load(std::memory_order_relaxed)) {
      exchange_claim claim(in_exchange_, engine_mode_);
      if (!claim.entered()) return;  // outer frame owns the drain
      telemetry::span sp("mailbox.exchange");
      sp.arg("queued_bytes", queued_bytes_);
      sp.sample_into(telemetry::fast_histogram::exchange_us);
      flush();
      drain_incoming();
      if (world_->timed()) sp.vtime_seconds(world_->virtual_now());
    }
  }

  // -------------------------------------------------------- flow control
  //
  // Remote links run the same credit protocol as core::mailbox: packets
  // are charged at flush and the receiver returns the bytes (piggybacked
  // packet_credit_escape record, or a standalone ack on credit_tag()). The
  // zero-copy local handoff has no reverse packet stream to piggyback on,
  // so local links are bounded directly against the destination inbox's
  // byte depth — the shared address space makes the receiver's queue
  // observable, which is exactly the signal credit acks reconstruct for
  // remote links. Injection only (send/send_bcast): transit forwarding and
  // nested sends from callbacks are never gated (docs/BACKPRESSURE.md).

  bool credit_on() const noexcept { return credit_budget_ != 0; }
  int credit_tag() const noexcept { return data_tag_ + 1; }

  bool credit_link_local(int nh) const {
    return shared_space_ && world_->topo().same_node(world_->rank(), nh);
  }

  /// Node-local link on a node_local_map transport: per-record direct
  /// messages with remote-style credit accounting (the receiver's queue
  /// depth is not observable across processes, so bytes are charged at
  /// post and returned by ack exactly like a coalesced remote link).
  bool credit_link_direct(int nh) const {
    return local_map_ && world_->topo().same_node(world_->rank(), nh);
  }

  /// Max unacked bytes across remote links (stall reports / postmortem).
  std::uint64_t credit_max_in_flight() const noexcept {
    if (!credit_on()) return 0;
    return *std::max_element(credit_used_.begin(), credit_used_.end());
  }

  /// Caller-side backpressure; see core::mailbox::credit_gate for the
  /// stall-loop discipline (drain + ack + engine-lock release per spin).
  void credit_gate(int next_hop, std::unique_lock<std::recursive_mutex>& lk) {
    if (!credit_on()) return;
    if (in_exchange_.load(std::memory_order_relaxed)) return;
    const std::size_t hop = static_cast<std::size_t>(next_hop);
    const bool local = credit_link_local(next_hop);
    const bool direct = credit_link_direct(next_hop);
    const std::size_t next_cost =
        packet_record_size(next_hop, len_hint_) + sizeof(double) +
        packet_record_size(packet_trace_escape,
                           telemetry::causal::wire_ctx_bytes) +
        packet_record_size(packet_credit_escape, sizeof(std::uint64_t));
    const auto over = [&] {
      if (local) {
        // len_hint_ tracks the previous payload size on this path too, so
        // steady streams never push the inbox past the budget. An empty
        // inbox always admits one record (a payload larger than the whole
        // budget must not livelock — the consumer drains independently).
        const std::size_t q = peer_inboxes_[hop]->queued_bytes();
        return q != 0 && q + len_hint_ > credit_budget_;
      }
      if (direct) {
        // Uncoalesced link: the next record costs its payload plus the
        // fixed direct header (post_local_direct's layout). Idle-link
        // exception as below — one record may always be in flight.
        if (credit_used_[hop] == 0) return false;
        constexpr std::size_t direct_header =
            1 + sizeof(std::int32_t) + sizeof(double) +
            telemetry::causal::wire_ctx_bytes;
        return credit_used_[hop] + len_hint_ + direct_header >
               credit_budget_;
      }
      // Idle-link exception, as in core::mailbox::credit_gate: one record
      // may always be in flight or budgets below one record livelock.
      if (credit_used_[hop] == 0 && buffers_[hop].empty()) return false;
      return credit_used_[hop] + buffers_[hop].size() + next_cost >
             credit_budget_;
    };
    if (!over()) [[likely]] return;
    ++stats_.credit_stalls;
    const double start_us = telemetry::now_us();
    do {
      drain_credit_acks();
      poll_incoming();
      flush_credit_acks(/*force=*/true);
      // Remote deficit that is entirely our own unflushed buffer: ship it
      // so the receiver can ack it (see core::mailbox::credit_gate).
      // Mirrors flush()'s bookkeeping for the one link.
      if (!local && credit_used_[hop] == 0 && !buffers_[hop].empty()) {
        queued_bytes_ -= buffers_[hop].size();
        nonempty_.erase(
            std::find(nonempty_.begin(), nonempty_.end(), next_hop));
        flush_buffer(next_hop);
      }
      if (lk.owns_lock()) {
        drain_deferred_locked();
        lk.unlock();
        std::this_thread::yield();
        lk.lock();
      } else {
        std::this_thread::yield();
      }
    } while (over());
    telemetry::causal::record_credit_stall(
        next_hop, start_us,
        local ? peer_inboxes_[hop]->queued_bytes() : credit_used_[hop]);
  }

  void credit_charge(int nh, std::size_t bytes) {
    if (!credit_on()) return;
    auto& used = credit_used_[static_cast<std::size_t>(nh)];
    used += bytes;
    if (used > credit_peak_) credit_peak_ = used;
    // Live flow-control gauge (see core::mailbox::credit_charge).
    telemetry::live::gauge_set(telemetry::live::gauge::credit_used,
                               static_cast<double>(used));
  }

  void credit_consume_ack(int from, std::uint64_t amount) {
    auto& used = credit_used_[static_cast<std::size_t>(from)];
    used -= std::min(used, amount);
    telemetry::live::gauge_set(telemetry::live::gauge::credit_used,
                               static_cast<double>(used));
  }

  void drain_credit_acks() {
    if (!credit_on()) return;
    auto& mpi = world_->mpi();
    while (auto st = mpi.iprobe(mpisim::any_source, credit_tag())) {
      auto ack = mpi.recv_bytes(st->source, credit_tag());
      std::uint64_t amount = 0;
      YGM_CHECK(ack.size() == sizeof(amount), "malformed credit ack");
      std::memcpy(&amount, ack.data(), sizeof(amount));
      credit_consume_ack(st->source, amount);
      buffer_pool::local().release(std::move(ack));
    }
  }

  void flush_credit_acks(bool force) {
    if (!credit_on()) return;
    for (int r = 0; r < static_cast<int>(credit_owed_.size()); ++r) {
      auto& owed = credit_owed_[static_cast<std::size_t>(r)];
      if (owed == 0 || (!force && owed < credit_ack_threshold_)) continue;
      auto ack = buffer_pool::local().acquire(sizeof(std::uint64_t));
      ack.resize(sizeof(std::uint64_t));
      std::memcpy(ack.data(), &owed, sizeof(std::uint64_t));
      owed = 0;
      world_->mpi().send_bytes(r, credit_tag(), std::move(ack));
    }
  }

  // ------------------------------------------- node-local direct records
  //
  // node_local_map transports only. A node-local hop serializes once into
  // a pooled buffer posted on local_tag() — the shm rings carry that
  // buffer in place, so there is no coalescing buffer, no per-record
  // length framing, and no second copy on either side for the
  // deliver-to-me case. Layout (all little-endian host order, symmetric
  // knowledge of timed/traced resolves the optional fields):
  //   [flags u8: bit0 bcast, bit1 traced][addr i32]
  //   [arrival f64, timed worlds only][wire_ctx (24B), traced only]
  //   [message bytes]

  int local_tag() const noexcept { return data_tag_ + 2; }

  /// Build and post one direct record; `fill` appends the message bytes.
  template <class Fill>
  void post_local_direct(int nh, bool is_bcast, int addr, bool traced,
                         const telemetry::causal::wire_ctx& tc, Fill&& fill) {
    auto buf = buffer_pool::local().acquire(len_hint_ + 64);
    const auto append_raw = [&buf](const void* p, std::size_t n) {
      const auto* b = static_cast<const std::byte*>(p);
      buf.insert(buf.end(), b, b + n);
    };
    const std::uint8_t flags =
        static_cast<std::uint8_t>((is_bcast ? 1u : 0u) | (traced ? 2u : 0u));
    buf.push_back(static_cast<std::byte>(flags));
    const std::int32_t a = addr;
    append_raw(&a, sizeof(a));
    std::size_t arrival_slot = 0;
    if (world_->timed()) {
      arrival_slot = buf.size();
      const double zero = 0;
      append_raw(&zero, sizeof(zero));  // stamped below, once size is known
    }
    if (traced) telemetry::causal::encode_wire(tc, buf);
    const std::size_t payload_start = buf.size();
    fill(buf);
    const std::size_t payload_bytes = buf.size() - payload_start;
    len_hint_ = payload_bytes;  // seeds the direct credit gate's estimate
    ++local_direct_;
    ++stats_.local_packets;  // one direct record ~ one (uncoalesced) packet
    stats_.local_bytes += payload_bytes;
    telemetry::sample(telemetry::fast_histogram::local_packet_bytes,
                      static_cast<double>(payload_bytes));
    if (traced) {
      telemetry::causal::record_hop(tc, telemetry::causal::hop_kind::enqueue,
                                    -1, payload_bytes);
    }
    if (world_->timed()) {
      const double arrival =
          world_->virtual_charge_packet(buf.size(), /*remote=*/false);
      std::memcpy(buf.data() + arrival_slot, &arrival, sizeof(double));
    }
    credit_charge(nh, buf.size());
    world_->mpi().send_bytes(nh, local_tag(), std::move(buf));
  }

  /// Parse one received direct record. The deliver-to-me fast path reads
  /// the message straight out of the received buffer (which came from the
  /// transport's pooled hot path); only forwarding and broadcast fan-out
  /// rewrap into a reference-counted shared_record.
  void handle_local_direct(std::vector<std::byte> buf, int from,
                           std::vector<detail::shared_record>* defer_batch) {
    if (credit_on()) {
      credit_owed_[static_cast<std::size_t>(from)] += buf.size();
    }
    std::span<const std::byte> body(buf.data(), buf.size());
    YGM_CHECK(body.size() >= 1 + sizeof(std::int32_t),
              "malformed direct record");
    const auto flags = static_cast<std::uint8_t>(body[0]);
    const bool is_bcast = (flags & 1u) != 0;
    const bool traced = (flags & 2u) != 0;
    std::int32_t addr = 0;
    std::memcpy(&addr, body.data() + 1, sizeof(addr));
    body = body.subspan(1 + sizeof(addr));
    if (world_->timed()) {
      YGM_CHECK(body.size() >= sizeof(double),
                "timed direct record missing stamp");
      double arrival = 0;
      std::memcpy(&arrival, body.data(), sizeof(double));
      world_->virtual_advance_to(arrival);
      body = body.subspan(sizeof(double));
    }
    telemetry::causal::wire_ctx tctx;
    if (traced) {
      YGM_CHECK(body.size() >= telemetry::causal::wire_ctx_bytes,
                "direct record missing trace context");
      tctx = telemetry::causal::decode_wire(
          body.first(telemetry::causal::wire_ctx_bytes));
      ++tctx.hop;  // arrival completed a node-local leg
      body = body.subspan(telemetry::causal::wire_ctx_bytes);
    }
    ++stats_.hops_received;
    world_->virtual_charge_events(1);
    const int me = world_->rank();
    if (!is_bcast && addr == me && defer_batch == nullptr) {
      if (traced) {
        telemetry::causal::record_hop(
            tctx, telemetry::causal::hop_kind::deliver, -1, body.size());
        note_live_e2e(tctx);
      }
      deliver_bytes(body);
    } else {
      auto payload =
          std::make_shared<std::vector<std::byte>>(body.begin(), body.end());
      detail::shared_record srec{std::move(payload), addr, is_bcast, 0.0};
      if (traced && !is_bcast) {
        srec.traced = true;
        srec.tctx = tctx;
      }
      handle_record(std::move(srec), defer_batch);
    }
    buffer_pool::local().release(std::move(buf));
  }

  /// Drain every queued direct record (engine passes stay bounded by the
  /// deferred-batch volume, like the remote loop). Returns whether
  /// anything was consumed.
  bool drain_local_direct(std::vector<detail::shared_record>* defer_batch) {
    if (!local_map_) return false;
    bool did = false;
    auto& mpi = world_->mpi();
    while (auto st = mpi.iprobe(mpisim::any_source, local_tag())) {
      auto buf = mpi.recv_bytes(st->source, local_tag());
      handle_local_direct(std::move(buf), st->source, defer_batch);
      did = true;
      if (defer_batch != nullptr && engine_batch_bytes_ >= capacity_) break;
    }
    return did;
  }

  void flush_buffer(int nh) {
    auto& buf = buffers_[static_cast<std::size_t>(nh)];
    YGM_ASSERT(!buf.empty());
    // Piggyback this link's owed credit on the outgoing packet (one escape
    // record, zero extra messages), before the byte counters below.
    if (credit_on()) {
      auto& owed = credit_owed_[static_cast<std::size_t>(nh)];
      if (owed != 0) {
        std::array<std::byte, sizeof(std::uint64_t)> amount;
        std::memcpy(amount.data(), &owed, sizeof(std::uint64_t));
        packet_append(buf, /*is_bcast=*/false, packet_credit_escape, amount);
        owed = 0;
      }
    }
    // Only a locality-none transport coalesces node-local hops into
    // packets: with a shared address space they ride the inbox, with a
    // node-local map they ride direct records, so on either of those the
    // buffer's destination must be topologically remote.
    YGM_ASSERT(!(shared_space_ || local_map_) ||
               world_->topo().is_remote(world_->rank(), nh));
    ++stats_.remote_packets;
    stats_.remote_bytes += buf.size();
    telemetry::sample(telemetry::fast_histogram::remote_packet_bytes,
                      static_cast<double>(buf.size()));
    // Hop counting happened at forward() time for the hybrid (local and
    // remote alike), so flushing only ships bytes.
    record_counts_[static_cast<std::size_t>(nh)] = 0;
    auto& pend = pending_traces_[static_cast<std::size_t>(nh)];
    if (!pend.empty()) {
      const double flush_us = telemetry::now_us();
      for (const auto& p : pend) {
        telemetry::causal::record_hop(
            p.ctx, telemetry::causal::hop_kind::flush, p.enqueue_us,
            buf.size());
        telemetry::live::note_latency(scheme_index(),
                                      telemetry::live::latency_kind::flush,
                                      flush_us - p.enqueue_us);
      }
      pend.clear();
    }
    if (world_->timed()) {
      const double arrival =
          world_->virtual_charge_packet(buf.size(), /*remote=*/true);
      std::memcpy(buf.data(), &arrival, sizeof(double));
    }
    credit_charge(nh, buf.size());
    // Moved-from: empty, no capacity; the next record re-acquires from the
    // pool (the receiver releases the drained packet to its own pool).
    world_->mpi().send_bytes(nh, data_tag_, std::move(buf));
    buf.clear();
  }

  // Reentrant (or engine-raced) calls are no-ops — see
  // core::mailbox::poll_incoming and exchange_claim for the recursion bug
  // and the engine half; the outer drain picks up anything that arrives.
  void poll_incoming() {
    exchange_claim claim(in_exchange_, engine_mode_);
    if (!claim.entered()) return;
    drain_incoming();
  }

  // Consume everything currently in the shared inbox. A handoff pop
  // completes a network leg for a sampled record: bump its hop index and
  // record the inbox residency (push to drain) as the handoff hop. The
  // drain is swap-based, so every record pushed so far is processed this
  // pass (`defer_batch` routes deliveries — see handle_record). Returns
  // whether anything was consumed.
  bool drain_inbox(std::vector<detail::shared_record>* defer_batch = nullptr) {
    inbox_->drain(inbox_scratch_);
    for (auto& rec : inbox_scratch_) {
      ++stats_.hops_received;
      if (world_->timed()) world_->virtual_advance_to(rec.arrival_vtime);
      world_->virtual_charge_events(1);
      if (rec.traced) {
        ++rec.tctx.hop;
        telemetry::causal::record_hop(rec.tctx,
                                      telemetry::causal::hop_kind::handoff,
                                      rec.trace_push_us, rec.payload->size());
        if (rec.trace_push_us > 0) {
          telemetry::live::note_latency(
              scheme_index(), telemetry::live::latency_kind::handoff,
              telemetry::now_us() - rec.trace_push_us);
        }
      }
      handle_record(std::move(rec), defer_batch);
    }
    return !inbox_scratch_.empty();
  }

  /// Parse one received wire packet: rewrap each record into a shared
  /// record (one copy — the unavoidable deserialization of wire bytes) and
  /// hand it to handle_record.
  void handle_remote_packet(const std::vector<std::byte>& packet, int from,
                            std::vector<detail::shared_record>* defer_batch) {
    // Flow control: every received byte is owed back to its sender once
    // this drain pass has consumed it.
    if (credit_on()) {
      credit_owed_[static_cast<std::size_t>(from)] += packet.size();
    }
    std::span<const std::byte> body(packet.data(), packet.size());
    if (world_->timed()) {
      double arrival = 0;
      YGM_CHECK(body.size() >= sizeof(double), "timed packet missing stamp");
      std::memcpy(&arrival, body.data(), sizeof(double));
      world_->virtual_advance_to(arrival);
      body = body.subspan(sizeof(double));
    }
    packet_reader reader(body);
    telemetry::causal::wire_ctx tctx;
    bool have_trace = false;
    while (!reader.done()) {
      const packet_record rec = reader.next();
      if (packet_record_is_trace(rec)) {
        tctx = telemetry::causal::decode_wire(rec.payload);
        ++tctx.hop;  // arrival completed a wire leg
        have_trace = true;
        continue;  // metadata, not a message hop
      }
      if (packet_record_is_credit(rec)) {
        // Piggybacked credit return: link-local, consumed here, never
        // forwarded, not a message hop.
        std::uint64_t amount = 0;
        YGM_CHECK(rec.payload.size() == sizeof(amount),
                  "malformed credit record");
        std::memcpy(&amount, rec.payload.data(), sizeof(amount));
        credit_consume_ack(from, amount);
        continue;
      }
      ++stats_.hops_received;
      world_->virtual_charge_events(1);
      auto payload = std::make_shared<std::vector<std::byte>>(
          rec.payload.begin(), rec.payload.end());
      detail::shared_record srec{std::move(payload), rec.addr, rec.is_bcast,
                                 0.0};
      if (have_trace && !rec.is_bcast) {
        srec.traced = true;
        srec.tctx = tctx;
      }
      have_trace = false;
      handle_record(std::move(srec), defer_batch);
    }
  }

  // The raw drain loop; caller must already hold in_exchange_.
  void drain_incoming() {
    drain_credit_acks();
    // Shared-memory records first (they are the cheap path).
    drain_inbox();
    drain_local_direct(nullptr);

    auto& mpi = world_->mpi();
    while (auto st = mpi.iprobe(mpisim::any_source, data_tag_)) {
      auto packet = mpi.recv_bytes(st->source, data_tag_);
      handle_remote_packet(packet, st->source, nullptr);
      // Every record was rewrapped (copied), so the packet's capacity can
      // be recycled.
      buffer_pool::local().release(std::move(packet));
      // A remote packet may have arrived while we were draining; loop picks
      // it up. Shared records that arrived meanwhile are caught by the next
      // poll (or the termination rounds).
    }
    drain_inbox();
    flush_credit_acks(/*force=*/false);
  }

  /// `defer_batch` non-null (engine thread, deferred-delivery policy):
  /// deliveries addressed to this rank are pushed onto the batch instead of
  /// executing the callback; forwarding (intermediary and broadcast
  /// fan-out) always happens in place.
  void handle_record(detail::shared_record&& rec,
                     std::vector<detail::shared_record>* defer_batch =
                         nullptr) {
    const int me = world_->rank();
    if (rec.is_bcast) {
      YGM_ASSERT(rec.addr != me);
      if (defer_batch != nullptr) {
        // Broadcasts are never sampled; the deferred copy shares the
        // reference-counted payload with the fan-out below.
        defer_record(*defer_batch,
                     detail::shared_record{rec.payload, me, false});
      } else {
        deliver(*rec.payload);
      }
      for (int nh : world_->route().bcast_next_hops(me, rec.addr)) {
        ++stats_.forwards;
        fwd_marker_.record(static_cast<std::uint64_t>(rec.addr),
                           static_cast<std::uint64_t>(nh));
        forward(nh, detail::shared_record{rec.payload, rec.addr, true});
      }
    } else if (rec.addr == me) {
      if (defer_batch != nullptr) {
        defer_record(*defer_batch, std::move(rec));
      } else {
        if (rec.traced) {
          telemetry::causal::record_hop(rec.tctx,
                                        telemetry::causal::hop_kind::deliver,
                                        -1, rec.payload->size());
          note_live_e2e(rec.tctx);
        }
        deliver(*rec.payload);
      }
    } else {
      ++stats_.forwards;
      const int nh = world_->route().next_hop(me, rec.addr);
      fwd_marker_.record(static_cast<std::uint64_t>(rec.addr),
                         static_cast<std::uint64_t>(nh));
      if (rec.traced) {
        telemetry::causal::record_hop(rec.tctx,
                                      telemetry::causal::hop_kind::forward, -1,
                                      rec.payload->size());
      }
      forward(nh, std::move(rec));
    }
  }

  // ------------------------------------------------------- progress engine
  //
  // Mirrors core::mailbox (see its header for the full discipline): the
  // engine always try-locks mx_, termination rounds advance only for a
  // parked rank with an empty handoff ring, and a consumed quiescence
  // verdict is preserved in quiescence_seen_.

  /// Empty (disengaged) in polling mode; a real lock in engine mode.
  /// [[unlikely]] keeps the polling-mode hot path straight-line (see the
  /// twin in mailbox.hpp).
  std::unique_lock<std::recursive_mutex> engine_lock() const {
    if (engine_mode_) [[unlikely]] {
      return std::unique_lock(mx_);
    }
    return std::unique_lock<std::recursive_mutex>();
  }

  bool test_empty_locked() {
    if (engine_error_) {
      std::exception_ptr e = std::exchange(engine_error_, nullptr);
      std::rethrow_exception(e);
    }
    if (engine_mode_) drain_deferred_locked();
    poll_incoming();
    flush();
    // Return all owed credit eagerly: a peer stalled in credit_gate cannot
    // reach its own wait_empty (see core::mailbox).
    flush_credit_acks(/*force=*/true);
    if (quiescence_seen_) {
      quiescence_seen_ = false;
      return true;
    }
    return term_.poll(stats_.hops_sent, stats_.hops_received);
  }

  /// Engine thread: one advance pass (never blocks on the rank).
  bool engine_advance(bool inline_deliveries) {
    std::unique_lock lk(mx_, std::try_to_lock);
    if (!lk.owns_lock()) return false;
    if (engine_error_) return false;  // rank must consume the failure first
    exchange_claim claim(in_exchange_);
    if (!claim.entered()) return false;

    bool did = false;
    try {
      did = engine_drain(inline_deliveries);
      if (queued_bytes_ >= capacity_) flush();
      if (pump_->parked.load(std::memory_order_acquire) &&
          deferred_->empty()) {
        flush();
        if (term_.poll(stats_.hops_sent, stats_.hops_received)) {
          quiescence_seen_ = true;
          did = true;
        }
      }
    } catch (...) {
      engine_error_ = std::current_exception();
      did = true;
    }
    if (did) park_cv_.notify_all();
    return did;
  }

  /// Engine-side drain: shared inbox first (swap-based, so it always
  /// completes), then remote packets bounded by the deferred-batch volume.
  /// A full ring is backpressure — remote messages stay in the mail slot
  /// and inbox records keep flowing through forwarding only.
  bool engine_drain(bool inline_deliveries) {
    if (!inline_deliveries && deferred_->full()) return false;
    drain_credit_acks();
    std::vector<detail::shared_record> batch;
    auto* defer_batch = inline_deliveries ? nullptr : &batch;
    engine_batch_bytes_ = 0;
    bool did = drain_inbox(defer_batch);
    if (drain_local_direct(defer_batch)) did = true;
    auto& mpi = world_->mpi();
    while (auto st = mpi.iprobe(mpisim::any_source, data_tag_)) {
      auto packet = mpi.recv_bytes(st->source, data_tag_);
      handle_remote_packet(packet, st->source, defer_batch);
      buffer_pool::local().release(std::move(packet));
      did = true;
      if (engine_batch_bytes_ >= capacity_) break;  // bound one pass
    }
    flush_credit_acks(/*force=*/false);
    if (!batch.empty()) {
      telemetry::count("progress.deferred_batches");
      // Single producer + the full() check above: this push cannot fail.
      const bool ok = deferred_->try_push(std::move(batch));
      YGM_ASSERT(ok);
      park_cv_.notify_all();
    }
    return did;
  }

  /// Engine side: queue one delivery-bound record for the rank. The ring
  /// residency (push to delivery) becomes the record's final trace span.
  void defer_record(std::vector<detail::shared_record>& batch,
                    detail::shared_record&& rec) {
    // No hop event for the ring push (handoff = network leg in
    // journey::legs(); the ring is rank-internal). The push timestamp
    // still seeds the deliver hop's residency span on the rank side.
    if (rec.traced) rec.trace_push_us = telemetry::now_us();
    engine_batch_bytes_ += rec.payload->size();
    batch.push_back(std::move(rec));
  }

  /// Rank thread: execute the delivery callbacks the engine handed off.
  bool drain_deferred_locked() {
    bool any = false;
    while (auto batch = deferred_->try_pop()) {
      for (auto& rec : *batch) {
        if (rec.traced) {
          telemetry::causal::record_hop(rec.tctx,
                                        telemetry::causal::hop_kind::deliver,
                                        rec.trace_push_us,
                                        rec.payload->size());
          note_live_e2e(rec.tctx);
        }
        deliver(*rec.payload);
        any = true;
      }
    }
    return any;
  }

  void deliver(const std::vector<std::byte>& payload) {
    deliver_bytes({payload.data(), payload.size()});
  }

  void deliver_bytes(std::span<const std::byte> payload) {
    Msg m{};
    ser::iarchive ar({payload.data(), payload.size()});
    ar & m;
    YGM_CHECK(ar.exhausted(), "message payload has trailing bytes");
    ++stats_.deliveries;
    telemetry::add(telemetry::fast_counter::deliveries);
    on_recv_(m);
  }

  comm_world* world_;
  recv_callback on_recv_;
  std::size_t capacity_;
  int data_tag_;
  termination_detector term_;

  std::unique_ptr<detail::shared_inbox> inbox_;
  std::vector<detail::shared_inbox*> peer_inboxes_;
  bool shared_space_ = false;  // ranks share this process's address space
  bool local_map_ = false;  // node-local peers share mappings, not pointers

  std::vector<std::vector<std::byte>> buffers_;  // remote next hops only
  std::vector<std::uint32_t> record_counts_;
  std::vector<int> nonempty_;
  std::size_t queued_bytes_ = 0;
  std::size_t len_hint_ = 0;  ///< previous payload size seeds length-slot width
  std::vector<detail::shared_record> inbox_scratch_;  // drain ping-pong buffer
  /// The exchange/drain claim (see exchange_claim.hpp); atomic for the same
  /// unguarded poll() early-out as core::mailbox.
  std::atomic<bool> in_exchange_{false};
  std::uint64_t shared_handoffs_ = 0;
  std::uint64_t local_direct_ = 0;  ///< direct records posted on local_tag()

  // Flow-control state (see the flow-control section above); guarded like
  // the rest of the mailbox. Zero-cost when credit_budget_ == 0.
  std::size_t credit_budget_ = 0;        ///< per-link byte budget (0 = off)
  std::size_t credit_ack_threshold_ = 0; ///< eager standalone-ack watermark
  std::vector<std::uint64_t> credit_used_;  ///< unacked bytes, per next hop
  std::vector<std::uint64_t> credit_owed_;  ///< drained-not-acked, per source
  std::uint64_t credit_peak_ = 0;           ///< bounded quantity's high water

  // Progress-engine state (see core::mailbox for the full discipline). In
  // polling mode only station_/pump_ are live.
  progress::station* station_ = nullptr;
  std::shared_ptr<progress::pump> pump_;
  bool engine_mode_ = false;
  mutable std::recursive_mutex mx_;
  std::condition_variable_any park_cv_;
  std::unique_ptr<progress::mpsc_ring<std::vector<detail::shared_record>>>
      deferred_;
  bool quiescence_seen_ = false;
  std::exception_ptr engine_error_;
  /// Payload bytes deferred in the current engine pass (bounds the pass).
  std::size_t engine_batch_bytes_ = 0;

  mailbox_stats stats_;

  // Causal tracing (remote legs only — local legs ride shared_record).
  struct pending_trace {
    telemetry::causal::wire_ctx ctx;
    double enqueue_us = 0;
    std::uint32_t payload_bytes = 0;
  };
  std::vector<std::vector<pending_trace>> pending_traces_;
  std::vector<std::byte> trace_scratch_;  // encoded annotation payloads
  std::uint32_t trace_seq_ = 0;

  // Timeline event per intermediary re-queue: arg0 = destination (or bcast
  // origin), arg1 = chosen next hop.
  telemetry::instant_marker fwd_marker_{"mailbox.forward", "dst", "next_hop"};
};

}  // namespace ygm::core
