// Delivery-invariant checking for chaos trials (docs/CHAOS.md).
//
// The chaos layer (mpisim/chaos.hpp) makes the transport adversarial while
// staying inside the MPI contract; this header supplies the other half of
// the methodology: traffic whose correctness is *checkable*. Every message
// carries (origin, kind, sequence number, content-derived filler), every
// rank keeps a ledger of what it injected and what it delivered, and a
// collective verify() pass at quiescence reconciles the two sides:
//
//   * exactly-once point-to-point delivery — the seq sets each origin sent
//     to me equal the seq sets I delivered, no duplicates, nothing extra;
//   * broadcast exactly-once-per-non-origin-rank — origin o's bcast seqs
//     {0..n-1} delivered exactly once everywhere except at o, never at o;
//   * conservation — global hops_sent == hops_received at quiescence;
//   * silence — zero deliveries after wait_empty()/test_empty() reported
//     quiescence (ledger "sealed" window);
//   * payload integrity — filler bytes are a function of the seq, so any
//     corruption or framing slip is caught at delivery time;
//   * counter cross-check — mailbox_stats agree with the ledger's own
//     tallies (the same counters the telemetry subsystem publishes).
//
// Violations are returned as strings rather than thrown so a sweep driver
// can print the failing seed/recipe and keep going.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <optional>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "core/comm_world.hpp"
#include "core/progress.hpp"
#include "core/stats.hpp"
#include "mpisim/chaos.hpp"
#include "mpisim/comm.hpp"
#include "net/params.hpp"
#include "routing/router.hpp"

namespace ygm::core {

// ------------------------------------------------------------- probe_msg

/// The unit of checkable traffic. Filler length varies per message (so
/// packets exercise variable-record framing) and its bytes are derived
/// from the sequence number (so corruption is detectable, not silent).
struct probe_msg {
  std::uint32_t origin = 0;          ///< sending rank
  std::uint8_t kind = 0;             ///< 0 = point-to-point, 1 = broadcast
  std::uint64_t seq = 0;             ///< unique per (origin, kind)
  std::vector<std::uint8_t> filler;  ///< seq-derived padding

  static std::uint8_t filler_byte(std::uint64_t seq, std::size_t i) {
    return static_cast<std::uint8_t>(ygm::splitmix64(seq + 1) >>
                                     ((i % 8) * 8));
  }

  bool filler_intact() const {
    for (std::size_t i = 0; i < filler.size(); ++i) {
      if (filler[i] != filler_byte(seq, i)) return false;
    }
    return true;
  }

  template <class Ar>
  void serialize(Ar& ar) {
    ar & origin & kind & seq & filler;
  }
};

// -------------------------------------------------------- delivery_ledger

/// One rank's view of the traffic: what it injected, what it delivered.
/// make_* note the send as a side effect; wire the mailbox callback to
/// note_delivery. seal()/unseal() bracket the quiescent windows in which
/// any delivery is a violation.
class delivery_ledger {
 public:
  delivery_ledger(int rank, int size)
      : rank_(rank),
        size_(size),
        sent_p2p_(static_cast<std::size_t>(size)) {}

  probe_msg make_p2p(int dest, std::size_t filler_bytes) {
    YGM_ASSERT(dest >= 0 && dest < size_);
    const std::uint64_t seq = next_p2p_seq_++;
    sent_p2p_[static_cast<std::size_t>(dest)].push_back(seq);
    return make(/*kind=*/0, seq, filler_bytes);
  }

  probe_msg make_bcast(std::size_t filler_bytes) {
    const std::uint64_t seq = bcasts_sent_++;
    return make(/*kind=*/1, seq, filler_bytes);
  }

  void note_delivery(const probe_msg& m) {
    ++deliveries_;
    if (sealed_) {
      violation() << "delivery after quiescence was reported (origin="
                  << m.origin << " kind=" << int(m.kind) << " seq=" << m.seq
                  << ")";
    }
    if (!m.filler_intact()) {
      violation() << "corrupted filler (origin=" << m.origin
                  << " kind=" << int(m.kind) << " seq=" << m.seq << ")";
    }
    auto& seen = m.kind == 0 ? seen_p2p_[m.origin] : seen_bcast_[m.origin];
    if (!seen.insert(m.seq).second) {
      violation() << "duplicate delivery (origin=" << m.origin
                  << " kind=" << int(m.kind) << " seq=" << m.seq << ")";
    }
  }

  void seal() { sealed_ = true; }
  void unseal() { sealed_ = false; }

  std::uint64_t deliveries() const noexcept { return deliveries_; }

  /// Collective (every rank of `c` must call, in the same program order):
  /// reconcile send ledgers against delivery ledgers and cross-check the
  /// mailbox counters. Returns this rank's violations; gather to taste.
  std::vector<std::string> verify(mpisim::comm& c, const mailbox_stats& st) {
    YGM_CHECK(c.size() == size_, "ledger/communicator size mismatch");

    // Point-to-point: each rank learns exactly which seqs every origin
    // addressed to it.
    const auto expected_p2p = c.alltoallv(sent_p2p_);
    std::uint64_t expected_deliveries = 0;
    for (int src = 0; src < size_; ++src) {
      const auto& exp = expected_p2p[static_cast<std::size_t>(src)];
      expected_deliveries += exp.size();
      const auto it = seen_p2p_.find(static_cast<std::uint32_t>(src));
      static const std::unordered_set<std::uint64_t> kNone;
      const auto& seen = it != seen_p2p_.end() ? it->second : kNone;
      std::size_t matched = 0;
      for (const auto seq : exp) {
        if (seen.count(seq) != 0) {
          ++matched;
        } else {
          violation() << "lost p2p message (origin=" << src << " seq=" << seq
                      << ")";
        }
      }
      if (matched < seen.size()) {
        violation() << "phantom p2p deliveries from origin=" << src << " ("
                    << seen.size() - matched << " seqs never sent here)";
      }
    }

    // Broadcasts: origin o's seqs {0..n-1} reach every rank except o.
    const auto bcast_counts = c.allgather(bcasts_sent_);
    for (int src = 0; src < size_; ++src) {
      const auto n = bcast_counts[static_cast<std::size_t>(src)];
      const auto it = seen_bcast_.find(static_cast<std::uint32_t>(src));
      const std::size_t seen_n = it != seen_bcast_.end() ? it->second.size() : 0;
      if (src == rank_) {
        if (seen_n != 0) {
          violation() << "broadcast delivered at its own origin (origin="
                      << src << ", " << seen_n << " copies)";
        }
        continue;
      }
      expected_deliveries += n;
      for (std::uint64_t seq = 0; seq < n; ++seq) {
        if (it == seen_bcast_.end() || it->second.count(seq) == 0) {
          violation() << "lost broadcast (origin=" << src << " seq=" << seq
                      << ")";
        }
      }
      if (seen_n > n) {
        violation() << "phantom broadcast deliveries from origin=" << src;
      }
    }

    // Conservation at quiescence: every hop that left a rank arrived at one.
    const auto global_sent = c.allreduce(st.hops_sent, mpisim::op_sum{});
    const auto global_recv = c.allreduce(st.hops_received, mpisim::op_sum{});
    if (rank_ == 0 && global_sent != global_recv) {
      violation() << "hop conservation broken: global hops_sent="
                  << global_sent << " != hops_received=" << global_recv;
    }

    // Counter cross-check: the mailbox's own statistics (the numbers the
    // telemetry subsystem publishes) must agree with the ledger.
    if (st.app_sends != next_p2p_seq_) {
      violation() << "stats.app_sends=" << st.app_sends << " but ledger sent "
                  << next_p2p_seq_;
    }
    if (st.app_bcasts != bcasts_sent_) {
      violation() << "stats.app_bcasts=" << st.app_bcasts
                  << " but ledger sent " << bcasts_sent_;
    }
    if (st.deliveries != deliveries_) {
      violation() << "stats.deliveries=" << st.deliveries
                  << " but ledger saw " << deliveries_;
    }
    if (deliveries_ != expected_deliveries && violations_.empty()) {
      violation() << "delivery count " << deliveries_ << " != expected "
                  << expected_deliveries;
    }

    std::vector<std::string> out;
    out.reserve(violations_.size());
    for (auto& v : violations_) out.push_back("rank " + std::to_string(rank_) +
                                              ": " + v.str());
    violations_.clear();
    return out;
  }

 private:
  probe_msg make(std::uint8_t kind, std::uint64_t seq,
                 std::size_t filler_bytes) {
    probe_msg m;
    m.origin = static_cast<std::uint32_t>(rank_);
    m.kind = kind;
    m.seq = seq;
    m.filler.resize(filler_bytes);
    for (std::size_t i = 0; i < filler_bytes; ++i) {
      m.filler[i] = probe_msg::filler_byte(seq, i);
    }
    return m;
  }

  std::ostringstream& violation() {
    violations_.emplace_back();
    return violations_.back();
  }

  int rank_;
  int size_;
  bool sealed_ = false;

  std::uint64_t next_p2p_seq_ = 0;
  std::uint64_t bcasts_sent_ = 0;
  std::uint64_t deliveries_ = 0;
  std::vector<std::vector<std::uint64_t>> sent_p2p_;  // [dest] -> seqs

  std::unordered_map<std::uint32_t, std::unordered_set<std::uint64_t>>
      seen_p2p_;
  std::unordered_map<std::uint32_t, std::unordered_set<std::uint64_t>>
      seen_bcast_;

  std::vector<std::ostringstream> violations_;
};

// ----------------------------------------------------------- trial harness

/// One chaos trial: machine shape, traffic volume, fault recipe. The
/// describe() string is the complete reproduction recipe — print it with
/// any violation.
struct trial_config {
  std::uint64_t seed = 0;
  routing::scheme_kind scheme = routing::scheme_kind::no_route;
  int nodes = 2;
  int cores = 2;
  std::size_t capacity = 1024;
  bool timed = false;
  bool serialize_self_sends = false;
  int msgs_per_rank = 40;
  int bcasts_per_rank = 3;
  int epochs = 2;
  /// Wrap each epoch's injection phase in a ygm::progress::guard, opting
  /// the traffic into engine stealing when a progress engine is installed
  /// (a no-op marker in polling mode — the sweep matrix runs both).
  bool use_progress_guard = false;
  /// Per-destination flow-control budget for the trial's mailboxes; 0
  /// leaves the world's resolved default (env/launch) in place. Nonzero
  /// values exercise the credit gate under chaos — the ledger then proves
  /// backpressure never breaks exactly-once or termination.
  std::size_t credit_bytes = 0;
  /// Nonzero: rank 0 additionally floods the last rank with p2p traffic
  /// paced to approximately this many bytes per second — the asymmetric
  /// hot-producer/slow-consumer pattern that exposed unbounded buffer
  /// growth. The ledger verifies the flood like any other traffic.
  std::size_t flood_bytes_per_s = 0;
  mpisim::chaos_config chaos;

  int num_ranks() const { return nodes * cores; }

  std::string describe() const {
    std::ostringstream os;
    os << "seed=" << seed << " scheme=" << routing::to_string(scheme)
       << " topo=" << nodes << "x" << cores << " cap=" << capacity
       << " timed=" << int(timed) << " selfser=" << int(serialize_self_sends)
       << " msgs=" << msgs_per_rank << " bcasts=" << bcasts_per_rank
       << " epochs=" << epochs << " guard=" << int(use_progress_guard)
       << " credit=" << credit_bytes << " flood=" << flood_bytes_per_s
       << " chaos={" << chaos.describe() << "}";
    return os.str();
  }
};

/// Run one rank's share of a chaos trial on an already-running communicator
/// (call from inside mpisim::run, every rank). MailboxT is core::mailbox or
/// core::hybrid_mailbox. Returns this rank's invariant violations.
///
/// Per epoch: random p2p traffic + broadcasts with interleaved polls, then
/// quiescence — ranks alternate between wait_empty() and a test_empty()
/// polling loop (the two share one detector protocol, so mixing them across
/// ranks must work) — then a sealed silence window in which any delivery is
/// a violation.
template <template <class> class MailboxT>
std::vector<std::string> run_chaos_trial(mpisim::comm& c,
                                         const trial_config& t) {
  const routing::topology topo(t.nodes, t.cores);
  comm_world world(c, topo, t.scheme);
  if (t.timed) {
    world.attach_virtual_network(net::network_params::quartz_like());
  }
  world.set_serialize_self_sends(t.serialize_self_sends);
  if (t.credit_bytes != 0) world.set_credit_bytes(t.credit_bytes);

  delivery_ledger ledger(c.rank(), c.size());
  MailboxT<probe_msg> mb(
      world, [&](const probe_msg& m) { ledger.note_delivery(m); }, t.capacity);

  ygm::xoshiro256 rng(ygm::splitmix64(t.seed) ^
                      static_cast<std::uint64_t>(c.rank()));
  for (int epoch = 0; epoch < t.epochs; ++epoch) {
    ledger.unseal();
    {
      // Injection phase, optionally under an engine guard: the engine may
      // then steal drains and defer deliveries concurrently with the sends
      // below — the ledger still has to come out exactly-once.
      std::optional<progress::guard> guard;
      if (t.use_progress_guard) guard.emplace(world);
      for (int i = 0; i < t.msgs_per_rank; ++i) {
        const int dest =
            static_cast<int>(rng.below(static_cast<std::uint64_t>(c.size())));
        const auto filler = static_cast<std::size_t>(rng.below(48));
        mb.send(dest, ledger.make_p2p(dest, filler));
        if (rng.below(4) == 0) mb.poll();
      }
      for (int b = 0; b < t.bcasts_per_rank; ++b) {
        mb.send_bcast(
            ledger.make_bcast(static_cast<std::size_t>(rng.below(32))));
      }
      // Flood phase: rank 0 hammers the last rank with paced traffic. The
      // consumer injects nothing extra and drains only at the epoch's
      // quiescence point, so the producer genuinely outruns it — the credit
      // gate (when on) is what keeps its queues bounded.
      if (t.flood_bytes_per_s != 0 && c.rank() == 0 && c.size() > 1) {
        const int dest = c.size() - 1;
        constexpr std::size_t kFiller = 40;
        // Approximate wire cost per message: the ledger payload plus the
        // packet record framing; pacing only needs to be roughly right.
        const double bytes_per_msg = static_cast<double>(kFiller) + 24.0;
        const auto start = std::chrono::steady_clock::now();
        double sent = 0;
        for (int i = 0; i < t.msgs_per_rank * 4; ++i) {
          mb.send(dest, ledger.make_p2p(dest, kFiller));
          sent += bytes_per_msg;
          const double target_s =
              sent / static_cast<double>(t.flood_bytes_per_s);
          const double elapsed_s =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
          if (target_s > elapsed_s) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(target_s - elapsed_s));
          }
        }
      }
    }

    if ((c.rank() + epoch) % 2 == 0) {
      mb.wait_empty();
    } else {
      while (!mb.test_empty()) std::this_thread::yield();
    }
    ledger.seal();
    // Quiescence was just confirmed globally, so these polls must deliver
    // nothing — on any rank, barrier or not.
    for (int i = 0; i < 32; ++i) mb.poll();
    c.barrier();
  }

  return ledger.verify(c, mb.stats());
}

}  // namespace ygm::core
