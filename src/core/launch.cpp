#include "core/launch.hpp"

#include <memory>
#include <utility>

#include "common/assert.hpp"
#include "telemetry/causal.hpp"
#include "telemetry/live.hpp"

namespace ygm {

namespace {

// Launch-scoped process globals. Set on the driver thread before rank
// threads spawn (inproc) or children fork (socket) and restored after the
// run — both backends therefore see a stable value for the whole run
// without synchronization.
std::optional<net::network_params> g_launch_vnet;
std::optional<std::size_t> g_launch_credit_bytes;

struct scoped_run_defaults {
  explicit scoped_run_defaults(const run_options& opts)
      : prev_sample_(telemetry::causal::sample_rate()),
        prev_outq_cap_(transport::outq_cap_bytes()),
        prev_sample_ms_(telemetry::live::sample_ms_override()),
        prev_statusz_(telemetry::live::statusz_override()) {
    if (opts.virtual_network) g_launch_vnet = *opts.virtual_network;
    if (opts.trace_sample) {
      YGM_CHECK(*opts.trace_sample >= 0.0 && *opts.trace_sample <= 1.0,
                "run_options::trace_sample must be in [0, 1]");
      telemetry::causal::set_sample_rate(*opts.trace_sample);
    }
    if (opts.credit_bytes) g_launch_credit_bytes = *opts.credit_bytes;
    if (opts.outq_cap_bytes) transport::set_outq_cap_bytes(*opts.outq_cap_bytes);
    if (opts.sample_ms >= 0) telemetry::live::set_sample_ms_override(opts.sample_ms);
    if (opts.statusz >= 0) telemetry::live::set_statusz_override(opts.statusz);
  }
  ~scoped_run_defaults() {
    g_launch_vnet.reset();
    g_launch_credit_bytes.reset();
    telemetry::causal::set_sample_rate(prev_sample_);
    transport::set_outq_cap_bytes(prev_outq_cap_);
    telemetry::live::set_sample_ms_override(prev_sample_ms_);
    telemetry::live::set_statusz_override(prev_statusz_);
  }

  double prev_sample_;
  std::size_t prev_outq_cap_;
  int prev_sample_ms_;
  int prev_statusz_;
};

mpisim::run_options to_mpisim_options(const run_options& opts) {
  mpisim::run_options mo;
  mo.nranks = opts.nranks;
  mo.backend = opts.backend;
  mo.chaos = opts.chaos;
  mo.socket_dir = opts.socket_dir;

  const progress::mode pmode =
      opts.progress_mode ? *opts.progress_mode : progress::mode_from_env();
  if (pmode == progress::mode::engine) {
    // Resolve the backend now: socket children ship exactly one telemetry
    // lane per rank back to the parent, so an engine lane added in a child
    // would be lost — those engines run without a lane and fold their
    // summary counters into the child rank's lane at teardown instead.
    const transport::backend_kind backend =
        opts.backend ? *opts.backend : transport::backend_from_env();
    const bool lane_ships = backend == transport::backend_kind::inproc;
    const progress::engine::options eopts = opts.engine;
    mo.process_services = [eopts, lane_ships](
                              int /*nranks*/,
                              int telemetry_world) -> std::shared_ptr<void> {
      return std::make_shared<progress::engine_scope>(
          eopts, lane_ships ? telemetry_world : -1);
    };
  }
  return mo;
}

}  // namespace

void launch(const run_options& opts,
            const std::function<void(mpisim::comm&)>& fn) {
  scoped_run_defaults defaults(opts);
  mpisim::run(to_mpisim_options(opts), fn);
}

std::vector<std::vector<std::byte>> launch_collect(
    const run_options& opts,
    const std::function<std::vector<std::byte>(mpisim::comm&)>& fn) {
  scoped_run_defaults defaults(opts);
  return mpisim::run_collect(to_mpisim_options(opts), fn);
}

namespace detail {

const std::optional<net::network_params>& launch_virtual_network() noexcept {
  return g_launch_vnet;
}

const std::optional<std::size_t>& launch_credit_bytes() noexcept {
  return g_launch_credit_bytes;
}

}  // namespace detail
}  // namespace ygm
