// ygm::launch — the unified launch surface.
//
// Historically a run was configured through three mpisim::run(...) overloads
// plus a scatter of YGM_* environment variables and per-object setters
// (attach_virtual_network, set_sample_rate). This header collapses all of
// it into one options struct and one entry point:
//
//   ygm::run_options o;
//   o.nranks = 8;
//   o.progress_mode = ygm::progress::mode::engine;
//   ygm::launch(o, [](ygm::mpisim::comm& c) { ... });
//
// Configuration precedence — THE one place it is defined (docs/PROGRESS.md
// reproduces this table):
//
//   explicit run_options field  >  YGM_* environment variable  >  default
//
//   field            env                 default
//   ---------------  ------------------  -----------------------------
//   backend          YGM_TRANSPORT       inproc
//   chaos            YGM_CHAOS*          off
//   progress_mode    YGM_PROGRESS        polling
//   trace_sample     YGM_TRACE_SAMPLE    0 (tracing off)
//   virtual_network  (none)              untimed
//   credit_bytes     YGM_CREDIT_BYTES    1 MiB per destination (0 = off)
//   outq_cap_bytes   YGM_OUTQ_CAP_BYTES  4 MiB per channel (0 = off)
//   sample_ms        YGM_SAMPLE_MS       100 ms live sampler (0 = off)
//   statusz          YGM_STATUSZ         off (per-process UDS endpoint)
//
// (YGM_STALL_TIMEOUT_MS keeps its env-only path — it is a debugging
// deadman, not a run parameter.)
//
// launch() also owns per-process service lifetime: with progress_mode =
// engine it starts the progress engine (core/progress.hpp) in every OS
// process hosting rank bodies — the driver process on the inproc backend,
// each forked child on the socket backend — via
// mpisim::run_options::process_services, and tears it down after the ranks
// finish. The old mpisim::run overloads keep working unchanged (deprecated,
// one-release notice) but never start an engine.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/progress.hpp"
#include "mpisim/runtime.hpp"
#include "net/params.hpp"

namespace ygm {

/// Everything a run can be configured with. Default-constructed options
/// reproduce mpisim::run(nranks, fn): inproc unless YGM_TRANSPORT says
/// otherwise, chaos from YGM_CHAOS*, polling progress unless YGM_PROGRESS
/// says otherwise, trace sampling from YGM_TRACE_SAMPLE, untimed.
struct run_options {
  int nranks = 1;

  /// Transport backend; nullopt defers to YGM_TRANSPORT (default inproc).
  std::optional<transport::backend_kind> backend;

  /// Fault injection; nullopt defers to YGM_CHAOS* (docs/CHAOS.md).
  std::optional<mpisim::chaos_config> chaos;

  /// Socket backend only: rendezvous directory ("" = fresh mkdtemp).
  std::string socket_dir;

  /// Progress mode; nullopt defers to YGM_PROGRESS (default polling).
  /// `engine` starts one progress thread per OS process hosting ranks.
  std::optional<progress::mode> progress_mode;

  /// Engine tuning (spin/sleep/ring sizing); only read in engine mode.
  progress::engine::options engine;

  /// Causal-trace sample rate in [0, 1]; nullopt defers to YGM_TRACE_SAMPLE
  /// (default 0). Applied for the duration of the run, restored after.
  std::optional<double> trace_sample;

  /// Conservative virtual-time network model, attached to every comm_world
  /// constructed during the run (identically on all ranks, which is exactly
  /// the attach_virtual_network contract). Timed worlds never receive
  /// engine help — the virtual clock is rank-thread state.
  std::optional<net::network_params> virtual_network;

  /// Per-destination mailbox credit budget in bytes (flow control,
  /// docs/BACKPRESSURE.md); nullopt defers to YGM_CREDIT_BYTES (default
  /// 1 MiB). 0 disables credit gating. Mailboxes clamp the effective budget
  /// to at least twice their flush capacity so acks stay live.
  std::optional<std::size_t> credit_bytes;

  /// Channel-level outbound byte cap enforced by the transport backends
  /// beneath the credit budget; nullopt defers to YGM_OUTQ_CAP_BYTES
  /// (default 4 MiB). 0 disables the cap.
  std::optional<std::size_t> outq_cap_bytes;

  /// Live-telemetry sampling period in milliseconds (docs/TELEMETRY.md
  /// §Live telemetry); -1 defers to YGM_SAMPLE_MS (default 100). 0 turns
  /// the time-series sampler off. With the progress engine on, sampling
  /// rides the engine thread; otherwise a dedicated low-rate thread runs
  /// per OS process hosting ranks.
  int sample_ms = -1;

  /// Per-process introspection endpoint (a Unix-domain socket answering
  /// metrics/series/latency/health as JSON, see tools/ygm_top); -1 defers
  /// to YGM_STATUSZ (default off), 0 forces off, 1 forces on.
  int statusz = -1;
};

/// Run `fn(world_comm)` on opts.nranks ranks. Blocks until every rank
/// returns; rethrows the first rank failure (see mpisim::run).
void launch(const run_options& opts,
            const std::function<void(mpisim::comm&)>& fn);

/// As launch(), for rank functions returning a byte blob; returns one blob
/// per rank, ordered by rank (see mpisim::run_collect for the cross-backend
/// result-channel contract).
std::vector<std::vector<std::byte>> launch_collect(
    const run_options& opts,
    const std::function<std::vector<std::byte>(mpisim::comm&)>& fn);

namespace detail {

/// The launch-scoped default virtual network (nullopt outside a launch with
/// run_options::virtual_network set). comm_world's constructor consults
/// this so every world built during a timed launch is timed. Set before
/// rank threads spawn / children fork; read-only during the run.
const std::optional<net::network_params>& launch_virtual_network() noexcept;

/// The launch-scoped credit-budget override (nullopt outside a launch with
/// run_options::credit_bytes set). comm_world's constructor consults this,
/// then YGM_CREDIT_BYTES, then the 1 MiB default. Same set-before-spawn /
/// fork-inheritance discipline as launch_virtual_network.
const std::optional<std::size_t>& launch_credit_bytes() noexcept;

}  // namespace detail
}  // namespace ygm
