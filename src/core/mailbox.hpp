// The YGM mailbox (paper §IV) — the library's public centerpiece.
//
// A mailbox is created with a receive callback and a capacity. send() and
// send_bcast() queue messages into per-next-hop coalescing buffers; when the
// queued volume reaches capacity the rank enters a communication context
// (an *exchange*): it flushes its buffers and drains whatever has already
// arrived — delivering messages addressed to it and forwarding messages it
// holds as a routing intermediary — then returns to computation. No global
// barrier is involved, so fast ranks are never tied to the slowest rank
// (pseudo-asynchronicity), yet capacity-triggered exchanges keep a slow
// rank from accumulating unbounded unhandled messages.
//
// Message addressing is delegated entirely to the routing scheme of the
// comm_world (paper §III): each queued record is keyed by
// router::next_hop(), so the node-local / node-remote / NLNR exchange
// phases emerge from repeated forwarding without the mailbox knowing the
// scheme. Broadcasts (paper §III's asynchronous SEND_BCAST) ride the same
// machinery via router::bcast_next_hops().
//
// Termination (paper §IV-B): wait_empty() blocks until globally quiescent
// (collective: every rank must call it); test_empty() is the nonblocking
// variant for applications that drive external work queues.
//
// Receive callbacks may themselves send() and send_bcast(), producing the
// data-dependent cascades the paper targets (BFS frontiers, label
// propagation, ...).
//
// Progress engine (core/progress.hpp): when ygm::launch installed an engine
// and the world is untimed, the mailbox registers a pump and switches to
// engine mode — every public operation then takes a per-mailbox recursive
// mutex, and the engine thread (always via try-lock, never blocking the
// rank) drains the transport, forwards intermediary records, and batches
// deliveries addressed to this rank onto a bounded lock-free ring the rank
// consumes at its next poll()/test_empty(). In polling mode the lock is
// never constructed-locked — the hot path keeps its historical
// zero-synchronization shape (one branch). Termination rounds are advanced
// by the engine only while the rank is parked inside wait_empty(); a
// quiescence verdict the engine consumed is preserved in quiescence_seen_
// for the rank's next test.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "core/buffer_pool.hpp"
#include "core/comm_world.hpp"
#include "core/exchange_claim.hpp"
#include "core/packet.hpp"
#include "core/progress.hpp"
#include "core/stats.hpp"
#include "core/termination.hpp"
#include "ser/serialize.hpp"
#include "telemetry/causal.hpp"
#include "telemetry/telemetry.hpp"

namespace ygm::core {

/// Default coalescing capacity: 2^18 bytes, the mailbox size used by the
/// paper's scaling experiments (Figs. 6-8).
inline constexpr std::size_t default_mailbox_capacity = std::size_t{1} << 18;

template <class Msg>
class mailbox {
 public:
  using recv_callback = std::function<void(const Msg&)>;

  /// Every rank of the world must construct its mailboxes in the same order
  /// (they consume matching tag blocks). `capacity_bytes` bounds the total
  /// queued record volume before an exchange is triggered.
  mailbox(comm_world& world, recv_callback on_recv,
          std::size_t capacity_bytes = default_mailbox_capacity)
      : world_(&world),
        on_recv_(std::move(on_recv)),
        capacity_(capacity_bytes),
        // Tag block: data, credit acks, then the termination detector.
        data_tag_(world.reserve_tag_block(2 + termination_detector::tags_used)),
        term_(world, data_tag_ + 2),
        buffers_(static_cast<std::size_t>(world.size())),
        record_counts_(static_cast<std::size_t>(world.size()), 0),
        credit_budget_(world.credit_bytes() == 0
                           ? 0
                           : std::max(world.credit_bytes(), 2 * capacity_bytes)),
        credit_ack_threshold_(credit_budget_ / 4),
        credit_used_(static_cast<std::size_t>(world.size()), 0),
        credit_owed_(static_cast<std::size_t>(world.size()), 0),
        pending_traces_(static_cast<std::size_t>(world.size())) {
    YGM_CHECK(capacity_ > 0, "mailbox capacity must be positive");
    YGM_CHECK(on_recv_ != nullptr, "mailbox requires a receive callback");
    YGM_CHECK(world.size() < packet_credit_escape,
              "world size collides with the reserved escape-record ranks");
    // Register with the rank's progress station. Engine mode needs an
    // attached engine AND an untimed world — the virtual clock is
    // rank-thread state no other thread may advance. Timed (or polling)
    // worlds still register the rank-side closures so the ygm::progress
    // facade works uniformly.
    station_ = &world.progress_station();
    engine_mode_ = station_->engine_attached() && !world.timed();
    pump_ = std::make_shared<progress::pump>();
    pump_->rank_poll = [this] { poll(); };
    pump_->rank_quiesce = [this] { wait_empty(); };
    if (engine_mode_) {
      deferred_ =
          std::make_unique<progress::mpsc_ring<std::vector<std::byte>>>(
              station_->attached_engine()->opts().ring_slots);
      pump_->engine_advance = [this](bool inline_deliveries) {
        return engine_advance(inline_deliveries);
      };
    }
    station_->add_pump(pump_);
  }

  mailbox(const mailbox&) = delete;
  mailbox& operator=(const mailbox&) = delete;

  /// Teardown publishes this mailbox's counters into the rank's telemetry
  /// registry (when one is attached); several mailboxes on one rank sum.
  ~mailbox() {
    // After remove_pump returns the engine can never touch this mailbox
    // again (it disables the pump and waits out any steal in flight), so
    // the rest of teardown is single-threaded.
    station_->remove_pump(pump_);
    if (auto* rec = telemetry::tls()) stats_.publish(rec->metrics());
  }

  // ------------------------------------------------------------- sending

  /// Queue a point-to-point message for rank `dest` (paper SEND). Messages
  /// to self are delivered immediately through the callback.
  void send(int dest, const Msg& m) {
    YGM_CHECK(dest >= 0 && dest < world_->size(), "send destination invalid");
    auto lk = engine_lock();
    ++stats_.app_sends;
    if (dest == world_->rank()) {
      if (world_->serialize_self_sends()) {
        // Debug/chaos path: round-trip rank-local deliveries through ser::
        // like any remote message, so asymmetric serialize() bugs surface
        // in single-rank runs too. A pooled local buffer — the callback may
        // itself send().
        auto buf = buffer_pool::local().acquire();
        ser::append_bytes(m, buf);
        deliver({buf.data(), buf.size()});
        buffer_pool::local().release(std::move(buf));
        return;
      }
      ++stats_.deliveries;
      telemetry::add(telemetry::fast_counter::deliveries);
      on_recv_(m);
      return;
    }
    // Causal-tracing sampling decision: deterministic in (origin, seq), so
    // the same run samples the same messages. Self-sends (above) never hit
    // the wire and are not sampled.
    telemetry::causal::wire_ctx tc;
    const bool traced = telemetry::causal::try_begin(
        world_->rank(), trace_seq_++, static_cast<std::uint32_t>(data_tag_),
        tc);
    // Zero-copy: serialize straight into the coalescing buffer's record
    // slot (no scratch round-trip). The previous payload size seeds the
    // length-slot width, so fixed-size message streams never shift bytes.
    const int nh = world_->route().next_hop(world_->rank(), dest);
    credit_gate(nh, lk);
    world_->virtual_charge_events(1);
    std::size_t before = 0;
    auto& buf = begin_record(nh, before);
    if (traced) append_trace_escape(buf, tc);
    const packet_inplace_result rec = packet_append_inplace(
        buf, /*is_bcast=*/false, dest, len_hint_,
        [&](std::vector<std::byte>& out) { ser::append_bytes(m, out); });
    len_hint_ = rec.payload_size;
    if (traced) note_trace_pending(nh, tc, rec.payload_size);
    finish_record(nh, buf, before);
    if (in_exchange_.load(std::memory_order_relaxed) &&
        queued_bytes_ >= capacity_) {
      flush();
    }
    maybe_exchange();
  }

  /// Queue a broadcast to every other rank (paper SEND_BCAST). Delivered
  /// exactly once at every rank except the origin, along the routing
  /// scheme's broadcast tree.
  void send_bcast(const Msg& m) {
    auto lk = engine_lock();
    ++stats_.app_bcasts;
    const int me = world_->rank();
    const auto hops = world_->route().bcast_next_hops(me, me);
    if (hops.empty()) return;
    // Gate every hop before the first record exists: a mid-fan-out stall
    // would pump progress while holding a span into a coalescing buffer.
    for (const int nh : hops) credit_gate(nh, lk);
    // Serialize once, in place, into the first hop's buffer; the siblings
    // copy that record's payload span. The inline-flush check is deferred
    // past the fan-out so a mid-loop flush cannot invalidate the span.
    world_->virtual_charge_events(1);
    std::size_t before = 0;
    auto& fbuf = begin_record(hops[0], before);
    const packet_inplace_result rec = packet_append_inplace(
        fbuf, /*is_bcast=*/true, me, len_hint_,
        [&](std::vector<std::byte>& out) { ser::append_bytes(m, out); });
    len_hint_ = rec.payload_size;
    finish_record(hops[0], fbuf, before);
    const std::span<const std::byte> payload(fbuf.data() + rec.payload_offset,
                                             rec.payload_size);
    for (std::size_t i = 1; i < hops.size(); ++i) {
      enqueue(hops[i], /*bcast=*/true, me, payload, nullptr,
              /*defer_flush=*/true);
    }
    if (in_exchange_.load(std::memory_order_relaxed) &&
        queued_bytes_ >= capacity_) {
      flush();
    }
    maybe_exchange();
  }

  // ------------------------------------------------------------ progress

  /// Opportunistically deliver and forward whatever has arrived, without
  /// blocking. Useful for ranks acting mostly as intermediaries while they
  /// compute.
  void poll() {
    // Lock-free early-out: if the engine (or an outer frame) is mid-drain,
    // there is nothing useful to add — and skipping before the mutex keeps
    // a reentrant callback poll from serializing against the engine. This
    // unguarded read is why in_exchange_ must be atomic.
    if (engine_mode_ && in_exchange_.load(std::memory_order_acquire)) return;
    const auto lk = engine_lock();
    if (engine_mode_) drain_deferred_locked();
    poll_incoming();
    if (queued_bytes_ >= capacity_) flush();
  }

  /// Flush all coalescing buffers to their next hops, even partially full
  /// ones (the paper's "including empty buffers" flush on termination).
  void flush() {
    const auto lk = engine_lock();
    const std::size_t flushed_bytes = queued_bytes_;
    // Live occupancy gauge, sampled at flush time: the window max is the
    // coalescing high-water mark, at per-flush (not per-message) cost.
    telemetry::live::gauge_set(telemetry::live::gauge::queued_bytes,
                               static_cast<double>(flushed_bytes));
    bool any = false;
    for (int nh : nonempty_) {
      flush_buffer(nh);
      any = true;
    }
    nonempty_.clear();
    queued_bytes_ = 0;
    if (any) {
      ++stats_.flushes;
      telemetry::instant("mailbox.flush", "bytes", flushed_bytes,
                         world_->timed() ? world_->virtual_now() * 1e6 : -1);
    }
  }

  // ---------------------------------------------------------- termination

  /// Nonblocking global-quiescence test (paper TEST_EMPTY). Flushes local
  /// buffers, makes progress, and returns true only once every rank has
  /// stopped producing messages and all hops have been received globally.
  /// Every rank must keep polling for detection to complete.
  bool test_empty() {
    auto lk = engine_lock();
    return test_empty_locked();
  }

  /// Block until global quiescence (paper WAIT_EMPTY). Collective: every
  /// rank of the world must call it. Keeps draining and forwarding while
  /// waiting, so intermediaries stay live until everyone is done.
  void wait_empty() {
    // Blocking loop over the SAME tree detector as test_empty(). The two
    // must share one protocol: an earlier version ran its own blocking
    // allreduce rounds here, which deadlocked whenever some ranks sat in
    // wait_empty while others polled test_empty — the allreduce ranks
    // blocked on a collective the polling ranks never entered.
    telemetry::span sp("mailbox.wait_empty");
    telemetry::causal::stall_watchdog wd;
    if (!engine_mode_) {
      while (!test_empty()) {
        wd.poll({stats_.hops_sent, stats_.hops_received, term_.rounds(),
                 queued_bytes_, credit_budget_, credit_max_in_flight(),
                 stats_.credit_stalls});
        std::this_thread::yield();
      }
    } else {
      // Engine mode: park between tests instead of spinning. While parked
      // the engine may advance this mailbox — including its termination
      // rounds, the one window where that is sound (a parked rank produces
      // nothing, so it cannot invalidate a quiescence verdict). The short
      // wait bound keeps the rank self-sufficient (liveness does not
      // depend on the engine, which may be paused) and feeds the stall
      // watchdog.
      std::unique_lock lk(mx_);
      while (!test_empty_locked()) {
        pump_->parked.store(true, std::memory_order_release);
        park_cv_.wait_for(lk, std::chrono::milliseconds(1));
        pump_->parked.store(false, std::memory_order_release);
        wd.poll({stats_.hops_sent, stats_.hops_received, term_.rounds(),
                 queued_bytes_, credit_budget_, credit_max_in_flight(),
                 stats_.credit_stalls});
      }
    }
    sp.arg("hops_sent", stats_.hops_sent);
    if (world_->timed()) sp.vtime_seconds(world_->virtual_now());
  }

  // ----------------------------------------------------------- inspection

  const mailbox_stats& stats() const noexcept { return stats_; }
  comm_world& world() const noexcept { return *world_; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t queued_bytes() const noexcept { return queued_bytes_; }
  /// Effective per-destination flow-control budget (0 = credit disabled).
  /// May exceed comm_world::credit_bytes(): clamped to >= 2x capacity so a
  /// stalled sender's unacked bytes always cross the receiver's eager-ack
  /// threshold (docs/BACKPRESSURE.md).
  std::size_t credit_budget() const noexcept { return credit_budget_; }
  /// High-water mark of unacked in-flight bytes toward any one destination;
  /// with credit on this never exceeds credit_budget().
  std::uint64_t credit_peak_in_flight() const noexcept { return credit_peak_; }

 private:
  // ------------------------------------------------- record-append pieces
  //
  // The send/forward hot paths share three steps: begin_record (pool
  // acquire + arrival-stamp slot, returns the pre-record size), the record
  // bytes themselves (in-place serialization or a span copy), and
  // finish_record (byte/record accounting).

  /// `before_out` is sampled ahead of the arrival-stamp reservation so the
  /// 8-byte stamp counts toward queued_bytes_: capacity triggering and the
  /// byte counters must agree with the bytes that actually hit the wire.
  std::vector<std::byte>& begin_record(int next_hop, std::size_t& before_out) {
    YGM_ASSERT(next_hop != world_->rank());
    auto& buf = buffers_[static_cast<std::size_t>(next_hop)];
    before_out = buf.size();
    if (buf.empty()) {
      // A flushed buffer was moved to the transport; recycle drained
      // capacity from this rank's pool instead of re-paying the growth
      // chain (docs/PERF.md has the ownership lifecycle).
      if (buf.capacity() == 0) {
        buf = buffer_pool::local().acquire(
            std::min<std::size_t>(capacity_, 4096));
      }
      nonempty_.push_back(next_hop);
      // Reserve the packet's arrival-time slot (virtual-time mode).
      if (world_->timed()) buf.resize(sizeof(double));
    }
    return buf;
  }

  void finish_record(int next_hop, const std::vector<std::byte>& buf,
                     std::size_t before) {
    queued_bytes_ += buf.size() - before;
    ++record_counts_[static_cast<std::size_t>(next_hop)];
  }

  /// This world's routing scheme as a live-sketch index (the enum order is
  /// pinned against telemetry/live.hpp's kSchemeNames by router.cpp).
  unsigned scheme_index() const noexcept {
    return static_cast<unsigned>(world_->route().kind());
  }

  /// Live end-to-end latency feed: one sketch sample per traced delivery,
  /// measured against the origin's wire-stamped send time. All lanes share
  /// one session clock (socket children inherit the pre-fork epoch), so the
  /// difference is meaningful across ranks; a zero stamp means the origin
  /// thread had no lane — skip.
  void note_live_e2e(const telemetry::causal::wire_ctx& c) noexcept {
    if (c.origin_us <= 0) return;
    const double e2e_us = telemetry::now_us() - c.origin_us;
    if (e2e_us < 0) return;
    telemetry::live::note_latency(scheme_index(),
                                  telemetry::live::latency_kind::e2e, e2e_us);
  }

  /// Annotation record first, so the receiver sees the context before the
  /// message it describes. It adds wire bytes (counted by finish_record)
  /// but is not a message hop: record_counts_ and hops_sent exclude it.
  void append_trace_escape(std::vector<std::byte>& buf,
                           const telemetry::causal::wire_ctx& trace) {
    trace_scratch_.clear();
    telemetry::causal::encode_wire(trace, trace_scratch_);
    packet_append(buf, /*is_bcast=*/false, packet_trace_escape,
                  trace_scratch_);
    telemetry::count("trace.annotated_records");
  }

  void note_trace_pending(int next_hop,
                          const telemetry::causal::wire_ctx& trace,
                          std::size_t payload_bytes) {
    telemetry::causal::record_hop(trace, telemetry::causal::hop_kind::enqueue,
                                  -1, payload_bytes);
    pending_traces_[static_cast<std::size_t>(next_hop)].push_back(
        {trace, telemetry::now_us(),
         static_cast<std::uint32_t>(payload_bytes)});
  }

  /// Append an already-serialized record (forwards and broadcast fan-out —
  /// the payload span points into the received packet or a sibling buffer,
  /// never into buffers_[next_hop] itself).
  ///
  /// `defer_flush` lets callers holding a span into another coalescing
  /// buffer postpone the inline flush check until the span is dead.
  void enqueue(int next_hop, bool is_bcast, int addr,
               std::span<const std::byte> payload,
               const telemetry::causal::wire_ctx* trace = nullptr,
               bool defer_flush = false) {
    world_->virtual_charge_events(1);
    std::size_t before = 0;
    auto& buf = begin_record(next_hop, before);
    if (trace != nullptr) {
      append_trace_escape(buf, *trace);
      note_trace_pending(next_hop, *trace, payload.size());
    }
    packet_append(buf, is_bcast, addr, payload);
    finish_record(next_hop, buf, before);
    // Forwarding during an exchange can overfill the buffers; flush inline
    // (without re-entering the poll loop).
    if (!defer_flush && in_exchange_.load(std::memory_order_relaxed) &&
        queued_bytes_ >= capacity_) flush();
  }

  void maybe_exchange() {
    if (queued_bytes_ >= capacity_ &&
        !in_exchange_.load(std::memory_order_relaxed)) {
      exchange_claim claim(in_exchange_, engine_mode_);
      if (!claim.entered()) return;  // outer frame owns the drain
      // A communication context (paper "exchange"): one span per entry,
      // with the trigger volume attached and the duration sampled into the
      // exchange-time histogram.
      telemetry::span sp("mailbox.exchange");
      sp.arg("queued_bytes", queued_bytes_);
      sp.sample_into(telemetry::fast_histogram::exchange_us);
      flush();
      drain_incoming();
      if (world_->timed()) sp.vtime_seconds(world_->virtual_now());
    }
  }

  // -------------------------------------------------------- flow control
  //
  // Credit-based per-destination backpressure (docs/BACKPRESSURE.md). Each
  // (this rank, next hop) link has a byte budget; flush_buffer charges every
  // outgoing packet against it and the receiver returns the bytes — as a
  // packet_credit_escape record piggybacked on reverse data traffic, or as
  // a standalone ack on credit_tag() when none flows — once it has drained
  // them. send()/send_bcast() stall *injection* (and only injection: transit
  // forwarding, flushes, and nested sends from receive callbacks are never
  // gated, which is what makes the protocol deadlock-free) while a link's
  // unacked + locally-queued bytes would exceed the budget.

  bool credit_on() const noexcept { return credit_budget_ != 0; }
  int credit_tag() const noexcept { return data_tag_ + 1; }

  /// Max unacked bytes across links (watchdog postmortem / stall reports).
  std::uint64_t credit_max_in_flight() const noexcept {
    if (!credit_on()) return 0;
    return *std::max_element(credit_used_.begin(), credit_used_.end());
  }

  /// Caller-side backpressure: before injecting a record toward `next_hop`,
  /// pump progress until the link fits it. The predicted cost deliberately
  /// overshoots (arrival stamp + trace escape + piggybacked ack headroom)
  /// so the budget is never exceeded for steady record sizes; a growing
  /// payload can overshoot by at most one record. While stalled the rank
  /// keeps receiving, forwarding, and acking — a flooded peer that is
  /// itself stalled still returns our credit, so symmetric floods resolve.
  void credit_gate(int next_hop, std::unique_lock<std::recursive_mutex>& lk) {
    if (!credit_on()) return;
    // Nested injection from a receive callback runs under the exchange
    // claim; gating it would stall the drain loop that has to free credit.
    if (in_exchange_.load(std::memory_order_relaxed)) return;
    const std::size_t hop = static_cast<std::size_t>(next_hop);
    const std::size_t next_cost =
        packet_record_size(next_hop, len_hint_) + sizeof(double) +
        packet_record_size(packet_trace_escape,
                           telemetry::causal::wire_ctx_bytes) +
        packet_record_size(packet_credit_escape, sizeof(std::uint64_t));
    const auto over = [&] {
      // Idle-link exception: with nothing buffered or unacked, one record
      // may always proceed, else a budget smaller than a single record
      // (tiny clamped budgets) could never admit anything — a livelock,
      // not backpressure. Peak then degrades to max(budget, one record).
      if (credit_used_[hop] == 0 && buffers_[hop].empty()) return false;
      return credit_used_[hop] + buffers_[hop].size() + next_cost >
             credit_budget_;
    };
    if (!over()) [[likely]] return;
    ++stats_.credit_stalls;
    const double start_us = telemetry::now_us();
    do {
      drain_credit_acks();
      poll_incoming();
      flush_credit_acks(/*force=*/true);
      // If the whole deficit is our own unflushed buffer, ship it: nothing
      // else flushes while we stall, and the receiver can only ack bytes
      // that are on the wire. Used becomes nonzero, acks drain it to zero,
      // and the idle-link exception above then admits the send. Mirrors
      // flush()'s bookkeeping for the one link.
      if (credit_used_[hop] == 0 && !buffers_[hop].empty()) {
        queued_bytes_ -= buffers_[hop].size();
        nonempty_.erase(
            std::find(nonempty_.begin(), nonempty_.end(), next_hop));
        flush_buffer(next_hop);
      }
      if (lk.owns_lock()) {
        // Engine mode: consume deferred deliveries and release mx_ across
        // the backoff so the engine can drain on our behalf.
        drain_deferred_locked();
        lk.unlock();
        std::this_thread::yield();
        lk.lock();
      } else {
        std::this_thread::yield();
      }
    } while (over());
    telemetry::causal::record_credit_stall(next_hop, start_us,
                                           credit_used_[hop]);
  }

  /// Charge one flushed packet against its link (no-op with credit off).
  void credit_charge(int nh, std::size_t bytes) {
    if (!credit_on()) return;
    auto& used = credit_used_[static_cast<std::size_t>(nh)];
    used += bytes;
    if (used > credit_peak_) credit_peak_ = used;
    // Live flow-control gauge: per-link occupancy samples; the window max
    // tracks the most indebted link this sampling period.
    telemetry::live::gauge_set(telemetry::live::gauge::credit_used,
                               static_cast<double>(used));
  }

  /// A credit return from `from` arrived: that many of our bytes landed
  /// and were drained there. Clamped — a restarted accounting epoch or the
  /// receiver acking its (slightly larger) packet view must never wrap.
  void credit_consume_ack(int from, std::uint64_t amount) {
    auto& used = credit_used_[static_cast<std::size_t>(from)];
    used -= std::min(used, amount);
    telemetry::live::gauge_set(telemetry::live::gauge::credit_used,
                               static_cast<double>(used));
  }

  /// Receive standalone credit acks. Their dedicated tag keeps them
  /// drainable even while data packets back up, and lets a stalled sender
  /// collect credit without running full packet handling.
  void drain_credit_acks() {
    if (!credit_on()) return;
    auto& mpi = world_->mpi();
    while (auto st = mpi.iprobe(mpisim::any_source, credit_tag())) {
      auto ack = mpi.recv_bytes(st->source, credit_tag());
      std::uint64_t amount = 0;
      YGM_CHECK(ack.size() == sizeof(amount), "malformed credit ack");
      std::memcpy(&amount, ack.data(), sizeof(amount));
      credit_consume_ack(st->source, amount);
      buffer_pool::local().release(std::move(ack));
    }
  }

  /// Return owed bytes as standalone acks: every nonzero debt when `force`
  /// (stall loops and termination tests must not sit on credit a stalled
  /// peer needs), else only links past the eager-ack threshold — reverse
  /// data traffic usually piggybacks the return for free first.
  void flush_credit_acks(bool force) {
    if (!credit_on()) return;
    for (int r = 0; r < static_cast<int>(credit_owed_.size()); ++r) {
      auto& owed = credit_owed_[static_cast<std::size_t>(r)];
      if (owed == 0 || (!force && owed < credit_ack_threshold_)) continue;
      auto ack = buffer_pool::local().acquire(sizeof(std::uint64_t));
      ack.resize(sizeof(std::uint64_t));
      std::memcpy(ack.data(), &owed, sizeof(std::uint64_t));
      owed = 0;
      world_->mpi().send_bytes(r, credit_tag(), std::move(ack));
    }
  }

  void flush_buffer(int nh) {
    auto& buf = buffers_[static_cast<std::size_t>(nh)];
    YGM_ASSERT(!buf.empty());
    // Piggyback this link's owed credit on the outgoing packet: one escape
    // record, zero extra messages. Appended before the stats below so the
    // byte counters match the wire.
    if (credit_on()) {
      auto& owed = credit_owed_[static_cast<std::size_t>(nh)];
      if (owed != 0) {
        std::array<std::byte, sizeof(std::uint64_t)> amount;
        std::memcpy(amount.data(), &owed, sizeof(std::uint64_t));
        packet_append(buf, /*is_bcast=*/false, packet_credit_escape, amount);
        owed = 0;
      }
    }
    const bool remote = world_->topo().is_remote(world_->rank(), nh);
    if (remote) {
      ++stats_.remote_packets;
      stats_.remote_bytes += buf.size();
      telemetry::sample(telemetry::fast_histogram::remote_packet_bytes,
                        static_cast<double>(buf.size()));
    } else {
      ++stats_.local_packets;
      stats_.local_bytes += buf.size();
      telemetry::sample(telemetry::fast_histogram::local_packet_bytes,
                        static_cast<double>(buf.size()));
    }
    stats_.hops_sent += record_counts_[static_cast<std::size_t>(nh)];
    record_counts_[static_cast<std::size_t>(nh)] = 0;
    auto& pend = pending_traces_[static_cast<std::size_t>(nh)];
    if (!pend.empty()) {
      // One flush hop per sampled record: the span covers the record's
      // residency in this coalescing buffer, the byte arg is the size of
      // the wire packet it rode out in.
      const double flush_us = telemetry::now_us();
      for (const auto& p : pend) {
        telemetry::causal::record_hop(
            p.ctx, telemetry::causal::hop_kind::flush, p.enqueue_us,
            buf.size());
        telemetry::live::note_latency(scheme_index(),
                                      telemetry::live::latency_kind::flush,
                                      flush_us - p.enqueue_us);
      }
      pend.clear();
    }
    if (world_->timed()) {
      // Charge the sender's virtual clock for the transfer and stamp the
      // packet with its arrival time at the receiver.
      const double arrival = world_->virtual_charge_packet(buf.size(), remote);
      std::memcpy(buf.data(), &arrival, sizeof(double));
    }
    credit_charge(nh, buf.size());
    // Moved-from: buf is left empty with no capacity; the next record for
    // this hop re-acquires capacity from the pool (the receiver releases
    // the drained packet to its own pool, keeping the cycle allocation-free
    // in the steady state).
    world_->mpi().send_bytes(nh, data_tag_, std::move(buf));
    buf.clear();
  }

  // Reentrant (or engine-raced) calls are no-ops: a receive callback that
  // drives progress itself (poll()/test_empty() — the external-work-queue
  // pattern) would otherwise re-enter the drain loop below once per queued
  // packet, recursing unboundedly; see exchange_claim for the engine half.
  // The outer drain picks up whatever arrives meanwhile.
  void poll_incoming() {
    exchange_claim claim(in_exchange_, engine_mode_);
    if (!claim.entered()) return;
    drain_incoming();
  }

  // The raw drain loop; the caller must already hold the exchange claim.
  void drain_incoming() {
    drain_credit_acks();
    auto& mpi = world_->mpi();
    while (auto st = mpi.iprobe(mpisim::any_source, data_tag_)) {
      auto packet = mpi.recv_bytes(st->source, data_tag_);
      handle_packet(packet, st->source);
      // handle_packet copies every span it keeps (enqueue appends payload
      // bytes into coalescing buffers), so no reference into the packet
      // survives it and the capacity can be recycled.
      buffer_pool::local().release(std::move(packet));
    }
    flush_credit_acks(/*force=*/false);
  }

  // ------------------------------------------------------- progress engine
  //
  // Everything below runs with mx_ held (engine side: acquired by try-lock
  // in engine_advance; rank side: by the public entry points).

  /// Empty (disengaged) in polling mode, so the historical hot path pays
  /// one branch and no atomics; a real lock in engine mode. Recursive so
  /// receive callbacks that send()/poll() just re-enter.
  std::unique_lock<std::recursive_mutex> engine_lock() const {
    // [[unlikely]] keeps the polling-mode hot path straight-line: the
    // engine branch is moved out of the fall-through (send() runs this
    // per message at ~30 M msgs/s, where a taken branch is measurable).
    if (engine_mode_) [[unlikely]] {
      return std::unique_lock(mx_);
    }
    return std::unique_lock<std::recursive_mutex>();
  }

  bool test_empty_locked() {
    // An exception raised by a callback the engine executed on our behalf
    // surfaces on the rank thread at its next progress call.
    if (engine_error_) {
      std::exception_ptr e = std::exchange(engine_error_, nullptr);
      std::rethrow_exception(e);
    }
    if (engine_mode_) drain_deferred_locked();
    poll_incoming();
    flush();
    // Return all owed credit eagerly: a peer stalled in credit_gate cannot
    // reach its own wait_empty, and the detector must not owe its balance
    // to bytes we are sitting on.
    flush_credit_acks(/*force=*/true);
    if (quiescence_seen_) {
      // The engine consumed the detector's sticky verdict while we were
      // parked; honor it exactly once.
      quiescence_seen_ = false;
      return true;
    }
    return term_.poll(stats_.hops_sent, stats_.hops_received);
  }

  /// Engine thread: one advance pass. Never blocks on the rank — if the
  /// rank is anywhere inside the mailbox, back off and retry next pass.
  bool engine_advance(bool inline_deliveries) {
    std::unique_lock lk(mx_, std::try_to_lock);
    if (!lk.owns_lock()) return false;
    if (engine_error_) return false;  // rank must consume the failure first
    exchange_claim claim(in_exchange_);
    if (!claim.entered()) return false;

    bool did = false;
    try {
      did = engine_drain(inline_deliveries);
      if (queued_bytes_ >= capacity_) flush();
      // Termination rounds only for a parked rank with nothing pending in
      // the handoff ring: a computing rank may still produce (false
      // quiescence), and an undrained ring means counted-but-undelivered
      // messages.
      if (pump_->parked.load(std::memory_order_acquire) &&
          deferred_->empty()) {
        flush();
        if (term_.poll(stats_.hops_sent, stats_.hops_received)) {
          quiescence_seen_ = true;
          did = true;
        }
      }
    } catch (...) {
      // A callback executed on the engine (deliver::on_engine) threw, or a
      // transport error surfaced here: park it for the rank thread.
      engine_error_ = std::current_exception();
      did = true;
    }
    if (did) park_cv_.notify_all();
    return did;
  }

  /// Engine-side transport drain: forwards intermediary records in place,
  /// defers (or, under deliver::on_engine, executes) deliveries addressed
  /// to this rank. One ring batch per pass bounds handoff growth; a full
  /// ring is backpressure — the engine leaves messages in the mail slot
  /// until the rank catches up.
  bool engine_drain(bool inline_deliveries) {
    if (!inline_deliveries && deferred_->full()) return false;
    drain_credit_acks();
    auto& mpi = world_->mpi();
    std::vector<std::byte> batch;
    bool did = false;
    while (auto st = mpi.iprobe(mpisim::any_source, data_tag_)) {
      auto packet = mpi.recv_bytes(st->source, data_tag_);
      handle_packet(packet, st->source, inline_deliveries ? nullptr : &batch);
      buffer_pool::local().release(std::move(packet));
      did = true;
      if (batch.size() >= capacity_) break;  // bound one pass's handoff
    }
    flush_credit_acks(/*force=*/false);
    if (batch.size() > sizeof(double)) {
      const double pushed_us = telemetry::now_us();
      std::memcpy(batch.data(), &pushed_us, sizeof(double));
      telemetry::count("progress.deferred_batches");
      // Single producer + the full() check above: this push cannot fail.
      const bool ok = deferred_->try_push(std::move(batch));
      YGM_ASSERT(ok);
      park_cv_.notify_all();
    }
    return did;
  }

  /// Rank thread: execute the delivery callbacks the engine handed off.
  bool drain_deferred_locked() {
    bool any = false;
    while (auto batch = deferred_->try_pop()) {
      double pushed_us = 0;
      YGM_ASSERT(batch->size() >= sizeof(double));
      std::memcpy(&pushed_us, batch->data(), sizeof(double));
      packet_reader reader(
          {batch->data() + sizeof(double), batch->size() - sizeof(double)});
      telemetry::causal::wire_ctx tctx;
      const telemetry::causal::wire_ctx* pending_trace = nullptr;
      while (!reader.done()) {
        const packet_record rec = reader.next();
        if (packet_record_is_trace(rec)) {
          // The engine already bumped the hop at transport-packet arrival;
          // the ring handoff is not a network leg.
          tctx = telemetry::causal::decode_wire(rec.payload);
          pending_trace = &tctx;
          continue;
        }
        if (pending_trace != nullptr) {
          // Span from ring push to delivery = engine-handoff residency.
          telemetry::causal::record_hop(*pending_trace,
                                        telemetry::causal::hop_kind::deliver,
                                        pushed_us, rec.payload.size());
          note_live_e2e(*pending_trace);
          pending_trace = nullptr;
        }
        deliver(rec.payload);
        any = true;
      }
      buffer_pool::local().release(std::move(*batch));
    }
    return any;
  }

  /// Engine side: append one delivery (payload + optional trace context)
  /// to the current handoff batch, in packet format behind an 8-byte
  /// push-timestamp slot.
  void defer_delivery(std::vector<std::byte>& batch,
                      std::span<const std::byte> payload,
                      const telemetry::causal::wire_ctx* trace) {
    if (batch.empty()) {
      batch = buffer_pool::local().acquire(
          std::min<std::size_t>(capacity_, 4096));
      batch.resize(sizeof(double));  // push-timestamp slot
    }
    // No hop event for the ring push: handoff counts as a network leg in
    // journey::legs(), and the ring is rank-internal. Ring residency is
    // still visible — the rank-side drain records the deliver hop with a
    // span starting at the batch's push timestamp.
    if (trace != nullptr) append_trace_escape(batch, *trace);
    // Always recorded as a plain record addressed to this rank: broadcast
    // fan-out already happened on the engine, only the local delivery is
    // deferred.
    packet_append(batch, /*is_bcast=*/false, world_->rank(), payload);
  }

  void handle_packet(const std::vector<std::byte>& packet, int from,
                     std::vector<std::byte>* defer_batch = nullptr) {
    const int me = world_->rank();
    // Flow control: every received byte is owed back to its sender once
    // this drain pass has consumed it (flush_credit_acks / the piggyback in
    // flush_buffer return the debt).
    if (credit_on()) {
      credit_owed_[static_cast<std::size_t>(from)] += packet.size();
    }
    std::span<const std::byte> body(packet.data(), packet.size());
    if (world_->timed()) {
      // The receiver cannot see the packet before it arrives on the
      // modeled machine: advance this rank's clock to the arrival stamp.
      double arrival = 0;
      YGM_CHECK(body.size() >= sizeof(double), "timed packet missing stamp");
      std::memcpy(&arrival, body.data(), sizeof(double));
      world_->virtual_advance_to(arrival);
      body = body.subspan(sizeof(double));
    }
    packet_reader reader(body);
    // Trace annotation for the NEXT message record, if the sender sampled
    // it. Arrival completes a network leg, so the hop index bumps here.
    telemetry::causal::wire_ctx tctx;
    const telemetry::causal::wire_ctx* pending_trace = nullptr;
    while (!reader.done()) {
      const packet_record rec = reader.next();
      if (packet_record_is_trace(rec)) {
        tctx = telemetry::causal::decode_wire(rec.payload);
        ++tctx.hop;
        pending_trace = &tctx;
        continue;  // metadata, not a message hop
      }
      if (packet_record_is_credit(rec)) {
        // Piggybacked credit return. Link-local: consumed here, never
        // forwarded, and not a message hop.
        std::uint64_t amount = 0;
        YGM_CHECK(rec.payload.size() == sizeof(amount),
                  "malformed credit record");
        std::memcpy(&amount, rec.payload.data(), sizeof(amount));
        credit_consume_ack(from, amount);
        continue;
      }
      ++stats_.hops_received;
      world_->virtual_charge_events(1);
      if (rec.is_bcast) {
        YGM_ASSERT(rec.addr != me);  // bcast trees never loop to the origin
        pending_trace = nullptr;  // broadcasts are never sampled
        if (defer_batch != nullptr) {
          defer_delivery(*defer_batch, rec.payload, nullptr);
        } else {
          deliver(rec.payload);
        }
        // Forward straight from the received packet's span — enqueue copies
        // it into the coalescing buffers, and an inline flush only touches
        // those buffers, so the span stays valid across the fan-out.
        for (int nh : world_->route().bcast_next_hops(me, rec.addr)) {
          ++stats_.forwards;
          fwd_marker_.record(static_cast<std::uint64_t>(rec.addr),
                             static_cast<std::uint64_t>(nh));
          enqueue(nh, /*bcast=*/true, rec.addr, rec.payload);
        }
      } else if (rec.addr == me) {
        if (defer_batch != nullptr) {
          defer_delivery(*defer_batch, rec.payload, pending_trace);
          pending_trace = nullptr;
        } else {
          if (pending_trace != nullptr) {
            telemetry::causal::record_hop(
                *pending_trace, telemetry::causal::hop_kind::deliver, -1,
                rec.payload.size());
            note_live_e2e(*pending_trace);
            pending_trace = nullptr;
          }
          deliver(rec.payload);
        }
      } else {
        ++stats_.forwards;
        const int nh = world_->route().next_hop(me, rec.addr);
        fwd_marker_.record(static_cast<std::uint64_t>(rec.addr),
                           static_cast<std::uint64_t>(nh));
        if (pending_trace != nullptr) {
          telemetry::causal::record_hop(*pending_trace,
                                        telemetry::causal::hop_kind::forward,
                                        -1, rec.payload.size());
        }
        // Re-queue straight from the received packet's span (no copy
        // through a forward scratch buffer).
        enqueue(nh, /*bcast=*/false, rec.addr, rec.payload, pending_trace);
        pending_trace = nullptr;
      }
    }
  }

  void deliver(std::span<const std::byte> payload) {
    Msg m{};
    ser::iarchive ar(payload);
    ar & m;
    YGM_CHECK(ar.exhausted(), "message payload has trailing bytes");
    ++stats_.deliveries;
    telemetry::add(telemetry::fast_counter::deliveries);
    on_recv_(m);
  }

  comm_world* world_;
  recv_callback on_recv_;
  std::size_t capacity_;
  int data_tag_;
  termination_detector term_;

  std::vector<std::vector<std::byte>> buffers_;  // keyed by next-hop rank
  std::vector<std::uint32_t> record_counts_;
  std::vector<int> nonempty_;
  std::size_t queued_bytes_ = 0;
  /// The exchange/drain claim (see exchange_claim.hpp). Atomic because
  /// poll()'s engine-mode early-out reads it without mx_; all writes happen
  /// through exchange_claim under the lock discipline.
  std::atomic<bool> in_exchange_{false};

  // ------------------------------------------------- progress-engine state
  //
  // In polling mode only station_/pump_ are live (facade registration);
  // mx_ is never locked, deferred_ is null, and the flags stay false.
  progress::station* station_ = nullptr;
  std::shared_ptr<progress::pump> pump_;
  bool engine_mode_ = false;
  /// Guards ALL mailbox state in engine mode (engine always try-locks).
  mutable std::recursive_mutex mx_;
  /// Signalled by the engine on progress so a parked wait_empty() wakes
  /// promptly; _any because the mutex is recursive.
  std::condition_variable_any park_cv_;
  /// Engine → rank handoff of deferred delivery batches (packet format
  /// behind an 8-byte push timestamp). Bounded: full = backpressure.
  std::unique_ptr<progress::mpsc_ring<std::vector<std::byte>>> deferred_;
  /// A quiescence verdict the engine consumed from the (sticky, one-shot)
  /// detector while the rank was parked; honored at the rank's next test.
  bool quiescence_seen_ = false;
  /// First exception thrown by a callback the engine executed; rethrown on
  /// the rank thread at its next progress call.
  std::exception_ptr engine_error_;

  // ------------------------------------------------------ flow-control state
  //
  // All guarded like the rest of the mailbox (mx_ in engine mode, the
  // single rank thread otherwise). Zero-cost when credit_budget_ == 0.
  std::size_t credit_budget_ = 0;        ///< per-link byte budget (0 = off)
  std::size_t credit_ack_threshold_ = 0; ///< eager standalone-ack watermark
  std::vector<std::uint64_t> credit_used_;  ///< unacked bytes, per next hop
  std::vector<std::uint64_t> credit_owed_;  ///< drained-not-acked, per source
  std::uint64_t credit_peak_ = 0;           ///< max credit_used_ ever seen

  // Length-slot width hint for in-place serialization: the previous
  // payload size, so fixed-size message streams patch the varint in place
  // without ever shifting payload bytes.
  std::size_t len_hint_ = 0;
  mailbox_stats stats_;

  // Causal tracing (telemetry/causal.hpp): sampled records awaiting their
  // flush hop, keyed by next-hop like buffers_. Unsampled runs never touch
  // any of this past the empty() checks.
  struct pending_trace {
    telemetry::causal::wire_ctx ctx;
    double enqueue_us = 0;
    std::uint32_t payload_bytes = 0;
  };
  std::vector<std::vector<pending_trace>> pending_traces_;
  std::vector<std::byte> trace_scratch_;  // encoded annotation payloads
  std::uint32_t trace_seq_ = 0;

  // Timeline event for each record this rank re-queues as an intermediary:
  // arg0 = final destination (or bcast origin), arg1 = chosen next hop.
  telemetry::instant_marker fwd_marker_{"mailbox.forward", "dst", "next_hop"};
};

}  // namespace ygm::core
