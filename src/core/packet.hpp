// Coalesced-packet wire format.
//
// A packet is what one mailbox flush sends to one next-hop rank: a sequence
// of message records, each carrying enough addressing for the receiver to
// deliver or forward it. Message coalescing (paper §IV-A) lives here — the
// per-record overhead is one or two varint bytes in the common case, so
// bundling thousands of small messages into one MPI-level send amortizes
// both network latency and metadata.
//
// Record layout:
//   varint header  h = (addr << 1) | is_bcast
//                  addr = final destination rank (p2p) or origin rank (bcast)
//   varint len     payload byte count
//   len bytes      serialized message payload
//
// Trace annotations: causal tracing (telemetry/causal.hpp) piggybacks a
// 16-byte trace context on sampled messages as an ordinary record addressed
// to the reserved rank `packet_trace_escape`, placed immediately before the
// message record it annotates. Readers that predate (or disable) tracing
// skip it as an undeliverable record; with tracing compiled out no escape
// record is ever appended, so unsampled packets are byte-identical to the
// pre-tracing format.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "ser/varint.hpp"

namespace ygm::core {

/// Reserved p2p address for trace-annotation records. No real rank may use
/// it (mailboxes assert world size stays below it), so a record addressed
/// here is unambiguously metadata about the record that follows.
inline constexpr int packet_trace_escape = (1 << 30) - 1;

/// Reserved p2p address for credit-return records (flow control). The
/// payload is one little-endian u64: how many bytes the sender of this
/// packet has consumed from packets the receiving link previously sent it.
/// Unlike trace escapes this record stands alone (it annotates the link,
/// not a neighbouring record) and is consumed where received — never
/// forwarded.
inline constexpr int packet_credit_escape = packet_trace_escape - 1;

/// Decoded view of one record inside a packet (payload not copied).
struct packet_record {
  bool is_bcast = false;
  int addr = -1;  ///< destination rank (p2p) or origin rank (bcast)
  std::span<const std::byte> payload;
};

/// True if `rec` is a trace annotation for the next record, not a message.
inline bool packet_record_is_trace(const packet_record& rec) noexcept {
  return !rec.is_bcast && rec.addr == packet_trace_escape;
}

/// True if `rec` is a link-level credit return, not a message.
inline bool packet_record_is_credit(const packet_record& rec) noexcept {
  return !rec.is_bcast && rec.addr == packet_credit_escape;
}

/// Append one record to a packet under construction.
inline void packet_append(std::vector<std::byte>& packet, bool is_bcast,
                          int addr, std::span<const std::byte> payload) {
  YGM_ASSERT(addr >= 0);
  const std::uint64_t header =
      (static_cast<std::uint64_t>(addr) << 1) | (is_bcast ? 1u : 0u);
  ser::varint_encode(header, packet);
  ser::varint_encode(payload.size(), packet);
  packet.insert(packet.end(), payload.begin(), payload.end());
}

/// Where an in-place append landed its payload inside the packet.
struct packet_inplace_result {
  std::size_t payload_offset = 0;  ///< first payload byte, as a packet index
  std::size_t payload_size = 0;    ///< serialized payload byte count
};

/// Append one record, serializing the payload directly into the packet —
/// the zero-copy counterpart of packet_append. `serialize_payload` is any
/// callable appending the payload bytes to the vector it is given (e.g.
/// `ser::append_bytes(m, out)`); its size need not be known up front.
///
/// A length slot sized for `len_hint` is reserved between the header and
/// the payload, then patched with the minimal varint once the true size is
/// known; when the guess was wrong the payload is shifted by the width
/// difference. The encoding is therefore byte-identical to packet_append
/// for every (addr, is_bcast, payload) — callers feed the previous record's
/// size back as the hint so steady streams of same-sized messages never
/// shift. Returns the payload's final position (still valid until the next
/// packet mutation), so broadcast fan-out can memcpy the encoded payload to
/// sibling buffers instead of re-serializing.
template <class SerializeFn>
packet_inplace_result packet_append_inplace(std::vector<std::byte>& packet,
                                            bool is_bcast, int addr,
                                            std::size_t len_hint,
                                            SerializeFn&& serialize_payload) {
  YGM_ASSERT(addr >= 0);
  const std::uint64_t header =
      (static_cast<std::uint64_t>(addr) << 1) | (is_bcast ? 1u : 0u);
  ser::varint_encode(header, packet);
  const std::size_t slot_at = packet.size();
  const std::size_t slot_width = ser::varint_size(len_hint);
  packet.resize(slot_at + slot_width);
  const std::size_t payload_at = packet.size();
  serialize_payload(packet);
  YGM_ASSERT(packet.size() >= payload_at);
  const std::size_t len = packet.size() - payload_at;
  const std::size_t width = ser::varint_size(len);
  if (width != slot_width) {
    if (width > slot_width) packet.resize(packet.size() + (width - slot_width));
    std::memmove(packet.data() + slot_at + width, packet.data() + payload_at,
                 len);
    if (width < slot_width) packet.resize(slot_at + width + len);
  }
  ser::varint_encode_at(len, packet.data() + slot_at);
  return {slot_at + width, len};
}

/// Upper bound on the encoded size of one record (for capacity accounting).
inline std::size_t packet_record_size(int addr,
                                      std::size_t payload_bytes) noexcept {
  return ser::varint_size(static_cast<std::uint64_t>(addr) << 1) +
         ser::varint_size(payload_bytes) + payload_bytes;
}

/// Streaming reader over a received packet.
class packet_reader {
 public:
  explicit packet_reader(std::span<const std::byte> packet)
      : p_(packet.data()), end_(packet.data() + packet.size()) {}

  bool done() const noexcept { return p_ == end_; }

  packet_record next() {
    const std::uint64_t header = ser::varint_decode(p_, end_);
    const std::uint64_t len = ser::varint_decode(p_, end_);
    YGM_CHECK(len <= static_cast<std::uint64_t>(end_ - p_),
              "truncated packet record");
    packet_record rec;
    rec.is_bcast = (header & 1u) != 0;
    rec.addr = static_cast<int>(header >> 1);
    rec.payload = std::span<const std::byte>(p_, static_cast<std::size_t>(len));
    p_ += len;
    return rec;
  }

 private:
  const std::byte* p_;
  const std::byte* end_;
};

}  // namespace ygm::core
