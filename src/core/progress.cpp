#include "core/progress.hpp"

#include <cstdlib>

#include "core/comm_world.hpp"
#include "telemetry/live.hpp"
#include "telemetry/telemetry.hpp"
#include "transport/endpoint.hpp"

namespace ygm::progress {

// ------------------------------------------------------------------- mode

std::string_view to_string(mode m) noexcept {
  switch (m) {
    case mode::polling:
      return "polling";
    case mode::engine:
      return "engine";
  }
  return "?";
}

std::optional<mode> mode_from_name(std::string_view name) noexcept {
  if (name == "polling") return mode::polling;
  if (name == "engine") return mode::engine;
  return std::nullopt;
}

mode mode_from_env() {
  const char* env = std::getenv("YGM_PROGRESS");
  if (env == nullptr || *env == '\0') return mode::polling;
  const auto m = mode_from_name(env);
  YGM_CHECK(m.has_value(), std::string("unknown YGM_PROGRESS mode: ") + env +
                               " (expected polling|engine)");
  return *m;
}

// ---------------------------------------------------------------- station

station::station(engine* eng, transport::endpoint* ep)
    : engine_(eng), ep_(ep) {}

void station::add_pump(std::shared_ptr<pump> p) {
  std::lock_guard lock(pumps_mtx_);
  pumps_.push_back(std::move(p));
}

void station::remove_pump(const std::shared_ptr<pump>& p) {
  // Disable first, then wait out any steal in flight: the engine sets busy
  // before re-checking enabled, so once busy reads false with enabled
  // already false, the engine can never enter this pump again.
  p->enabled.store(false, std::memory_order_seq_cst);
  while (p->busy.load(std::memory_order_seq_cst)) {
    std::this_thread::yield();
  }
  std::lock_guard lock(pumps_mtx_);
  std::erase(pumps_, p);
}

void station::enter_guard(bool inline_deliveries) noexcept {
  if (inline_deliveries) {
    inline_depth_.fetch_add(1, std::memory_order_acq_rel);
  }
  guard_depth_.fetch_add(1, std::memory_order_acq_rel);
}

void station::exit_guard(bool inline_deliveries) noexcept {
  guard_depth_.fetch_sub(1, std::memory_order_acq_rel);
  if (inline_deliveries) {
    inline_depth_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void station::shutdown() noexcept {
  enabled_.store(false, std::memory_order_seq_cst);
  while (servicing_.load(std::memory_order_seq_cst)) {
    std::this_thread::yield();
  }
}

void station::for_each_pump(const std::function<void(pump&)>& f) {
  // Snapshot under the lock, run outside it: rank_quiesce is collective and
  // may block for a long time.
  std::vector<std::shared_ptr<pump>> snap;
  {
    std::lock_guard lock(pumps_mtx_);
    snap = pumps_;
  }
  for (auto& p : snap) {
    if (p->enabled.load(std::memory_order_acquire)) f(*p);
  }
}

bool station::service() {
  // The busy-style handshake with shutdown(): mark servicing, then re-check
  // enabled. shutdown() orders its store before the spin, so either we see
  // disabled here and bail, or shutdown waits until this pass finishes.
  servicing_.store(true, std::memory_order_seq_cst);
  if (!enabled_.load(std::memory_order_seq_cst)) {
    servicing_.store(false, std::memory_order_release);
    return false;
  }

  bool did_work = false;
  const bool inline_ok = inline_deliveries();
  const bool stealable = guard_depth() > 0;

  {
    std::lock_guard lock(pumps_mtx_);
    scratch_ = pumps_;
  }
  for (auto& p : scratch_) {
    if (!p->engine_advance) continue;  // polling-only registration
    // Steal only while the rank is inside a guard or parked in wait_empty:
    // anywhere else the rank is polling for itself, and an uninvited steal
    // would just contend the mailbox mutex.
    if (!stealable && !p->parked.load(std::memory_order_acquire)) continue;

    p->busy.store(true, std::memory_order_seq_cst);
    if (!p->enabled.load(std::memory_order_seq_cst)) {
      p->busy.store(false, std::memory_order_release);
      continue;
    }
    bool advanced = false;
    try {
      advanced = p->engine_advance(inline_ok);
    } catch (...) {
      // engine_advance contracts to capture callback exceptions itself;
      // anything escaping here is a mailbox bug — don't take the engine
      // thread (and with it the whole world's progress) down.
      advanced = false;
    }
    p->busy.store(false, std::memory_order_release);
    did_work |= advanced;
    if (engine_ != nullptr) engine_->note_steal(advanced);
  }
  scratch_.clear();

  // Donate a pump to the transport so backends with a wire to service
  // (socket) keep draining while every rank computes.
  if (ep_ != nullptr && ep_->progress_hook()) {
    did_work = true;
    if (engine_ != nullptr) engine_->note_hook_pump();
  }

  servicing_.store(false, std::memory_order_release);
  return did_work;
}

// ----------------------------------------------------------------- engine

engine::engine(options opts, int telemetry_world)
    : opts_(opts), telemetry_world_(telemetry_world) {
  // Advertise as the live-telemetry driver before make_process_services can
  // run (launch creates the engine first), so the sampler rides this
  // thread's passes instead of starting its own.
  telemetry::live::set_engine_driver(true);
  telemetry::live::set_engine_stats_provider([this] {
    const counters c = stats();
    telemetry::live::engine_stats s;
    s.valid = true;
    s.passes = c.passes;
    s.steal_attempts = c.steal_attempts;
    s.steals = c.steals;
    s.hook_pumps = c.hook_pumps;
    return s;
  });
  thread_ = std::thread([this] { loop(); });
}

engine::~engine() {
  // Unpublish from live telemetry before tearing the thread down so statusz
  // never queries a half-destroyed engine. The sampler (torn down before the
  // engine by the launch layer) falls back to never ticking once the driver
  // flag drops.
  telemetry::live::set_engine_stats_provider({});
  telemetry::live::set_engine_driver(false);
  stop_.store(true, std::memory_order_release);
  thread_.join();
  // The engine lane (if any) was written by the now-joined thread; without
  // one, fold the summary counters into whichever lane the destroying
  // thread is bound to (the socket child's rank lane — the only lanes that
  // ship across the result pipe).
  if (telemetry_world_ < 0 && telemetry::tls() != nullptr) {
    publish_counters();
  }
}

void engine::adopt(std::shared_ptr<station> st) {
  // Lock-free handoff; the ring is comfortably larger than any realistic
  // number of concurrently-constructed worlds, but push can still fail if
  // ranks outrun the engine loop — retry, the consumer drains every pass.
  while (!incoming_.try_push(std::move(st))) {
    std::this_thread::yield();  // full ring: the consumer drains every pass
  }
}

engine::counters engine::stats() const noexcept {
  counters c;
  c.passes = passes_.load(std::memory_order_relaxed);
  c.steal_attempts = steal_attempts_.load(std::memory_order_relaxed);
  c.steals = steals_.load(std::memory_order_relaxed);
  c.hook_pumps = hook_pumps_.load(std::memory_order_relaxed);
  return c;
}

void engine::note_steal(bool advanced) noexcept {
  steal_attempts_.fetch_add(1, std::memory_order_relaxed);
  if (advanced) steals_.fetch_add(1, std::memory_order_relaxed);
}

void engine::note_hook_pump() noexcept {
  hook_pumps_.fetch_add(1, std::memory_order_relaxed);
}

void engine::publish_counters() {
  const counters c = stats();
  telemetry::count("progress.engine.passes", c.passes);
  telemetry::count("progress.engine.steal_attempts", c.steal_attempts);
  telemetry::count("progress.engine.steals", c.steals);
  telemetry::count("progress.engine.hook_pumps", c.hook_pumps);
}

void engine::loop() {
  // Bind the engine thread to its own telemetry lane of the rank threads'
  // world so causal hop events recorded here stitch into the same journeys
  // (tools/ygm_trace matches on (world, journey id), not lane index).
  std::optional<telemetry::rank_scope> lane;
  if (telemetry_world_ >= 0 && telemetry::global() != nullptr) {
    const int lane_rank = telemetry::global()->add_lane(telemetry_world_);
    lane.emplace(*telemetry::global(), telemetry_world_, lane_rank);
  }

  int idle_passes = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    while (auto st = incoming_.try_pop()) {
      stations_.push_back(std::move(*st));
    }

    bool did_work = false;
    if (!paused_.load(std::memory_order_acquire)) {
      for (auto it = stations_.begin(); it != stations_.end();) {
        if (!(*it)->enabled()) {
          it = stations_.erase(it);
          continue;
        }
        did_work |= (*it)->service();
        ++it;
      }
    }
    passes_.fetch_add(1, std::memory_order_relaxed);
    // Drive the live sampler from this thread: one due-check per pass, a
    // real tick only every sample period (the sampler owns the cadence).
    telemetry::live::sampler_poll();

    if (did_work) {
      idle_passes = 0;
    } else if (++idle_passes >= opts_.spin_passes) {
      std::this_thread::sleep_for(opts_.idle_sleep);
    }
  }

  if (lane.has_value()) publish_counters();
}

// ------------------------------------------------- process-wide installation

namespace {
engine* g_engine = nullptr;
}

engine* current() noexcept { return g_engine; }

engine_scope::engine_scope(engine::options opts, int telemetry_world)
    : eng_(std::make_unique<engine>(opts, telemetry_world)) {
  YGM_CHECK(g_engine == nullptr,
            "a progress engine is already installed in this process");
  g_engine = eng_.get();
}

engine_scope::~engine_scope() {
  g_engine = nullptr;
  eng_.reset();
}

// ------------------------------------------------------------- rank facade

guard::guard(core::comm_world& w, deliver policy)
    : st_(&w.progress_station()), inline_(policy == deliver::on_engine) {
  st_->enter_guard(inline_);
}

guard::~guard() { st_->exit_guard(inline_); }

void drain(core::comm_world& w) {
  w.progress_station().for_each_pump([](pump& p) {
    if (p.rank_poll) p.rank_poll();
  });
}

void quiesce(core::comm_world& w) {
  w.progress_station().for_each_pump([](pump& p) {
    if (p.rank_quiesce) p.rank_quiesce();
  });
}

}  // namespace ygm::progress
