// The YGM progress engine (ROADMAP item 2): opt-in dedicated progress.
//
// YGM is *pseudo*-asynchronous (paper §IV): nothing moves unless a rank
// polls, so a rank deep in compute stalls every peer routing through it.
// The related work is unanimous that dedicated progress is the fix ("MPI
// Progress For All", arXiv 2405.13807; "Asynchronous MPI for the Masses",
// arXiv 1302.4280). This header adds that mechanism without giving up the
// polling mode's zero-synchronization hot path:
//
//   engine   — one progress thread per OS process hosting rank bodies: one
//              per shared_address_space() group on the inproc backend (the
//              whole world lives in one process), one per forked rank
//              process on the socket backend. Started per run by
//              ygm::launch through mpisim::run_options::process_services.
//   station  — one per (comm_world, rank): the engine-visible face of a
//              rank. Owns the rank's registered pumps and the
//              progress_guard depth.
//   pump     — one per mailbox: the closures the engine (engine_advance)
//              and the ygm::progress facade (rank_poll / rank_quiesce)
//              drive, plus the enable/busy/parked handshake flags.
//   guard    — RAII marking a compute region the engine may steal from.
//
// What the engine is allowed to do, and when (the safety contract):
//
//   * It only advances a rank's mailboxes while that rank is inside a
//     progress_guard or parked in wait_empty(). Outside those windows the
//     rank gets no help — and needs none, because it is polling itself.
//   * Mailbox state is protected by a per-mailbox recursive mutex that is
//     only ever taken in engine mode (polling mode keeps its
//     zero-synchronization hot path: one predictable branch). The engine
//     always try-locks: if the rank thread is active inside the mailbox,
//     the engine moves on instead of blocking it.
//   * Deliveries addressed to the rank are NOT executed on the engine
//     thread by default: the engine batches them (packet format, trace
//     escapes included) onto a bounded lock-free ring and the rank thread
//     runs the callbacks at its next poll()/test_empty()/drain(). The
//     application therefore never sees its callback race its compute code.
//     A guard opened with deliver::on_engine opts into engine-side
//     execution for callbacks that are safe to run concurrently.
//   * Termination-detector rounds are only advanced for ranks parked in
//     wait_empty(): a rank inside a guard may still produce messages, and a
//     produce-capable rank participating in detection rounds could latch a
//     false global quiescence.
//   * A full ring is backpressure: the engine stops draining the transport
//     for that mailbox (messages stay in the mail slot) until the rank
//     catches up.
//
// Chaos faults stay injected at the transport seam: the engine drains
// through the same mpi.iprobe()/recv path as the rank, so visibility
// delays, iprobe false negatives, and stalls hit engine-stolen progress
// exactly as they hit polled progress.
//
// Configuration precedence (documented once, here and in docs/PROGRESS.md):
// explicit ygm::run_options field > YGM_* environment variable > default.
// For the progress mode that is run_options::progress_mode > YGM_PROGRESS >
// polling.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <vector>

#include "common/assert.hpp"

namespace ygm::transport {
class endpoint;
}
namespace ygm::core {
class comm_world;
}
namespace ygm::telemetry {
class recorder;
}

namespace ygm::progress {

// ------------------------------------------------------------------- mode

enum class mode {
  polling,  ///< historical behaviour: progress only when a rank polls
  engine,   ///< dedicated progress thread steals from guarded/parked ranks
};

std::string_view to_string(mode m) noexcept;

/// Parse a mode name ("polling" | "engine"); nullopt on anything else.
std::optional<mode> mode_from_name(std::string_view name) noexcept;

/// The mode named by YGM_PROGRESS, defaulting to polling when unset or
/// empty. Throws ygm::error on an unknown name (a typo silently falling
/// back to polling would fake engine coverage).
mode mode_from_env();

// -------------------------------------------------------------- mpsc_ring

/// Bounded lock-free multi-producer / single-consumer ring (Vyukov bounded
/// queue). Two uses here: rank threads handing station registrations to the
/// engine (true MPSC), and the engine handing deferred delivery batches to
/// a rank (SPSC — the producer side is still the general algorithm).
/// Capacity is rounded up to a power of two. try_push never blocks: a full
/// ring returns false and the producer applies backpressure.
template <class T>
class mpsc_ring {
 public:
  explicit mpsc_ring(std::size_t min_capacity) {
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    slots_ = std::make_unique<slot[]>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  mpsc_ring(const mpsc_ring&) = delete;
  mpsc_ring& operator=(const mpsc_ring&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  bool try_push(T&& v) noexcept {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      slot& s = slots_[pos & mask_];
      const std::size_t seq = s.seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          s.value = std::move(v);
          s.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single consumer only.
  std::optional<T> try_pop() noexcept {
    const std::size_t pos = head_;
    slot& s = slots_[pos & mask_];
    const std::size_t seq = s.seq.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) !=
        static_cast<std::intptr_t>(pos + 1)) {
      return std::nullopt;  // empty (or producer mid-write)
    }
    std::optional<T> out(std::move(s.value));
    s.value = T{};
    s.seq.store(pos + mask_ + 1, std::memory_order_release);
    ++head_;
    return out;
  }

  /// Consumer-side emptiness (exact for the consumer; producers may be
  /// mid-push, in which case the entry is visible to the next call).
  bool empty() const noexcept {
    const slot& s = slots_[head_ & mask_];
    return static_cast<std::intptr_t>(s.seq.load(std::memory_order_acquire)) !=
           static_cast<std::intptr_t>(head_ + 1);
  }

  /// Producer-side fullness hint (exact under a single producer).
  bool full() const noexcept {
    const std::size_t pos = tail_.load(std::memory_order_relaxed);
    const slot& s = slots_[pos & mask_];
    return static_cast<std::intptr_t>(s.seq.load(std::memory_order_acquire)) <
           static_cast<std::intptr_t>(pos);
  }

 private:
  struct slot {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  std::unique_ptr<slot[]> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> tail_{0};  // producers
  alignas(64) std::size_t head_ = 0;              // single consumer
};

// ------------------------------------------------------------------- pump

/// One mailbox's registration with its station. The engine drives
/// engine_advance (nullptr when the mailbox opted out, e.g. timed worlds);
/// the ygm::progress facade drives rank_poll/rank_quiesce on the rank
/// thread in both modes.
struct pump {
  /// Cleared by the mailbox destructor (via station::remove_pump) before
  /// the mailbox dies; the engine never invokes a disabled pump.
  std::atomic<bool> enabled{true};
  /// Set by the engine around each engine_advance call; remove_pump spins
  /// on it so teardown cannot race a steal in flight.
  std::atomic<bool> busy{false};
  /// Set by the mailbox while its owner blocks in wait_empty() — the only
  /// window in which the engine may advance termination rounds.
  std::atomic<bool> parked{false};

  /// Engine thread. Returns true if any progress was made. The bool asks
  /// for engine-side callback execution (guard deliver::on_engine).
  std::function<bool(bool inline_deliveries)> engine_advance;
  /// Rank thread (facade drain()).
  std::function<void()> rank_poll;
  /// Rank thread (facade quiesce(); collective).
  std::function<void()> rank_quiesce;
};

// ---------------------------------------------------------------- station

class engine;

/// One rank's face toward the engine: pumps, guard depth, and the transport
/// endpoint whose progress_hook the engine donates cycles to. Created by
/// comm_world (always — the ygm::progress facade works in polling mode
/// too); registered with the engine only when one is installed and the
/// world is eligible (untimed).
class station {
 public:
  station(engine* eng, transport::endpoint* ep);

  station(const station&) = delete;
  station& operator=(const station&) = delete;

  /// The engine this station is registered with (nullptr in polling mode).
  engine* attached_engine() const noexcept { return engine_; }
  bool engine_attached() const noexcept { return engine_ != nullptr; }

  // ----------------------------------------------------------- rank side

  void add_pump(std::shared_ptr<pump> p);

  /// Disable + wait out any steal in flight on `p`, then drop it. After
  /// this returns the engine will never touch the owning mailbox again.
  void remove_pump(const std::shared_ptr<pump>& p);

  void enter_guard(bool inline_deliveries) noexcept;
  void exit_guard(bool inline_deliveries) noexcept;

  /// Stop the engine from ever touching this station again (idempotent;
  /// spins out a service pass in flight). comm_world's destructor calls
  /// this before the endpoint can die.
  void shutdown() noexcept;

  /// Rank-side iteration for the facade (drain()/quiesce()).
  void for_each_pump(const std::function<void(pump&)>& f);

  // -------------------------------------------------- mailbox-side state

  /// Depth of open progress_guards on the owning rank.
  int guard_depth() const noexcept {
    return guard_depth_.load(std::memory_order_acquire);
  }
  /// True while a deliver::on_engine guard is open.
  bool inline_deliveries() const noexcept {
    return inline_depth_.load(std::memory_order_acquire) > 0;
  }

  // ---------------------------------------------------------- engine side

  /// One engine service pass: advance eligible pumps, donate a pump to the
  /// endpoint's progress hook. Returns true if any progress was made.
  bool service();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_acquire);
  }

 private:
  engine* engine_;
  transport::endpoint* ep_;
  std::atomic<bool> enabled_{true};
  std::atomic<bool> servicing_{false};
  std::atomic<int> guard_depth_{0};
  std::atomic<int> inline_depth_{0};
  std::mutex pumps_mtx_;
  std::vector<std::shared_ptr<pump>> pumps_;
  std::vector<std::shared_ptr<pump>> scratch_;  // engine-side snapshot
};

// ----------------------------------------------------------------- engine

/// Engine tuning knobs. Lives at namespace scope (not nested in `engine`)
/// so it is a complete type with parsed member initializers wherever the
/// engine constructors spell `= {}` default arguments — GCC defers nested
/// classes' member initializers until the enclosing class is complete,
/// which would reject that spelling for a nested aggregate.
struct engine_options {
  /// Idle passes before the engine starts sleeping between passes.
  int spin_passes = 16;
  /// Sleep between passes once idle (microseconds).
  std::chrono::microseconds idle_sleep{100};
  /// Slots in each mailbox's deferred-delivery ring (batches, one per
  /// engine drain pass).
  std::size_t ring_slots = 64;
};

class engine {
 public:
  using options = engine_options;

  /// Monotonic counters, readable from any thread (tests, benches).
  struct counters {
    std::uint64_t passes = 0;         ///< service loop iterations
    std::uint64_t steal_attempts = 0; ///< pump engine_advance invocations
    std::uint64_t steals = 0;         ///< invocations that made progress
    std::uint64_t hook_pumps = 0;     ///< endpoint progress_hook donations
  };

  /// `telemetry_world` >= 0 binds the engine thread to a fresh lane of that
  /// telemetry world (session::add_lane), so causal hop events recorded
  /// from the engine stitch into the same journeys as the rank lanes. Pass
  /// -1 when the lane would not survive (socket children ship exactly one
  /// lane per rank) — engine counters then fold into the stopping thread's
  /// lane instead.
  explicit engine(options opts = {}, int telemetry_world = -1);
  ~engine();

  engine(const engine&) = delete;
  engine& operator=(const engine&) = delete;

  const options& opts() const noexcept { return opts_; }

  /// Register a station (thread-safe; lock-free handoff to the engine
  /// loop). The engine holds a reference until the station shuts down.
  void adopt(std::shared_ptr<station> st);

  /// Pause/resume stealing without tearing the thread down (mid-run
  /// start/stop). Mailboxes stay in engine mode; ranks simply stop getting
  /// help while paused.
  void pause() noexcept { paused_.store(true, std::memory_order_release); }
  void resume() noexcept { paused_.store(false, std::memory_order_release); }
  bool paused() const noexcept {
    return paused_.load(std::memory_order_acquire);
  }

  counters stats() const noexcept;

  // Station-side accounting (called from the engine thread during service).
  void note_steal(bool advanced) noexcept;
  void note_hook_pump() noexcept;

 private:
  void loop();
  void publish_counters();

  options opts_;
  int telemetry_world_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> paused_{false};
  std::atomic<std::uint64_t> passes_{0};
  std::atomic<std::uint64_t> steal_attempts_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> hook_pumps_{0};
  mpsc_ring<std::shared_ptr<station>> incoming_{256};
  std::vector<std::shared_ptr<station>> stations_;  // engine thread only
  std::thread thread_;
};

// ------------------------------------------------- process-wide installation

/// The process's installed engine, or nullptr in polling mode. Set before
/// rank bodies start and cleared after they join (thread creation/join
/// provides the ordering), so rank threads may read it without
/// synchronization.
engine* current() noexcept;

/// Owns the process engine and installs it as current() for its lifetime.
/// One per OS process hosting rank bodies; ygm::launch creates it through
/// mpisim::run_options::process_services (the driver process on inproc,
/// each forked child on socket — an engine thread would not survive fork).
class engine_scope {
 public:
  explicit engine_scope(engine::options opts = {}, int telemetry_world = -1);
  ~engine_scope();

  engine_scope(const engine_scope&) = delete;
  engine_scope& operator=(const engine_scope&) = delete;

  engine& get() noexcept { return *eng_; }

 private:
  std::unique_ptr<engine> eng_;
};

// ------------------------------------------------------------- rank facade
//
// The ygm::progress surface applications use instead of raw mailbox
// poll_incoming()/flush() passthroughs. All of it works in polling mode too
// (guard becomes a no-op marker, drain/quiesce drive the mailboxes from the
// rank thread), so application code is mode-independent.

/// Delivery policy for a guard region.
enum class deliver {
  deferred,   ///< engine batches callbacks; the rank runs them at drain
  on_engine,  ///< engine runs callbacks directly (caller asserts safety)
};

/// RAII: marks a compute region the engine may steal progress from. Open it
/// around compute loops between sends; close it before touching state your
/// callbacks share without synchronization (unless you opted into
/// deliver::deferred, the default, which never runs callbacks concurrently
/// with the rank).
class guard {
 public:
  explicit guard(core::comm_world& w, deliver policy = deliver::deferred);
  ~guard();

  guard(const guard&) = delete;
  guard& operator=(const guard&) = delete;

 private:
  station* st_;
  bool inline_ = false;
};

/// Deliver any engine-deferred callbacks and opportunistically poll every
/// mailbox of the world, on the calling rank's thread. Safe in any mode.
void drain(core::comm_world& w);

/// Collective: wait_empty() every mailbox of the world, in construction
/// order (identical across ranks by the mailbox tag-block contract).
void quiesce(core::comm_world& w);

}  // namespace ygm::progress
