// Per-rank mailbox statistics.
//
// These counters are the bridge between executed runs and the network cost
// model: benches run the real mailbox at thread scale, then price the
// recorded local/remote packet traffic on the Fig. 5 bandwidth curve to
// report modeled time next to wall time (DESIGN.md §2).
//
// The struct keeps its plain-counter cost-model API (cheap, copyable,
// gatherable over mpisim), and additionally knows how to publish itself
// into a telemetry::metrics_registry so the mailbox layers feed the
// telemetry subsystem without a second set of counters.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/params.hpp"
#include "telemetry/metrics.hpp"

namespace ygm::core {

struct mailbox_stats {
  std::uint64_t app_sends = 0;       ///< user send() calls
  std::uint64_t app_bcasts = 0;      ///< user send_bcast() calls
  std::uint64_t deliveries = 0;      ///< receive-callback invocations
  std::uint64_t hops_sent = 0;       ///< message-hop records flushed out
  std::uint64_t hops_received = 0;   ///< message-hop records parsed in
  std::uint64_t forwards = 0;        ///< records re-queued as intermediary
  std::uint64_t local_packets = 0;   ///< coalesced packets to same-node ranks
  std::uint64_t remote_packets = 0;  ///< coalesced packets across nodes
  std::uint64_t local_bytes = 0;
  std::uint64_t remote_bytes = 0;
  std::uint64_t flushes = 0;         ///< capacity-triggered exchanges
  std::uint64_t credit_stalls = 0;   ///< sends blocked on exhausted credit

  mailbox_stats& operator+=(const mailbox_stats& o) {
    app_sends += o.app_sends;
    app_bcasts += o.app_bcasts;
    deliveries += o.deliveries;
    hops_sent += o.hops_sent;
    hops_received += o.hops_received;
    forwards += o.forwards;
    local_packets += o.local_packets;
    remote_packets += o.remote_packets;
    local_bytes += o.local_bytes;
    remote_bytes += o.remote_bytes;
    flushes += o.flushes;
    credit_stalls += o.credit_stalls;
    return *this;
  }

  /// Average packet size for a (packets, bytes) counter pair; 0 when no
  /// packets were recorded.
  static double avg_bytes(std::uint64_t packets, std::uint64_t bytes) {
    return packets == 0
               ? 0.0
               : static_cast<double>(bytes) / static_cast<double>(packets);
  }

  /// Average coalesced wire packet size — the quantity the routing schemes
  /// exist to maximize (paper §III-E).
  double avg_remote_packet_bytes() const {
    return avg_bytes(remote_packets, remote_bytes);
  }

  /// Average same-node packet size.
  double avg_local_packet_bytes() const {
    return avg_bytes(local_packets, local_bytes);
  }

  /// Price this rank's recorded traffic on a network model: transfer time
  /// the traffic would cost on the modeled machine.
  double modeled_comm_seconds(const net::network_params& np) const {
    double t = 0;
    if (remote_packets != 0) {
      t += static_cast<double>(remote_packets) *
           np.remote.transfer_time(avg_bytes(remote_packets, remote_bytes));
    }
    if (local_packets != 0) {
      t += static_cast<double>(local_packets) *
           np.local.transfer_time(avg_bytes(local_packets, local_bytes));
    }
    t += static_cast<double>(hops_sent + hops_received) * np.cpu_s_per_msg;
    return t;
  }

  /// Accumulate these counters into a metrics registry under
  /// "<prefix>.<counter>" (the telemetry taxonomy in docs/TELEMETRY.md).
  /// Summing is the right merge for multiple mailboxes on one rank and for
  /// cross-rank aggregation alike.
  void publish(telemetry::metrics_registry& m,
               std::string_view prefix = "mailbox") const {
    const std::string p(prefix);
    m.counter(p + ".app_sends") += app_sends;
    m.counter(p + ".app_bcasts") += app_bcasts;
    // deliveries is intentionally absent: it is counted live through
    // fast_counter::deliveries at the same increment sites (the sampler
    // needs it mid-run), and the fast counters fold into this registry at
    // merge — publishing it here too would double the teardown total.
    m.counter(p + ".hops_sent") += hops_sent;
    m.counter(p + ".hops_received") += hops_received;
    m.counter(p + ".forwards") += forwards;
    m.counter(p + ".local_packets") += local_packets;
    m.counter(p + ".remote_packets") += remote_packets;
    m.counter(p + ".local_bytes") += local_bytes;
    m.counter(p + ".remote_bytes") += remote_bytes;
    m.counter(p + ".flushes") += flushes;
    m.counter(p + ".credit_stalls") += credit_stalls;
  }
};

}  // namespace ygm::core
