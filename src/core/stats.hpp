// Per-rank mailbox statistics.
//
// These counters are the bridge between executed runs and the network cost
// model: benches run the real mailbox at thread scale, then price the
// recorded local/remote packet traffic on the Fig. 5 bandwidth curve to
// report modeled time next to wall time (DESIGN.md §2).
#pragma once

#include <cstdint>

#include "net/params.hpp"

namespace ygm::core {

struct mailbox_stats {
  std::uint64_t app_sends = 0;       ///< user send() calls
  std::uint64_t app_bcasts = 0;      ///< user send_bcast() calls
  std::uint64_t deliveries = 0;      ///< receive-callback invocations
  std::uint64_t hops_sent = 0;       ///< message-hop records flushed out
  std::uint64_t hops_received = 0;   ///< message-hop records parsed in
  std::uint64_t forwards = 0;        ///< records re-queued as intermediary
  std::uint64_t local_packets = 0;   ///< coalesced packets to same-node ranks
  std::uint64_t remote_packets = 0;  ///< coalesced packets across nodes
  std::uint64_t local_bytes = 0;
  std::uint64_t remote_bytes = 0;
  std::uint64_t flushes = 0;         ///< capacity-triggered exchanges

  mailbox_stats& operator+=(const mailbox_stats& o) {
    app_sends += o.app_sends;
    app_bcasts += o.app_bcasts;
    deliveries += o.deliveries;
    hops_sent += o.hops_sent;
    hops_received += o.hops_received;
    forwards += o.forwards;
    local_packets += o.local_packets;
    remote_packets += o.remote_packets;
    local_bytes += o.local_bytes;
    remote_bytes += o.remote_bytes;
    flushes += o.flushes;
    return *this;
  }

  /// Average coalesced wire packet size — the quantity the routing schemes
  /// exist to maximize (paper §III-E).
  double avg_remote_packet_bytes() const {
    return remote_packets == 0
               ? 0.0
               : static_cast<double>(remote_bytes) /
                     static_cast<double>(remote_packets);
  }

  /// Price this rank's recorded traffic on a network model: transfer time
  /// the traffic would cost on the modeled machine.
  double modeled_comm_seconds(const net::network_params& np) const {
    double t = 0;
    if (remote_packets != 0) {
      const double pkt = avg_remote_packet_bytes();
      t += static_cast<double>(remote_packets) * np.remote.transfer_time(pkt);
    }
    if (local_packets != 0) {
      const double pkt = static_cast<double>(local_bytes) /
                         static_cast<double>(local_packets);
      t += static_cast<double>(local_packets) * np.local.transfer_time(pkt);
    }
    t += static_cast<double>(hops_sent + hops_received) * np.cpu_s_per_msg;
    return t;
  }
};

}  // namespace ygm::core
