#include "core/termination.hpp"

#include <tuple>
#include <utility>

#include "common/assert.hpp"
#include "telemetry/telemetry.hpp"

namespace ygm::core {

namespace {
// Wire formats carry the sender's round explicitly, in addition to the
// round-windowed tag (tag_base_ + round_ % 4).
//
// Why both: in a clean run the %4 window alone is collision-free, because
// per-edge lag is bounded at ONE round — a child cannot enter round k+1
// before it received the round-k verdict, and a parent cannot finish round
// k without every child's round-k contribution, so matching endpoints are
// never more than one round apart. But that invariant is load-bearing and
// entirely implicit: one duplicated, replayed, or forged message desyncs
// the window permanently, after which counts that are exactly 4 rounds
// stale get silently folded into every 4th verdict — quiescence can then
// fire with messages still in flight. The explicit round stamp turns that
// silent corruption into an immediate, attributable error.
using contrib = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>;
// (quiescent flag, round)
using verdict = std::pair<std::uint64_t, std::uint64_t>;
}  // namespace

termination_detector::termination_detector(comm_world& world, int tag_base)
    : world_(&world),
      tag_base_(tag_base),
      rank_(world.rank()),
      size_(world.size()) {}

int termination_detector::num_children() const noexcept {
  int n = 0;
  for (int i = 0; i < 2; ++i) {
    if (child(i) < size_) ++n;
  }
  return n;
}

bool termination_detector::poll(std::uint64_t sent, std::uint64_t received) {
  if (quiescent_) {
    // Detection already fired; a further poll means the caller started a new
    // communication epoch. Resume rounds with the four-counter memory intact
    // (counters are monotonic, so stale history stays sound).
    quiescent_ = false;
  }

  auto& mpi = world_->mpi();

  if (size_ == 1) {
    // Single rank: quiescent iff balanced and stable across two polls.
    const bool q = sent == received && sent == prev_sent_ &&
                   received == prev_recv_;
    prev_sent_ = sent;
    prev_recv_ = received;
    ++round_;
    quiescent_ = q;
    telemetry::add(telemetry::fast_counter::term_rounds);
    if (q) telemetry::instant("term.quiescent", "round", round_);
    return q;
  }

  for (;;) {
    if (stage_ == stage::gather_children) {
      if (!children_initialized_) {
        children_pending_ = num_children();
        acc_sent_ = 0;
        acc_recv_ = 0;
        children_initialized_ = true;
      }
      while (children_pending_ > 0) {
        // Children send on the round-specific tag; any child's message works.
        const auto st = mpi.iprobe(mpisim::any_source, contrib_tag());
        if (!st) return false;  // no progress possible without blocking
        const auto c = mpi.recv<contrib>(st->source, contrib_tag());
        YGM_CHECK(std::get<2>(c) == round_,
                  "termination contribution from a different round (protocol "
                  "desync: duplicated or stale detector message)");
        acc_sent_ += std::get<0>(c);
        acc_recv_ += std::get<1>(c);
        --children_pending_;
      }
      // Subtree complete: fold in our own sample, taken now (after the
      // previous round's sample, as the four-counter method requires).
      acc_sent_ += sent;
      acc_recv_ += received;
      if (rank_ == 0) {
        const bool q = acc_sent_ == acc_recv_ && acc_sent_ == prev_sent_ &&
                       acc_recv_ == prev_recv_;
        prev_sent_ = acc_sent_;
        prev_recv_ = acc_recv_;
        for (int i = 0; i < 2; ++i) {
          if (child(i) < size_) {
            mpi.send(verdict{q ? 1 : 0, round_}, child(i), verdict_tag());
          }
        }
        apply_verdict(q);
        if (quiescent_) return true;
        continue;  // next round may already be able to progress
      }
      mpi.send(contrib{acc_sent_, acc_recv_, round_}, parent(), contrib_tag());
      stage_ = stage::await_verdict;
    }

    if (stage_ == stage::await_verdict) {
      const auto st = mpi.iprobe(parent(), verdict_tag());
      if (!st) return false;
      const auto v = mpi.recv<verdict>(parent(), verdict_tag());
      YGM_CHECK(v.second == round_,
                "termination verdict from a different round (protocol "
                "desync: duplicated or stale detector message)");
      const bool q = v.first != 0;
      for (int i = 0; i < 2; ++i) {
        if (child(i) < size_) {
          mpi.send(verdict{q ? 1 : 0, round_}, child(i), verdict_tag());
        }
      }
      apply_verdict(q);
      if (quiescent_) return true;
    }
  }
}

void termination_detector::apply_verdict(bool quiescent) {
  ++round_;
  stage_ = stage::gather_children;
  children_initialized_ = false;
  quiescent_ = quiescent;
  telemetry::add(telemetry::fast_counter::term_rounds);
  // One timeline mark when detection fires (per-round instants would crowd
  // the ring during long TEST_EMPTY polling phases; the round count is the
  // "term.rounds" counter).
  if (quiescent) telemetry::instant("term.quiescent", "round", round_);
}

}  // namespace ygm::core
