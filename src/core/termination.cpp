#include "core/termination.hpp"

#include <utility>

#include "common/assert.hpp"
#include "telemetry/telemetry.hpp"

namespace ygm::core {

namespace {
using counts = std::pair<std::uint64_t, std::uint64_t>;
}

termination_detector::termination_detector(comm_world& world, int tag_base)
    : world_(&world),
      tag_base_(tag_base),
      rank_(world.rank()),
      size_(world.size()) {}

int termination_detector::num_children() const noexcept {
  int n = 0;
  for (int i = 0; i < 2; ++i) {
    if (child(i) < size_) ++n;
  }
  return n;
}

bool termination_detector::poll(std::uint64_t sent, std::uint64_t received) {
  if (quiescent_) {
    // Detection already fired; a further poll means the caller started a new
    // communication epoch. Resume rounds with the four-counter memory intact
    // (counters are monotonic, so stale history stays sound).
    quiescent_ = false;
  }

  auto& mpi = world_->mpi();

  if (size_ == 1) {
    // Single rank: quiescent iff balanced and stable across two polls.
    const bool q = sent == received && sent == prev_sent_ &&
                   received == prev_recv_;
    prev_sent_ = sent;
    prev_recv_ = received;
    ++round_;
    quiescent_ = q;
    telemetry::add(telemetry::fast_counter::term_rounds);
    if (q) telemetry::instant("term.quiescent", "round", round_);
    return q;
  }

  for (;;) {
    if (stage_ == stage::gather_children) {
      if (!children_initialized_) {
        children_pending_ = num_children();
        acc_sent_ = 0;
        acc_recv_ = 0;
        children_initialized_ = true;
      }
      while (children_pending_ > 0) {
        // Children send on the round-specific tag; any child's message works.
        const auto st = mpi.iprobe(mpisim::any_source, contrib_tag());
        if (!st) return false;  // no progress possible without blocking
        const auto c = mpi.recv<counts>(st->source, contrib_tag());
        acc_sent_ += c.first;
        acc_recv_ += c.second;
        --children_pending_;
      }
      // Subtree complete: fold in our own sample, taken now (after the
      // previous round's sample, as the four-counter method requires).
      acc_sent_ += sent;
      acc_recv_ += received;
      if (rank_ == 0) {
        const bool q = acc_sent_ == acc_recv_ && acc_sent_ == prev_sent_ &&
                       acc_recv_ == prev_recv_;
        prev_sent_ = acc_sent_;
        prev_recv_ = acc_recv_;
        for (int i = 0; i < 2; ++i) {
          if (child(i) < size_) mpi.send(q, child(i), verdict_tag());
        }
        apply_verdict(q);
        if (quiescent_) return true;
        continue;  // next round may already be able to progress
      }
      mpi.send(counts{acc_sent_, acc_recv_}, parent(), contrib_tag());
      stage_ = stage::await_verdict;
    }

    if (stage_ == stage::await_verdict) {
      const auto st = mpi.iprobe(parent(), verdict_tag());
      if (!st) return false;
      const bool q = mpi.recv<bool>(parent(), verdict_tag());
      for (int i = 0; i < 2; ++i) {
        if (child(i) < size_) mpi.send(q, child(i), verdict_tag());
      }
      apply_verdict(q);
      if (quiescent_) return true;
    }
  }
}

void termination_detector::apply_verdict(bool quiescent) {
  ++round_;
  stage_ = stage::gather_children;
  children_initialized_ = false;
  quiescent_ = quiescent;
  telemetry::add(telemetry::fast_counter::term_rounds);
  // One timeline mark when detection fires (per-round instants would crowd
  // the ring during long TEST_EMPTY polling phases; the round count is the
  // "term.rounds" counter).
  if (quiescent) telemetry::instant("term.quiescent", "round", round_);
}

}  // namespace ygm::core
