// Nonblocking global termination detection (paper §IV-B).
//
// YGM terminates when every rank has finished producing messages and the
// global number of message-hops sent equals the number received. WAIT_EMPTY
// can use blocking collectives, but TEST_EMPTY must make progress without
// blocking — frameworks like HavoqGT poll it while draining their own work
// queues. This detector implements the four-counter method (Mattern): rounds
// of a tree reduction of (sent, received); quiescence is declared when two
// consecutive rounds agree and are internally balanced:
//     S_k == R_k == S_{k-1} == R_{k-1}.
// Each poll() call advances the state machine as far as incoming messages
// allow and never blocks.
#pragma once

#include <cstdint>

#include "core/comm_world.hpp"

namespace ygm::core {

class termination_detector {
 public:
  /// Number of point-to-point tags the detector consumes.
  static constexpr int tags_used = 8;

  /// tag_base must come from comm_world::reserve_tag_block(tags_used) and be
  /// identical on every rank.
  termination_detector(comm_world& world, int tag_base);

  /// Drive the protocol. `sent`/`received` are this rank's monotonically
  /// increasing hop counters; the caller must flush its send buffers before
  /// polling so buffered-but-unsent messages cannot masquerade as
  /// quiescence. Returns true once global quiescence is confirmed; a
  /// subsequent poll() after new communication starts a fresh detection.
  bool poll(std::uint64_t sent, std::uint64_t received);

  /// Rounds completed so far (diagnostics / tests).
  std::uint64_t rounds() const noexcept { return round_; }

 private:
  enum class stage { gather_children, await_verdict };

  int parent() const noexcept { return (rank_ - 1) / 2; }
  int child(int i) const noexcept { return 2 * rank_ + 1 + i; }
  int num_children() const noexcept;

  int contrib_tag() const noexcept {
    return tag_base_ + static_cast<int>(round_ % 4);
  }
  int verdict_tag() const noexcept {
    return tag_base_ + 4 + static_cast<int>(round_ % 4);
  }

  void apply_verdict(bool quiescent);

  comm_world* world_;
  int tag_base_;
  int rank_;
  int size_;

  stage stage_ = stage::gather_children;
  std::uint64_t round_ = 0;
  int children_pending_ = 0;
  bool children_initialized_ = false;
  std::uint64_t acc_sent_ = 0;   // accumulated subtree counts this round
  std::uint64_t acc_recv_ = 0;

  // Root-only: previous round's global totals (four-counter memory).
  std::uint64_t prev_sent_ = ~0ULL;
  std::uint64_t prev_recv_ = ~0ULL;

  bool quiescent_ = false;  // sticky until the next poll after detection
};

}  // namespace ygm::core
