// Umbrella header: everything a YGM application needs.
//
// Typical usage (see examples/quickstart.cpp):
//
//   ygm::mpisim::run(n_ranks, [](ygm::mpisim::comm& c) {
//     ygm::core::comm_world world(c, /*cores_per_node=*/4,
//                                 ygm::routing::scheme_kind::nlnr);
//     ygm::core::mailbox<MyMsg> mb(world, [&](const MyMsg& m) { ... });
//     mb.send(dest, msg);
//     mb.send_bcast(msg);
//     mb.wait_empty();
//   });
#pragma once

#include "core/comm_world.hpp"
#include "core/mailbox.hpp"
#include "core/packet.hpp"
#include "core/stats.hpp"
#include "core/termination.hpp"
#include "mpisim/runtime.hpp"
#include "net/evaluator.hpp"
#include "net/params.hpp"
#include "routing/router.hpp"
#include "routing/topology.hpp"
#include "ser/serialize.hpp"
