// Umbrella header: everything a YGM application needs.
//
// Typical usage (see examples/quickstart.cpp):
//
//   ygm::run_options opts;
//   opts.nranks = n_ranks;
//   opts.progress_mode = ygm::progress::mode::engine;  // or omit: YGM_PROGRESS
//   ygm::launch(opts, [](ygm::mpisim::comm& c) {
//     ygm::core::comm_world world(c, /*cores_per_node=*/4,
//                                 ygm::routing::scheme_kind::nlnr);
//     ygm::core::mailbox<MyMsg> mb(world, [&](const MyMsg& m) { ... });
//     mb.send(dest, msg);
//     mb.send_bcast(msg);
//     mb.wait_empty();
//   });
//
// ygm::launch (core/launch.hpp) supersedes the ygm::mpisim::run(...)
// overloads; docs/PROGRESS.md §Migration has the mapping.
#pragma once

#include "core/comm_world.hpp"
#include "core/launch.hpp"
#include "core/mailbox.hpp"
#include "core/packet.hpp"
#include "core/progress.hpp"
#include "core/stats.hpp"
#include "core/termination.hpp"
#include "mpisim/runtime.hpp"
#include "net/evaluator.hpp"
#include "net/params.hpp"
#include "routing/router.hpp"
#include "routing/topology.hpp"
#include "ser/serialize.hpp"
