#include "graph/degree_model.hpp"

#include <cmath>

namespace ygm::graph {

double rmat_degree_model::class_size(int k) const {
  // log-space binomial coefficient C(scale, k).
  return std::exp(std::lgamma(scale_ + 1.0) - std::lgamma(k + 1.0) -
                  std::lgamma(scale_ - k + 1.0));
}

double rmat_degree_model::class_degree(int k) const {
  const double row_heavy = params_.a + params_.b;  // out-edge marginal
  const double col_heavy = params_.a + params_.c;  // in-edge marginal
  const double m = static_cast<double>(edges_);
  const double out =
      m * std::pow(row_heavy, scale_ - k) * std::pow(1.0 - row_heavy, k);
  const double in =
      m * std::pow(col_heavy, scale_ - k) * std::pow(1.0 - col_heavy, k);
  return out + in;
}

double rmat_degree_model::count_degree_at_least(double threshold) const {
  double count = 0;
  for (int k = 0; k <= scale_; ++k) {
    if (class_degree(k) >= threshold) count += class_size(k);
  }
  return count;
}

double rmat_degree_model::endpoint_fraction_degree_at_least(
    double threshold) const {
  double heavy = 0;
  double total = 0;
  for (int k = 0; k <= scale_; ++k) {
    const double endpoints = class_size(k) * class_degree(k);
    total += endpoints;
    if (class_degree(k) >= threshold) heavy += endpoints;
  }
  return total > 0 ? heavy / total : 0.0;
}

}  // namespace ygm::graph
