// Closed-form degree-tail model for RMAT graphs.
//
// RMAT vertices fall into degree classes by how many "light" recursion bits
// their id contains: with symmetric Graph500 parameters, the C(s,k) vertices
// whose row id has k light bits collect an expected
//     m * (a+b)^(s-k) * (c+d)^k
// out-edges (Seshadhri, Pinar & Kolda). The benchmark harness uses this to
// predict, at paper scale (where graphs cannot be materialized on this
// machine), how many vertices exceed a delegate threshold (Figs. 7a/8b) and
// what fraction of the edges touch them — the quantities that drive
// broadcast counts and delegate savings in the evaluation.
#pragma once

#include <cstdint>

#include "graph/rmat.hpp"

namespace ygm::graph {

class rmat_degree_model {
 public:
  rmat_degree_model(int scale, std::uint64_t num_edges, rmat_params params)
      : scale_(scale), edges_(num_edges), params_(params) {}

  /// Number of vertices in degree class k (= C(scale, k), as a double to
  /// survive scale 42).
  double class_size(int k) const;

  /// Expected degree (out + in endpoint count) of a class-k vertex.
  double class_degree(int k) const;

  /// Expected number of vertices with degree >= threshold.
  double count_degree_at_least(double threshold) const;

  /// Expected fraction of edge endpoints that land on vertices with degree
  /// >= threshold (the traffic a delegate scheme absorbs).
  double endpoint_fraction_degree_at_least(double threshold) const;

  /// Expected maximum degree (the class-0 hub), matching
  /// graph::expected_max_degree up to the in-edge term.
  double max_degree() const { return class_degree(0); }

 private:
  int scale_;
  std::uint64_t edges_;
  rmat_params params_;
};

}  // namespace ygm::graph
