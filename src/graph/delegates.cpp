#include "graph/delegates.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace ygm::graph {

delegate_set::delegate_set(std::vector<vertex_id> sorted_ids)
    : ids_(std::move(sorted_ids)) {
  YGM_CHECK(std::is_sorted(ids_.begin(), ids_.end()),
            "delegate ids must be sorted for cross-rank agreement");
  slots_.reserve(ids_.size());
  for (std::uint64_t i = 0; i < ids_.size(); ++i) {
    const bool inserted = slots_.emplace(ids_[i], i).second;
    YGM_CHECK(inserted, "duplicate delegate id");
  }
}

delegate_set select_delegates(core::comm_world& world,
                              const std::vector<std::uint64_t>& local_degrees,
                              const round_robin_partition& part,
                              std::uint64_t threshold) {
  YGM_CHECK(threshold > 0, "delegate threshold must be positive");
  YGM_CHECK(part.num_ranks == world.size(),
            "partition does not match the world");

  std::vector<vertex_id> mine;
  for (std::uint64_t i = 0; i < local_degrees.size(); ++i) {
    if (local_degrees[i] >= threshold) {
      mine.push_back(part.global_id(world.rank(), i));
    }
  }

  const auto all = world.mpi().allgather(mine);
  std::vector<vertex_id> ids;
  for (const auto& v : all) ids.insert(ids.end(), v.begin(), v.end());
  std::sort(ids.begin(), ids.end());
  return delegate_set(std::move(ids));
}

double expected_max_degree(int scale, std::uint64_t num_edges,
                           const rmat_params& params) {
  return static_cast<double>(num_edges) *
         std::pow(params.a + params.b, scale);
}

}  // namespace ygm::graph
