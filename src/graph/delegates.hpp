// Delegate (high-degree vertex) handling (paper §V-B, following Pearce,
// Gokhale & Amato's vertex delegates).
//
// Skewed graphs concentrate a large share of the edges on a few hubs; a 1D
// partition then overloads the hubs' owner ranks. Delegates fix this: every
// rank keeps a replica of each hub's state, hub edges are stored colocated
// with their non-hub endpoint, and replica state is lazily synchronized
// with YGM's asynchronous broadcasts — the paper's flagship use of
// SEND_BCAST.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/comm_world.hpp"
#include "graph/edge.hpp"
#include "graph/rmat.hpp"

namespace ygm::graph {

/// The globally agreed set of delegate vertices, replicated on every rank.
/// Delegate ids are mapped to dense replica slots [0, size) so replicated
/// state can live in flat arrays.
class delegate_set {
 public:
  delegate_set() = default;

  /// Build from the globally sorted list of delegate vertex ids (identical
  /// on every rank).
  explicit delegate_set(std::vector<vertex_id> sorted_ids);

  bool contains(vertex_id v) const { return slots_.count(v) != 0; }

  /// Dense replica slot of a delegate id; precondition: contains(v).
  std::uint64_t slot(vertex_id v) const { return slots_.at(v); }

  vertex_id id_of_slot(std::uint64_t slot) const { return ids_[slot]; }

  std::uint64_t size() const noexcept { return ids_.size(); }
  const std::vector<vertex_id>& ids() const noexcept { return ids_; }

 private:
  std::vector<vertex_id> ids_;
  std::unordered_map<vertex_id, std::uint64_t> slots_;
};

/// Collectively select delegates: every vertex whose (locally owned) degree
/// meets `threshold` becomes a delegate, and the union is allgathered so all
/// ranks agree. `local_degrees[i]` is the degree of the vertex with local
/// index i under `part` on this rank.
delegate_set select_delegates(core::comm_world& world,
                              const std::vector<std::uint64_t>& local_degrees,
                              const round_robin_partition& part,
                              std::uint64_t threshold);

/// Expected largest degree of an RMAT graph with 2^scale vertices and
/// `num_edges` edges: the hottest row collects ~ num_edges * (a+b)^scale
/// edges. The paper scales its delegate threshold with this quantity in the
/// weak-scaling study (§VI-B).
double expected_max_degree(int scale, std::uint64_t num_edges,
                           const rmat_params& params);

}  // namespace ygm::graph
