// Basic edge and partitioning types shared by the graph substrate and the
// applications.
#pragma once

#include <cstdint>

namespace ygm::graph {

using vertex_id = std::uint64_t;

struct edge {
  vertex_id src = 0;
  vertex_id dst = 0;

  bool operator==(const edge&) const = default;
};

/// The paper's 1D round-robin vertex partitioning (Algorithm 1): vertex v is
/// owned by rank v % P and stored at local index v / P.
struct round_robin_partition {
  int num_ranks = 1;

  int owner(vertex_id v) const noexcept {
    return static_cast<int>(v % static_cast<vertex_id>(num_ranks));
  }
  std::uint64_t local_index(vertex_id v) const noexcept {
    return v / static_cast<vertex_id>(num_ranks);
  }
  vertex_id global_id(int rank, std::uint64_t local) const noexcept {
    return local * static_cast<vertex_id>(num_ranks) +
           static_cast<vertex_id>(rank);
  }
  /// Number of vertices stored locally at `rank` out of `num_vertices`.
  std::uint64_t local_count(int rank, std::uint64_t num_vertices) const
      noexcept {
    return (num_vertices - static_cast<vertex_id>(rank) +
            static_cast<vertex_id>(num_ranks) - 1) /
           static_cast<vertex_id>(num_ranks);
  }
};

}  // namespace ygm::graph
