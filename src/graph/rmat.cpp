#include "graph/rmat.hpp"

#include "graph/generators.hpp"

namespace ygm::graph {

vertex_id scramble_vertex(vertex_id v, int scale) noexcept {
  const vertex_id mask = (scale >= 64) ? ~vertex_id{0}
                                       : ((vertex_id{1} << scale) - 1);
  // Two rounds of (xor-shift, odd multiply), each a bijection mod 2^scale.
  v &= mask;
  v ^= v >> (scale / 2 + 1);
  v = (v * 0x9e3779b97f4a7c15ULL) & mask;
  v ^= v >> (scale / 2 + 1);
  v = (v * 0xc2b2ae3d27d4eb4fULL) & mask;
  return v & mask;
}

rmat_generator::rmat_generator(int scale, std::uint64_t num_edges,
                               rmat_params params, std::uint64_t seed,
                               int rank, int nranks)
    : scale_(scale),
      local_edges_(erdos_renyi_generator::slice(num_edges, rank, nranks)),
      params_(params),
      rng_seed_(splitmix64(seed ^ (0xabcdULL + static_cast<std::uint64_t>(
                                                   rank)))) {
  YGM_CHECK(scale >= 1 && scale <= 62, "rmat scale out of range");
  const double sum = params.a + params.b + params.c + params.d;
  YGM_CHECK(sum > 0.999 && sum < 1.001, "rmat probabilities must sum to 1");
}

edge rmat_generator::sample(xoshiro256& rng) const {
  vertex_id row = 0;
  vertex_id col = 0;
  double a = params_.a;
  double b = params_.b;
  double c = params_.c;
  for (int level = 0; level < scale_; ++level) {
    double la = a;
    double lb = b;
    double lc = c;
    if (params_.noise) {
      // Graph500-style per-level noise: +-5% jitter, renormalized.
      const double na = la * (0.95 + 0.1 * rng.uniform());
      const double nb = lb * (0.95 + 0.1 * rng.uniform());
      const double nc = lc * (0.95 + 0.1 * rng.uniform());
      const double nd =
          (1.0 - la - lb - lc) * (0.95 + 0.1 * rng.uniform());
      const double norm = na + nb + nc + nd;
      la = na / norm;
      lb = nb / norm;
      lc = nc / norm;
    }
    const double u = rng.uniform();
    row <<= 1;
    col <<= 1;
    if (u < la) {
      // top-left quadrant
    } else if (u < la + lb) {
      col |= 1;
    } else if (u < la + lb + lc) {
      row |= 1;
    } else {
      row |= 1;
      col |= 1;
    }
  }
  if (params_.scramble) {
    row = scramble_vertex(row, scale_);
    col = scramble_vertex(col, scale_);
  }
  return edge{row, col};
}

}  // namespace ygm::graph
