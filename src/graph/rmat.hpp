// RMAT recursive-matrix graph generator (Chakrabarti, Zhan & Faloutsos),
// parameterized like the Graph500 reference generator the paper uses for
// its connected-components and SpMV experiments (Figs. 7-8).
//
// An edge is drawn by descending `scale` levels of the 2^scale x 2^scale
// adjacency matrix, choosing a quadrant with probabilities (a, b, c, d) at
// each level. Skewed parameters (Graph500's 0.57/0.19/0.19/0.05) yield the
// power-law degree distributions that create the computation and
// communication imbalance the paper's delegates address; uniform parameters
// (0.25 x 4) reproduce an Erdős–Rényi-like graph (used by Fig. 8c).
// Vertex ids are scrambled by a bit-mixing bijection so high-degree
// vertices are not clustered at small ids.
#pragma once

#include <cstdint>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "graph/edge.hpp"

namespace ygm::graph {

struct rmat_params {
  double a = 0.57, b = 0.19, c = 0.19, d = 0.05;  // Graph500 defaults
  bool scramble = true;
  bool noise = true;  ///< jitter quadrant probabilities per level (Graph500
                      ///< style) to avoid exact self-similarity artifacts

  static rmat_params graph500() { return {}; }
  /// Fig. 8c's uniform setting: an ER-like graph from the RMAT machinery.
  static rmat_params uniform() { return {0.25, 0.25, 0.25, 0.25, true, false}; }
  /// High-skew parameters standing in for the WDC 2012 webgraph's degree
  /// distribution (Fig. 8d substitute; see DESIGN.md §2).
  static rmat_params webgraph_like() {
    return {0.63, 0.17, 0.17, 0.03, true, true};
  }
};

/// A bijective bit-mixer on [0, 2^scale): two rounds of xor-shift and odd
/// multiplication, all invertible mod 2^scale.
vertex_id scramble_vertex(vertex_id v, int scale) noexcept;

class rmat_generator {
 public:
  /// 2^scale vertices; `num_edges` spread across ranks round-robin.
  rmat_generator(int scale, std::uint64_t num_edges, rmat_params params,
                 std::uint64_t seed, int rank, int nranks);

  vertex_id num_vertices() const noexcept { return vertex_id{1} << scale_; }
  std::uint64_t local_edge_count() const noexcept { return local_edges_; }
  int scale() const noexcept { return scale_; }

  template <class F>
  void for_each(F&& fn) const {
    xoshiro256 rng(rng_seed_);
    for (std::uint64_t i = 0; i < local_edges_; ++i) {
      fn(sample(rng));
    }
  }

  /// Draw a single edge (exposed for tests and incremental streaming).
  edge sample(xoshiro256& rng) const;

 private:
  int scale_;
  std::uint64_t local_edges_;
  rmat_params params_;
  std::uint64_t rng_seed_;
};

}  // namespace ygm::graph
