#include "linalg/combblas_lite.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "mpisim/ops.hpp"

namespace ygm::linalg {

namespace {

int int_sqrt(int p) {
  int q = static_cast<int>(std::lround(std::sqrt(static_cast<double>(p))));
  while (q * q > p) --q;
  while ((q + 1) * (q + 1) <= p) ++q;
  return q;
}

}  // namespace

combblas_lite::combblas_lite(mpisim::comm& comm, std::uint64_t n,
                             std::vector<triplet> local_entries)
    : world_(&comm),
      n_(n),
      q_(int_sqrt(comm.size())),
      row_(comm.rank() / int_sqrt(comm.size())),
      col_(comm.rank() % int_sqrt(comm.size())),
      // Row communicator: ranks sharing my grid row; ordered by column.
      row_comm_(comm.split(row_, col_)),
      col_comm_(comm.split(q_ + col_, row_)) {
  YGM_CHECK(q_ * q_ == comm.size(),
            "combblas_lite requires a perfect-square number of ranks");
  YGM_CHECK(n_ >= static_cast<std::uint64_t>(q_),
            "matrix dimension smaller than the grid");

  // Bulk-synchronous ingestion: one personalized all-to-all routes every
  // triplet to the rank owning its 2D block.
  std::vector<std::vector<triplet>> outgoing(
      static_cast<std::size_t>(comm.size()));
  for (const auto& t : local_entries) {
    YGM_CHECK(t.row < n_ && t.col < n_, "triplet index out of range");
    outgoing[static_cast<std::size_t>(owner_of(t.row, t.col))].push_back(t);
  }
  local_entries.clear();
  local_entries.shrink_to_fit();
  auto incoming = comm.alltoallv(outgoing);

  // Rebase to block-local coordinates and build the CSC block.
  const std::uint64_t r0 = block_begin(row_);
  const std::uint64_t c0 = block_begin(col_);
  std::vector<triplet> mine;
  for (auto& v : incoming) {
    for (auto& t : v) {
      mine.push_back(triplet{t.row - r0, t.col - c0, t.value});
    }
    v.clear();
  }
  block_ = csc_matrix::from_triplets(block_size(row_), block_size(col_),
                                     std::move(mine));
}

int combblas_lite::owner_of(std::uint64_t i, std::uint64_t j) const {
  // Inverse of the block map: find the block containing the index. Blocks
  // are balanced to within one, so a direct estimate needs at most one
  // correction step in each direction.
  const auto find_block = [&](std::uint64_t x) {
    int b = static_cast<int>((x * static_cast<std::uint64_t>(q_)) / n_);
    while (x < block_begin(b)) --b;
    while (x >= block_end(b)) ++b;
    return b;
  };
  return find_block(i) * q_ + find_block(j);
}

std::vector<double> combblas_lite::spmv(const std::vector<double>& x_block) {
  // 1. Broadcast the x block down each grid column from the diagonal rank.
  std::vector<double> x = x_block;
  if (row_ == col_) {
    YGM_CHECK(x.size() == block_size(col_), "x block has wrong length");
  }
  // Within col_comm_, ranks are keyed by grid row, so the diagonal rank of
  // column `col_` sits at position `col_`.
  col_comm_.bcast(x, /*root=*/col_);
  bcast_bytes_ += x.size() * sizeof(double);

  // 2. Local block multiply.
  std::vector<double> y_part(block_size(row_), 0.0);
  block_.multiply_add(x, y_part);

  // 3. Reduce partial y blocks across each grid row to the diagonal rank.
  reduce_bytes_ += y_part.size() * sizeof(double);
  auto y = row_comm_.reduce(
      y_part,
      [](const std::vector<double>& a, const std::vector<double>& b) {
        YGM_ASSERT(a.size() == b.size());
        std::vector<double> r(a.size());
        for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] + b[i];
        return r;
      },
      /*root=*/row_);
  if (row_ != col_) y.assign(block_size(row_), 0.0);
  return y;
}

}  // namespace ygm::linalg
