// CombBLAS-lite: a 2D-partitioned synchronous SpMV baseline.
//
// The paper compares YGM's SpMV against CombBLAS (Buluç & Gilbert), which
// distributes the matrix over a sqrt(P) x sqrt(P) processor grid and runs
// SpMV as synchronous collectives: broadcast the x block down each grid
// column, multiply the local block, reduce partial y blocks across each grid
// row. This module implements that algorithm over mpisim sub-communicators.
// It captures exactly the property the paper contrasts with: perfectly
// coalesced bulk-synchronous communication whose per-step collective volume
// scales worse than YGM+NLNR at large node counts, but which wins at small
// scale (Fig. 8 discussion; see DESIGN.md §2 for the substitution note).
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/csc.hpp"
#include "mpisim/comm.hpp"

namespace ygm::linalg {

class combblas_lite {
 public:
  /// Collective. Requires a perfect-square communicator size. Triplets may
  /// be supplied on any rank; construction routes each entry to its grid
  /// owner with one alltoallv (the bulk-synchronous ingestion CombBLAS
  /// would use).
  combblas_lite(mpisim::comm& comm, std::uint64_t n,
                std::vector<triplet> local_entries);

  /// Collective y = A*x. `x_block` is this rank's block of x under the
  /// column-block distribution (only the contents passed by the *diagonal*
  /// rank of each grid column are used, mirroring CombBLAS's vector
  /// placement along the diagonal). Returns this rank's y block (meaningful
  /// on diagonal ranks; identical layout to x).
  std::vector<double> spmv(const std::vector<double>& x_block);

  std::uint64_t n() const noexcept { return n_; }
  int grid_dim() const noexcept { return q_; }
  int grid_row() const noexcept { return row_; }
  int grid_col() const noexcept { return col_; }
  bool on_diagonal() const noexcept { return row_ == col_; }

  /// Global block boundaries: block b covers [block_begin(b), block_end(b)).
  std::uint64_t block_begin(int b) const {
    return (n_ * static_cast<std::uint64_t>(b)) /
           static_cast<std::uint64_t>(q_);
  }
  std::uint64_t block_end(int b) const { return block_begin(b + 1); }
  std::uint64_t block_size(int b) const {
    return block_end(b) - block_begin(b);
  }

  /// Communication counters (bytes moved by the collectives), used by the
  /// Fig. 8 bench to price the baseline on the network model.
  std::uint64_t bcast_bytes() const noexcept { return bcast_bytes_; }
  std::uint64_t reduce_bytes() const noexcept { return reduce_bytes_; }

 private:
  int owner_of(std::uint64_t i, std::uint64_t j) const;

  mpisim::comm* world_;
  std::uint64_t n_ = 0;
  int q_ = 0;    // grid dimension
  int row_ = 0;  // my grid row
  int col_ = 0;  // my grid column
  mpisim::comm row_comm_;
  mpisim::comm col_comm_;
  csc_matrix block_;  // local block, indices rebased to block coordinates
  std::uint64_t bcast_bytes_ = 0;
  std::uint64_t reduce_bytes_ = 0;
};

}  // namespace ygm::linalg
