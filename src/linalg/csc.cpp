#include "linalg/csc.hpp"

#include <algorithm>
#include <tuple>

namespace ygm::linalg {

csc_matrix csc_matrix::from_triplets(std::uint64_t num_rows,
                                     std::uint64_t num_cols,
                                     std::vector<triplet> entries) {
  csc_matrix m;
  m.num_rows_ = num_rows;
  m.num_cols_ = num_cols;

  std::sort(entries.begin(), entries.end(),
            [](const triplet& a, const triplet& b) {
              return std::tie(a.col, a.row) < std::tie(b.col, b.row);
            });

  m.col_ptr_.assign(num_cols + 1, 0);
  m.rows_.reserve(entries.size());
  m.vals_.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size();) {
    const triplet& t = entries[i];
    YGM_CHECK(t.row < num_rows && t.col < num_cols,
              "triplet index out of range");
    double sum = 0;
    std::size_t j = i;
    while (j < entries.size() && entries[j].row == t.row &&
           entries[j].col == t.col) {
      sum += entries[j].value;
      ++j;
    }
    m.rows_.push_back(t.row);
    m.vals_.push_back(sum);
    ++m.col_ptr_[t.col + 1];
    i = j;
  }
  for (std::uint64_t c = 0; c < num_cols; ++c) {
    m.col_ptr_[c + 1] += m.col_ptr_[c];
  }
  return m;
}

void csc_matrix::multiply_add(std::span<const double> x,
                              std::span<double> y) const {
  YGM_CHECK(x.size() == num_cols_, "x has wrong length");
  YGM_CHECK(y.size() == num_rows_, "y has wrong length");
  for (std::uint64_t j = 0; j < num_cols_; ++j) {
    const double xj = x[j];
    if (xj == 0.0) continue;
    for (std::uint64_t k = col_ptr_[j]; k < col_ptr_[j + 1]; ++k) {
      y[rows_[k]] += vals_[k] * xj;
    }
  }
}

std::vector<double> spmv_reference(std::uint64_t num_rows,
                                   const std::vector<triplet>& entries,
                                   std::span<const double> x) {
  std::vector<double> y(num_rows, 0.0);
  for (const auto& t : entries) {
    YGM_CHECK(t.row < num_rows && t.col < x.size(),
              "triplet index out of range");
    y[t.row] += t.value * x[t.col];
  }
  return y;
}

}  // namespace ygm::linalg
