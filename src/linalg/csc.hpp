// Local compressed-sparse-column matrix — the storage format the paper's
// SpMV application uses (§V-C) and the block format of CombBLAS-lite.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace ygm::linalg {

struct triplet {
  std::uint64_t row = 0;
  std::uint64_t col = 0;
  double value = 0.0;

  bool operator==(const triplet&) const = default;
};

class csc_matrix {
 public:
  csc_matrix() = default;

  /// Build from unordered triplets. Duplicate (row, col) entries are summed,
  /// matching the usual sparse-assembly convention.
  static csc_matrix from_triplets(std::uint64_t num_rows,
                                  std::uint64_t num_cols,
                                  std::vector<triplet> entries);

  std::uint64_t num_rows() const noexcept { return num_rows_; }
  std::uint64_t num_cols() const noexcept { return num_cols_; }
  std::uint64_t num_nonzeros() const noexcept { return rows_.size(); }

  /// y += A * x  (x sized num_cols, y sized num_rows).
  void multiply_add(std::span<const double> x, std::span<double> y) const;

  /// Visit the nonzeros of column j as fn(row, value).
  template <class F>
  void for_each_in_col(std::uint64_t j, F&& fn) const {
    YGM_ASSERT(j < num_cols_);
    for (std::uint64_t k = col_ptr_[j]; k < col_ptr_[j + 1]; ++k) {
      fn(rows_[k], vals_[k]);
    }
  }

  /// Visit all nonzeros as fn(row, col, value).
  template <class F>
  void for_each(F&& fn) const {
    for (std::uint64_t j = 0; j < num_cols_; ++j) {
      for (std::uint64_t k = col_ptr_[j]; k < col_ptr_[j + 1]; ++k) {
        fn(rows_[k], j, vals_[k]);
      }
    }
  }

 private:
  std::uint64_t num_rows_ = 0;
  std::uint64_t num_cols_ = 0;
  std::vector<std::uint64_t> col_ptr_;  // size num_cols + 1
  std::vector<std::uint64_t> rows_;
  std::vector<double> vals_;
};

/// Serial reference SpMV over a raw triplet list (test oracle).
std::vector<double> spmv_reference(std::uint64_t num_rows,
                                   const std::vector<triplet>& entries,
                                   std::span<const double> x);

}  // namespace ygm::linalg
