// Compatibility shim: chaos fault injection moved to the transport
// substrate (src/transport/chaos.hpp) so both backends share one engine
// (same seed, same fault pattern on either); mpisim re-exports the config
// so existing call sites keep compiling.
#pragma once

#include "transport/chaos.hpp"

namespace ygm::mpisim {

using transport::chaos_config;

}  // namespace ygm::mpisim
