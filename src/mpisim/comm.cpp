#include "mpisim/comm.hpp"

#include <algorithm>
#include <tuple>

#include "telemetry/telemetry.hpp"

namespace ygm::mpisim {

comm::comm(world& w, std::shared_ptr<const std::vector<int>> members, int rank,
           std::uint64_t ctx_p2p, std::uint64_t ctx_coll)
    : world_(&w),
      members_(std::move(members)),
      rank_(rank),
      ctx_p2p_(ctx_p2p),
      ctx_coll_(ctx_coll) {
  YGM_CHECK(members_ && !members_->empty(), "empty communicator group");
  YGM_CHECK(rank_ >= 0 && rank_ < size(), "rank outside communicator group");
}

double comm::wtime() const { return world_->wtime(); }

void comm::send_bytes(int dest, int tag, std::vector<std::byte> payload) const {
  YGM_CHECK(tag >= 0 && tag <= tag_ub, "user tag out of range");
  telemetry::add(telemetry::fast_counter::mpi_sends);
  telemetry::add(telemetry::fast_counter::mpi_send_bytes, payload.size());
  world_->slot(world_rank_of(dest))
      .deliver(envelope{rank_, tag, ctx_p2p_, std::move(payload)});
}

std::vector<std::byte> comm::recv_bytes(int src, int tag, status* st) const {
  envelope e = world_->slot(world_rank_of(rank_)).recv_match(src, tag, ctx_p2p_);
  if (st != nullptr) {
    *st = status{e.src, e.tag, e.payload.size()};
  }
  telemetry::add(telemetry::fast_counter::mpi_recvs);
  telemetry::add(telemetry::fast_counter::mpi_recv_bytes, e.payload.size());
  return std::move(e.payload);
}

void comm::coll_send_bytes(int dest, int tag, std::vector<std::byte> p) const {
  telemetry::add(telemetry::fast_counter::mpi_sends);
  telemetry::add(telemetry::fast_counter::mpi_send_bytes, p.size());
  world_->slot(world_rank_of(dest))
      .deliver(envelope{rank_, tag, ctx_coll_, std::move(p)});
}

std::vector<std::byte> comm::coll_recv_bytes(int src, int tag) const {
  envelope e =
      world_->slot(world_rank_of(rank_)).recv_match(src, tag, ctx_coll_);
  telemetry::add(telemetry::fast_counter::mpi_recvs);
  telemetry::add(telemetry::fast_counter::mpi_recv_bytes, e.payload.size());
  return std::move(e.payload);
}

std::optional<status> comm::iprobe(int src, int tag) const {
  return world_->slot(world_rank_of(rank_)).iprobe(src, tag, ctx_p2p_);
}

status comm::probe(int src, int tag) const {
  return world_->slot(world_rank_of(rank_)).probe(src, tag, ctx_p2p_);
}

std::size_t comm::pending_messages() const {
  return world_->slot(world_rank_of(rank_)).pending();
}

void comm::barrier() const {
  // Dissemination barrier: ceil(log2 P) rounds; in round r every rank sends
  // a token 2^r ahead and waits for the token from 2^r behind.
  telemetry::add(telemetry::fast_counter::mpi_collectives);
  const int p = size();
  const std::uint64_t seq = coll_seq_++;
  int round = 0;
  for (int k = 1; k < p; k <<= 1, ++round) {
    const int dest = (rank_ + k) % p;
    const int src = (rank_ - k % p + p) % p;
    coll_send_bytes(dest, coll_tag(seq, round), {});
    (void)coll_recv_bytes(src, coll_tag(seq, round));
  }
}

comm comm::split(int color, int key) const {
  YGM_CHECK(color >= 0, "split color must be non-negative");
  const int p = size();
  constexpr int root = 0;

  // Root gathers (color, key) of every rank, forms the subgroups, allocates
  // fresh context ids (only the root allocates, so ids agree globally), and
  // sends each member its new group description.
  const auto pairs = gather(std::pair<int, int>{color, key}, root);

  const std::uint64_t seq = coll_seq_++;
  // Payload: (members as world ranks, my index, ctx_p2p, ctx_coll).
  using group_desc =
      std::tuple<std::vector<int>, int, std::uint64_t, std::uint64_t>;
  group_desc mine;

  if (rank_ == root) {
    // member ordering within a color: by (key, parent rank).
    std::vector<int> order(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i) order[static_cast<std::size_t>(i)] = i;
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      const auto& pa = pairs[static_cast<std::size_t>(a)];
      const auto& pb = pairs[static_cast<std::size_t>(b)];
      return std::tie(pa.first, pa.second, a) <
             std::tie(pb.first, pb.second, b);
    });

    std::size_t i = 0;
    while (i < order.size()) {
      const int c = pairs[static_cast<std::size_t>(order[i])].first;
      std::vector<int> group_world;      // world ranks of the new group
      std::vector<int> group_parent;     // parent ranks (to address sends)
      while (i < order.size() &&
             pairs[static_cast<std::size_t>(order[i])].first == c) {
        group_parent.push_back(order[i]);
        group_world.push_back(world_rank_of(order[i]));
        ++i;
      }
      const std::uint64_t np2p = world_->alloc_context();
      const std::uint64_t ncoll = world_->alloc_context();
      for (std::size_t j = 0; j < group_parent.size(); ++j) {
        group_desc d{group_world, static_cast<int>(j), np2p, ncoll};
        if (group_parent[j] == root) {
          mine = std::move(d);
        } else {
          coll_send(d, group_parent[j], coll_tag(seq, 0));
        }
      }
    }
  } else {
    mine = coll_recv<group_desc>(root, coll_tag(seq, 0));
  }

  auto& [members, my_index, np2p, ncoll] = mine;
  return comm(*world_,
              std::make_shared<const std::vector<int>>(std::move(members)),
              my_index, np2p, ncoll);
}

comm comm::dup() const {
  constexpr int root = 0;
  const std::uint64_t seq = coll_seq_++;
  std::pair<std::uint64_t, std::uint64_t> ctxs;
  if (rank_ == root) {
    ctxs = {world_->alloc_context(), world_->alloc_context()};
    for (int dest = 0; dest < size(); ++dest) {
      if (dest != root) coll_send(ctxs, dest, coll_tag(seq, 0));
    }
  } else {
    ctxs = coll_recv<std::pair<std::uint64_t, std::uint64_t>>(
        root, coll_tag(seq, 0));
  }
  return comm(*world_, members_, rank_, ctxs.first, ctxs.second);
}

}  // namespace ygm::mpisim
