#include "mpisim/comm.hpp"

#include <algorithm>
#include <tuple>

#include "common/rng.hpp"
#include "telemetry/telemetry.hpp"

namespace ygm::mpisim {

comm::comm(transport::endpoint& ep,
           std::shared_ptr<const std::vector<int>> members, int rank,
           std::uint64_t ctx_p2p, std::uint64_t ctx_coll)
    : ep_(&ep),
      members_(std::move(members)),
      rank_(rank),
      ctx_p2p_(ctx_p2p),
      ctx_coll_(ctx_coll) {
  YGM_CHECK(members_ && !members_->empty(), "empty communicator group");
  YGM_CHECK(rank_ >= 0 && rank_ < size(), "rank outside communicator group");
}

double comm::wtime() const { return ep_->wtime(); }

void comm::send_bytes(int dest, int tag, std::vector<std::byte> payload) const {
  YGM_CHECK(tag >= 0 && tag <= tag_ub, "user tag out of range");
  telemetry::add(telemetry::fast_counter::mpi_sends);
  telemetry::add(telemetry::fast_counter::mpi_send_bytes, payload.size());
  ep_->post(world_rank_of(dest),
            envelope{rank_, tag, ctx_p2p_, std::move(payload)});
}

std::vector<std::byte> comm::recv_bytes(int src, int tag, status* st) const {
  envelope e = ep_->recv_match(src, tag, ctx_p2p_);
  if (st != nullptr) {
    *st = status{e.src, e.tag, e.payload.size()};
  }
  telemetry::add(telemetry::fast_counter::mpi_recvs);
  telemetry::add(telemetry::fast_counter::mpi_recv_bytes, e.payload.size());
  return std::move(e.payload);
}

void comm::coll_send_bytes(int dest, int tag, std::vector<std::byte> p) const {
  telemetry::add(telemetry::fast_counter::mpi_sends);
  telemetry::add(telemetry::fast_counter::mpi_send_bytes, p.size());
  ep_->post(world_rank_of(dest), envelope{rank_, tag, ctx_coll_, std::move(p)});
}

std::vector<std::byte> comm::coll_recv_bytes(int src, int tag) const {
  envelope e = ep_->recv_match(src, tag, ctx_coll_);
  telemetry::add(telemetry::fast_counter::mpi_recvs);
  telemetry::add(telemetry::fast_counter::mpi_recv_bytes, e.payload.size());
  return std::move(e.payload);
}

std::optional<status> comm::iprobe(int src, int tag) const {
  return ep_->iprobe(src, tag, ctx_p2p_);
}

status comm::probe(int src, int tag) const {
  return ep_->probe(src, tag, ctx_p2p_);
}

std::size_t comm::pending_messages() const { return ep_->pending(); }

void comm::barrier() const {
  telemetry::add(telemetry::fast_counter::mpi_collectives);
  const std::uint64_t seq = coll_seq_++;
  ep_->barrier(*members_, rank_, ctx_coll_, coll_tag(seq, 0));
}

std::uint64_t comm::allreduce_sum(std::uint64_t v) const {
  telemetry::add(telemetry::fast_counter::mpi_collectives);
  const std::uint64_t seq = coll_seq_++;
  return ep_->allreduce_sum(v, *members_, rank_, ctx_coll_, coll_tag(seq, 0));
}

std::uint64_t comm::derive_context(std::uint64_t seq, std::uint64_t group,
                                   std::uint64_t plane) const {
  std::uint64_t h = splitmix64(ctx_coll_ ^ splitmix64(seq + 1));
  h = splitmix64(h ^ splitmix64(group + 1));
  h = splitmix64(h ^ splitmix64(plane + 1));
  return h | (std::uint64_t{1} << 63);
}

comm comm::split(int color, int key) const {
  YGM_CHECK(color >= 0, "split color must be non-negative");
  const int p = size();
  constexpr int root = 0;

  // Root gathers (color, key) of every rank, forms the subgroups, derives
  // fresh context ids (only the root derives, so ids agree globally — they
  // travel inside the group description), and sends each member its new
  // group description.
  const auto pairs = gather(std::pair<int, int>{color, key}, root);

  const std::uint64_t seq = coll_seq_++;
  // Payload: (members as world ranks, my index, ctx_p2p, ctx_coll).
  using group_desc =
      std::tuple<std::vector<int>, int, std::uint64_t, std::uint64_t>;
  group_desc mine;

  if (rank_ == root) {
    // member ordering within a color: by (key, parent rank).
    std::vector<int> order(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i) order[static_cast<std::size_t>(i)] = i;
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      const auto& pa = pairs[static_cast<std::size_t>(a)];
      const auto& pb = pairs[static_cast<std::size_t>(b)];
      return std::tie(pa.first, pa.second, a) <
             std::tie(pb.first, pb.second, b);
    });

    std::size_t i = 0;
    std::uint64_t group_index = 0;
    while (i < order.size()) {
      const int c = pairs[static_cast<std::size_t>(order[i])].first;
      std::vector<int> group_world;      // world ranks of the new group
      std::vector<int> group_parent;     // parent ranks (to address sends)
      while (i < order.size() &&
             pairs[static_cast<std::size_t>(order[i])].first == c) {
        group_parent.push_back(order[i]);
        group_world.push_back(world_rank_of(order[i]));
        ++i;
      }
      const std::uint64_t np2p = derive_context(seq, group_index, 0);
      const std::uint64_t ncoll = derive_context(seq, group_index, 1);
      ++group_index;
      for (std::size_t j = 0; j < group_parent.size(); ++j) {
        group_desc d{group_world, static_cast<int>(j), np2p, ncoll};
        if (group_parent[j] == root) {
          mine = std::move(d);
        } else {
          coll_send(d, group_parent[j], coll_tag(seq, 0));
        }
      }
    }
  } else {
    mine = coll_recv<group_desc>(root, coll_tag(seq, 0));
  }

  auto& [members, my_index, np2p, ncoll] = mine;
  return comm(*ep_,
              std::make_shared<const std::vector<int>>(std::move(members)),
              my_index, np2p, ncoll);
}

comm comm::dup() const {
  constexpr int root = 0;
  const std::uint64_t seq = coll_seq_++;
  std::pair<std::uint64_t, std::uint64_t> ctxs;
  if (rank_ == root) {
    ctxs = {derive_context(seq, 0, 0), derive_context(seq, 0, 1)};
    for (int dest = 0; dest < size(); ++dest) {
      if (dest != root) coll_send(ctxs, dest, coll_tag(seq, 0));
    }
  } else {
    ctxs = coll_recv<std::pair<std::uint64_t, std::uint64_t>>(
        root, coll_tag(seq, 0));
  }
  return comm(*ep_, members_, rank_, ctxs.first, ctxs.second);
}

}  // namespace ygm::mpisim
