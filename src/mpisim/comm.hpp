// The communicator: point-to-point messaging, probing, nonblocking
// operations, communicator splitting, and tree-based collectives.
//
// One comm object per rank per logical communicator. Typed send/recv
// serialize through ygm::ser, so any serializable type — including
// variable-length STL containers — can cross rank boundaries, mirroring
// MPI + cereal in the paper.
//
// comm is backend-agnostic: all traffic flows through a
// transport::endpoint (inproc threads or multi-process sockets), and the
// collective entry points delegate to the endpoint's collective hooks so a
// backend with a native fabric can specialize them.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "core/buffer_pool.hpp"  // sanctioned upward include (src/CMakeLists.txt)
#include "mpisim/envelope.hpp"
#include "mpisim/ops.hpp"
#include "mpisim/request.hpp"
#include "mpisim/types.hpp"
#include "ser/serialize.hpp"
#include "transport/endpoint.hpp"

namespace ygm::mpisim {

class comm {
 public:
  /// Constructed by runtime::run (world communicator) or by split()/dup().
  comm(transport::endpoint& ep,
       std::shared_ptr<const std::vector<int>> members, int rank,
       std::uint64_t ctx_p2p, std::uint64_t ctx_coll);

  int rank() const noexcept { return rank_; }
  int size() const noexcept { return static_cast<int>(members_->size()); }

  /// Seconds since world creation, like MPI_Wtime.
  double wtime() const;

  // ------------------------------------------------------ point-to-point

  /// Eager buffered send of raw bytes; never blocks.
  void send_bytes(int dest, int tag, std::vector<std::byte> payload) const;

  /// Blocking matched receive of raw bytes.
  std::vector<std::byte> recv_bytes(int src, int tag,
                                    status* st = nullptr) const;

  /// Typed send: v is serialized via ygm::ser into a pooled payload buffer
  /// (the receiver's recv() releases it, so typed traffic recycles capacity
  /// exactly like mailbox packets).
  template <class T>
  void send(const T& v, int dest, int tag) const {
    auto buf = core::buffer_pool::local().acquire();
    ser::append_bytes(v, buf);
    send_bytes(dest, tag, std::move(buf));
  }

  /// Typed blocking receive.
  template <class T>
  T recv(int src, int tag, status* st = nullptr) const {
    auto buf = recv_bytes(src, tag, st);
    T v = ser::from_bytes<T>({buf.data(), buf.size()});
    core::buffer_pool::local().release(std::move(buf));
    return v;
  }

  /// Nonblocking send. Completes immediately (sends are eager) but returns
  /// a request for MPI-style call sites.
  template <class T>
  request isend(const T& v, int dest, int tag) const {
    send(v, dest, tag);
    return request{};
  }

  /// Nonblocking receive into out; out must outlive the request.
  template <class T>
  request irecv(T& out, int src, int tag) const;

  /// Nonblocking probe, like MPI_Iprobe.
  std::optional<status> iprobe(int src, int tag) const;

  /// Blocking probe, like MPI_Probe.
  status probe(int src, int tag) const;

  /// Number of queued unreceived messages for this rank (all contexts;
  /// diagnostic aid, no MPI analogue).
  std::size_t pending_messages() const;

  // ---------------------------------------------------------- collectives
  //
  // All collectives must be invoked in the same order by every rank of the
  // communicator (the usual MPI contract). They run on a dedicated context
  // so they never interfere with user point-to-point traffic.

  /// Dissemination barrier, O(log P) rounds. Delegates to the transport's
  /// barrier hook.
  void barrier() const;

  /// Global sum of a u64, via the transport's allreduce hook (the shape the
  /// mailbox termination detector consumes).
  std::uint64_t allreduce_sum(std::uint64_t v) const;

  /// Binomial-tree broadcast of a serializable value.
  template <class T>
  void bcast(T& v, int root) const;

  /// Binomial-tree reduction to root; result meaningful only at root.
  template <class T, class Op>
  T reduce(const T& v, Op op, int root) const;

  /// Reduce-to-zero plus broadcast.
  template <class T, class Op>
  T allreduce(const T& v, Op op) const;

  /// Elementwise allreduce over equal-length vectors.
  template <class T, class Op>
  std::vector<T> allreduce_vec(const std::vector<T>& v, Op op) const;

  /// Gather one value per rank to root (result ordered by rank, only at
  /// root; other ranks get an empty vector).
  template <class T>
  std::vector<T> gather(const T& v, int root) const;

  /// Gather plus broadcast.
  template <class T>
  std::vector<T> allgather(const T& v) const;

  /// Root scatters bufs[i] to rank i; returns this rank's piece.
  template <class T>
  T scatter(const std::vector<T>& bufs, int root) const;

  /// Inclusive prefix reduction: rank r gets op(v_0, ..., v_r), like
  /// MPI_Scan.
  template <class T, class Op>
  T scan(const T& v, Op op) const;

  /// Exclusive prefix reduction: rank 0 gets `identity`, rank r gets
  /// op(v_0, ..., v_{r-1}), like MPI_Exscan (with a defined rank-0 value).
  template <class T, class Op>
  T exscan(const T& v, Op op, T identity = T{}) const;

  /// Personalized all-to-all with per-destination vectors, like
  /// MPI_Alltoallv. This is the *synchronous* collective the paper contrasts
  /// YGM's asynchronous exchanges against.
  template <class T>
  std::vector<std::vector<T>> alltoallv(
      const std::vector<std::vector<T>>& sendbufs) const;

  // -------------------------------------------------- communicator algebra

  /// Partition ranks by color; order within each new comm follows
  /// (key, parent rank), like MPI_Comm_split. Colors must be >= 0.
  comm split(int color, int key) const;

  /// A new communicator with the same group, like MPI_Comm_dup.
  comm dup() const;

  /// The underlying transport endpoint (used by runtime glue and tests).
  transport::endpoint& get_endpoint() const noexcept { return *ep_; }

 private:
  // Tag for round `round` of the `coll_seq_`-th collective on this comm.
  int coll_tag(std::uint64_t seq, int round) const {
    return static_cast<int>(((seq << 6) | static_cast<unsigned>(round)) &
                            static_cast<unsigned>(tag_ub));
  }

  // Context id for a communicator derived from this one: a splitmix64 chain
  // over (parent collective context, collective seq, subgroup index, plane)
  // with the high bit forced so derived ids can never collide with the
  // world's fixed low-numbered contexts. Root computes these and *ships*
  // them inside the group description, so cross-rank agreement comes from
  // the message, not from every rank re-deriving; derivation only has to be
  // unique across live communicators, which 63 hashed bits give w.h.p.
  // (The old implementation bumped a per-world counter, which cannot work
  // once ranks are separate processes.)
  std::uint64_t derive_context(std::uint64_t seq, std::uint64_t group,
                               std::uint64_t plane) const;

  void coll_send_bytes(int dest, int tag, std::vector<std::byte> p) const;
  std::vector<std::byte> coll_recv_bytes(int src, int tag) const;

  template <class T>
  void coll_send(const T& v, int dest, int tag) const {
    auto buf = core::buffer_pool::local().acquire();
    ser::append_bytes(v, buf);
    coll_send_bytes(dest, tag, std::move(buf));
  }
  template <class T>
  T coll_recv(int src, int tag) const {
    auto buf = coll_recv_bytes(src, tag);
    T v = ser::from_bytes<T>({buf.data(), buf.size()});
    core::buffer_pool::local().release(std::move(buf));
    return v;
  }

  int world_rank_of(int group_rank) const {
    YGM_ASSERT(group_rank >= 0 && group_rank < size());
    return (*members_)[static_cast<std::size_t>(group_rank)];
  }

  transport::endpoint* ep_;
  std::shared_ptr<const std::vector<int>> members_;  // group -> world rank
  int rank_;                                         // my group rank
  std::uint64_t ctx_p2p_;
  std::uint64_t ctx_coll_;
  mutable std::uint64_t coll_seq_ = 0;
};

// ------------------------------------------------------------------------
// Template member definitions.
// ------------------------------------------------------------------------

template <class T>
request comm::irecv(T& out, int src, int tag) const {
  transport::endpoint* ep = ep_;
  const std::uint64_t ctx = ctx_p2p_;
  return request{[ep, &out, src, tag, ctx](bool block) {
    if (block) {
      envelope e = ep->recv_match(src, tag, ctx);
      out = ser::from_bytes<T>(e.payload);
      return true;
    }
    auto e = ep->try_recv_match(src, tag, ctx);
    if (!e) return false;
    out = ser::from_bytes<T>(e->payload);
    return true;
  }};
}

template <class T>
void comm::bcast(T& v, int root) const {
  const int p = size();
  YGM_ASSERT(root >= 0 && root < p);
  const std::uint64_t seq = coll_seq_++;
  const int vrank = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      const int src = (vrank - mask + root) % p;
      v = coll_recv<T>(src, coll_tag(seq, 0));
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < p) {
      const int dest = (vrank + mask + root) % p;
      coll_send(v, dest, coll_tag(seq, 0));
    }
    mask >>= 1;
  }
}

template <class T, class Op>
T comm::reduce(const T& v, Op op, int root) const {
  const int p = size();
  YGM_ASSERT(root >= 0 && root < p);
  const std::uint64_t seq = coll_seq_++;
  const int vrank = (rank_ - root + p) % p;
  T acc = v;
  int mask = 1;
  while (mask < p) {
    if ((vrank & mask) == 0) {
      const int peer = vrank | mask;
      if (peer < p) {
        T other = coll_recv<T>((peer + root) % p, coll_tag(seq, 0));
        acc = op(acc, other);
      }
    } else {
      const int parent = ((vrank & ~mask) + root) % p;
      coll_send(acc, parent, coll_tag(seq, 0));
      break;
    }
    mask <<= 1;
  }
  return acc;
}

template <class T, class Op>
T comm::allreduce(const T& v, Op op) const {
  T acc = reduce(v, op, 0);
  bcast(acc, 0);
  return acc;
}

template <class T, class Op>
std::vector<T> comm::allreduce_vec(const std::vector<T>& v, Op op) const {
  struct elementwise {
    Op op;
    std::vector<T> operator()(const std::vector<T>& a,
                              const std::vector<T>& b) const {
      YGM_CHECK(a.size() == b.size(),
                "allreduce_vec requires equal lengths on all ranks");
      std::vector<T> r(a.size());
      for (std::size_t i = 0; i < a.size(); ++i) r[i] = op(a[i], b[i]);
      return r;
    }
  };
  return allreduce(v, elementwise{op});
}

template <class T>
std::vector<T> comm::gather(const T& v, int root) const {
  const int p = size();
  const std::uint64_t seq = coll_seq_++;
  if (rank_ != root) {
    coll_send(v, root, coll_tag(seq, 0));
    return {};
  }
  std::vector<T> out;
  out.reserve(static_cast<std::size_t>(p));
  for (int src = 0; src < p; ++src) {
    if (src == root) {
      out.push_back(v);
    } else {
      out.push_back(coll_recv<T>(src, coll_tag(seq, 0)));
    }
  }
  return out;
}

template <class T>
std::vector<T> comm::allgather(const T& v) const {
  auto out = gather(v, 0);
  bcast(out, 0);
  return out;
}

template <class T>
T comm::scatter(const std::vector<T>& bufs, int root) const {
  const int p = size();
  const std::uint64_t seq = coll_seq_++;
  if (rank_ == root) {
    YGM_CHECK(static_cast<int>(bufs.size()) == p,
              "scatter requires one buffer per rank at root");
    for (int dest = 0; dest < p; ++dest) {
      if (dest != root) coll_send(bufs[static_cast<std::size_t>(dest)], dest,
                                  coll_tag(seq, 0));
    }
    return bufs[static_cast<std::size_t>(root)];
  }
  return coll_recv<T>(root, coll_tag(seq, 0));
}

template <class T, class Op>
T comm::scan(const T& v, Op op) const {
  // Linear chain: correct and simple; prefix latency is O(P), fine for the
  // rank counts this runtime hosts.
  const std::uint64_t seq = coll_seq_++;
  T acc = v;
  if (rank_ > 0) {
    acc = op(coll_recv<T>(rank_ - 1, coll_tag(seq, 0)), v);
  }
  if (rank_ + 1 < size()) {
    coll_send(acc, rank_ + 1, coll_tag(seq, 0));
  }
  return acc;
}

template <class T, class Op>
T comm::exscan(const T& v, Op op, T identity) const {
  const std::uint64_t seq = coll_seq_++;
  T before = identity;
  if (rank_ > 0) {
    before = coll_recv<T>(rank_ - 1, coll_tag(seq, 0));
  }
  if (rank_ + 1 < size()) {
    coll_send(rank_ == 0 ? v : op(before, v), rank_ + 1, coll_tag(seq, 0));
  }
  return before;
}

template <class T>
std::vector<std::vector<T>> comm::alltoallv(
    const std::vector<std::vector<T>>& sendbufs) const {
  const int p = size();
  YGM_CHECK(static_cast<int>(sendbufs.size()) == p,
            "alltoallv requires one send buffer per rank");
  const std::uint64_t seq = coll_seq_++;
  std::vector<std::vector<T>> out(static_cast<std::size_t>(p));
  for (int dest = 0; dest < p; ++dest) {
    if (dest == rank_) continue;
    coll_send(sendbufs[static_cast<std::size_t>(dest)], dest,
              coll_tag(seq, 0));
  }
  out[static_cast<std::size_t>(rank_)] = sendbufs[static_cast<std::size_t>(rank_)];
  for (int src = 0; src < p; ++src) {
    if (src == rank_) continue;
    out[static_cast<std::size_t>(src)] =
        coll_recv<std::vector<T>>(src, coll_tag(seq, 0));
  }
  return out;
}

}  // namespace ygm::mpisim
