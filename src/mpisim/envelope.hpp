// The in-flight message representation of the mpisim runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ygm::mpisim {

/// A message in a rank's incoming queue. Sends are eager: the sender
/// serializes the payload and appends the envelope to the destination's
/// mail_slot, so a send never blocks (mirroring MPI's buffered/eager path;
/// the scales this repo runs at keep queues comfortably in memory).
struct envelope {
  int src = -1;              ///< sender's group rank within the communicator
  int tag = -1;              ///< user or collective tag
  std::uint64_t ctx = 0;     ///< communicator context id (segregates comms)
  std::vector<std::byte> payload;
};

}  // namespace ygm::mpisim
