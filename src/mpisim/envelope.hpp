// Compatibility shim: envelope moved to the transport substrate
// (src/transport/envelope.hpp); mpisim re-exports it so existing call sites
// keep compiling.
#pragma once

#include "transport/envelope.hpp"

namespace ygm::mpisim {

using transport::envelope;

}  // namespace ygm::mpisim
