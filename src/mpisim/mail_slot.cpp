#include "mpisim/mail_slot.hpp"

#include "common/assert.hpp"

namespace ygm::mpisim {

void mail_slot::deliver(envelope&& e) {
  {
    std::lock_guard lock(mtx_);
    q_.push_back(std::move(e));
  }
  cv_.notify_all();
}

std::size_t mail_slot::find_match(int src, int tag, std::uint64_t ctx) const {
  for (std::size_t i = 0; i < q_.size(); ++i) {
    if (matches(q_[i], src, tag, ctx)) return i;
  }
  return npos;
}

envelope mail_slot::recv_match(int src, int tag, std::uint64_t ctx) {
  std::unique_lock lock(mtx_);
  std::size_t i;
  cv_.wait(lock, [&] {
    if (aborted_) return true;
    i = find_match(src, tag, ctx);
    return i != npos;
  });
  YGM_CHECK(!aborted_, "mpisim world aborted while blocked in recv");
  envelope e = std::move(q_[i]);
  q_.erase(q_.begin() + static_cast<std::ptrdiff_t>(i));
  return e;
}

std::optional<envelope> mail_slot::try_recv_match(int src, int tag,
                                                  std::uint64_t ctx) {
  std::lock_guard lock(mtx_);
  YGM_CHECK(!aborted_, "mpisim world aborted");
  const std::size_t i = find_match(src, tag, ctx);
  if (i == npos) return std::nullopt;
  envelope e = std::move(q_[i]);
  q_.erase(q_.begin() + static_cast<std::ptrdiff_t>(i));
  return e;
}

std::optional<status> mail_slot::iprobe(int src, int tag,
                                        std::uint64_t ctx) const {
  std::lock_guard lock(mtx_);
  YGM_CHECK(!aborted_, "mpisim world aborted");
  const std::size_t i = find_match(src, tag, ctx);
  if (i == npos) return std::nullopt;
  const envelope& e = q_[i];
  return status{e.src, e.tag, e.payload.size()};
}

status mail_slot::probe(int src, int tag, std::uint64_t ctx) const {
  std::unique_lock lock(mtx_);
  std::size_t i;
  cv_.wait(lock, [&] {
    if (aborted_) return true;
    i = find_match(src, tag, ctx);
    return i != npos;
  });
  YGM_CHECK(!aborted_, "mpisim world aborted while blocked in probe");
  const envelope& e = q_[i];
  return status{e.src, e.tag, e.payload.size()};
}

std::size_t mail_slot::pending() const {
  std::lock_guard lock(mtx_);
  return q_.size();
}

void mail_slot::abort() {
  {
    std::lock_guard lock(mtx_);
    aborted_ = true;
  }
  cv_.notify_all();
}

}  // namespace ygm::mpisim
