// Compatibility shim: the mail-slot matching engine moved to the transport
// substrate (src/transport/mail_slot.hpp) so both backends share it; mpisim
// re-exports it so existing call sites keep compiling.
#pragma once

#include "transport/mail_slot.hpp"

namespace ygm::mpisim {

using transport::mail_slot;

}  // namespace ygm::mpisim
