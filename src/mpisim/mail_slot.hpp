// Compatibility shim: the mail-slot matching engine moved to the transport
// substrate (src/transport/mail_slot.hpp) so both backends share it; mpisim
// re-exports it so existing call sites keep compiling. The slot now also
// exposes queued_bytes() — the per-destination depth the inproc backend's
// outbound cap reads for backpressure (docs/BACKPRESSURE.md).
#pragma once

#include "transport/mail_slot.hpp"

namespace ygm::mpisim {

using transport::mail_slot;

}  // namespace ygm::mpisim
