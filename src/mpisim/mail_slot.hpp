// Per-rank incoming-message queue with MPI-style matching.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "mpisim/envelope.hpp"
#include "mpisim/types.hpp"

namespace ygm::mpisim {

/// One rank's incoming mailbox. Senders call deliver(); the owning rank
/// matches messages by (source, tag, context), with any_source/any_tag
/// wildcards. Matching scans the queue in arrival order, which preserves
/// MPI's non-overtaking guarantee per (source, context): messages from one
/// sender are delivered in the order they were sent.
///
/// abort() poisons the slot so that a rank blocked in recv/probe wakes up
/// and throws instead of deadlocking when another rank dies with an
/// exception.
class mail_slot {
 public:
  /// Enqueue a message (called by sender threads).
  void deliver(envelope&& e);

  /// Blocking matched receive; removes and returns the first match.
  /// Throws ygm::error if the world has been aborted.
  envelope recv_match(int src, int tag, std::uint64_t ctx);

  /// Nonblocking matched receive.
  std::optional<envelope> try_recv_match(int src, int tag, std::uint64_t ctx);

  /// Nonblocking probe: peek at the first match without removing it.
  std::optional<status> iprobe(int src, int tag, std::uint64_t ctx) const;

  /// Blocking probe.
  status probe(int src, int tag, std::uint64_t ctx) const;

  /// Number of queued (unreceived) messages, across all contexts.
  std::size_t pending() const;

  /// Wake all blocked operations with an error (world teardown on failure).
  void abort();

 private:
  static bool matches(const envelope& e, int src, int tag, std::uint64_t ctx) {
    return e.ctx == ctx && (src == any_source || e.src == src) &&
           (tag == any_tag || e.tag == tag);
  }

  // Index of the first matching envelope in q_, or npos.
  std::size_t find_match(int src, int tag, std::uint64_t ctx) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  mutable std::mutex mtx_;
  mutable std::condition_variable cv_;
  std::deque<envelope> q_;
  bool aborted_ = false;
};

}  // namespace ygm::mpisim
