// Per-rank incoming-message queue with MPI-style matching.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "mpisim/chaos.hpp"
#include "mpisim/envelope.hpp"
#include "mpisim/types.hpp"

namespace ygm::mpisim {

/// One rank's incoming mailbox. Senders call deliver(); the owning rank
/// matches messages by (source, tag, context), with any_source/any_tag
/// wildcards. Matching scans the queue in arrival order, which preserves
/// MPI's non-overtaking guarantee per (source, context): messages from one
/// sender are delivered in the order they were sent.
///
/// With a chaos config installed (world::set_chaos), the slot additionally
/// injects MPI-legal adversity: arriving messages may stay invisible to
/// matching for a bounded number of this rank's matching operations
/// (per-source order preserved, cross-source order scrambled), iprobe may
/// report false negatives a bounded number of times in a row, and messaging
/// operations may stall briefly. All decisions are hashes of
/// (seed, rank, source, context, stream index), so a seed reproduces the
/// same fault pattern for the same message streams.
///
/// abort() poisons the slot so that a rank blocked in recv/probe wakes up
/// and throws instead of deadlocking when another rank dies with an
/// exception.
class mail_slot {
 public:
  /// Enqueue a message (called by sender threads).
  void deliver(envelope&& e);

  /// Blocking matched receive; removes and returns the first match.
  /// Throws ygm::error if the world has been aborted.
  envelope recv_match(int src, int tag, std::uint64_t ctx);

  /// Nonblocking matched receive.
  std::optional<envelope> try_recv_match(int src, int tag, std::uint64_t ctx);

  /// Nonblocking probe: peek at the first match without removing it. Under
  /// chaos this is the only operation allowed to lie (bounded false
  /// negatives).
  std::optional<status> iprobe(int src, int tag, std::uint64_t ctx);

  /// Blocking probe.
  status probe(int src, int tag, std::uint64_t ctx);

  /// Number of queued (unreceived) messages, across all contexts. Counts
  /// chaos-delayed messages too (they have been sent, just not yet "seen").
  std::size_t pending() const;

  /// Install fault injection for this slot; `owner_rank` diversifies the
  /// per-rank hash streams. Must be called before any traffic flows
  /// (runtime::run does this during world setup).
  void configure_chaos(const chaos_config& cfg, int owner_rank);

  /// Wake all blocked operations with an error (world teardown on failure).
  void abort();

 private:
  struct queued {
    envelope env;
    std::uint64_t visible_at = 0;  ///< tick at which matching may see it
  };

  /// Per-(source, context) chaos bookkeeping: how many messages this stream
  /// has delivered (the deterministic per-message index) and the visibility
  /// deadline of its latest message (non-overtaking clamp).
  struct stream_state {
    std::uint64_t arrivals = 0;
    std::uint64_t last_visible_at = 0;
  };

  static bool matches(const envelope& e, int src, int tag, std::uint64_t ctx) {
    return e.ctx == ctx && (src == any_source || e.src == src) &&
           (tag == any_tag || e.tag == tag);
  }

  /// First *visible* match in q_ (npos when none), plus whether a matching
  /// message exists that is merely chaos-delayed — blocked callers use that
  /// to age the delay with a timed wait instead of sleeping forever.
  struct match_result {
    std::size_t index;
    bool delayed_match;
  };
  match_result find_match_locked(int src, int tag, std::uint64_t ctx) const;

  /// Advance this rank's matching-operation clock (matures delayed
  /// messages). Caller holds mtx_.
  void tick_locked() { ++clock_; }

  /// Maybe sleep (scheduling jitter). Called WITHOUT mtx_ held.
  void maybe_stall();

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  mutable std::mutex mtx_;
  mutable std::condition_variable cv_;
  std::deque<queued> q_;
  bool aborted_ = false;

  // ------------------------------------------------------------- chaos
  chaos_config chaos_{};  // default: everything off
  int rank_ = 0;
  std::uint64_t clock_ = 0;    ///< matching operations performed
  std::uint32_t misses_ = 0;   ///< consecutive iprobe false negatives
  std::uint64_t probe_draws_ = 0;  ///< eligible iprobe miss draws taken
  std::unordered_map<std::uint64_t, stream_state> streams_;
  std::atomic<std::uint64_t> stall_draws_{0};
};

}  // namespace ygm::mpisim
