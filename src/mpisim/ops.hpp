// Reduction operators for mpisim collectives, like MPI_SUM / MPI_MIN / ...
// Any binary functor works; these named ones cover the common cases and are
// what the YGM layer and applications use.
#pragma once

#include <algorithm>

namespace ygm::mpisim {

struct op_sum {
  template <class T>
  T operator()(const T& a, const T& b) const {
    return a + b;
  }
};

struct op_min {
  template <class T>
  T operator()(const T& a, const T& b) const {
    return std::min(a, b);
  }
};

struct op_max {
  template <class T>
  T operator()(const T& a, const T& b) const {
    return std::max(a, b);
  }
};

struct op_land {
  template <class T>
  T operator()(const T& a, const T& b) const {
    return static_cast<T>(a && b);
  }
};

struct op_lor {
  template <class T>
  T operator()(const T& a, const T& b) const {
    return static_cast<T>(a || b);
  }
};

struct op_band {
  template <class T>
  T operator()(const T& a, const T& b) const {
    return static_cast<T>(a & b);
  }
};

struct op_bor {
  template <class T>
  T operator()(const T& a, const T& b) const {
    return static_cast<T>(a | b);
  }
};

}  // namespace ygm::mpisim
