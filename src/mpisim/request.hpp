// Nonblocking-operation handles, like MPI_Request.
#pragma once

#include <functional>
#include <span>
#include <utility>

namespace ygm::mpisim {

/// Handle for a nonblocking operation. mpisim sends are eager (they complete
/// at call time), so isend returns an already-complete request; irecv
/// returns a request that polls the mail slot.
class request {
 public:
  /// An already-complete request.
  request() = default;

  /// A pending request driven by poll(block): poll(false) attempts progress
  /// and returns completion; poll(true) must block until complete and
  /// return true.
  explicit request(std::function<bool(bool)> poll)
      : done_(false), poll_(std::move(poll)) {}

  /// Nonblocking completion test, like MPI_Test.
  bool test() {
    if (!done_) done_ = poll_(false);
    return done_;
  }

  /// Block until complete, like MPI_Wait.
  void wait() {
    if (!done_) {
      poll_(true);
      done_ = true;
    }
  }

  bool complete() const noexcept { return done_; }

 private:
  bool done_ = true;
  std::function<bool(bool)> poll_;
};

/// Block until every request completes, like MPI_Waitall.
inline void wait_all(std::span<request> reqs) {
  for (auto& r : reqs) r.wait();
}

/// True when every request has completed, like MPI_Testall (makes progress).
inline bool test_all(std::span<request> reqs) {
  bool all = true;
  for (auto& r : reqs) all = r.test() && all;
  return all;
}

}  // namespace ygm::mpisim
