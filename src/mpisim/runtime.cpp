#include "mpisim/runtime.hpp"

#include <exception>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "telemetry/telemetry.hpp"

namespace ygm::mpisim {

namespace {

void run_impl(int nranks, const chaos_config* chaos,
              const std::function<void(comm&)>& fn) {
  YGM_CHECK(nranks > 0, "run() requires a positive rank count");

  world w(nranks);
  if (chaos != nullptr && chaos->enabled()) w.set_chaos(*chaos);

  // With a telemetry session installed, every rank thread records onto its
  // own (world, rank) lane; the top-level "rank.main" span covers the whole
  // rank function, so per-rank span coverage of wall time is complete by
  // construction.
  telemetry::session* const tsess = telemetry::global();
  const int tworld = tsess != nullptr ? tsess->begin_world(nranks) : -1;

  auto members = std::make_shared<const std::vector<int>>([&] {
    std::vector<int> m(static_cast<std::size_t>(nranks));
    std::iota(m.begin(), m.end(), 0);
    return m;
  }());

  std::mutex err_mtx;
  std::exception_ptr first_error;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      std::optional<telemetry::rank_scope> tscope;
      if (tsess != nullptr) tscope.emplace(*tsess, tworld, r);
      telemetry::span rank_span("rank.main");
      comm c(w, members, r, world::world_context, world::world_context + 1);
      try {
        fn(c);
      } catch (...) {
        {
          std::lock_guard lock(err_mtx);
          if (!first_error) first_error = std::current_exception();
        }
        w.abort_all();
      }
    });
  }
  for (auto& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

void run(int nranks, const std::function<void(comm&)>& fn) {
  // Environment-driven chaos lets the whole existing suite be rerun under
  // fault injection without touching a single call site.
  if (const auto env_chaos = chaos_config::from_env()) {
    run_impl(nranks, &*env_chaos, fn);
    return;
  }
  run_impl(nranks, nullptr, fn);
}

void run(int nranks, const chaos_config& chaos,
         const std::function<void(comm&)>& fn) {
  run_impl(nranks, &chaos, fn);
}

}  // namespace ygm::mpisim
