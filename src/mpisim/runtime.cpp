#include "mpisim/runtime.hpp"

#include <exception>
#include <memory>
#include <mutex>
#include <numeric>
#include <thread>
#include <utility>

#include "common/assert.hpp"
#include "telemetry/live.hpp"
#include "telemetry/telemetry.hpp"
#include "transport/inproc/fabric.hpp"
#include "transport/shm/launch.hpp"
#include "transport/socket/launch.hpp"

namespace ygm::mpisim {

namespace {

std::shared_ptr<const std::vector<int>> world_members(int nranks) {
  std::vector<int> m(static_cast<std::size_t>(nranks));
  std::iota(m.begin(), m.end(), 0);
  return std::make_shared<const std::vector<int>>(std::move(m));
}

std::vector<std::vector<std::byte>> run_inproc(
    const run_options& opts, const std::optional<chaos_config>& chaos,
    const std::function<std::vector<std::byte>(comm&)>& fn) {
  const int nranks = opts.nranks;
  transport::inproc::fabric fab(nranks);
  if (chaos && chaos->enabled()) fab.set_chaos(*chaos);

  // With a telemetry session installed, every rank thread records onto its
  // own (world, rank) lane; the top-level "rank.main" span covers the whole
  // rank function, so per-rank span coverage of wall time is complete by
  // construction.
  telemetry::session* const tsess = telemetry::global();
  const int tworld = tsess != nullptr ? tsess->begin_world(nranks) : -1;

  // Per-process services (e.g. the progress engine) come up before any rank
  // body can observe them and stay up until every rank has finished. Live
  // telemetry services (sampler/statusz) start after the engine so the
  // sampler can detect an engine driver and skip its own thread.
  std::shared_ptr<void> services;
  if (opts.process_services) services = opts.process_services(nranks, tworld);
  std::shared_ptr<void> live_services = telemetry::live::make_process_services();

  const auto members = world_members(nranks);

  std::mutex err_mtx;
  std::exception_ptr first_error;
  std::vector<std::vector<std::byte>> results(
      static_cast<std::size_t>(nranks));

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      std::optional<telemetry::rank_scope> tscope;
      if (tsess != nullptr) tscope.emplace(*tsess, tworld, r);
      telemetry::span rank_span("rank.main");
      // The endpoint lives inside the span and the rank scope: its
      // destructor publishes transport counters onto this rank's lane.
      transport::inproc::endpoint ep(fab, r);
      comm c(ep, members, r, transport::world_context,
             transport::world_context + 1);
      try {
        results[static_cast<std::size_t>(r)] = fn(c);
      } catch (...) {
        {
          std::lock_guard lock(err_mtx);
          if (!first_error) first_error = std::current_exception();
        }
        ep.abort_world();
      }
    });
  }
  for (auto& t : threads) t.join();

  // Tear services down before rethrowing: a progress engine must not
  // outlive the fabric the rank endpoints lived on, and the sampler must
  // stop before its engine driver does.
  live_services.reset();
  services.reset();

  if (first_error) std::rethrow_exception(first_error);
  return results;
}

/// Shared body for the process-per-rank backends (socket, shm): launch()
/// owns forking, rendezvous, telemetry lane shipping, and error
/// propagation; the body here only builds the world communicator on the
/// endpoint it is handed. The body runs in the forked child, so per-process
/// services start there — an engine thread would not survive the fork from
/// the parent.
template <typename LaunchFn>
std::vector<std::vector<std::byte>> run_forked(
    LaunchFn&& launch, const run_options& opts,
    const std::optional<chaos_config>& chaos,
    const std::function<std::vector<std::byte>(comm&)>& fn) {
  return launch(opts.nranks, chaos, opts.socket_dir,
                [&fn, &opts](transport::endpoint& ep) {
                  std::shared_ptr<void> services;
                  if (opts.process_services) {
                    // The world's telemetry lanes were begun in the parent
                    // just before forking, so the child's newest world is
                    // this run's.
                    const int tworld =
                        telemetry::global() != nullptr
                            ? telemetry::global()->world_count() - 1
                            : -1;
                    services = opts.process_services(ep.world_size(), tworld);
                  }
                  std::shared_ptr<void> live_services =
                      telemetry::live::make_process_services();
                  const auto members = world_members(ep.world_size());
                  comm c(ep, members, ep.world_rank(),
                         transport::world_context,
                         transport::world_context + 1);
                  return fn(c);
                });
}

std::vector<std::vector<std::byte>> run_collect_impl(
    const run_options& opts,
    const std::function<std::vector<std::byte>(comm&)>& fn) {
  YGM_CHECK(opts.nranks > 0, "run() requires a positive rank count");

  // Environment-driven chaos lets the whole existing suite be rerun under
  // fault injection without touching a single call site; an explicit config
  // wins over the environment.
  std::optional<chaos_config> chaos = opts.chaos;
  if (!chaos) chaos = chaos_config::from_env();

  const transport::backend_kind backend =
      opts.backend ? *opts.backend : transport::backend_from_env();

  switch (backend) {
    case transport::backend_kind::socket:
      return run_forked(transport::socket::launch, opts, chaos, fn);
    case transport::backend_kind::shm:
      return run_forked(transport::shm::launch, opts, chaos, fn);
    case transport::backend_kind::inproc:
      break;
  }
  return run_inproc(opts, chaos, fn);
}

std::function<std::vector<std::byte>(comm&)> discard_result(
    const std::function<void(comm&)>& fn) {
  return [&fn](comm& c) {
    fn(c);
    return std::vector<std::byte>{};
  };
}

}  // namespace

void run(int nranks, const std::function<void(comm&)>& fn) {
  run_options opts;
  opts.nranks = nranks;
  (void)run_collect_impl(opts, discard_result(fn));
}

void run(int nranks, const chaos_config& chaos,
         const std::function<void(comm&)>& fn) {
  run_options opts;
  opts.nranks = nranks;
  opts.chaos = chaos;
  (void)run_collect_impl(opts, discard_result(fn));
}

void run(const run_options& opts, const std::function<void(comm&)>& fn) {
  (void)run_collect_impl(opts, discard_result(fn));
}

std::vector<std::vector<std::byte>> run_collect(
    const run_options& opts,
    const std::function<std::vector<std::byte>(comm&)>& fn) {
  return run_collect_impl(opts, fn);
}

}  // namespace ygm::mpisim
