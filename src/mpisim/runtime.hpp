// Entry point of the mpisim runtime: spawn N rank threads, run a rank
// function in each, propagate failures.
#pragma once

#include <functional>

#include "mpisim/chaos.hpp"
#include "mpisim/comm.hpp"

namespace ygm::mpisim {

/// Run `fn(world_comm)` on `nranks` rank threads, like
/// `mpirun -n <nranks>`. Blocks until every rank returns.
///
/// If any rank throws, the world is aborted: ranks blocked in communication
/// wake with ygm::error, all threads are joined, and the first rank's
/// exception is rethrown here. This keeps failing tests from deadlocking.
///
/// If YGM_CHAOS* environment variables are set (docs/CHAOS.md), the
/// corresponding fault injection is applied to the run — this is how the
/// regular suite is rerun under chaos without code changes.
void run(int nranks, const std::function<void(comm&)>& fn);

/// As above, with explicit seeded fault injection installed on the world
/// before any rank starts (overrides the environment).
void run(int nranks, const chaos_config& chaos,
         const std::function<void(comm&)>& fn);

}  // namespace ygm::mpisim
