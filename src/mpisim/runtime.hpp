// Entry point of the mpisim runtime: run a rank function on N ranks over a
// chosen transport backend, propagate failures.
//
// Backends (src/transport/): `inproc` spawns N rank threads inside this
// process (the original simulator); `socket` forks N OS processes connected
// by Unix-domain sockets; `shm` forks N OS processes connected by
// shared-memory SPSC rings. The backend is a runtime choice — an explicit
// run_options field, else the YGM_TRANSPORT environment variable, else
// inproc.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mpisim/chaos.hpp"
#include "mpisim/comm.hpp"
#include "transport/endpoint.hpp"

namespace ygm::mpisim {

/// Knobs for a run. Default-constructed options reproduce the historical
/// behaviour: inproc unless YGM_TRANSPORT says otherwise, chaos from the
/// YGM_CHAOS* environment.
struct run_options {
  int nranks = 1;
  /// Backend to run on; nullopt defers to YGM_TRANSPORT (default inproc).
  std::optional<transport::backend_kind> backend;
  /// Fault injection; nullopt defers to the YGM_CHAOS* environment
  /// (docs/CHAOS.md). An explicit config overrides the environment.
  std::optional<chaos_config> chaos;
  /// Process-per-rank backends (socket, shm) only: rendezvous directory
  /// ("" = fresh mkdtemp under $TMPDIR, removed after the run). The shm
  /// backend also derives its segment names from the directory's basename.
  std::string socket_dir;
  /// Per-process service hook, invoked once in every OS process that hosts
  /// rank bodies (the driver process on inproc; each forked child on
  /// socket), before any rank body starts. The returned token is held until
  /// every rank body in that process has finished, then released (before
  /// error rethrow). mpisim is layered below core/, so this is how
  /// higher layers attach per-process machinery — ygm::launch starts the
  /// progress engine (core/progress.hpp) through it. `telemetry_world` is
  /// the telemetry world index opened for this run's rank lanes (-1 when
  /// telemetry is off).
  std::function<std::shared_ptr<void>(int nranks, int telemetry_world)>
      process_services;
};

/// Run `fn(world_comm)` on `nranks` ranks, like `mpirun -n <nranks>`.
/// Blocks until every rank returns.
///
/// If any rank throws, the world is aborted: ranks blocked in communication
/// wake with ygm::error, every rank is joined/reaped, and the first rank's
/// exception (socket backend: its message) is rethrown here. This keeps
/// failing tests from deadlocking.
///
/// DEPRECATED (one-release notice, docs/PROGRESS.md §Migration): new code
/// should call ygm::launch(ygm::run_options, fn) — core/launch.hpp — which
/// adds progress-mode, trace-sample, and virtual-network fields on top of
/// these knobs. These wrappers keep compiling and behave identically; they
/// will be removed one release after the launch surface lands.
void run(int nranks, const std::function<void(comm&)>& fn);

/// As above, with explicit seeded fault injection installed on the world
/// before any rank starts (overrides the environment). DEPRECATED — prefer
/// ygm::launch with run_options::chaos.
void run(int nranks, const chaos_config& chaos,
         const std::function<void(comm&)>& fn);

/// Fully-specified variant. DEPRECATED as a public entry point — prefer
/// ygm::launch; this remains the underlying mechanism it drives.
void run(const run_options& opts, const std::function<void(comm&)>& fn);

/// Run a rank function that returns a byte blob; returns one blob per rank,
/// ordered by rank. This is the cross-backend result channel: on inproc the
/// blobs are moved across threads, on socket they are shipped over the
/// result pipe — callers serialize with ygm::ser and cannot rely on shared
/// memory with the rank bodies.
std::vector<std::vector<std::byte>> run_collect(
    const run_options& opts,
    const std::function<std::vector<std::byte>(comm&)>& fn);

}  // namespace ygm::mpisim
