// Entry point of the mpisim runtime: spawn N rank threads, run a rank
// function in each, propagate failures.
#pragma once

#include <functional>

#include "mpisim/comm.hpp"

namespace ygm::mpisim {

/// Run `fn(world_comm)` on `nranks` rank threads, like
/// `mpirun -n <nranks>`. Blocks until every rank returns.
///
/// If any rank throws, the world is aborted: ranks blocked in communication
/// wake with ygm::error, all threads are joined, and the first rank's
/// exception is rethrown here. This keeps failing tests from deadlocking.
void run(int nranks, const std::function<void(comm&)>& fn);

}  // namespace ygm::mpisim
