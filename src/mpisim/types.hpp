// Compatibility shim: these types moved to the transport substrate
// (src/transport/types.hpp) when the communication backends were split out
// behind transport::endpoint; mpisim re-exports them so existing call sites
// keep compiling.
#pragma once

#include "transport/types.hpp"

namespace ygm::mpisim {

using transport::any_source;
using transport::any_tag;
using transport::status;
using transport::tag_ub;

}  // namespace ygm::mpisim
