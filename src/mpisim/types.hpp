// Shared constants and small value types for the MPI-like runtime.
//
// mpisim replaces MPI in this reproduction (no MPI implementation is
// available in the build environment — see DESIGN.md §2). It implements the
// subset of MPI semantics YGM relies on: eager buffered point-to-point sends
// with per-(source,destination,context) non-overtaking order, tag matching
// with wildcards, probing, nonblocking requests, communicator splitting, and
// tree-based collectives. Ranks are threads within one process; each rank's
// "address space" is by convention the state it allocates in its rank
// function.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ygm::mpisim {

/// Wildcard source for recv/probe, like MPI_ANY_SOURCE.
inline constexpr int any_source = -1;

/// Wildcard tag for recv/probe, like MPI_ANY_TAG.
inline constexpr int any_tag = -1;

/// Largest tag available to user code, like MPI_TAG_UB.
inline constexpr int tag_ub = (1 << 24) - 1;

/// Result of a completed receive or probe, like MPI_Status.
struct status {
  int source = any_source;       ///< group rank of the sender
  int tag = any_tag;             ///< tag of the matched message
  std::size_t byte_count = 0;    ///< payload size in bytes
};

}  // namespace ygm::mpisim
