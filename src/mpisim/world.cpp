#include "mpisim/world.hpp"

#include "common/assert.hpp"

namespace ygm::mpisim {

world::world(int nranks) : next_ctx_(world_context + 2) {
  // world_context and world_context+1 are reserved for the world
  // communicator's point-to-point and collective planes.
  YGM_CHECK(nranks > 0, "world size must be positive");
  slots_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    slots_.push_back(std::make_unique<mail_slot>());
  }
  epoch_ = std::chrono::steady_clock::now();
}

void world::set_chaos(const chaos_config& cfg) {
  chaos_ = cfg;
  for (int r = 0; r < size(); ++r) {
    slots_[static_cast<std::size_t>(r)]->configure_chaos(cfg, r);
  }
}

mail_slot& world::slot(int world_rank) {
  YGM_ASSERT(world_rank >= 0 && world_rank < size());
  return *slots_[static_cast<std::size_t>(world_rank)];
}

double world::wtime() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - epoch_).count();
}

void world::abort_all() {
  bool expected = false;
  if (aborted_.compare_exchange_strong(expected, true)) {
    for (auto& s : slots_) s->abort();
  }
}

}  // namespace ygm::mpisim
