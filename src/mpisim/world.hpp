// Process-wide shared state for one mpisim execution: the rank mail slots,
// context-id allocation, the clock epoch, and abort propagation.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "mpisim/chaos.hpp"
#include "mpisim/mail_slot.hpp"

namespace ygm::mpisim {

/// Shared by every rank thread of one runtime::run invocation. Thread-safe.
class world {
 public:
  explicit world(int nranks);

  int size() const noexcept { return static_cast<int>(slots_.size()); }

  mail_slot& slot(int world_rank);

  /// Install seeded fault injection on every rank slot. Must run before any
  /// traffic flows (runtime::run calls this before spawning rank threads).
  void set_chaos(const chaos_config& cfg);

  /// The chaos config in force (defaults to everything-off).
  const chaos_config& chaos() const noexcept { return chaos_; }

  /// Allocate a fresh communicator context id. Only one rank (the split
  /// root) allocates per logical communicator, so ids agree across ranks.
  std::uint64_t alloc_context() noexcept {
    return next_ctx_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Context id of the world communicator (point-to-point plane).
  static constexpr std::uint64_t world_context = 1;

  /// Seconds since this world was created (like MPI_Wtime deltas).
  double wtime() const;

  /// Poison all slots so blocked ranks wake with an error; called when a
  /// rank function throws, to avoid deadlocking the remaining ranks.
  void abort_all();

  bool aborted() const noexcept {
    return aborted_.load(std::memory_order_acquire);
  }

 private:
  std::vector<std::unique_ptr<mail_slot>> slots_;
  chaos_config chaos_{};
  std::atomic<std::uint64_t> next_ctx_;
  std::atomic<bool> aborted_{false};
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace ygm::mpisim
