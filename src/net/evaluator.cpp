#include "net/evaluator.hpp"

#include <algorithm>
#include <deque>

#include "common/assert.hpp"

namespace ygm::net {

namespace {

// Accumulated per-core outbound flows (bytes and message events), averaged
// over the representative source cores.
struct flows {
  double local_bytes = 0;
  double remote_bytes = 0;
  double send_events = 0;     // message enqueues (origin or forward)
  double forward_bytes = 0;   // bytes re-copied at intermediaries
};

// Walk every point-to-point route out of the cores of one representative
// node. The schemes are vertex-transitive (exactly so when C | N, to within
// one node's traffic otherwise), so the average over these sources equals
// the per-core average over the whole machine.
flows p2p_flows(const routing::router& r, const traffic_model& tm,
                int rep_node) {
  const auto& topo = r.topo();
  const int nc = topo.num_ranks();
  flows f;
  if (nc <= 1 || tm.p2p_bytes <= 0) return f;

  const double v = tm.p2p_bytes / (nc - 1);  // bytes per (src,dst) pair
  const double msgs_per_pair = v / tm.p2p_msg_bytes;

  for (int c = 0; c < topo.cores; ++c) {
    const int s0 = topo.rank_of(rep_node, c);
    for (int d = 0; d < nc; ++d) {
      if (d == s0) continue;
      int here = s0;
      int hop = 0;
      while (here != d) {
        const int nh = r.next_hop(here, d);
        YGM_ASSERT(nh != here);
        if (topo.is_remote(here, nh)) {
          f.remote_bytes += v;
        } else {
          f.local_bytes += v;
        }
        f.send_events += msgs_per_pair;
        if (hop > 0) f.forward_bytes += v;
        here = nh;
        ++hop;
        YGM_ASSERT(hop <= r.max_hops());
      }
    }
  }
  const double inv = 1.0 / topo.cores;
  f.local_bytes *= inv;
  f.remote_bytes *= inv;
  f.send_events *= inv;
  f.forward_bytes *= inv;
  return f;
}

// Walk the broadcast tree rooted at each core of the representative node.
// By the same transitivity argument, per-core outbound broadcast flow equals
// (tree totals) x (broadcasts originated per core).
flows bcast_flows(const routing::router& r, const traffic_model& tm,
                  int rep_node) {
  const auto& topo = r.topo();
  flows f;
  if (topo.num_ranks() <= 1 || tm.bcast_count <= 0) return f;

  for (int c = 0; c < topo.cores; ++c) {
    const int origin = topo.rank_of(rep_node, c);
    std::deque<int> frontier{origin};
    while (!frontier.empty()) {
      const int here = frontier.front();
      frontier.pop_front();
      for (int nh : r.bcast_next_hops(here, origin)) {
        if (topo.is_remote(here, nh)) {
          f.remote_bytes += tm.bcast_msg_bytes;
        } else {
          f.local_bytes += tm.bcast_msg_bytes;
        }
        f.send_events += 1;
        if (here != origin) f.forward_bytes += tm.bcast_msg_bytes;
        frontier.push_back(nh);
      }
    }
  }
  const double scale = tm.bcast_count / topo.cores;
  f.local_bytes *= scale;
  f.remote_bytes *= scale;
  f.send_events *= scale;
  f.forward_bytes *= scale;
  return f;
}

}  // namespace

eval_result evaluate(const routing::router& r, const network_params& np,
                     std::size_t mailbox_bytes, const traffic_model& tm) {
  YGM_CHECK(mailbox_bytes > 0, "mailbox capacity must be positive");
  YGM_CHECK(tm.p2p_msg_bytes > 0 && tm.bcast_msg_bytes > 0,
            "message sizes must be positive");

  const auto& topo = r.topo();
  eval_result out;
  if (topo.num_ranks() <= 1) return out;

  // A middle node is representative even when NLNR's last layer is partial.
  const int rep_node = topo.nodes / 2;

  const flows fp = p2p_flows(r, tm, rep_node);
  const flows fb = bcast_flows(r, tm, rep_node);

  out.local_bytes = fp.local_bytes + fb.local_bytes;
  out.remote_bytes = fp.remote_bytes + fb.remote_bytes;
  const double send_events = fp.send_events + fb.send_events;
  const double forward_bytes = fp.forward_bytes + fb.forward_bytes;
  const double total_out = out.local_bytes + out.remote_bytes;
  if (total_out <= 0) return out;

  // Partner counts. Remote partner counts vary only with core offset, so the
  // representative node's cores cover every class.
  int max_pr = 0;
  double sum_pr = 0;
  for (int c = 0; c < topo.cores; ++c) {
    const int pr = r.remote_out_partners(topo.rank_of(rep_node, c));
    max_pr = std::max(max_pr, pr);
    sum_pr += pr;
  }
  const double avg_pr = sum_pr / topo.cores;
  out.max_remote_partners = max_pr;
  const double pl = r.local_out_partners(topo.rank_of(rep_node, 0));

  // Coalesced packet size per partner: the proportional share of the mailbox
  // buffer that partner's traffic occupies at flush time, clamped to
  // [one message, everything that partner will ever receive].
  const auto packet_size = [&](double partner_bytes, double msg_bytes) {
    double pkt = static_cast<double>(mailbox_bytes) * partner_bytes / total_out;
    pkt = std::max(pkt, msg_bytes);
    pkt = std::min(pkt, partner_bytes);
    return pkt;
  };

  double msg_bytes = tm.p2p_msg_bytes;
  if (tm.p2p_bytes > 0 && tm.bcast_count > 0) {
    msg_bytes = std::min(tm.p2p_msg_bytes, tm.bcast_msg_bytes);
  } else if (tm.bcast_count > 0) {
    msg_bytes = tm.bcast_msg_bytes;
  }

  if (out.remote_bytes > 0 && avg_pr > 0) {
    const double per_partner = out.remote_bytes / avg_pr;
    const double pkt = packet_size(per_partner, msg_bytes);
    out.remote_packet_bytes = pkt;
    out.remote_packets = out.remote_bytes / pkt;
    out.remote_s = out.remote_packets * np.remote.transfer_time(pkt);
  }
  if (out.local_bytes > 0 && pl > 0) {
    const double per_partner = out.local_bytes / pl;
    const double pkt = packet_size(per_partner, msg_bytes);
    out.local_packets = out.local_bytes / pkt;
    out.local_s = out.local_packets * np.local.transfer_time(pkt);
  }

  // Every send has a matching receive somewhere; by symmetry each core also
  // handles `send_events` receives.
  out.handled_msgs = 2 * send_events;
  out.cpu_s =
      out.handled_msgs * np.cpu_s_per_msg + forward_bytes * np.cpu_s_per_byte;

  out.total_s = out.remote_s + out.local_s + out.cpu_s;
  return out;
}

}  // namespace ygm::net
