// Analytic evaluator: predicts per-core communication cost for a routing
// scheme on an (N nodes × C cores) machine under a parameterized traffic
// model, using the network performance model in params.hpp.
//
// Why this exists: the paper's experiments run on up to 1024 nodes × 36
// cores of LLNL Quartz. This build environment is one CPU core, so executed
// runs top out around 64 rank-threads. The evaluator reproduces the paper's
// figures at full scale by computing, exactly, the quantity the routing
// schemes control — how many distinct remote partners each core has and
// therefore how large its coalesced packets can be for a fixed mailbox
// capacity — and pricing the resulting transfers on the Fig. 5 bandwidth
// curve. Executed runs at small scale cross-validate the model (see
// EXPERIMENTS.md).
//
// Method: routes are enumerated with the *actual* router (the same
// next_hop/bcast_next_hops logic the mailbox executes), from a
// representative source per symmetry class; per-core flows follow from
// vertex transitivity of the schemes. Packet sizes are the proportional
// share of the mailbox buffer each next-hop partner holds at flush time.
#pragma once

#include <cstddef>

#include "net/params.hpp"
#include "routing/router.hpp"

namespace ygm::net {

/// Application traffic originated by EACH core. Point-to-point destinations
/// are uniform over all other ranks (the paper's analysis assumption,
/// §III-E); broadcasts go to everyone via the scheme's bcast tree.
struct traffic_model {
  double p2p_bytes = 0;        ///< total point-to-point payload bytes (V)
  double p2p_msg_bytes = 16;   ///< bytes per application message
  double bcast_count = 0;      ///< broadcasts originated per core
  double bcast_msg_bytes = 16; ///< payload bytes per broadcast message
};

/// Per-core cost breakdown (the critical-path core for asymmetric schemes).
struct eval_result {
  double total_s = 0;        ///< remote + local + cpu
  double remote_s = 0;       ///< wire transfer time
  double local_s = 0;        ///< shared-memory transfer time
  double cpu_s = 0;          ///< message handling/copy time
  double remote_bytes = 0;   ///< wire bytes sent per core
  double local_bytes = 0;    ///< shared-memory bytes sent per core
  double remote_packets = 0; ///< coalesced wire packets sent per core
  double local_packets = 0;
  double remote_packet_bytes = 0;  ///< average coalesced wire packet size
  int max_remote_partners = 0;     ///< worst-case distinct remote partners
  double handled_msgs = 0;   ///< send+receive+forward events per core
};

/// Evaluate one (scheme, machine, mailbox, traffic) configuration.
/// mailbox_bytes is the coalescing buffer capacity per core, in bytes
/// (the paper's "mailbox size" times its message size).
eval_result evaluate(const routing::router& r, const network_params& np,
                     std::size_t mailbox_bytes, const traffic_model& tm);

}  // namespace ygm::net
