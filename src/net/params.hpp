// Network performance model.
//
// The paper's routing schemes exist because (a) remote transfers are
// bit-for-bit more expensive than shared-memory transfers and (b) on real
// interconnects, bandwidth is a strong function of message size — small
// messages are dominated by per-message latency, and MPI's eager→rendezvous
// protocol switch puts a dip in the curve at 16 KiB (paper Fig. 5, MVAPICH
// 2.3 over Omni-Path on LLNL Quartz).
//
// This model reproduces that curve with a two-regime latency/bandwidth
// formula:
//     t(s) = L + s / B           (eager,      s <  threshold)
//     t(s) = L + H + s / B'      (rendezvous, s >= threshold)
// with handshake cost H and B' > B, so bandwidth s/t(s) rises, dips at the
// threshold, then recovers toward the higher asymptote — the Fig. 5 shape.
//
// No real interconnect exists in this build environment (see DESIGN.md §2);
// the model is used two ways: the analytic evaluator sweeps it to paper
// scale, and executed benches feed their measured traffic through it to
// report modeled time alongside wall time.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ygm::net {

/// One link class (the wire, or node-local shared memory).
struct link_params {
  double latency_s = 1e-6;           ///< per-message setup cost (L)
  double handshake_s = 0.0;          ///< extra rendezvous handshake cost (H)
  double eager_bw_Bps = 6e9;         ///< eager-regime bandwidth (B)
  double rendezvous_bw_Bps = 12e9;   ///< rendezvous-regime bandwidth (B')
  std::size_t eager_threshold = 16 * 1024;  ///< protocol switch size

  /// Seconds to move one message of `bytes` payload over this link.
  double transfer_time(double bytes) const {
    if (bytes < static_cast<double>(eager_threshold)) {
      return latency_s + bytes / eager_bw_Bps;
    }
    return latency_s + handshake_s + bytes / rendezvous_bw_Bps;
  }

  /// Effective bandwidth for a message of `bytes` (the Fig. 5 y-axis).
  double bandwidth(double bytes) const { return bytes / transfer_time(bytes); }
};

/// The full machine model: remote (wire) and local (shared memory) links and
/// a per-message CPU handling cost (serialize + enqueue + callback dispatch),
/// which is what makes NLNR's third hop non-free (paper §III-D).
struct network_params {
  link_params remote;
  link_params local;
  double cpu_s_per_msg = 5e-9;   ///< per message-handling event (~5 ns;
                                 ///< the fixed-size fast path is a varint
                                 ///< append plus a bounds check)
  double cpu_s_per_byte = 5e-11; ///< per byte copied at an intermediary

  /// Parameters shaped like LLNL Quartz (Omni-Path ~100 Gb/s wire, dual-
  /// socket Xeon shared memory). Calibrated to reproduce the Fig. 5 curve:
  /// ~MB/s at tens of bytes, several GB/s approaching 16 KiB, a dip at the
  /// eager→rendezvous switch, recovery to ~12 GB/s for MB-sized messages.
  static network_params quartz_like() {
    network_params p;
    p.remote.latency_s = 1.2e-6;
    p.remote.handshake_s = 2.5e-6;
    p.remote.eager_bw_Bps = 6e9;
    p.remote.rendezvous_bw_Bps = 12.3e9;
    p.remote.eager_threshold = 16 * 1024;
    // Shared memory: lower latency, higher bandwidth, no protocol switch.
    p.local.latency_s = 2.0e-7;
    p.local.handshake_s = 0.0;
    p.local.eager_bw_Bps = 2.4e10;
    p.local.rendezvous_bw_Bps = 2.4e10;
    p.local.eager_threshold = static_cast<std::size_t>(-1);
    return p;
  }

  /// Parameters shaped like IBM BG/Q Sequoia (the other LLNL machine the
  /// paper mentions, §III-A): 5D-torus links with ~1.8 GB/s per link but
  /// very low, very uniform latency and hardware collective support — the
  /// environment where the ALLTOALLV exchange variant won.
  static network_params bgq_like() {
    network_params p;
    p.remote.latency_s = 7e-7;
    p.remote.handshake_s = 8e-7;
    p.remote.eager_bw_Bps = 1.4e9;
    p.remote.rendezvous_bw_Bps = 1.8e9;
    p.remote.eager_threshold = 4 * 1024;
    p.local.latency_s = 3.0e-7;
    p.local.handshake_s = 0.0;
    p.local.eager_bw_Bps = 1.0e10;
    p.local.rendezvous_bw_Bps = 1.0e10;
    p.local.eager_threshold = static_cast<std::size_t>(-1);
    p.cpu_s_per_msg = 1.2e-8;  // slower cores (1.6 GHz A2)
    return p;
  }
};

}  // namespace ygm::net
