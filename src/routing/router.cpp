#include "routing/router.hpp"

#include "telemetry/telemetry.hpp"

namespace ygm::routing {

// telemetry's per-scheme hop counters are indexed by scheme_kind's
// underlying value; keep the two enumerations in lockstep.
static_assert(static_cast<unsigned>(scheme_kind::no_route) == 0 &&
                  static_cast<unsigned>(scheme_kind::node_local) == 1 &&
                  static_cast<unsigned>(scheme_kind::node_remote) == 2 &&
                  static_cast<unsigned>(scheme_kind::nlnr) == 3,
              "scheme_kind order must match telemetry's scheme hop table");

std::string_view to_string(scheme_kind k) {
  switch (k) {
    case scheme_kind::no_route:
      return "NoRoute";
    case scheme_kind::node_local:
      return "NodeLocal";
    case scheme_kind::node_remote:
      return "NodeRemote";
    case scheme_kind::nlnr:
      return "NLNR";
  }
  return "?";
}

int router::next_hop(int here, int dst) const {
  YGM_ASSERT(here != dst);
  YGM_ASSERT(here >= 0 && here < topo_.num_ranks());
  YGM_ASSERT(dst >= 0 && dst < topo_.num_ranks());
  // One tls() load for both hot-path counters: next_hop runs per queued
  // record, so the idle cost here must stay at a single load + branch.
  if (telemetry::recorder* rec = telemetry::tls()) {
    rec->fast_add(telemetry::fast_counter::route_next_hop, 1);
    rec->fast_add_scheme_hop(static_cast<unsigned>(kind_));
  }
  switch (kind_) {
    case scheme_kind::no_route:
      return dst;
    case scheme_kind::node_local:
      return next_hop_node_local(here, dst);
    case scheme_kind::node_remote:
      return next_hop_node_remote(here, dst);
    case scheme_kind::nlnr:
      return next_hop_nlnr(here, dst);
  }
  YGM_ASSERT(false);
  return dst;
}

int router::next_hop_node_local(int here, int dst) const {
  // (n,c) -> (n, c') locally, then (n, c') -> (n', c') on the core-offset-c'
  // remote channel.
  if (topo_.same_node(here, dst)) return dst;
  if (topo_.core_of(here) == topo_.core_of(dst)) return dst;  // remote hop
  return topo_.rank_of(topo_.node_of(here), topo_.core_of(dst));
}

int router::next_hop_node_remote(int here, int dst) const {
  // (n,c) -> (n', c) remotely first, then deliver within the node.
  if (topo_.same_node(here, dst)) return dst;
  return topo_.rank_of(topo_.node_of(dst), topo_.core_of(here));
}

int router::next_hop_nlnr(int here, int dst) const {
  // (n,c) -> (n, n' mod C) -> (n', n mod C) -> (n', c'), with natural
  // shortcuts whenever an intermediary coincides with the destination.
  if (topo_.same_node(here, dst)) return dst;
  const int gate = topo_.layer_offset(topo_.node_of(dst));  // n' mod C
  if (topo_.core_of(here) == gate) {
    // We are the sending-side gateway for dst's node: one remote hop to the
    // receiving-side gateway, whose core offset is our node's layer offset.
    return topo_.rank_of(topo_.node_of(dst),
                         topo_.layer_offset(topo_.node_of(here)));
  }
  return topo_.rank_of(topo_.node_of(here), gate);  // first local exchange
}

std::vector<int> router::bcast_next_hops(int here, int origin) const {
  std::vector<int> out = bcast_next_hops_impl(here, origin);
  telemetry::add(telemetry::fast_counter::route_bcast_fanout, out.size());
  return out;
}

std::vector<int> router::bcast_next_hops_impl(int here, int origin) const {
  const int n_here = topo_.node_of(here);
  const int n_orig = topo_.node_of(origin);
  std::vector<int> out;

  switch (kind_) {
    case scheme_kind::no_route: {
      if (here == origin) {
        out.reserve(static_cast<std::size_t>(topo_.num_ranks() - 1));
        for (int r = 0; r < topo_.num_ranks(); ++r) {
          if (r != origin) out.push_back(r);
        }
      }
      return out;
    }

    case scheme_kind::node_local: {
      // Origin copies to every local core; each local core (origin included)
      // forwards on its core-offset remote channel: C*(N-1) remote messages.
      if (here == origin) {
        for (int c = 0; c < topo_.cores; ++c) {
          const int r = topo_.rank_of(n_orig, c);
          if (r != origin) out.push_back(r);
        }
      }
      if (n_here == n_orig) {
        const int c = topo_.core_of(here);
        for (int n = 0; n < topo_.nodes; ++n) {
          if (n != n_orig) out.push_back(topo_.rank_of(n, c));
        }
      }
      return out;
    }

    case scheme_kind::node_remote: {
      // Origin sends one remote copy per node (N-1 remote messages) to the
      // core matching its own offset, which fans out locally.
      if (here == origin) {
        const int c = topo_.core_of(origin);
        for (int n = 0; n < topo_.nodes; ++n) {
          if (n != n_orig) out.push_back(topo_.rank_of(n, c));
        }
        for (int cc = 0; cc < topo_.cores; ++cc) {
          const int r = topo_.rank_of(n_orig, cc);
          if (r != origin) out.push_back(r);
        }
      } else if (n_here != n_orig &&
                 topo_.core_of(here) == topo_.core_of(origin)) {
        for (int cc = 0; cc < topo_.cores; ++cc) {
          const int r = topo_.rank_of(n_here, cc);
          if (r != here) out.push_back(r);
        }
      }
      return out;
    }

    case scheme_kind::nlnr: {
      // Origin copies locally; local core (n, j) forwards one remote copy to
      // every node whose layer offset is j (N-1 remote messages in total);
      // the receiving gateway fans out locally.
      const int orig_loff = topo_.layer_offset(n_orig);
      if (here == origin) {
        for (int c = 0; c < topo_.cores; ++c) {
          const int r = topo_.rank_of(n_orig, c);
          if (r != origin) out.push_back(r);
        }
      }
      if (n_here == n_orig) {
        const int j = topo_.core_of(here);
        for (int n = 0; n < topo_.nodes; ++n) {
          if (n != n_orig && topo_.layer_offset(n) == j) {
            out.push_back(topo_.rank_of(n, orig_loff));
          }
        }
      } else if (topo_.core_of(here) == orig_loff) {
        for (int cc = 0; cc < topo_.cores; ++cc) {
          const int r = topo_.rank_of(n_here, cc);
          if (r != here) out.push_back(r);
        }
      }
      return out;
    }
  }
  YGM_ASSERT(false);
  return out;
}

std::vector<int> router::path(int src, int dst) const {
  YGM_ASSERT(src != dst);
  std::vector<int> hops;
  int here = src;
  while (here != dst) {
    here = next_hop(here, dst);
    hops.push_back(here);
    YGM_ASSERT(static_cast<int>(hops.size()) <= max_hops());
  }
  return hops;
}

int router::max_hops() const {
  switch (kind_) {
    case scheme_kind::no_route:
      return 1;
    case scheme_kind::node_local:
    case scheme_kind::node_remote:
      return 2;
    case scheme_kind::nlnr:
      return 3;
  }
  YGM_ASSERT(false);
  return 0;
}

int router::remote_out_partners(int rank) const {
  const int n = topo_.node_of(rank);
  const int c = topo_.core_of(rank);
  switch (kind_) {
    case scheme_kind::no_route:
      // Sends directly to every remote core.
      return (topo_.nodes - 1) * topo_.cores;
    case scheme_kind::node_local:
    case scheme_kind::node_remote:
      // One remote partner per other node: (n', c) for all n' != n.
      return topo_.nodes - 1;
    case scheme_kind::nlnr: {
      // Gateway for nodes n' with n' mod C == c: ~N/C partners.
      int cnt = 0;
      for (int nn = 0; nn < topo_.nodes; ++nn) {
        if (nn != n && topo_.layer_offset(nn) == c) ++cnt;
      }
      return cnt;
    }
  }
  YGM_ASSERT(false);
  return 0;
}

int router::local_out_partners(int rank) const {
  (void)rank;
  switch (kind_) {
    case scheme_kind::no_route:
      return topo_.cores - 1;  // direct local deliveries only
    case scheme_kind::node_local:
    case scheme_kind::node_remote:
    case scheme_kind::nlnr:
      return topo_.cores - 1;  // full local exchange within the node
  }
  YGM_ASSERT(false);
  return 0;
}

long long router::remote_channel_count() const {
  const long long c = topo_.cores;
  switch (kind_) {
    case scheme_kind::no_route:
      return 1;  // one undifferentiated all-pairs channel
    case scheme_kind::node_local:
    case scheme_kind::node_remote:
      return c;  // one channel per core offset
    case scheme_kind::nlnr:
      return c * (c - 1) / 2 + c;  // paper §III-D
  }
  YGM_ASSERT(false);
  return 0;
}

long long router::bcast_remote_messages() const {
  const long long n = topo_.nodes;
  const long long c = topo_.cores;
  switch (kind_) {
    case scheme_kind::no_route:
    case scheme_kind::node_local:
      return c * (n - 1);
    case scheme_kind::node_remote:
    case scheme_kind::nlnr:
      return n - 1;
  }
  YGM_ASSERT(false);
  return 0;
}

}  // namespace ygm::routing
