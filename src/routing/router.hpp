// The paper's four message-routing schemes (§III) as pure logic.
//
// A router answers, statelessly, "given a message currently held at rank
// `here` destined for rank `dst`, which rank receives it next?" — the
// mailbox layer drives all exchanges off this single function, so the
// local/remote exchange phases of the paper emerge from repeated
// forwarding. Broadcast fan-out trees are exposed the same way.
//
// Schemes:
//   no_route    - direct core-to-core sends (the paper's "NoRoute" baseline)
//   node_local  - local exchange by destination core offset, then one remote
//                 exchange per core offset (§III-B)
//   node_remote - remote exchange by destination node first, local second
//                 (§III-C); broadcast-friendly
//   nlnr        - local, remote, local with layered nodes (§III-D); the
//                 minimum number of remote channels
#pragma once

#include <string_view>
#include <vector>

#include "routing/topology.hpp"

namespace ygm::routing {

enum class scheme_kind { no_route, node_local, node_remote, nlnr };

std::string_view to_string(scheme_kind k);

/// All schemes, in the order the paper's plots list them.
inline constexpr scheme_kind all_schemes[] = {
    scheme_kind::no_route, scheme_kind::node_local, scheme_kind::node_remote,
    scheme_kind::nlnr};

class router {
 public:
  router(scheme_kind kind, topology topo) : kind_(kind), topo_(topo) {}

  scheme_kind kind() const noexcept { return kind_; }
  const topology& topo() const noexcept { return topo_; }

  /// Next rank on the route from `here` toward `dst`. Returns `dst` when the
  /// next hop is the final delivery. Precondition: here != dst.
  int next_hop(int here, int dst) const;

  /// Ranks to which a broadcast copy held at `here` (originated by `origin`)
  /// must be forwarded. Every rank except `origin` receives exactly one copy
  /// across the whole tree. Callers pass here==origin to start the bcast.
  std::vector<int> bcast_next_hops(int here, int origin) const;

  /// The full hop sequence from src to dst (excluding src, ending at dst).
  /// Convenience over repeated next_hop(); length <= max_hops().
  std::vector<int> path(int src, int dst) const;

  /// Upper bound on hops any point-to-point message takes (paper: 1 for
  /// NoRoute, 2 for NL/NR, 3 for NLNR).
  int max_hops() const;

  // ------------------------------------------------------ §III-E analysis

  /// Number of distinct *remote* ranks `rank` sends wire messages to under
  /// uniform all-to-all traffic (as origin or intermediary).
  int remote_out_partners(int rank) const;

  /// Number of distinct *local* ranks `rank` sends to under uniform
  /// all-to-all traffic.
  int local_out_partners(int rank) const;

  /// Global count of remote communication channels (paper: C for NL/NR,
  /// C(C-1)/2 + C for NLNR).
  long long remote_channel_count() const;

  /// Remote messages consumed by one broadcast (paper: C(N-1) for
  /// node_local, N-1 for node_remote and NLNR).
  long long bcast_remote_messages() const;

 private:
  std::vector<int> bcast_next_hops_impl(int here, int origin) const;
  int next_hop_node_local(int here, int dst) const;
  int next_hop_node_remote(int here, int dst) const;
  int next_hop_nlnr(int here, int dst) const;

  scheme_kind kind_;
  topology topo_;
};

}  // namespace ygm::routing
