// The (node, core) machine abstraction of the paper (§III).
//
// N compute nodes with C cores each; a core is addressed by the tuple
// (n, c) and linearized to the rank n*C + c (node-major, the usual MPI
// blocked mapping). "Local" communication stays within one node (shared
// memory); "remote" communication crosses nodes (the wire).
//
// NLNR additionally groups nodes into *layers* of C nodes: node n has layer
// offset n mod C, and the core with offset n' mod C on node n is the
// gateway for all traffic from node n to node n'.
#pragma once

#include "common/assert.hpp"

namespace ygm::routing {

struct topology {
  int nodes = 1;  ///< N - compute node count
  int cores = 1;  ///< C - cores per node

  constexpr topology() = default;
  constexpr topology(int n, int c) : nodes(n), cores(c) {
    YGM_ASSERT(n >= 1 && c >= 1);
  }

  constexpr int num_ranks() const noexcept { return nodes * cores; }

  constexpr int node_of(int rank) const noexcept { return rank / cores; }
  constexpr int core_of(int rank) const noexcept { return rank % cores; }
  constexpr int rank_of(int node, int core) const noexcept {
    return node * cores + core;
  }

  constexpr bool same_node(int a, int b) const noexcept {
    return node_of(a) == node_of(b);
  }
  constexpr bool is_remote(int a, int b) const noexcept {
    return !same_node(a, b);
  }

  /// NLNR layer index of a node (layers hold C consecutive offsets).
  constexpr int layer_of(int node) const noexcept { return node / cores; }

  /// NLNR layer offset of a node: l = n mod C (paper §III-D).
  constexpr int layer_offset(int node) const noexcept { return node % cores; }

  constexpr bool operator==(const topology&) const = default;
};

}  // namespace ygm::routing
