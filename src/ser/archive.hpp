// Binary output/input archives — the core of the serialization substrate.
//
// The paper uses the cereal library for variable-length messages (§IV-C);
// this is a from-scratch replacement with the same programming model:
//
//   struct my_msg {
//     std::uint64_t   vertex;
//     std::vector<int> path;
//     template <class Archive> void serialize(Archive& ar) {
//       ar & vertex & path;
//     }
//   };
//
// Types are serializable when they are (a) arithmetic or enum, (b) have a
// `template <class A> void serialize(A&)` member, (c) have a free
// `serialize(Archive&, T&)` found by ADL or in ygm::ser (the STL adapters in
// stl.hpp live there), or (d) are trivially copyable (raw-byte fallback).
// Deserialization requires default-constructible element types.
//
// Encoding is little-endian host layout for scalars (this library targets a
// homogeneous cluster, as does MPI's byte-transparent mode), LEB128 varints
// for sizes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "common/assert.hpp"
#include "ser/varint.hpp"

namespace ygm::ser {

class oarchive;
class iarchive;

namespace detail {

template <class T, class Archive>
concept has_member_serialize = requires(T& t, Archive& ar) {
  { t.serialize(ar) };
};

template <class T, class Archive>
concept has_free_serialize = requires(T& t, Archive& ar) {
  // Unqualified call resolved below inside ygm::ser, so this sees both ADL
  // overloads and the STL adapters.
  { serialize(ar, t) };
};

}  // namespace detail

/// Serializing archive: appends a portable binary encoding to a byte vector.
class oarchive {
 public:
  explicit oarchive(std::vector<std::byte>& out) : out_(out) {}

  oarchive(const oarchive&) = delete;
  oarchive& operator=(const oarchive&) = delete;

  /// Serialize v. Chainable: `ar & a & b & c`.
  template <class T>
  oarchive& operator&(const T& v) {
    dispatch(v);
    return *this;
  }

  /// Alias for operator& so cereal-style `ar << a << b` also reads well.
  template <class T>
  oarchive& operator<<(const T& v) {
    return *this & v;
  }

  /// Raw byte append (used by adapters for contiguous trivially-copyable
  /// ranges; avoids per-element dispatch).
  void write_raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    out_.insert(out_.end(), p, p + n);
  }

  void write_size(std::uint64_t n) { varint_encode(n, out_); }

  std::size_t bytes_written() const noexcept { return out_.size(); }

 private:
  template <class T>
  void dispatch(const T& v) {
    if constexpr (std::is_arithmetic_v<T>) {
      write_raw(&v, sizeof(T));
    } else if constexpr (std::is_enum_v<T>) {
      const auto u = static_cast<std::underlying_type_t<T>>(v);
      write_raw(&u, sizeof(u));
    } else if constexpr (detail::has_member_serialize<const T, oarchive>) {
      const_cast<T&>(v).serialize(*this);
    } else if constexpr (detail::has_member_serialize<T, oarchive>) {
      // serialize() members are conventionally non-const (shared between
      // save and load); output archiving does not mutate.
      const_cast<T&>(v).serialize(*this);
    } else if constexpr (detail::has_free_serialize<T, oarchive>) {
      serialize(*this, const_cast<T&>(v));
    } else if constexpr (std::is_trivially_copyable_v<T>) {
      write_raw(&v, sizeof(T));
    } else {
      static_assert(std::is_trivially_copyable_v<T>,
                    "type is not serializable: add a serialize() member or a "
                    "free serialize(Archive&, T&)");
    }
  }

  std::vector<std::byte>& out_;
};

/// Deserializing archive: consumes bytes from a span. Throws ygm::error on
/// truncated input.
class iarchive {
 public:
  explicit iarchive(std::span<const std::byte> in)
      : p_(in.data()), end_(in.data() + in.size()) {}

  iarchive(const std::byte* begin, const std::byte* end)
      : p_(begin), end_(end) {}

  iarchive(const iarchive&) = delete;
  iarchive& operator=(const iarchive&) = delete;

  template <class T>
  iarchive& operator&(T& v) {
    dispatch(v);
    return *this;
  }

  template <class T>
  iarchive& operator>>(T& v) {
    return *this & v;
  }

  void read_raw(void* data, std::size_t n) {
    YGM_CHECK(remaining() >= n, "truncated archive");
    std::memcpy(data, p_, n);
    p_ += n;
  }

  std::uint64_t read_size() { return varint_decode(p_, end_); }

  std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - p_);
  }

  bool exhausted() const noexcept { return p_ == end_; }

  const std::byte* cursor() const noexcept { return p_; }

 private:
  template <class T>
  void dispatch(T& v) {
    if constexpr (std::is_arithmetic_v<T>) {
      read_raw(&v, sizeof(T));
    } else if constexpr (std::is_enum_v<T>) {
      std::underlying_type_t<T> u;
      read_raw(&u, sizeof(u));
      v = static_cast<T>(u);
    } else if constexpr (detail::has_member_serialize<T, iarchive>) {
      v.serialize(*this);
    } else if constexpr (detail::has_free_serialize<T, iarchive>) {
      serialize(*this, v);
    } else if constexpr (std::is_trivially_copyable_v<T>) {
      read_raw(&v, sizeof(T));
    } else {
      static_assert(std::is_trivially_copyable_v<T>,
                    "type is not serializable: add a serialize() member or a "
                    "free serialize(Archive&, T&)");
    }
  }

  const std::byte* p_;
  const std::byte* end_;
};

}  // namespace ygm::ser
