// Umbrella header for the serialization substrate plus one-shot helpers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ser/archive.hpp"
#include "ser/stl.hpp"
#include "ser/varint.hpp"

namespace ygm::ser {

/// Serialize a single value into a fresh byte vector.
template <class T>
std::vector<std::byte> to_bytes(const T& v) {
  std::vector<std::byte> out;
  oarchive ar(out);
  ar & v;
  return out;
}

/// Append the serialization of v to an existing byte vector; returns the
/// number of bytes appended.
template <class T>
std::size_t append_bytes(const T& v, std::vector<std::byte>& out) {
  const std::size_t before = out.size();
  oarchive ar(out);
  ar & v;
  return out.size() - before;
}

/// Deserialize a single value that occupies the whole span.
template <class T>
T from_bytes(std::span<const std::byte> in) {
  T v{};
  iarchive ar(in);
  ar & v;
  YGM_CHECK(ar.exhausted(), "trailing bytes after deserialization");
  return v;
}

/// Deserialize a value from the front of a span, advancing the span past it.
template <class T>
T take_bytes(std::span<const std::byte>& in) {
  T v{};
  iarchive ar(in);
  ar & v;
  in = in.subspan(in.size() - ar.remaining());
  return v;
}

}  // namespace ygm::ser
