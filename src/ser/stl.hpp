// Serialization adapters for the C++ standard library containers.
//
// The paper relies on cereal's STL support so users "need not implement
// their own serialization functions in most cases" (§IV-C); these overloads
// provide the same coverage. They live in ygm::ser and are found through
// ADL on the archive argument.
//
// Contiguous containers of trivially copyable elements are encoded as a
// varint length followed by one raw memcpy — the fast path the mailbox
// depends on for bulk payloads.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <variant>
#include <vector>

#include "ser/archive.hpp"

namespace ygm::ser {

// ---------------------------------------------------------------- strings

inline void serialize(oarchive& ar, const std::string& s) {
  ar.write_size(s.size());
  ar.write_raw(s.data(), s.size());
}

inline void serialize(iarchive& ar, std::string& s) {
  const auto n = ar.read_size();
  YGM_CHECK(n <= ar.remaining(), "string length exceeds archive");
  s.resize(static_cast<std::size_t>(n));
  ar.read_raw(s.data(), s.size());
}

// ----------------------------------------------------------------- vector

template <class T, class Alloc>
void serialize(oarchive& ar, const std::vector<T, Alloc>& v) {
  ar.write_size(v.size());
  if constexpr (std::is_trivially_copyable_v<T>) {
    ar.write_raw(v.data(), v.size() * sizeof(T));
  } else {
    for (const auto& e : v) ar & e;
  }
}

template <class T, class Alloc>
void serialize(iarchive& ar, std::vector<T, Alloc>& v) {
  const auto n = ar.read_size();
  if constexpr (std::is_trivially_copyable_v<T>) {
    YGM_CHECK(n * sizeof(T) <= ar.remaining(),
              "vector length exceeds archive");
    v.resize(static_cast<std::size_t>(n));
    ar.read_raw(v.data(), v.size() * sizeof(T));
  } else {
    // Every element encodes at least one byte, so a hostile length that
    // exceeds the remaining input is rejected before any allocation.
    YGM_CHECK(n <= ar.remaining(), "vector length exceeds archive");
    v.clear();
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      T e{};
      ar & e;
      v.push_back(std::move(e));
    }
  }
}

// vector<bool> has no contiguous data(); pack one byte per bit group.
template <class Alloc>
void serialize(oarchive& ar, const std::vector<bool, Alloc>& v) {
  ar.write_size(v.size());
  std::uint8_t acc = 0;
  int nbits = 0;
  for (bool b : v) {
    acc = static_cast<std::uint8_t>(acc | (static_cast<std::uint8_t>(b) << nbits));
    if (++nbits == 8) {
      ar.write_raw(&acc, 1);
      acc = 0;
      nbits = 0;
    }
  }
  if (nbits != 0) ar.write_raw(&acc, 1);
}

template <class Alloc>
void serialize(iarchive& ar, std::vector<bool, Alloc>& v) {
  const auto n = ar.read_size();
  YGM_CHECK((n + 7) / 8 <= ar.remaining(), "bit-vector length exceeds archive");
  v.resize(static_cast<std::size_t>(n));
  std::uint8_t acc = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (i % 8 == 0) ar.read_raw(&acc, 1);
    v[static_cast<std::size_t>(i)] = (acc >> (i % 8)) & 1u;
  }
}

// ----------------------------------------------------- other sequences

template <class T, class Alloc>
void serialize(oarchive& ar, const std::deque<T, Alloc>& d) {
  ar.write_size(d.size());
  for (const auto& e : d) ar & e;
}

template <class T, class Alloc>
void serialize(iarchive& ar, std::deque<T, Alloc>& d) {
  const auto n = ar.read_size();
  YGM_CHECK(n <= ar.remaining(), "deque length exceeds archive");
  d.clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    T e{};
    ar & e;
    d.push_back(std::move(e));
  }
}

template <class T, class Alloc>
void serialize(oarchive& ar, const std::list<T, Alloc>& l) {
  ar.write_size(l.size());
  for (const auto& e : l) ar & e;
}

template <class T, class Alloc>
void serialize(iarchive& ar, std::list<T, Alloc>& l) {
  const auto n = ar.read_size();
  YGM_CHECK(n <= ar.remaining(), "list length exceeds archive");
  l.clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    T e{};
    ar & e;
    l.push_back(std::move(e));
  }
}

// std::array of trivially copyable T hits the archives' raw fallback; this
// adapter covers arrays of class types.
template <class T, std::size_t N>
  requires(!std::is_trivially_copyable_v<std::array<T, N>>)
void serialize(oarchive& ar, const std::array<T, N>& a) {
  for (const auto& e : a) ar & e;
}

template <class T, std::size_t N>
  requires(!std::is_trivially_copyable_v<std::array<T, N>>)
void serialize(iarchive& ar, std::array<T, N>& a) {
  for (auto& e : a) ar & e;
}

// ------------------------------------------------------------ pair/tuple

template <class A, class B>
  requires(!std::is_trivially_copyable_v<std::pair<A, B>>)
void serialize(oarchive& ar, const std::pair<A, B>& p) {
  ar & p.first & p.second;
}

template <class A, class B>
  requires(!std::is_trivially_copyable_v<std::pair<A, B>>)
void serialize(iarchive& ar, std::pair<A, B>& p) {
  ar & p.first & p.second;
}

template <class... Ts>
  requires(!std::is_trivially_copyable_v<std::tuple<Ts...>>)
void serialize(oarchive& ar, const std::tuple<Ts...>& t) {
  std::apply([&](const auto&... e) { (void)((ar & e), ...); }, t);
}

template <class... Ts>
  requires(!std::is_trivially_copyable_v<std::tuple<Ts...>>)
void serialize(iarchive& ar, std::tuple<Ts...>& t) {
  std::apply([&](auto&... e) { (void)((ar & e), ...); }, t);
}

// ----------------------------------------------------- associative maps

namespace detail {

template <class Map, class Archive>
void save_map(Archive& ar, const Map& m) {
  ar.write_size(m.size());
  for (const auto& [k, v] : m) {
    ar & k & v;
  }
}

template <class Map, class Archive>
void load_map(Archive& ar, Map& m) {
  const auto n = ar.read_size();
  YGM_CHECK(n <= ar.remaining(), "map length exceeds archive");
  m.clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    typename Map::key_type k{};
    typename Map::mapped_type v{};
    ar & k & v;
    m.emplace(std::move(k), std::move(v));
  }
}

template <class Set, class Archive>
void save_set(Archive& ar, const Set& s) {
  ar.write_size(s.size());
  for (const auto& e : s) ar & e;
}

template <class Set, class Archive>
void load_set(Archive& ar, Set& s) {
  const auto n = ar.read_size();
  YGM_CHECK(n <= ar.remaining(), "set length exceeds archive");
  s.clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    typename Set::key_type e{};
    ar & e;
    s.insert(std::move(e));
  }
}

}  // namespace detail

template <class K, class V, class C, class A>
void serialize(oarchive& ar, const std::map<K, V, C, A>& m) {
  detail::save_map(ar, m);
}
template <class K, class V, class C, class A>
void serialize(iarchive& ar, std::map<K, V, C, A>& m) {
  detail::load_map(ar, m);
}

template <class K, class V, class H, class E, class A>
void serialize(oarchive& ar, const std::unordered_map<K, V, H, E, A>& m) {
  detail::save_map(ar, m);
}
template <class K, class V, class H, class E, class A>
void serialize(iarchive& ar, std::unordered_map<K, V, H, E, A>& m) {
  detail::load_map(ar, m);
}

template <class K, class C, class A>
void serialize(oarchive& ar, const std::set<K, C, A>& s) {
  detail::save_set(ar, s);
}
template <class K, class C, class A>
void serialize(iarchive& ar, std::set<K, C, A>& s) {
  detail::load_set(ar, s);
}

template <class K, class H, class E, class A>
void serialize(oarchive& ar, const std::unordered_set<K, H, E, A>& s) {
  detail::save_set(ar, s);
}
template <class K, class H, class E, class A>
void serialize(iarchive& ar, std::unordered_set<K, H, E, A>& s) {
  detail::load_set(ar, s);
}

// ------------------------------------------------------ optional/variant

template <class T>
void serialize(oarchive& ar, const std::optional<T>& o) {
  const std::uint8_t has = o.has_value() ? 1 : 0;
  ar & has;
  if (has) ar & *o;
}

template <class T>
void serialize(iarchive& ar, std::optional<T>& o) {
  std::uint8_t has = 0;
  ar & has;
  if (has) {
    T v{};
    ar & v;
    o = std::move(v);
  } else {
    o.reset();
  }
}

template <class... Ts>
void serialize(oarchive& ar, const std::variant<Ts...>& v) {
  ar.write_size(v.index());
  std::visit([&](const auto& e) { ar & e; }, v);
}

namespace detail {

template <class Variant, std::size_t I = 0>
void load_variant(iarchive& ar, Variant& v, std::size_t index) {
  if constexpr (I < std::variant_size_v<Variant>) {
    if (index == I) {
      std::variant_alternative_t<I, Variant> e{};
      ar & e;
      v = std::move(e);
    } else {
      load_variant<Variant, I + 1>(ar, v, index);
    }
  } else {
    YGM_CHECK(false, "variant index out of range in archive");
  }
}

}  // namespace detail

template <class... Ts>
void serialize(iarchive& ar, std::variant<Ts...>& v) {
  const auto index = ar.read_size();
  detail::load_variant(ar, v, static_cast<std::size_t>(index));
}

inline void serialize(oarchive&, const std::monostate&) {}
inline void serialize(iarchive&, std::monostate&) {}

}  // namespace ygm::ser
