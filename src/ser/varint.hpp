// LEB128 variable-length integer encoding.
//
// Used for container sizes and packet headers: the mailbox coalesces many
// small messages into packets, so per-message header bytes directly eat the
// bandwidth that coalescing is trying to save (paper §IV-A). Varints keep
// headers at 1 byte in the common case.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace ygm::ser {

/// Append an unsigned LEB128 encoding of v to out. Returns bytes written.
inline std::size_t varint_encode(std::uint64_t v, std::vector<std::byte>& out) {
  std::size_t n = 0;
  do {
    std::uint8_t b = static_cast<std::uint8_t>(v & 0x7fu);
    v >>= 7;
    if (v != 0) b |= 0x80u;
    out.push_back(static_cast<std::byte>(b));
    ++n;
  } while (v != 0);
  return n;
}

/// Decode an unsigned LEB128 value from [p, end). Advances p past the
/// encoding. Throws ygm::error on truncated or oversized input.
inline std::uint64_t varint_decode(const std::byte*& p, const std::byte* end) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    YGM_CHECK(p != end, "truncated varint");
    const auto b = static_cast<std::uint8_t>(*p++);
    YGM_CHECK(shift < 63 || (shift == 63 && (b & 0x7eu) == 0),
              "varint exceeds 64 bits");
    v |= static_cast<std::uint64_t>(b & 0x7fu) << shift;
    if ((b & 0x80u) == 0) return v;
    shift += 7;
  }
}

/// Write the minimal LEB128 encoding of v at p (no bounds check — the
/// caller must have reserved varint_size(v) bytes). Returns bytes written.
/// Used to patch a length slot in place after its payload has been
/// serialized (core/packet.hpp's in-place record encoder).
inline std::size_t varint_encode_at(std::uint64_t v, std::byte* p) noexcept {
  std::size_t n = 0;
  do {
    std::uint8_t b = static_cast<std::uint8_t>(v & 0x7fu);
    v >>= 7;
    if (v != 0) b |= 0x80u;
    p[n++] = static_cast<std::byte>(b);
  } while (v != 0);
  return n;
}

/// Number of bytes varint_encode would emit for v.
constexpr std::size_t varint_size(std::uint64_t v) noexcept {
  std::size_t n = 1;
  while (v >>= 7) ++n;
  return n;
}

/// ZigZag transform so small-magnitude signed values encode small.
constexpr std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace ygm::ser
