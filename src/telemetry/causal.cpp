#include "telemetry/causal.hpp"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>

#include "common/assert.hpp"
#include "telemetry/journey.hpp"
#include "telemetry/json_util.hpp"

namespace ygm::telemetry::causal {

// ------------------------------------------------- wire context encoding

void encode_wire(const wire_ctx& c, std::vector<std::byte>& out) {
  const std::size_t base = out.size();
  out.resize(base + wire_ctx_bytes);
  std::byte* p = out.data() + base;
  std::memcpy(p + 0, &c.id, 8);
  std::memcpy(p + 8, &c.origin, 2);
  std::memcpy(p + 10, &c.hop, 2);
  std::memcpy(p + 12, &c.seq, 4);
  std::memcpy(p + 16, &c.origin_us, 8);
}

wire_ctx decode_wire(std::span<const std::byte> in) {
  YGM_CHECK(in.size() == wire_ctx_bytes, "malformed trace annotation record");
  wire_ctx c;
  std::memcpy(&c.id, in.data() + 0, 8);
  std::memcpy(&c.origin, in.data() + 8, 2);
  std::memcpy(&c.hop, in.data() + 10, 2);
  std::memcpy(&c.seq, in.data() + 12, 4);
  std::memcpy(&c.origin_us, in.data() + 16, 8);
  return c;
}

// ----------------------------------------------------------------- sampling

namespace {

std::atomic<std::uint64_t> g_threshold{0};
std::atomic<double> g_rate{0.0};

/// Map a rate in [0, 1] to the hash threshold (sampled iff hash < t, with
/// ~0 meaning "all"). 32-bit resolution is plenty for a sampling knob.
std::uint64_t threshold_for(double rate) {
  if (!(rate > 0.0)) return 0;
  if (rate >= 1.0) return ~std::uint64_t{0};
  auto t = static_cast<std::uint64_t>(rate * 4294967296.0) << 32;
  if (t == 0) t = 1;  // a positive rate must be able to sample something
  return t;
}

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return end == v ? fallback : parsed;
}

// Watchdog configuration (process-global; see header).
std::atomic<double> g_stall_timeout_ms{0.0};
std::mutex g_postmortem_path_mtx;
std::string g_postmortem_path = "ygm_postmortem.json";  // NOLINT
// Two separate process-global flags: `fired` is the sticky "a postmortem
// was written since the last reset" answer tests and drivers query; `held`
// is the dedup latch one watchdog holds while its stall episode is live,
// released on progress resumption (re-arm) or destruction so a later stall
// can dump again without making postmortem_fired() flicker.
std::atomic<bool> g_postmortem_fired{false};
std::atomic<bool> g_postmortem_held{false};

/// Environment knobs are read once at static initialization (before main,
/// so set_* calls made by drivers always win over the environment).
struct env_init {
  env_init() {
    const double rate = env_double("YGM_TRACE_SAMPLE", 0.0);
    g_rate.store(rate < 0 ? 0.0 : (rate > 1 ? 1.0 : rate));
    g_threshold.store(threshold_for(g_rate.load()));
    g_stall_timeout_ms.store(env_double("YGM_STALL_TIMEOUT_MS", 0.0));
    if (const char* p = std::getenv("YGM_POSTMORTEM_OUT");
        p != nullptr && *p != '\0') {
      g_postmortem_path = p;
    }
  }
} g_env_init;

}  // namespace

double sample_rate() { return g_rate.load(std::memory_order_relaxed); }

void set_sample_rate(double rate) {
  if (rate < 0) rate = 0;
  if (rate > 1) rate = 1;
  g_rate.store(rate, std::memory_order_relaxed);
  g_threshold.store(threshold_for(rate), std::memory_order_relaxed);
}

namespace detail {

std::uint64_t sample_threshold() noexcept {
  return g_threshold.load(std::memory_order_relaxed);
}

std::uint64_t journey_hash(int origin, std::uint32_t seq,
                           std::uint32_t salt) noexcept {
  const std::uint64_t seeded =
      splitmix64(static_cast<std::uint64_t>(static_cast<unsigned>(origin)) ^
                 (static_cast<std::uint64_t>(salt) << 32));
  std::uint64_t h = splitmix64(seeded ^ seq);
  // Reserve the all-ones value so "threshold == ~0 means sample everything"
  // holds exactly (try_begin tests hash <= threshold - 1).
  if (h == ~std::uint64_t{0}) --h;
  return h;
}

}  // namespace detail

// --------------------------------------------------------------- hop events

std::string_view hop_event_name(hop_kind k) noexcept {
  switch (k) {
    case hop_kind::enqueue:
      return "trace.enqueue";
    case hop_kind::flush:
      return "trace.flush";
    case hop_kind::handoff:
      return "trace.handoff";
    case hop_kind::forward:
      return "trace.forward";
    case hop_kind::deliver:
      return "trace.deliver";
    case hop_kind::credit_stall:
      return "credit.stall";
  }
  return "trace.?";
}

bool parse_hop_event_name(std::string_view name, hop_kind& out) noexcept {
  for (const auto k : {hop_kind::enqueue, hop_kind::flush, hop_kind::handoff,
                       hop_kind::forward, hop_kind::deliver,
                       hop_kind::credit_stall}) {
    if (name == hop_event_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

#if !defined(YGM_TELEMETRY_DISABLED)
void record_hop(const wire_ctx& c, hop_kind k, double start_us,
                std::uint64_t bytes) noexcept {
  recorder* r = tls();
  if (r == nullptr) return;
  trace_event e;
  const double now = r->now_us();
  if (start_us >= 0) {
    e.kind = event_kind::complete;
    e.ts_us = start_us;
    e.dur_us = now >= start_us ? now - start_us : 0;
  } else {
    e.kind = event_kind::instant;
    e.ts_us = now;
  }
  e.name = r->intern(hop_event_name(k));
  e.arg0_name = r->intern("id");
  e.arg0 = c.id;
  e.arg1_name = r->intern("hb");
  e.arg1 = pack_hop_bytes(c.hop, bytes);
  r->push(e);
}

void record_credit_stall(int dest, double start_us,
                         std::uint64_t bytes) noexcept {
  recorder* r = tls();
  if (r == nullptr) return;
  trace_event e;
  const double now = r->now_us();
  e.kind = event_kind::complete;
  e.ts_us = start_us >= 0 ? start_us : now;
  e.dur_us = now >= e.ts_us ? now - e.ts_us : 0;
  e.name = r->intern(hop_event_name(hop_kind::credit_stall));
  e.arg0_name = r->intern("id");
  e.arg0 = static_cast<std::uint64_t>(static_cast<unsigned>(dest));
  e.arg1_name = r->intern("hb");
  e.arg1 = pack_hop_bytes(0, bytes);
  r->push(e);
}
#endif

// ----------------------------------------------------------- stall watchdog

double stall_timeout_ms() {
  return g_stall_timeout_ms.load(std::memory_order_relaxed);
}

void set_stall_timeout_ms(double ms) {
  g_stall_timeout_ms.store(ms < 0 ? 0 : ms, std::memory_order_relaxed);
}

std::string postmortem_path() {
  std::lock_guard lock(g_postmortem_path_mtx);
  return g_postmortem_path;
}

void set_postmortem_path(std::string path) {
  std::lock_guard lock(g_postmortem_path_mtx);
  g_postmortem_path = std::move(path);
}

void reset_postmortem_latch() noexcept {
  g_postmortem_fired.store(false);
  g_postmortem_held.store(false);
}

bool postmortem_fired() noexcept { return g_postmortem_fired.load(); }

stall_watchdog::stall_watchdog() noexcept : timeout_ms_(stall_timeout_ms()) {}

stall_watchdog::~stall_watchdog() {
  // The wait completed (successful drain). If this watchdog consumed the
  // process dedup latch, release it so a second stall later in a long run
  // gets its own postmortem instead of passing silently. The sticky
  // postmortem_fired() answer is deliberately left set.
  if (dumped_) g_postmortem_held.store(false);
}

void stall_watchdog::poll_slow(const stall_report& r) noexcept {
  // Any hop or detector round counts as quiescence progress; the signature
  // is a sum of monotonic counters, so progress always changes it.
  const std::uint64_t sig = r.hops_sent + r.hops_received + r.term_rounds;
  const auto now = std::chrono::steady_clock::now();
  if (sig != last_sig_) {
    last_sig_ = sig;
    last_change_ = now;
    if (fired_) {
      // Progress resumed after a report: re-arm for the next stall episode
      // within this same wait, handing back the dedup latch if we hold it
      // (postmortem_fired() stays set — a dump did happen).
      fired_ = false;
      if (dumped_) {
        dumped_ = false;
        g_postmortem_held.store(false);
      }
    }
    return;
  }
  if (fired_) return;  // this episode already reported
  const double stalled_ms =
      std::chrono::duration<double, std::milli>(now - last_change_).count();
  if (stalled_ms < timeout_ms_) return;
  fired_ = true;
  if (g_postmortem_held.exchange(true)) return;  // another rank dumped first
  dumped_ = true;
  g_postmortem_fired.store(true);
  dump_postmortem(r, stalled_ms, postmortem_path());
}

namespace {

void write_postmortem_json(std::ostream& os, const stall_report& r,
                           double stalled_ms, int world, int rank,
                           const journey_map& journeys) {
  os << "{\n  \"stalled\": {\"world\": " << world << ", \"rank\": " << rank
     << ", \"stalled_ms\": " << json_number(stalled_ms)
     << ", \"queued_bytes\": " << r.queued_bytes
     << ", \"hops_sent\": " << r.hops_sent
     << ", \"hops_received\": " << r.hops_received
     << ", \"term_rounds\": " << r.term_rounds << "},\n";
  os << "  \"credit\": {\"budget_bytes\": " << r.credit_budget
     << ", \"in_flight_bytes\": " << r.credit_in_flight
     << ", \"stalls\": " << r.credit_stalls << "},\n";
  os << "  \"sample_rate\": " << json_number(sample_rate()) << ",\n";

  // Per-lane ring tails: the most recent window of each rank's timeline,
  // names resolved (the ring itself stores interned ids).
  os << "  \"lanes\": [";
  bool first_lane = true;
  if (session* s = global()) {
    s->visit_lanes([&](const recorder& rec) {
      os << (first_lane ? "" : ",") << "\n    {\"world\": " << rec.world()
         << ", \"rank\": " << rec.rank()
         << ", \"recorded\": " << rec.ring().recorded()
         << ", \"dropped\": " << rec.ring().dropped() << ", \"tail\": [";
      first_lane = false;
      std::vector<trace_event> tail;
      rec.ring().for_each([&](const trace_event& e) { tail.push_back(e); });
      constexpr std::size_t kTail = 64;
      const std::size_t start = tail.size() > kTail ? tail.size() - kTail : 0;
      const auto& names = rec.names();
      const auto name_of = [&](name_id id) -> std::string {
        return id < names.size() ? json_escape(names[id]) : std::string("?");
      };
      for (std::size_t i = start; i < tail.size(); ++i) {
        const trace_event& e = tail[i];
        os << (i == start ? "" : ",") << "\n      {\"name\": \""
           << name_of(e.name) << "\", \"ph\": \""
           << (e.kind == event_kind::complete ? 'X' : 'i')
           << "\", \"ts_us\": " << json_number(e.ts_us);
        if (e.kind == event_kind::complete) {
          os << ", \"dur_us\": " << json_number(e.dur_us);
        }
        if (e.arg0_name != no_name) {
          os << ", \"" << name_of(e.arg0_name) << "\": " << e.arg0;
        }
        if (e.arg1_name != no_name) {
          os << ", \"" << name_of(e.arg1_name) << "\": " << e.arg1;
        }
        os << '}';
      }
      os << "\n    ]}";
    });
  }
  os << "\n  ],\n";

  // Sampled journeys: completed count plus every in-flight journey with its
  // last-seen hop — the "where did it get stuck?" line of the postmortem.
  std::size_t complete = 0;
  os << "  \"journeys\": {\"in_flight\": [";
  bool first_j = true;
  constexpr std::size_t kMaxInFlight = 256;
  std::size_t listed = 0, in_flight = 0;
  for (const auto& [key, j] : journeys) {
    if (j.complete()) {
      ++complete;
      continue;
    }
    ++in_flight;
    if (listed >= kMaxInFlight) continue;
    ++listed;
    const hop_record& last = j.last_hop();
    os << (first_j ? "" : ",") << "\n    {\"world\": " << key.first
       << ", \"id\": " << key.second << ", \"origin\": " << j.origin()
       << ", \"hops_seen\": " << j.hops.size() << ", \"last\": {\"kind\": \""
       << json_escape(hop_event_name(last.kind)) << "\", \"rank\": "
       << last.rank << ", \"hop\": " << last.hop
       << ", \"ts_us\": " << json_number(last.ts_us) << "}}";
    first_j = false;
  }
  os << "\n  ], \"in_flight_total\": " << in_flight
     << ", \"complete\": " << complete << "}\n}\n";
}

}  // namespace

bool dump_postmortem(const stall_report& r, double stalled_ms,
                     const std::string& path) {
  recorder* self = tls();
  const int world = self != nullptr ? self->world() : -1;
  const int rank = self != nullptr ? self->rank() : -1;

  // NOTE: this is a crash-dump path — other rank threads may still be
  // appending to their rings while we read them. A torn event yields a
  // garbled tail entry, never a crash (rings are fixed arrays of PODs), and
  // a wedged run's peers are by definition mostly idle.
  journey_map journeys;
  if (session* s = global()) journeys = stitch(extract_hops(*s));

  std::size_t in_flight = 0;
  for (const auto& [key, j] : journeys) {
    if (!j.complete()) ++in_flight;
  }

  std::fprintf(
      stderr,
      "ygm: STALL suspected on world=%d rank=%d — no quiescence progress for "
      "%.0f ms (queued_bytes=%" PRIu64 " hops_sent=%" PRIu64
      " hops_received=%" PRIu64 " term_rounds=%" PRIu64
      ", %zu sampled journey(s) in flight); writing postmortem to %s\n",
      world, rank, stalled_ms, r.queued_bytes, r.hops_sent, r.hops_received,
      r.term_rounds, in_flight, path.c_str());
  std::size_t shown = 0;
  for (const auto& [key, j] : journeys) {
    if (j.complete() || shown >= 8) continue;
    const hop_record& last = j.last_hop();
    std::fprintf(stderr,
                 "ygm:   in-flight journey id=%" PRIu64
                 " origin=%d last seen: %s on rank %d (leg %u)\n",
                 key.second, j.origin(),
                 std::string(hop_event_name(last.kind)).c_str(), last.rank,
                 last.hop);
    ++shown;
  }

  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "ygm: could not write postmortem file %s\n",
                 path.c_str());
    return false;
  }
  write_postmortem_json(os, r, stalled_ms, world, rank, journeys);
  return static_cast<bool>(os);
}

}  // namespace ygm::telemetry::causal
