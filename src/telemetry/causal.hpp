// Causal message tracing: sampled cross-rank journeys.
//
// The mailbox layers answer "how much traffic?" through counters and "where
// did this RANK's time go?" through spans, but neither can answer "why did
// THIS message take three rounds to arrive?". This layer closes that gap
// with distributed-tracing-style causality: a deterministic sample of
// point-to-point messages carries a compact 24-byte trace context on the
// packet wire format (core/packet.hpp's trace-annotation escape record),
// and every stage of a sampled message's life — enqueue into a coalescing
// buffer, the coalesced flush that put it on the wire, the zero-copy hybrid
// handoff, each intermediary forward at a NL/NR/NLNR relay, and the final
// delivery callback — appends a hop event to the recording rank's existing
// telemetry event ring. An offline pass (telemetry/journey.hpp, the
// tools/ygm_trace CLI) stitches hop events back into complete journeys and
// decomposes per-message latency by hop kind and routing stage.
//
// Costs, by construction:
//   * sampling off (rate 0, the default) — one predicted branch per send
//     and per received record; zero wire bytes; nothing recorded;
//   * sampling on, message not sampled — same as off (the decision is a
//     stateless hash of (origin, seq), no RNG state, no allocation);
//   * message sampled — one escape record (~30 wire bytes) per hop leg and
//     one 64-byte ring event per hop.
// Under -DYGM_TELEMETRY=OFF every hot-path helper here compiles to nothing,
// like the rest of the telemetry hooks.
//
// Journey shape (point-to-point; broadcasts are never sampled, so a journey
// is a chain, not a tree):
//
//   origin:  enqueue(hop=0)  flush(hop=0, dur=buffer residency)
//   relay:   forward(hop=k)  enqueue(hop=k)  flush(hop=k, dur=residency)
//   hybrid local leg: handoff(hop=k, dur=inbox residency) on the receiver
//   dest:    deliver(hop=L)  — exactly one per journey, L = leg count
//
// where hop counts completed network legs (incremented on receipt), so the
// deliver event's hop index equals router::path(origin, dest).size().
//
// Also here: the stall watchdog. wait_empty() polls one per iteration; if
// no quiescence progress (hops or detector rounds) happens for a
// configurable window, the first stalled rank dumps a flight-recorder
// postmortem — per-rank ring tails, in-flight sampled journeys with their
// last-seen hop, queue depth and detector state of the stalled rank — as
// JSON to a file and a summary to stderr, then the run keeps waiting (the
// watchdog observes, it does not abort).
#pragma once

#include <cstddef>
#include <cstdint>
#include <chrono>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace ygm::telemetry::causal {

// ------------------------------------------------------- wire trace context

/// The 24 bytes a sampled message carries across every hop.
struct wire_ctx {
  std::uint64_t id = 0;     ///< 48-bit journey id (exact in a JSON double)
  std::uint16_t origin = 0; ///< originating rank
  std::uint16_t hop = 0;    ///< network legs completed so far
  std::uint32_t seq = 0;    ///< origin-local send sequence number
  /// Session-clock timestamp of the origin send() (microseconds), stamped
  /// by try_begin. Rides the wire so the delivering rank can feed live
  /// end-to-end latency sketches (live.hpp) without journey stitching.
  /// Comparable across ranks: inproc lanes share one session clock, and
  /// socket children inherit the pre-fork session epoch (CLOCK_MONOTONIC
  /// is system-wide). 0 when the origin thread had no lane clock.
  double origin_us = 0;
};

inline constexpr std::size_t wire_ctx_bytes = 24;

/// Serialize/deserialize the fixed 24-byte wire layout (field-wise copies,
/// so the encode and decode sides agree independent of struct padding).
void encode_wire(const wire_ctx& c, std::vector<std::byte>& out);
wire_ctx decode_wire(std::span<const std::byte> in);

// ----------------------------------------------------------------- sampling

/// Current sample rate in [0, 1]. Initialized once from YGM_TRACE_SAMPLE
/// (e.g. YGM_TRACE_SAMPLE=0.01); set_sample_rate overrides at runtime.
double sample_rate();
void set_sample_rate(double rate);

namespace detail {
/// Sampling threshold: a message is sampled iff hash <= threshold - 1.
/// 0 means sampling is off. Declared here so the hot-path check inlines.
std::uint64_t sample_threshold() noexcept;
/// splitmix64-based decision hash of (origin, seq, salt).
std::uint64_t journey_hash(int origin, std::uint32_t seq,
                           std::uint32_t salt) noexcept;
}  // namespace detail

/// Hot-path sampling decision for one outgoing point-to-point message.
/// Returns true (and fills `out`) iff the (origin, seq) pair is sampled
/// under the current rate AND this thread records into a telemetry lane.
/// `salt` distinguishes journeys of different mailboxes on one world (pass
/// the mailbox's data tag); the decision stays deterministic per run.
inline bool try_begin(int origin, std::uint32_t seq, std::uint32_t salt,
                      wire_ctx& out) noexcept {
#if defined(YGM_TELEMETRY_DISABLED)
  (void)origin;
  (void)seq;
  (void)salt;
  (void)out;
  return false;
#else
  const std::uint64_t threshold = detail::sample_threshold();
  if (threshold == 0 || tls() == nullptr) return false;
  const std::uint64_t h = detail::journey_hash(origin, seq, salt);
  if (h > threshold - 1) return false;
  out.id = h >> 16;  // 48 bits: exactly representable in a JSON double
  out.origin = static_cast<std::uint16_t>(origin);
  out.hop = 0;
  out.seq = seq;
  out.origin_us = now_us();  // live e2e latency base (tls() checked above)
  return true;
#endif
}

// --------------------------------------------------------------- hop events

enum class hop_kind : std::uint8_t {
  enqueue,  ///< message entered a coalescing buffer (origin or relay)
  flush,    ///< the coalesced flush that shipped it; dur = buffer residency
  handoff,  ///< hybrid zero-copy local leg; dur = shared-inbox residency
  forward,  ///< relay re-queue decision at an intermediary
  deliver,  ///< final receive-callback invocation (exactly one per journey)
  credit_stall,  ///< send blocked on exhausted credit ("credit.stall");
                 ///< NOT part of any journey — stitching skips it
};

/// Ring-event name for a hop kind ("trace.enqueue", "trace.flush", ...).
std::string_view hop_event_name(hop_kind k) noexcept;
/// Inverse of hop_event_name; false if `name` is not a hop event.
bool parse_hop_event_name(std::string_view name, hop_kind& out) noexcept;

/// Hop events pack (hop index, payload-or-packet bytes) into one integer
/// arg so the 64-byte ring event holds the whole hop: low 8 bits hop index,
/// upper bits the byte count (clamped to 2^40-1 so the packed value stays
/// below 2^48 and survives a JSON double round trip).
inline constexpr std::uint64_t pack_hop_bytes(std::uint32_t hop,
                                              std::uint64_t bytes) noexcept {
  const std::uint64_t b =
      bytes < (std::uint64_t{1} << 40) ? bytes : (std::uint64_t{1} << 40) - 1;
  return (b << 8) | (hop & 0xffu);
}
inline constexpr std::uint32_t unpack_hop(std::uint64_t packed) noexcept {
  return static_cast<std::uint32_t>(packed & 0xffu);
}
inline constexpr std::uint64_t unpack_bytes(std::uint64_t packed) noexcept {
  return packed >> 8;
}

/// Record one hop of a sampled journey on this thread's lane. When
/// `start_us` >= 0 the hop is a complete event spanning [start_us, now]
/// (queue residency); when negative it is an instant at now. `bytes` is the
/// payload size (enqueue/forward/deliver) or the wire packet size the
/// record rode in (flush). No-op without a recorder.
#if defined(YGM_TELEMETRY_DISABLED)
inline void record_hop(const wire_ctx&, hop_kind, double,
                       std::uint64_t) noexcept {}
#else
void record_hop(const wire_ctx& c, hop_kind k, double start_us,
                std::uint64_t bytes) noexcept;
#endif

/// Record one credit-stall ("credit.stall") complete event spanning
/// [start_us, now] on this thread's lane: a send blocked until flow-control
/// credit returned. `dest` rides in the `id` arg and the unacked byte count
/// in `hb`, so ygm_trace can attribute queue residency to backpressure per
/// destination. Gated only on having a recorder, not on sampling — stalls
/// are rare and always worth keeping. No-op without a recorder.
#if defined(YGM_TELEMETRY_DISABLED)
inline void record_credit_stall(int, double, std::uint64_t) noexcept {}
#else
void record_credit_stall(int dest, double start_us,
                         std::uint64_t bytes) noexcept;
#endif

// ----------------------------------------------------------- stall watchdog

/// Stall window in milliseconds; 0 disables the watchdog (the default).
/// Initialized once from YGM_STALL_TIMEOUT_MS.
double stall_timeout_ms();
void set_stall_timeout_ms(double ms);

/// Postmortem JSON output path (default "ygm_postmortem.json"; initialized
/// from YGM_POSTMORTEM_OUT).
std::string postmortem_path();
void set_postmortem_path(std::string path);

/// The postmortem fires at most once per *stall episode* (the first stalled
/// rank wins; a wedged detector stalls every rank at once and one dump is
/// worth more than eight interleaved ones). The dedup latch re-arms when
/// the dumping watchdog sees progress resume or its wait completes (a
/// successful drain), so a second stall later in a long run is captured
/// too. postmortem_fired() is sticky — true once any dump happened since
/// the last reset — so callers can check it after the episode is over.
/// Tests reset the latch between runs.
void reset_postmortem_latch() noexcept;
bool postmortem_fired() noexcept;

/// Progress snapshot a waiting rank reports to its watchdog each poll.
/// The credit fields are zero for callers predating flow control (all
/// fields are defaulted, so old brace-initializers keep compiling).
struct stall_report {
  std::uint64_t hops_sent = 0;
  std::uint64_t hops_received = 0;
  std::uint64_t term_rounds = 0;
  std::uint64_t queued_bytes = 0;
  std::uint64_t credit_budget = 0;     ///< effective budget/dest (0 = off)
  std::uint64_t credit_in_flight = 0;  ///< max unacked bytes to any dest
  std::uint64_t credit_stalls = 0;     ///< sends blocked on credit so far
};

/// Per-wait_empty watchdog: arm on construction, poll() once per wait
/// iteration. If the progress signature (hops + detector rounds) does not
/// change for the configured window, dumps the flight-recorder postmortem;
/// when progress resumes it re-arms, so every distinct stall in the wait is
/// observed (the process latch still dedups concurrent ranks). Costs one
/// branch per poll when disabled.
class stall_watchdog {
 public:
  stall_watchdog() noexcept;
  ~stall_watchdog();

  stall_watchdog(const stall_watchdog&) = delete;
  stall_watchdog& operator=(const stall_watchdog&) = delete;

  void poll(const stall_report& r) noexcept {
#if !defined(YGM_TELEMETRY_DISABLED)
    if (timeout_ms_ <= 0) return;
    poll_slow(r);
#else
    (void)r;
#endif
  }

 private:
  void poll_slow(const stall_report& r) noexcept;

  double timeout_ms_ = 0;
  std::uint64_t last_sig_ = ~std::uint64_t{0};
  std::chrono::steady_clock::time_point last_change_{};
  bool fired_ = false;   ///< current stall episode already reported
  bool dumped_ = false;  ///< this object holds the process postmortem latch
};

/// Write the flight-recorder postmortem for a stall observed on the calling
/// thread's lane: stalled-rank state, per-lane ring tails, and in-flight
/// sampled journeys with their last-seen hop. Returns false if the JSON
/// file could not be written (the stderr summary is always attempted).
/// Exposed for tests and for drivers that detect wedges by other means.
bool dump_postmortem(const stall_report& r, double stalled_ms,
                     const std::string& path);

}  // namespace ygm::telemetry::causal
