// Exporters: Chrome trace_event JSON (chrome://tracing / Perfetto), flat
// metrics JSON, and an end-of-run text summary.
//
// Chrome trace layout: one process ("pid") per mpisim world launched under
// the session, one thread lane ("tid") per simulated rank, span/instant
// events on the lane that recorded them. Timestamps are microseconds since
// session start (the steady-clock epoch every lane shares). Events that
// carry a virtual-time stamp expose it as the "vt_us" arg.
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <string>

#include "telemetry/json_util.hpp"
#include "telemetry/telemetry.hpp"

namespace ygm::telemetry {

namespace {

const std::string& event_name(const std::vector<std::string>& names,
                              name_id id) {
  static const std::string unknown = "?";
  return id < names.size() ? names[id] : unknown;
}

void write_event_args(std::ostream& os, const trace_event& e,
                      const std::vector<std::string>& names) {
  bool any = false;
  const auto emit = [&](const std::string& k, const std::string& v) {
    os << (any ? "," : "") << '"' << k << "\":" << v;
    any = true;
  };
  os << ",\"args\":{";
  if (e.arg0_name != no_name) {
    emit(json_escape(event_name(names, e.arg0_name)),
         std::to_string(e.arg0));
  }
  if (e.arg1_name != no_name) {
    emit(json_escape(event_name(names, e.arg1_name)),
         std::to_string(e.arg1));
  }
  if (e.vtime_us >= 0) emit("vt_us", json_number(e.vtime_us));
  os << '}';
}

}  // namespace

void session::write_chrome_trace(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  // Metadata lanes first, so viewers label processes/threads even when a
  // lane recorded nothing.
  int last_world = -1;
  for_each_recorder([&](recorder& rec) {
    if (rec.world() != last_world) {
      last_world = rec.world();
      sep();
      os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << rec.world()
         << ",\"args\":{\"name\":\"world " << rec.world() << "\"}}";
    }
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << rec.world()
       << ",\"tid\":" << rec.rank() << ",\"args\":{\"name\":\"rank "
       << rec.rank() << "\"}}";
  });

  for_each_recorder([&](recorder& rec) {
    const auto& names = rec.names();
    rec.ring().for_each([&](const trace_event& e) {
      sep();
      os << "{\"name\":\"" << json_escape(event_name(names, e.name))
         << "\",\"cat\":\"ygm\",\"ph\":\""
         << (e.kind == event_kind::complete ? 'X' : 'i') << "\",\"pid\":"
         << rec.world() << ",\"tid\":" << rec.rank()
         << ",\"ts\":" << json_number(e.ts_us);
      if (e.kind == event_kind::complete) {
        os << ",\"dur\":" << json_number(e.dur_us);
      } else {
        os << ",\"s\":\"t\"";  // instant scope: thread
      }
      write_event_args(os, e, names);
      os << '}';
    });
  });

  os << "]}\n";
}

bool session::write_chrome_trace(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os);
  return static_cast<bool>(os);
}

namespace {

/// Emit one registry's counters/gauges/histograms sections (no outer
/// braces); `indent` is the member indentation of the enclosing object.
void write_registry_json(std::ostream& os, const metrics_registry& m,
                         const std::string& indent) {
  const std::string inner = indent + "  ";
  os << indent << "\"counters\": {";
  bool first = true;
  for (const auto& [k, v] : m.counters()) {
    os << (first ? "" : ",") << "\n" << inner << "\"" << json_escape(k)
       << "\": " << v;
    first = false;
  }
  os << "\n" << indent << "},\n" << indent << "\"gauges\": {";
  first = true;
  for (const auto& [k, v] : m.gauges()) {
    os << (first ? "" : ",") << "\n" << inner << "\"" << json_escape(k)
       << "\": " << json_number(v);
    first = false;
  }
  os << "\n" << indent << "},\n" << indent << "\"histograms\": {";
  first = true;
  for (const auto& [k, h] : m.histos()) {
    os << (first ? "" : ",") << "\n" << inner << "\"" << json_escape(k)
       << "\": {"
       << "\"count\": " << h.count() << ", \"sum\": " << json_number(h.sum())
       << ", \"min\": " << json_number(h.min())
       << ", \"mean\": " << json_number(h.mean())
       << ", \"p50\": " << json_number(h.percentile(0.50))
       << ", \"p90\": " << json_number(h.percentile(0.90))
       << ", \"p99\": " << json_number(h.percentile(0.99))
       << ", \"max\": " << json_number(h.max()) << '}';
    first = false;
  }
  os << "\n" << indent << "}";
}

}  // namespace

void session::write_metrics_json(std::ostream& os) const {
  const metrics_registry m = merged_metrics();
  os << "{\n";
  write_registry_json(os, m, "  ");
  // A session reused across several mpisim::run calls holds one lane group
  // per run; the top-level sections above merge ALL of them (a gauge keeps
  // the max across stale worlds). Emit each world separately too, so
  // consumers can attribute metrics to the run that produced them.
  const int nworlds = world_count();
  if (nworlds > 1) {
    os << ",\n  \"worlds\": [";
    for (int w = 0; w < nworlds; ++w) {
      os << (w == 0 ? "" : ",") << "\n    {\n      \"world\": " << w << ",\n";
      write_registry_json(os, merged_metrics(w), "      ");
      os << "\n    }";
    }
    os << "\n  ]";
  }
  os << "\n}\n";
}

bool session::write_metrics_json(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_metrics_json(os);
  return static_cast<bool>(os);
}

void session::print_summary(std::FILE* out) const {
  const metrics_registry m = merged_metrics();
  std::fprintf(out, "\n== telemetry summary (all worlds, all ranks) ==\n");
  if (m.empty()) {
    std::fprintf(out, "  (nothing recorded)\n");
    return;
  }
  if (!m.counters().empty()) {
    std::fprintf(out, "  %-34s %14s\n", "counter", "total");
    for (const auto& [k, v] : m.counters()) {
      std::fprintf(out, "  %-34s %14" PRIu64 "\n", k.c_str(), v);
    }
  }
  if (!m.gauges().empty()) {
    std::fprintf(out, "  %-34s %14s\n", "gauge", "max");
    for (const auto& [k, v] : m.gauges()) {
      std::fprintf(out, "  %-34s %14g\n", k.c_str(), v);
    }
  }
  if (!m.histos().empty()) {
    std::fprintf(out, "  %-34s %10s %10s %10s %10s %10s\n", "histogram",
                 "count", "mean", "p50", "p99", "max");
    for (const auto& [k, h] : m.histos()) {
      std::fprintf(out, "  %-34s %10" PRIu64 " %10.4g %10.4g %10.4g %10.4g\n",
                   k.c_str(), h.count(), h.mean(), h.percentile(0.5),
                   h.percentile(0.99), h.max());
    }
  }
}

}  // namespace ygm::telemetry
