// Journey stitching: turn per-rank causal hop events back into per-message
// journeys (header-only; shared by tests, the stall postmortem writer, and
// the tools/ygm_trace offline analyzer).
//
// A hop_record is the analyzer-side view of one "trace.*" ring event,
// whichever transport it arrived by (live session ring, or parsed back out
// of a Chrome trace JSON). stitch() groups hops by (world, journey id) and
// orders each group causally: by completed-leg index first, then by the
// within-leg stage order forward -> enqueue -> flush/handoff -> deliver
// (wall timestamps cannot order a leg's stages — a flush span's start time
// IS its enqueue time).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/causal.hpp"

namespace ygm::telemetry::causal {

/// One hop event, decoded.
struct hop_record {
  int world = 0;
  int rank = 0;
  std::uint64_t id = 0;
  hop_kind kind = hop_kind::enqueue;
  double ts_us = 0;
  double dur_us = 0;   ///< queue residency for flush/handoff, else 0
  std::uint32_t hop = 0;
  std::uint64_t bytes = 0;
};

/// Causal sort key within one journey: which leg, then which stage of it.
inline int hop_stage_order(hop_kind k) noexcept {
  switch (k) {
    case hop_kind::forward:
      return 0;  // relay decision precedes the re-enqueue it causes
    case hop_kind::enqueue:
      return 1;
    case hop_kind::flush:
    case hop_kind::handoff:
      return 2;
    case hop_kind::deliver:
      return 3;
    case hop_kind::credit_stall:
      return 4;  // never stitched into journeys (extract_hops skips it)
  }
  return 4;
}

/// One sampled message's reconstructed life, hops in causal order.
struct journey {
  std::vector<hop_record> hops;

  std::size_t delivers() const {
    return static_cast<std::size_t>(
        std::count_if(hops.begin(), hops.end(), [](const hop_record& h) {
          return h.kind == hop_kind::deliver;
        }));
  }
  /// Completed network legs = wire/handoff transfers the message rode.
  std::size_t legs() const {
    return static_cast<std::size_t>(
        std::count_if(hops.begin(), hops.end(), [](const hop_record& h) {
          return h.kind == hop_kind::flush || h.kind == hop_kind::handoff;
        }));
  }
  bool complete() const { return delivers() == 1; }
  /// Rank that initiated the journey (-1 if the origin hop was lost to
  /// ring overwrite).
  int origin() const {
    for (const auto& h : hops) {
      if (h.hop == 0 && h.kind == hop_kind::enqueue) return h.rank;
    }
    return -1;
  }
  /// Final destination rank (-1 while in flight).
  int dest() const {
    for (const auto& h : hops) {
      if (h.kind == hop_kind::deliver) return h.rank;
    }
    return -1;
  }
  const hop_record& last_hop() const { return hops.back(); }
};

/// Journeys keyed by (world, journey id) — ids are only unique per run, and
/// one session may span several mpisim worlds.
using journey_map = std::map<std::pair<int, std::uint64_t>, journey>;

inline journey_map stitch(std::vector<hop_record> hops) {
  journey_map out;
  for (auto& h : hops) out[{h.world, h.id}].hops.push_back(h);
  for (auto& [key, j] : out) {
    std::sort(j.hops.begin(), j.hops.end(),
              [](const hop_record& a, const hop_record& b) {
                if (a.hop != b.hop) return a.hop < b.hop;
                const int sa = hop_stage_order(a.kind);
                const int sb = hop_stage_order(b.kind);
                if (sa != sb) return sa < sb;
                return a.ts_us < b.ts_us;
              });
  }
  return out;
}

/// Validate stitched journeys. `expected_legs(world, origin, dest)` returns
/// the routing-scheme leg count for that pair, or -1 when unknown (then
/// only transport-independent invariants are checked). Returns one
/// human-readable string per violation; empty means all journeys check out.
inline std::vector<std::string> check_journeys(
    const journey_map& journeys,
    const std::function<int(int world, int origin, int dest)>& expected_legs =
        {}) {
  std::vector<std::string> errors;
  const auto fail = [&](const std::pair<int, std::uint64_t>& key,
                        const std::string& what) {
    errors.push_back("journey world=" + std::to_string(key.first) + " id=" +
                     std::to_string(key.second) + ": " + what);
  };
  for (const auto& [key, j] : journeys) {
    const auto n_deliver = j.delivers();
    if (n_deliver != 1) {
      fail(key, "expected exactly one deliver event, saw " +
                    std::to_string(n_deliver));
      continue;
    }
    if (j.last_hop().kind != hop_kind::deliver) {
      fail(key, "deliver is not the causally last hop");
    }
    const auto legs = j.legs();
    if (j.last_hop().hop != legs) {
      fail(key, "deliver hop index " + std::to_string(j.last_hop().hop) +
                    " != completed leg count " + std::to_string(legs));
    }
    std::uint32_t prev_hop = 0;
    for (const auto& h : j.hops) {
      if (h.hop < prev_hop) {
        fail(key, "hop indices regress (ring overwrite or id collision?)");
        break;
      }
      prev_hop = h.hop;
    }
    if (expected_legs) {
      const int want = expected_legs(key.first, j.origin(), j.dest());
      if (want >= 0 && static_cast<std::size_t>(want) != legs) {
        fail(key, "router path expects " + std::to_string(want) +
                      " legs, journey took " + std::to_string(legs));
      }
    }
  }
  return errors;
}

/// Decode all "trace.*" hop events retained in a live session's rings.
/// Hops that fell off a ring are simply absent (stitching tolerates that;
/// check_journeys will flag the journeys it breaks).
inline std::vector<hop_record> extract_hops(const session& s) {
  std::vector<hop_record> hops;
  s.visit_lanes([&](const recorder& rec) {
    const auto& names = rec.names();
    rec.ring().for_each([&](const trace_event& e) {
      if (e.name >= names.size()) return;
      hop_kind kind;
      if (!parse_hop_event_name(names[e.name], kind)) return;
      // Credit stalls describe the sending rank, not any one message — they
      // carry no journey id and must not fabricate incomplete journeys.
      if (kind == hop_kind::credit_stall) return;
      hop_record h;
      h.world = rec.world();
      h.rank = rec.rank();
      h.id = e.arg0;
      h.kind = kind;
      h.ts_us = e.ts_us;
      h.dur_us = e.kind == event_kind::complete ? e.dur_us : 0;
      h.hop = unpack_hop(e.arg1);
      h.bytes = unpack_bytes(e.arg1);
      hops.push_back(h);
    });
  });
  return hops;
}

}  // namespace ygm::telemetry::causal
