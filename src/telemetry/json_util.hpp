// Tiny JSON-emission helpers shared by the telemetry exporters
// (export.cpp) and the causal-tracing postmortem writer (causal.cpp).
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace ygm::telemetry {

/// JSON string escaping for metric/span names (which are plain dotted
/// identifiers today, but exporters should never emit invalid JSON even if
/// a user names a counter creatively).
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string json_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace ygm::telemetry
