#include "telemetry/live.hpp"

#include <algorithm>
#include <cstdlib>
#include <mutex>

#include "telemetry/sampler.hpp"
#include "telemetry/statusz.hpp"

namespace ygm::telemetry::live {

// ------------------------------------------------------------ window epoch

namespace {
std::atomic<std::uint64_t> g_window_epoch{1};
}

std::uint64_t window_epoch() noexcept {
  return g_window_epoch.load(std::memory_order_relaxed);
}

void bump_window_epoch() noexcept {
  g_window_epoch.fetch_add(1, std::memory_order_relaxed);
}

// ------------------------------------------------------------------- names

std::string_view gauge_name(gauge g) {
  switch (g) {
    case gauge::queued_bytes:
      return "queued_bytes";
    case gauge::credit_used:
      return "credit_used";
    case gauge::outq_bytes:
      return "outq_bytes";
    case gauge::count_:
      break;
  }
  return "?";
}

std::string_view latency_kind_name(latency_kind k) {
  switch (k) {
    case latency_kind::e2e:
      return "e2e";
    case latency_kind::flush:
      return "flush";
    case latency_kind::handoff:
      return "handoff";
    case latency_kind::count_:
      break;
  }
  return "?";
}

namespace {
// Indices match routing::scheme_kind (pinned like kSchemeHopNames in
// session.cpp; router.cpp asserts the order from the routing side).
constexpr std::string_view kSchemeNames[kSchemes] = {
    "NoRoute",
    "NodeLocal",
    "NodeRemote",
    "NLNR",
};
}  // namespace

std::string_view scheme_name(unsigned scheme_index) {
  return scheme_index < kSchemes ? kSchemeNames[scheme_index]
                                 : std::string_view("?");
}

std::string sketch_metric_name(unsigned scheme_index, latency_kind k) {
  std::string out = "live.";
  out += latency_kind_name(k);
  out += "_us.";
  out += scheme_name(scheme_index);
  return out;
}

// ------------------------------------------------------------ lane registry

lane_registry& lane_registry::instance() {
  static lane_registry reg;
  return reg;
}

void lane_registry::bind(recorder* rec, int world, int rank) {
  if (rec == nullptr) return;
  std::lock_guard lock(mtx_);
  for (auto& e : lanes_) {
    if (e.rec == rec) {
      ++e.refs;
      return;
    }
  }
  lanes_.push_back(entry{rec, world, rank, 1});
}

void lane_registry::unbind(recorder* rec) {
  if (rec == nullptr) return;
  std::lock_guard lock(mtx_);
  for (auto it = lanes_.begin(); it != lanes_.end(); ++it) {
    if (it->rec == rec) {
      if (--it->refs == 0) lanes_.erase(it);
      return;
    }
  }
}

void lane_registry::for_each(
    const std::function<void(recorder&, int world, int rank)>& f) {
  std::lock_guard lock(mtx_);
  for (auto& e : lanes_) f(*e.rec, e.world, e.rank);
}

std::size_t lane_registry::bound_count() const {
  std::lock_guard lock(mtx_);
  return lanes_.size();
}

// ------------------------------------------------------- engine stats feed

namespace {
std::mutex g_engine_mtx;
std::function<engine_stats()> g_engine_provider;
std::atomic<bool> g_engine_driver{false};
}  // namespace

void set_engine_stats_provider(std::function<engine_stats()> provider) {
  std::lock_guard lock(g_engine_mtx);
  g_engine_provider = std::move(provider);
}

engine_stats query_engine_stats() {
  std::lock_guard lock(g_engine_mtx);
  if (!g_engine_provider) return {};
  return g_engine_provider();
}

void set_engine_driver(bool active) noexcept {
  g_engine_driver.store(active, std::memory_order_release);
}

bool engine_driver_active() noexcept {
  return g_engine_driver.load(std::memory_order_acquire);
}

// ------------------------------------------------------------------- knobs

namespace {

std::atomic<int> g_sample_override{-1};
std::atomic<int> g_statusz_override{-1};

std::mutex g_dir_mtx;
std::string g_statusz_dir_hint;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

bool env_truthy(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  return !(v[0] == '0' && v[1] == '\0');
}

}  // namespace

int resolved_sample_ms() {
  const int ov = g_sample_override.load(std::memory_order_acquire);
  if (ov >= 0) return ov;
  return std::max(0, env_int("YGM_SAMPLE_MS", 100));
}

void set_sample_ms_override(int ms) {
  g_sample_override.store(ms < 0 ? -1 : ms, std::memory_order_release);
}

int sample_ms_override() noexcept {
  return g_sample_override.load(std::memory_order_acquire);
}

bool resolved_statusz() {
  const int ov = g_statusz_override.load(std::memory_order_acquire);
  if (ov >= 0) return ov != 0;
  return env_truthy("YGM_STATUSZ");
}

void set_statusz_override(int v) {
  g_statusz_override.store(v < 0 ? -1 : (v != 0 ? 1 : 0),
                           std::memory_order_release);
}

int statusz_override() noexcept {
  return g_statusz_override.load(std::memory_order_acquire);
}

std::string statusz_dir() {
  if (const char* v = std::getenv("YGM_STATUSZ_DIR");
      v != nullptr && *v != '\0') {
    return v;
  }
  {
    std::lock_guard lock(g_dir_mtx);
    if (!g_statusz_dir_hint.empty()) return g_statusz_dir_hint;
  }
  if (const char* v = std::getenv("TMPDIR"); v != nullptr && *v != '\0') {
    return v;
  }
  return "/tmp";
}

void set_statusz_dir_hint(const std::string& dir) {
  std::lock_guard lock(g_dir_mtx);
  g_statusz_dir_hint = dir;
}

// --------------------------------------------------------- process services

std::shared_ptr<void> make_process_services() {
#if defined(YGM_TELEMETRY_DISABLED)
  return nullptr;
#else
  const int period_ms = resolved_sample_ms();
  const bool serve = resolved_statusz();
  if (period_ms <= 0 && !serve) return nullptr;
  struct bundle {
    // Declaration order matters: the statusz server (declared second) is
    // destroyed first, so a request can never observe a dead sampler.
    std::unique_ptr<sampler> smp;
    std::unique_ptr<statusz_server> srv;
  };
  auto b = std::make_shared<bundle>();
  if (period_ms > 0) {
    sampler::config cfg;
    cfg.period_ms = period_ms;
    cfg.own_thread = !engine_driver_active();
    b->smp = std::make_unique<sampler>(cfg);
  }
  if (serve) {
    statusz_server::config cfg;
    cfg.dir = statusz_dir();
    b->srv = std::make_unique<statusz_server>(cfg);
  }
  return b;
#endif
}

}  // namespace ygm::telemetry::live
