// Live telemetry substrate (docs/TELEMETRY.md §Live telemetry).
//
// Everything else in the telemetry layer is post-mortem: the registry
// exports once at teardown and causal traces need the offline ygm_trace
// analyzer. This header adds the shared-state half of the *live* path —
// the data structures a sampler/statusz thread may read while the rank
// threads are still writing:
//
//   gauge_slot  — one live gauge (queued bytes, credit in flight, outq
//                 depth). Single writer (the lane's owning thread), any
//                 reader; windowed min/mean/max via a sampler-bumped global
//                 window epoch. All relaxed atomics — a torn window is a
//                 display artifact, never UB.
//   sketch      — one online log2 latency histogram per (routing scheme,
//                 latency kind), fed from the causal-trace hop sites in the
//                 mailboxes, so live p50/p99/p999 exists without ygm_trace.
//   lane_registry — the process-global set of currently *bound* lanes
//                 (rank_scope ctor/dtor notify it). The sampler and statusz
//                 only ever walk bound lanes under the registry lock, which
//                 is what makes a torn-down world's series disappear
//                 instead of bleeding stale values forward.
//
// The layer follows the telemetry compile-out contract: with
// -DYGM_TELEMETRY=OFF everything still compiles, tls() is a constant
// nullptr so the inline feed helpers (telemetry.hpp) fold to nothing, and
// make_process_services() returns an empty handle.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/metrics.hpp"

namespace ygm::telemetry {
class recorder;
}

namespace ygm::telemetry::live {

// ------------------------------------------------------------ window epoch
//
// The sampler bumps the global window epoch once per tick; gauge writers
// reset their window accumulators when they observe a new epoch. No
// per-sample synchronization beyond one relaxed load.

std::uint64_t window_epoch() noexcept;
void bump_window_epoch() noexcept;  // sampler tick only

// ------------------------------------------------------------- live gauges

enum class gauge : unsigned {
  queued_bytes,  ///< mailbox coalescing-buffer occupancy (bytes)
  credit_used,   ///< unacked flow-control bytes in flight (sum over links)
  outq_bytes,    ///< transport outbound-queue occupancy (bytes)
  count_  // sentinel
};

std::string_view gauge_name(gauge g);

/// One live gauge: single writer (the owning lane's thread), any reader.
struct gauge_slot {
  std::atomic<double> last{0};
  std::atomic<double> wmin{0};
  std::atomic<double> wmax{0};
  std::atomic<double> wsum{0};
  std::atomic<std::uint64_t> wcount{0};
  std::atomic<std::uint64_t> epoch{0};

  void set(double v) noexcept {
    const std::uint64_t we = window_epoch();
    if (epoch.load(std::memory_order_relaxed) != we) {
      epoch.store(we, std::memory_order_relaxed);
      wmin.store(v, std::memory_order_relaxed);
      wmax.store(v, std::memory_order_relaxed);
      wsum.store(v, std::memory_order_relaxed);
      wcount.store(1, std::memory_order_relaxed);
    } else {
      if (v < wmin.load(std::memory_order_relaxed)) {
        wmin.store(v, std::memory_order_relaxed);
      }
      if (v > wmax.load(std::memory_order_relaxed)) {
        wmax.store(v, std::memory_order_relaxed);
      }
      wsum.store(wsum.load(std::memory_order_relaxed) + v,
                 std::memory_order_relaxed);
      wcount.store(wcount.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
    }
    last.store(v, std::memory_order_relaxed);
  }

  struct window {
    double last = 0;
    double min = 0, mean = 0, max = 0;
    std::uint64_t count = 0;  ///< samples this window (0 = stats invalid)
  };

  /// Reader side: last value always; window stats only when the writer
  /// touched the slot during `current_epoch`.
  window read(std::uint64_t current_epoch) const noexcept {
    window w;
    w.last = last.load(std::memory_order_relaxed);
    if (epoch.load(std::memory_order_relaxed) == current_epoch) {
      const std::uint64_t n = wcount.load(std::memory_order_relaxed);
      if (n != 0) {
        w.count = n;
        w.min = wmin.load(std::memory_order_relaxed);
        w.max = wmax.load(std::memory_order_relaxed);
        w.mean = wsum.load(std::memory_order_relaxed) /
                 static_cast<double>(n);
      }
    }
    return w;
  }
};

// -------------------------------------------------------- latency sketches

enum class latency_kind : unsigned {
  e2e,      ///< origin send() to final deliver (journey end-to-end)
  flush,    ///< coalescing-buffer residency (enqueue to wire flush)
  handoff,  ///< shared-memory inbox residency (push to drain)
  count_  // sentinel
};

std::string_view latency_kind_name(latency_kind k);

/// routing::scheme_kind cardinality; indices match that enum (the pinning
/// is the same one kSchemeHopNames relies on in session.cpp).
inline constexpr unsigned kSchemes = 4;

std::string_view scheme_name(unsigned scheme_index);

/// Registry histogram name a (scheme, kind) sketch folds into at export,
/// e.g. "live.e2e_us.NLNR" — how the sketches ship across socket lanes.
std::string sketch_metric_name(unsigned scheme_index, latency_kind k);

/// Online log2 histogram: single writer, any reader, relaxed atomics.
/// Bucket mapping is histogram::bucket_index so live percentiles and the
/// offline registry histograms agree bucket-for-bucket.
struct sketch {
  std::array<std::atomic<std::uint64_t>, histogram::num_buckets> buckets{};
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0};
  std::atomic<double> min{std::numeric_limits<double>::infinity()};
  std::atomic<double> max{0};

  void record(double v) noexcept {
    if (v < 0) v = 0;
    const auto b = static_cast<std::size_t>(histogram::bucket_index(v));
    buckets[b].store(buckets[b].load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
    count.store(count.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
    sum.store(sum.load(std::memory_order_relaxed) + v,
              std::memory_order_relaxed);
    if (v < min.load(std::memory_order_relaxed)) {
      min.store(v, std::memory_order_relaxed);
    }
    if (v > max.load(std::memory_order_relaxed)) {
      max.store(v, std::memory_order_relaxed);
    }
  }

  /// Concurrent-read snapshot (a torn count/bucket pair shifts a live
  /// percentile by at most one in-flight sample).
  histogram snapshot() const noexcept {
    std::array<std::uint64_t, histogram::num_buckets> b{};
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] = buckets[i].load(std::memory_order_relaxed);
    }
    const std::uint64_t n = count.load(std::memory_order_relaxed);
    return histogram::from_parts(b, n, sum.load(std::memory_order_relaxed),
                                 min.load(std::memory_order_relaxed),
                                 max.load(std::memory_order_relaxed));
  }

  /// Snapshot-and-reset, for fold_fast_metrics at export time (writer has
  /// quiesced by then).
  histogram take() noexcept {
    std::array<std::uint64_t, histogram::num_buckets> b{};
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] = buckets[i].exchange(0, std::memory_order_relaxed);
    }
    const std::uint64_t n = count.exchange(0, std::memory_order_relaxed);
    const double s = sum.exchange(0, std::memory_order_relaxed);
    const double lo =
        min.exchange(std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
    const double hi = max.exchange(0, std::memory_order_relaxed);
    return histogram::from_parts(b, n, s, lo, hi);
  }
};

// -------------------------------------------------------------- live block
//
// One per recorder: the fixed-slot state the live readers may touch while
// the lane's thread is running. Everything else in recorder (named
// registry, intern table, ring cursor bookkeeping beyond what event_ring
// already allows) stays export-only.

struct live_block {
  gauge_slot gauges[static_cast<unsigned>(gauge::count_)];
  sketch sketches[kSchemes][static_cast<unsigned>(latency_kind::count_)];

  void set_gauge(gauge g, double v) noexcept {
    gauges[static_cast<unsigned>(g)].set(v);
  }
  void record_latency(unsigned scheme_index, latency_kind k,
                      double us) noexcept {
    if (scheme_index < kSchemes) {
      sketches[scheme_index][static_cast<unsigned>(k)].record(us);
    }
  }
};

// ------------------------------------------------------------ lane registry
//
// The set of lanes currently bound to a thread (rank_scope ctor/dtor).
// for_each holds the lock across the visit, so a visited recorder cannot be
// torn down mid-read — and an unbound lane is simply never visited again,
// which is the stale-gauge fix: a dead world's series stop, they do not
// coast on last values.

class lane_registry {
 public:
  static lane_registry& instance();

  void bind(recorder* rec, int world, int rank);
  void unbind(recorder* rec);

  /// Visit every bound lane under the registry lock.
  void for_each(
      const std::function<void(recorder&, int world, int rank)>& f);

  std::size_t bound_count() const;

 private:
  lane_registry() = default;
  struct entry {
    recorder* rec;
    int world;
    int rank;
    int refs;  // nested rank_scopes on the same lane
  };
  mutable std::mutex mtx_;
  std::vector<entry> lanes_;
};

// ------------------------------------------------------- engine stats feed
//
// The progress engine registers a stats provider at construction and clears
// it (under the same mutex statusz queries through) before its thread stops,
// so a statusz request can never race engine teardown.

struct engine_stats {
  bool valid = false;
  std::uint64_t passes = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t steals = 0;
  std::uint64_t hook_pumps = 0;
};

/// Install (or, with an empty function, clear) the engine stats provider.
void set_engine_stats_provider(std::function<engine_stats()> provider);
engine_stats query_engine_stats();

/// The engine marks itself as the sampler driver for its lifetime: when a
/// driver is active, make_process_services() creates the sampler without a
/// dedicated thread and the engine loop pumps it via sampler_poll().
void set_engine_driver(bool active) noexcept;
bool engine_driver_active() noexcept;

/// Driver-side pump: ticks the installed sampler when its period elapsed.
/// Cheap no-op (one mutex + clock compare) when no sampler is installed or
/// the tick is not due; safe from any thread. Defined in sampler.cpp.
void sampler_poll() noexcept;

// ------------------------------------------------------------------- knobs
//
// Precedence (the core/launch.hpp convention): explicit run_options field >
// YGM_* environment variable > default. The overrides are what
// scoped_run_defaults sets from run_options.

/// Sampling period: override >= 0 wins, else YGM_SAMPLE_MS, else 100.
/// 0 disables the sampler.
int resolved_sample_ms();
void set_sample_ms_override(int ms);  // -1 clears
int sample_ms_override() noexcept;

/// statusz endpoint: override >= 0 wins (0 off / 1 on), else YGM_STATUSZ
/// (truthy = on), else off.
bool resolved_statusz();
void set_statusz_override(int v);  // -1 clears
int statusz_override() noexcept;

/// Directory statusz sockets are created in: YGM_STATUSZ_DIR > the socket
/// backend's rendezvous-dir hint (set_statusz_dir_hint, called in each
/// forked child) > $TMPDIR > /tmp.
std::string statusz_dir();
void set_statusz_dir_hint(const std::string& dir);

// --------------------------------------------------------- process services

/// Start the per-process live services the resolved knobs call for: a
/// sampler when resolved_sample_ms() > 0 (engine-driven when an engine
/// registered as driver, dedicated thread otherwise) and a statusz server
/// when resolved_statusz(). Returns nullptr when nothing is enabled or
/// telemetry is compiled out; destroying the handle stops both services.
std::shared_ptr<void> make_process_services();

}  // namespace ygm::telemetry::live
