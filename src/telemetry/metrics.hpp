// Metrics registry: named counters, gauges, and log2-bucketed histograms.
//
// Each simulated rank owns one registry (inside its telemetry::recorder), so
// updates are plain unsynchronized memory writes — the "lock-free per-rank"
// half of the design. Cross-rank aggregation happens only at export time,
// when the session merges every rank's registry into one (counters sum,
// gauges keep the max, histograms merge bucket-wise). Names are dotted
// paths ("mailbox.remote_bytes", "term.rounds"); docs/TELEMETRY.md lists
// the taxonomy the built-in instrumentation emits.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <string_view>

namespace ygm::telemetry {

/// Power-of-two bucketed histogram of non-negative samples. Bucket i counts
/// samples in [2^(i-1), 2^i); bucket 0 counts samples < 1. Exact count /
/// sum / min / max ride along, so averages are exact and only percentiles
/// are bucket-resolution approximations (within 2x, interpolated).
class histogram {
 public:
  static constexpr int num_buckets = 64;

  void record(double v) noexcept {
    if (v < 0) v = 0;
    ++buckets_[static_cast<std::size_t>(bucket_of(v))];
    ++count_;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }

  /// Approximate p-quantile, p in [0, 1]: locate the bucket holding the
  /// p-th sample and interpolate linearly inside it. Clamped to the exact
  /// observed [min, max] so tails never overshoot reality.
  double percentile(double p) const noexcept {
    if (count_ == 0) return 0.0;
    if (p <= 0) return min();
    if (p >= 1) return max();
    const double target = p * static_cast<double>(count_);
    double seen = 0;
    for (int b = 0; b < num_buckets; ++b) {
      const double n = static_cast<double>(buckets_[static_cast<std::size_t>(b)]);
      if (n == 0) continue;
      if (seen + n >= target) {
        const double lo = b == 0 ? 0.0 : std::ldexp(1.0, b - 1);
        const double hi = std::ldexp(1.0, b);
        const double frac = (target - seen) / n;
        const double v = lo + frac * (hi - lo);
        return std::min(std::max(v, min()), max());
      }
      seen += n;
    }
    return max();
  }

  /// Raw bucket counts, for serialization (cross-process lane shipping —
  /// the socket transport forwards each child rank's registry to the parent
  /// session).
  const std::array<std::uint64_t, num_buckets>& buckets() const noexcept {
    return buckets_;
  }

  /// Rebuild a histogram from serialized parts; the inverse of reading
  /// buckets()/count()/sum()/min()/max(). Intended for merge() on arrival.
  static histogram from_parts(
      const std::array<std::uint64_t, num_buckets>& buckets,
      std::uint64_t count, double sum, double min, double max) noexcept {
    histogram h;
    h.buckets_ = buckets;
    h.count_ = count;
    h.sum_ = sum;
    if (count != 0) {
      h.min_ = min;
      h.max_ = max;
    }
    return h;
  }

  void merge(const histogram& o) noexcept {
    for (int b = 0; b < num_buckets; ++b) {
      buckets_[static_cast<std::size_t>(b)] +=
          o.buckets_[static_cast<std::size_t>(b)];
    }
    count_ += o.count_;
    sum_ += o.sum_;
    if (o.count_ != 0) {
      if (o.min_ < min_) min_ = o.min_;
      if (o.max_ > max_) max_ = o.max_;
    }
  }

  /// The log2 bucket a sample lands in — public so the live-telemetry
  /// sketches (live.hpp) and the sketch-vs-trace agreement tests share the
  /// exact mapping the offline histograms use.
  static int bucket_index(double v) noexcept {
    if (v < 1.0) return 0;
    int e = 0;
    std::frexp(v, &e);  // v = m * 2^e with m in [0.5, 1)
    return e < num_buckets ? e : num_buckets - 1;
  }

 private:
  static int bucket_of(double v) noexcept { return bucket_index(v); }

  std::array<std::uint64_t, num_buckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = 0;
};

/// Create-or-get registry of named metrics. Ordered maps so exports and
/// summary tables are deterministic. Not thread-safe by design: one
/// registry per rank, merged single-threaded at export.
class metrics_registry {
 public:
  /// Monotonic counter (merge: sum).
  std::uint64_t& counter(std::string_view name) {
    return counters_.try_emplace(std::string(name), 0).first->second;
  }

  /// Last-value gauge (merge: max across ranks — "worst rank" semantics,
  /// right for clocks and high-water marks).
  double& gauge(std::string_view name) {
    return gauges_.try_emplace(std::string(name), 0.0).first->second;
  }

  /// Distribution (merge: bucket-wise).
  histogram& histo(std::string_view name) {
    return histos_.try_emplace(std::string(name)).first->second;
  }

  void merge(const metrics_registry& o) {
    for (const auto& [k, v] : o.counters_) counter(k) += v;
    for (const auto& [k, v] : o.gauges_) {
      double& g = gauge(k);
      if (v > g) g = v;
    }
    for (const auto& [k, v] : o.histos_) histo(k).merge(v);
  }

  bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histos_.empty();
  }

  const std::map<std::string, std::uint64_t, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, double, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, histogram, std::less<>>& histos() const {
    return histos_;
  }

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, histogram, std::less<>> histos_;
};

}  // namespace ygm::telemetry
