#include "telemetry/sampler.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "telemetry/telemetry.hpp"

namespace ygm::telemetry::live {

namespace {
// Installed-sampler slot. All access to the pointer goes through this
// mutex, so live::sampler_poll() / statusz reads can never race sampler
// destruction (the destructor uninstalls under the same lock before
// joining its thread).
std::mutex g_inst_mtx;
sampler* g_inst = nullptr;

constexpr unsigned kFastCounters =
    static_cast<unsigned>(fast_counter::count_);
static_assert(kFastCounters <= 64, "grow sampler::lane_state::prev_counters");
}  // namespace

sampler::sampler(config cfg)
    : cfg_(cfg), epoch_(std::chrono::steady_clock::now()) {
  {
    std::lock_guard lock(g_inst_mtx);
    if (g_inst == nullptr) g_inst = this;
  }
  if (cfg_.own_thread && cfg_.period_ms > 0) {
    thread_ = std::thread([this] { thread_main(); });
  }
}

sampler::~sampler() {
  {
    std::lock_guard lock(g_inst_mtx);
    if (g_inst == this) g_inst = nullptr;
  }
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

double sampler::now_us() const noexcept {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void sampler::thread_main() {
  // Sleep in short slices so teardown never waits a full period; the tick
  // cadence itself is enforced by poll()'s due check.
  const auto slice =
      std::chrono::milliseconds(std::clamp(cfg_.period_ms, 1, 5));
  while (!stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(slice);
    poll();
  }
}

void sampler::poll() {
  if (cfg_.period_ms <= 0) return;
  std::lock_guard lock(mtx_);
  const double now = now_us();
  if (now - last_tick_us_ < static_cast<double>(cfg_.period_ms) * 1000.0) {
    return;
  }
  tick();
}

void sampler::tick_now() {
  std::lock_guard lock(mtx_);
  tick();
}

// Caller holds mtx_.
void sampler::tick() {
  const double now = now_us();
  const double dt_s = std::max((now - last_tick_us_) * 1e-6, 1e-9);
  const std::uint64_t cur_epoch = window_epoch();

  std::set<std::pair<int, int>> bound_lanes;
  std::set<const void*> bound_recs;

  lane_registry::instance().for_each([&](recorder& rec, int world, int rank) {
    bound_lanes.emplace(world, rank);
    bound_recs.insert(&rec);
    lane_state& ls = lane_states_[&rec];

    // Counters -> windowed rates. A series appears once its counter first
    // moves and then tracks every window (including zero-rate ones, so
    // gaps in activity are visible instead of silently elided).
    for (unsigned c = 0; c < kFastCounters; ++c) {
      const std::uint64_t v =
          rec.fast_value(static_cast<fast_counter>(c));
      if (ls.primed && v != 0) {
        const std::uint64_t prev = ls.prev_counters[c];
        const double rate =
            static_cast<double>(v >= prev ? v - prev : 0) / dt_s;
        std::string metric = "rate.";
        metric += fast_counter_name(static_cast<fast_counter>(c));
        series_[{world, rank, std::move(metric)}].push({now, rate},
                                                       cfg_.capacity);
      }
      ls.prev_counters[c] = v;
    }
    ls.primed = true;

    // Live gauges -> last-value series + per-window min/mean/max.
    for (unsigned g = 0; g < static_cast<unsigned>(gauge::count_); ++g) {
      const auto w = rec.live().gauges[g].read(cur_epoch);
      std::string base = "live.";
      base += gauge_name(static_cast<gauge>(g));
      if (w.count == 0 && w.last == 0 &&
          series_.find({world, rank, base}) == series_.end()) {
        continue;  // never touched: no series
      }
      series_[{world, rank, base}].push({now, w.last}, cfg_.capacity);
      if (w.count != 0) {
        series_[{world, rank, base + ".min"}].push({now, w.min},
                                                   cfg_.capacity);
        series_[{world, rank, base + ".mean"}].push({now, w.mean},
                                                    cfg_.capacity);
        series_[{world, rank, base + ".max"}].push({now, w.max},
                                                   cfg_.capacity);
      }
    }
  });

  // Stale-series fix: a lane that unbound (its world tore down) loses its
  // series entirely — live views must not coast on last values forever.
  for (auto it = series_.begin(); it != series_.end();) {
    const auto lane = std::make_pair(std::get<0>(it->first),
                                     std::get<1>(it->first));
    if (bound_lanes.count(lane) == 0) {
      it = series_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = lane_states_.begin(); it != lane_states_.end();) {
    if (bound_recs.count(it->first) == 0) {
      it = lane_states_.erase(it);
    } else {
      ++it;
    }
  }

  bump_window_epoch();
  last_tick_us_ = now;
  ticks_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<sampler::series_snapshot> sampler::snapshot() const {
  std::lock_guard lock(mtx_);
  std::vector<series_snapshot> out;
  out.reserve(series_.size());
  for (const auto& [key, s] : series_) {
    series_snapshot snap;
    snap.world = std::get<0>(key);
    snap.rank = std::get<1>(key);
    snap.metric = std::get<2>(key);
    if (s.filled) {
      snap.points.insert(snap.points.end(), s.ring.begin() + s.next,
                         s.ring.end());
      snap.points.insert(snap.points.end(), s.ring.begin(),
                         s.ring.begin() + s.next);
    } else {
      snap.points = s.ring;
    }
    out.push_back(std::move(snap));
  }
  return out;
}

sampler* sampler::installed() noexcept {
  std::lock_guard lock(g_inst_mtx);
  return g_inst;
}

std::vector<sampler::series_snapshot> sampler::snapshot_installed() {
  std::lock_guard lock(g_inst_mtx);
  if (g_inst == nullptr) return {};
  return g_inst->snapshot();
}

std::pair<int, std::uint64_t> sampler::info_installed() {
  std::lock_guard lock(g_inst_mtx);
  if (g_inst == nullptr) return {0, 0};
  return {g_inst->cfg().period_ms, g_inst->ticks()};
}

// Declared in live.hpp; defined here so the fast path stays one mutex +
// clock compare for drivers (the engine loop pumps this every pass).
void sampler_poll() noexcept {
  std::lock_guard lock(g_inst_mtx);
  if (g_inst != nullptr) g_inst->poll();
}

}  // namespace ygm::telemetry::live
