// Time-series sampler (docs/TELEMETRY.md §Live telemetry).
//
// Periodically snapshots every *bound* telemetry lane (live::lane_registry)
// into fixed-capacity ring-buffered series:
//
//   * fast counters  -> windowed rates ("rate.mpi.sends", events/s)
//   * live gauges    -> last-value series plus per-window min/mean/max
//                       ("live.queued_bytes", ".min", ".mean", ".max")
//
// One sampler per process. It rides the progress-engine thread when an
// engine registered as driver (live::sampler_poll() from the engine loop);
// otherwise it runs a dedicated sleep-driven thread. Series for lanes that
// unbind (world teardown) are dropped on the next tick — live views never
// coast on a dead world's last values.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "telemetry/live.hpp"

namespace ygm::telemetry::live {

class sampler {
 public:
  struct config {
    int period_ms = 100;         ///< tick period; <= 0 never ticks via poll
    std::size_t capacity = 600;  ///< points retained per series (ring)
    bool own_thread = true;      ///< false: an external driver calls poll()
  };

  struct point {
    double ts_us = 0;  ///< sampler clock, microseconds since construction
    double value = 0;
  };

  struct series_snapshot {
    int world = 0;
    int rank = 0;
    std::string metric;
    std::vector<point> points;  ///< oldest first
  };

  explicit sampler(config cfg);
  ~sampler();

  sampler(const sampler&) = delete;
  sampler& operator=(const sampler&) = delete;

  const config& cfg() const noexcept { return cfg_; }

  /// Driver-side pump: runs one tick when the period elapsed. Thread-safe.
  void poll();

  /// Force one tick regardless of the period (tests).
  void tick_now();

  std::uint64_t ticks() const noexcept {
    return ticks_.load(std::memory_order_relaxed);
  }

  /// Copy out every live series (oldest point first).
  std::vector<series_snapshot> snapshot() const;

  /// Microseconds since construction on the sampler clock.
  double now_us() const noexcept;

  /// The process's installed sampler, or nullptr. The pointer is only
  /// stable while the caller holds no reference across sampler teardown;
  /// prefer snapshot_installed()/poll via live::sampler_poll(), which
  /// serialize against destruction internally.
  static sampler* installed() noexcept;

  /// snapshot() of the installed sampler (empty when none), serialized
  /// against sampler teardown.
  static std::vector<series_snapshot> snapshot_installed();

  /// {period_ms, ticks} of the installed sampler ({0, 0} when none).
  static std::pair<int, std::uint64_t> info_installed();

 private:
  void tick();
  void thread_main();

  using series_key = std::tuple<int, int, std::string>;  // world, rank, metric

  struct series {
    std::vector<point> ring;  // ring buffer, `next` is the oldest slot
    std::size_t next = 0;
    bool filled = false;
    bool touched = false;  // seen a bound lane this tick (else dropped)
    void push(point p, std::size_t cap) {
      if (ring.size() < cap) {
        ring.push_back(p);
      } else {
        ring[next] = p;
        next = (next + 1) % cap;
        filled = true;
      }
    }
  };

  struct lane_state {
    std::uint64_t prev_counters[64] = {};  // >= fast_counter::count_
    bool primed = false;
  };

  config cfg_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mtx_;  // series map + lane states + last tick time
  std::map<series_key, series> series_;
  std::map<const void*, lane_state> lane_states_;
  double last_tick_us_ = 0;
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace ygm::telemetry::live
