#include "telemetry/telemetry.hpp"

#include <utility>

#include "common/assert.hpp"

namespace ygm::telemetry {

// ------------------------------------------------------ well-known names

std::string_view fast_counter_name(fast_counter c) {
  switch (c) {
    case fast_counter::route_next_hop:
      return "route.next_hop";
    case fast_counter::route_bcast_fanout:
      return "route.bcast_fanout";
    case fast_counter::mpi_sends:
      return "mpi.sends";
    case fast_counter::mpi_send_bytes:
      return "mpi.send_bytes";
    case fast_counter::mpi_recvs:
      return "mpi.recvs";
    case fast_counter::mpi_recv_bytes:
      return "mpi.recv_bytes";
    case fast_counter::mpi_collectives:
      return "mpi.collectives";
    case fast_counter::term_rounds:
      return "term.rounds";
    case fast_counter::pool_hits:
      return "pool.hits";
    case fast_counter::pool_misses:
      return "pool.misses";
    case fast_counter::alloc_bytes:
      return "alloc.bytes";
    case fast_counter::deliveries:
      return "mailbox.deliveries";
    case fast_counter::count_:
      break;
  }
  return "?";
}

std::string_view fast_histogram_name(fast_histogram h) {
  switch (h) {
    case fast_histogram::remote_packet_bytes:
      return "mailbox.remote_packet_bytes";
    case fast_histogram::local_packet_bytes:
      return "mailbox.local_packet_bytes";
    case fast_histogram::exchange_us:
      return "mailbox.exchange_us";
    case fast_histogram::count_:
      break;
  }
  return "?";
}

namespace {
// Per-scheme hop counter names; indices match routing::scheme_kind (the
// dependency is one-way — telemetry cannot include routing — so the order
// is pinned here and asserted from the routing side in router.cpp).
constexpr std::string_view kSchemeHopNames[] = {
    "route.next_hop.NoRoute",
    "route.next_hop.NodeLocal",
    "route.next_hop.NodeRemote",
    "route.next_hop.NLNR",
};
}  // namespace

// -------------------------------------------------------------- recorder

recorder::recorder(session& owner, int world, int rank,
                   std::size_t ring_capacity)
    : owner_(&owner), world_(world), rank_(rank), ring_(ring_capacity) {}

double recorder::now_us() const noexcept { return owner_->now_us(); }

name_id recorder::intern(std::string_view s) {
  auto it = name_ids_.find(std::string(s));
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<name_id>(names_.size());
  names_.emplace_back(s);
  name_ids_.emplace(names_.back(), id);
  return id;
}

void recorder::fold_fast_metrics() {
  // exchange(0) instead of read-then-clear: the live sampler may still be
  // reading these slots through atomic_refs while a crash-dump export runs.
  for (unsigned c = 0; c < static_cast<unsigned>(fast_counter::count_); ++c) {
    const std::uint64_t v = std::atomic_ref<std::uint64_t>(fast_counters_[c])
                                .exchange(0, std::memory_order_relaxed);
    if (v != 0) {
      metrics_.counter(fast_counter_name(static_cast<fast_counter>(c))) += v;
    }
  }
  for (unsigned s = 0; s < kSchemes; ++s) {
    const std::uint64_t v = std::atomic_ref<std::uint64_t>(scheme_hops_[s])
                                .exchange(0, std::memory_order_relaxed);
    if (v != 0) metrics_.counter(kSchemeHopNames[s]) += v;
  }
  for (unsigned h = 0; h < static_cast<unsigned>(fast_histogram::count_);
       ++h) {
    if (fast_histos_[h].count() != 0) {
      metrics_.histo(fast_histogram_name(static_cast<fast_histogram>(h)))
          .merge(fast_histos_[h]);
      fast_histos_[h] = histogram{};
    }
  }
  // Live latency sketches fold into named registry histograms
  // ("live.e2e_us.NLNR", ...) — that is how they ship across the socket
  // backend's telemetry lanes and reach merged_metrics() on any backend.
  for (unsigned s = 0; s < live::kSchemes; ++s) {
    for (unsigned k = 0; k < static_cast<unsigned>(live::latency_kind::count_);
         ++k) {
      auto& sk = live_.sketches[s][k];
      if (sk.count.load(std::memory_order_relaxed) == 0) continue;
      metrics_
          .histo(live::sketch_metric_name(
              s, static_cast<live::latency_kind>(k)))
          .merge(sk.take());
    }
  }
  // Fold only the delta so repeated exports never double-count drops.
  if (ring_.dropped() > dropped_folded_) {
    metrics_.counter("trace.events_dropped") +=
        ring_.dropped() - dropped_folded_;
    dropped_folded_ = ring_.dropped();
  }
}

// --------------------------------------------------------------- session

session::session(config cfg)
    : epoch_(std::chrono::steady_clock::now()), cfg_(cfg) {}

session::~session() {
  if (global() == this) set_global(nullptr);
}

int session::begin_world(int nranks) {
  YGM_CHECK(nranks > 0, "telemetry world needs a positive rank count");
  std::lock_guard lock(mtx_);
  const int world = static_cast<int>(worlds_.size());
  auto& lanes = worlds_.emplace_back();
  lanes.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    lanes.push_back(
        std::make_unique<recorder>(*this, world, r, cfg_.ring_capacity));
  }
  return world;
}

int session::add_lane(int world) {
  std::lock_guard lock(mtx_);
  YGM_CHECK(world >= 0 && world < static_cast<int>(worlds_.size()),
            "telemetry world index out of range");
  auto& lanes = worlds_[static_cast<std::size_t>(world)];
  const int rank = static_cast<int>(lanes.size());
  lanes.push_back(
      std::make_unique<recorder>(*this, world, rank, cfg_.ring_capacity));
  return rank;
}

recorder& session::rank_recorder(int world, int rank) {
  std::lock_guard lock(mtx_);
  YGM_CHECK(world >= 0 && world < static_cast<int>(worlds_.size()),
            "telemetry world index out of range");
  auto& lanes = worlds_[static_cast<std::size_t>(world)];
  YGM_CHECK(rank >= 0 && rank < static_cast<int>(lanes.size()),
            "telemetry rank index out of range");
  return *lanes[static_cast<std::size_t>(rank)];
}

double session::now_us() const noexcept {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int session::world_count() const {
  std::lock_guard lock(mtx_);
  return static_cast<int>(worlds_.size());
}

metrics_registry session::merged_metrics() const {
  metrics_registry merged;
  for_each_recorder([&](recorder& rec) {
    rec.fold_fast_metrics();
    merged.merge(rec.metrics());
  });
  return merged;
}

metrics_registry session::merged_metrics(int world) const {
  metrics_registry merged;
  std::lock_guard lock(mtx_);
  YGM_CHECK(world >= 0 && world < static_cast<int>(worlds_.size()),
            "telemetry world index out of range");
  for (const auto& rec : worlds_[static_cast<std::size_t>(world)]) {
    rec->fold_fast_metrics();
    merged.merge(rec->metrics());
  }
  return merged;
}

void session::visit_lanes(const std::function<void(const recorder&)>& f) const {
  for_each_recorder([&](const recorder& rec) { f(rec); });
}

std::uint64_t session::events_dropped() const {
  std::uint64_t dropped = 0;
  for_each_recorder([&](const recorder& rec) { dropped += rec.ring().dropped(); });
  return dropped;
}

// ------------------------------------------------ global session + attach

namespace {
session* g_session = nullptr;
}

session* global() { return g_session; }
void set_global(session* s) { g_session = s; }

namespace detail {
constinit thread_local recorder* tls_recorder = nullptr;
}

rank_scope::rank_scope(session& s, int world, int rank)
    : prev_(detail::tls_recorder), bound_(&s.rank_recorder(world, rank)) {
  detail::tls_recorder = bound_;
  live::lane_registry::instance().bind(bound_, world, rank);
}

rank_scope::~rank_scope() {
  live::lane_registry::instance().unbind(bound_);
  detail::tls_recorder = prev_;
}

// ------------------------------------------------------ cold-path helpers

void instant(std::string_view name) {
  recorder* r = tls();
  if (r == nullptr) return;
  trace_event e;
  e.kind = event_kind::instant;
  e.name = r->intern(name);
  e.ts_us = r->now_us();
  r->push(e);
}

void instant(std::string_view name, std::string_view arg_name,
             std::uint64_t arg, double vtime_us) {
  recorder* r = tls();
  if (r == nullptr) return;
  trace_event e;
  e.kind = event_kind::instant;
  e.name = r->intern(name);
  e.ts_us = r->now_us();
  e.arg0_name = r->intern(arg_name);
  e.arg0 = arg;
  e.vtime_us = vtime_us;
  r->push(e);
}

void count(std::string_view name, std::uint64_t n) {
  recorder* r = tls();
  if (r != nullptr) r->metrics().counter(name) += n;
}

}  // namespace ygm::telemetry
