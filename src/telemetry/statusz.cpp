#include "telemetry/statusz.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

#include "telemetry/json_util.hpp"
#include "telemetry/live.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/telemetry.hpp"

namespace ygm::telemetry::live {

// ---------------------------------------------------------------- renderer

namespace {

std::string render_metrics() {
  std::string out = "{\"pid\":" + std::to_string(::getpid()) + ",\"lanes\":[";
  bool first_lane = true;
  lane_registry::instance().for_each([&](recorder& rec, int world, int rank) {
    if (!first_lane) out += ',';
    first_lane = false;
    out += "{\"world\":" + std::to_string(world) +
           ",\"rank\":" + std::to_string(rank) + ",\"counters\":{";
    for (unsigned c = 0; c < static_cast<unsigned>(fast_counter::count_);
         ++c) {
      if (c != 0) out += ',';
      out += '"';
      out += json_escape(fast_counter_name(static_cast<fast_counter>(c)));
      out += "\":";
      out += std::to_string(rec.fast_value(static_cast<fast_counter>(c)));
    }
    out += "},\"scheme_hops\":[";
    for (unsigned s = 0; s < kSchemes; ++s) {
      if (s != 0) out += ',';
      out += std::to_string(rec.fast_scheme_hop_value(s));
    }
    out += "],\"gauges\":{";
    const std::uint64_t epoch = window_epoch();
    for (unsigned g = 0; g < static_cast<unsigned>(gauge::count_); ++g) {
      if (g != 0) out += ',';
      const auto w = rec.live().gauges[g].read(epoch);
      out += '"';
      out += json_escape(gauge_name(static_cast<gauge>(g)));
      out += "\":";
      out += json_number(w.last);
    }
    out += "}}";
  });
  out += "]}";
  return out;
}

std::string render_series() {
  const auto [period_ms, ticks] = sampler::info_installed();
  std::string out = "{\"pid\":" + std::to_string(::getpid()) +
                    ",\"sample_ms\":" + std::to_string(period_ms) +
                    ",\"ticks\":" + std::to_string(ticks) + ",\"series\":[";
  bool first = true;
  for (const auto& s : sampler::snapshot_installed()) {
    if (!first) out += ',';
    first = false;
    out += "{\"world\":" + std::to_string(s.world) +
           ",\"rank\":" + std::to_string(s.rank) + ",\"metric\":\"" +
           json_escape(s.metric) + "\",\"points\":[";
    for (std::size_t i = 0; i < s.points.size(); ++i) {
      if (i != 0) out += ',';
      out += '[';
      out += json_number(s.points[i].ts_us);
      out += ',';
      out += json_number(s.points[i].value);
      out += ']';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string render_latency() {
  // Merge every bound lane's sketches per (scheme, kind) — live p50/p99/
  // p999 for this process, plus the raw bucket parts so a cross-process
  // consumer (ygm_top) can re-merge exactly.
  histogram merged[kSchemes][static_cast<unsigned>(latency_kind::count_)];
  lane_registry::instance().for_each([&](recorder& rec, int, int) {
    for (unsigned s = 0; s < kSchemes; ++s) {
      for (unsigned k = 0; k < static_cast<unsigned>(latency_kind::count_);
           ++k) {
        merged[s][k].merge(rec.live().sketches[s][k].snapshot());
      }
    }
  });
  std::string out =
      "{\"pid\":" + std::to_string(::getpid()) + ",\"latency\":[";
  bool first = true;
  for (unsigned s = 0; s < kSchemes; ++s) {
    for (unsigned k = 0; k < static_cast<unsigned>(latency_kind::count_);
         ++k) {
      const histogram& h = merged[s][k];
      if (h.count() == 0) continue;
      if (!first) out += ',';
      first = false;
      out += "{\"scheme\":\"";
      out += json_escape(scheme_name(s));
      out += "\",\"kind\":\"";
      out += json_escape(latency_kind_name(static_cast<latency_kind>(k)));
      out += "\",\"count\":" + std::to_string(h.count());
      out += ",\"sum\":" + json_number(h.sum());
      out += ",\"min\":" + json_number(h.min());
      out += ",\"max\":" + json_number(h.max());
      out += ",\"p50\":" + json_number(h.percentile(0.50));
      out += ",\"p99\":" + json_number(h.percentile(0.99));
      out += ",\"p999\":" + json_number(h.percentile(0.999));
      out += ",\"buckets\":[";
      bool first_bucket = true;
      for (int b = 0; b < histogram::num_buckets; ++b) {
        const std::uint64_t n = h.buckets()[static_cast<std::size_t>(b)];
        if (n == 0) continue;
        if (!first_bucket) out += ',';
        first_bucket = false;
        out += '[' + std::to_string(b) + ',' + std::to_string(n) + ']';
      }
      out += "]}";
    }
  }
  out += "]}";
  return out;
}

std::string render_health() {
  const auto [period_ms, ticks] = sampler::info_installed();
  const engine_stats es = query_engine_stats();
  std::string out = "{\"pid\":" + std::to_string(::getpid()) +
                    ",\"ok\":true,\"sample_ms\":" + std::to_string(period_ms) +
                    ",\"ticks\":" + std::to_string(ticks) + ",\"lanes\":" +
                    std::to_string(lane_registry::instance().bound_count()) +
                    ",\"engine\":{\"active\":" +
                    (es.valid ? "true" : "false");
  if (es.valid) {
    out += ",\"passes\":" + std::to_string(es.passes);
    out += ",\"steal_attempts\":" + std::to_string(es.steal_attempts);
    out += ",\"steals\":" + std::to_string(es.steals);
    out += ",\"hook_pumps\":" + std::to_string(es.hook_pumps);
  }
  out += "}}";
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() &&
         (s.front() == ' ' || s.front() == '\n' || s.front() == '\r' ||
          s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\n' || s.back() == '\r' ||
          s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::string statusz_render(std::string_view request) {
  const std::string_view req = trim(request);
  if (req == "metrics") return render_metrics();
  if (req == "series") return render_series();
  if (req == "latency") return render_latency();
  if (req == "health") return render_health();
  return "{\"error\":\"unknown request\",\"expected\":[\"metrics\","
         "\"series\",\"latency\",\"health\"]}";
}

// ------------------------------------------------------------------ server

statusz_server::statusz_server(config cfg) {
  std::string path =
      cfg.dir + "/ygm-statusz." + std::to_string(::getpid()) + ".sock";
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "ygm statusz: socket path too long, disabled: %s\n",
                 path.c_str());
    return;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return;
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 16) != 0) {
    std::fprintf(stderr, "ygm statusz: cannot serve on %s: %s\n",
                 path.c_str(), std::strerror(errno));
    ::close(fd);
    return;
  }
  if (::pipe(stop_pipe_) != 0) {
    ::close(fd);
    ::unlink(path.c_str());
    stop_pipe_[0] = stop_pipe_[1] = -1;
    return;
  }
  listen_fd_ = fd;
  path_ = std::move(path);
  thread_ = std::thread([this] { serve(); });
}

statusz_server::~statusz_server() {
  if (listen_fd_ >= 0) {
    const char byte = 0;
    // Best-effort wake; the pipe cannot be full (one writer, one byte).
    [[maybe_unused]] const auto n = ::write(stop_pipe_[1], &byte, 1);
    thread_.join();
    ::close(listen_fd_);
    ::unlink(path_.c_str());
  }
  for (const int fd : stop_pipe_) {
    if (fd >= 0) ::close(fd);
  }
}

void statusz_server::serve() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) return;  // stop requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    // One request line, bounded; a slow or silent client gets dropped.
    timeval tv{2, 0};
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    char buf[256];
    std::string req;
    for (;;) {
      const auto n = ::read(conn, buf, sizeof(buf));
      if (n <= 0) break;
      req.append(buf, static_cast<std::size_t>(n));
      if (req.find('\n') != std::string::npos || req.size() > 4096) break;
    }
    const std::string resp = statusz_render(req);
    std::size_t off = 0;
    while (off < resp.size()) {
      const auto n = ::write(conn, resp.data() + off, resp.size() - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    ::close(conn);
  }
}

// ------------------------------------------------------------------ client

std::string statusz_query(const std::string& sock_path,
                          std::string_view request) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (sock_path.size() >= sizeof(addr.sun_path)) return {};
  std::memcpy(addr.sun_path, sock_path.c_str(), sock_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return {};
  timeval tv{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return {};
  }
  std::string req(request);
  if (req.empty() || req.back() != '\n') req += '\n';
  std::size_t off = 0;
  while (off < req.size()) {
    const auto n = ::write(fd, req.data() + off, req.size() - off);
    if (n <= 0) {
      ::close(fd);
      return {};
    }
    off += static_cast<std::size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);
  std::string resp;
  char buf[4096];
  for (;;) {
    const auto n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

}  // namespace ygm::telemetry::live
