// Per-process introspection endpoint (docs/TELEMETRY.md §Live telemetry).
//
// A tiny Unix-domain-socket server, one per OS process hosting telemetry
// lanes. Wire protocol: the client sends one request line ("metrics" |
// "series" | "latency" | "health", newline-terminated), the server answers
// with one JSON document and closes the connection. statusz_render() is the
// shared formatter — the UDS server, the in-process query API (inproc
// backend / tests), and ygm_top's --selfcheck all go through it.
//
// Socket path: <dir>/ygm-statusz.<pid>.sock, where <dir> resolves per
// live::statusz_dir() (YGM_STATUSZ_DIR > socket-backend rendezvous hint >
// $TMPDIR > /tmp). tools/ygm_top discovers endpoints by scanning that
// directory for the ygm-statusz.*.sock pattern.
#pragma once

#include <atomic>
#include <string>
#include <string_view>
#include <thread>

namespace ygm::telemetry::live {

/// Render one introspection request as a JSON document. Thread-safe: reads
/// only the lock-guarded live surfaces (lane registry, installed sampler,
/// engine stats provider) and the recorders' fixed atomic slots.
std::string statusz_render(std::string_view request);

class statusz_server {
 public:
  struct config {
    std::string dir;  ///< directory the socket is created in
  };

  explicit statusz_server(config cfg);
  ~statusz_server();

  statusz_server(const statusz_server&) = delete;
  statusz_server& operator=(const statusz_server&) = delete;

  /// The socket path (empty when the server failed to start).
  const std::string& path() const noexcept { return path_; }
  bool serving() const noexcept { return listen_fd_ >= 0; }

 private:
  void serve();

  std::string path_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::thread thread_;
};

/// Client side: connect to a statusz socket, send one request line, read
/// the response to EOF. Returns an empty string on any failure.
std::string statusz_query(const std::string& sock_path,
                          std::string_view request);

}  // namespace ygm::telemetry::live
