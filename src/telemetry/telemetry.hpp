// YGM telemetry subsystem: per-rank recorders, a process-wide session, and
// exporters (Chrome trace JSON, metrics JSON, text summary).
//
// Design (docs/TELEMETRY.md has the full story):
//
//   session   — process-wide collection point. Owns one recorder per
//               (world, rank) lane; mpisim::run creates a lane per rank
//               thread automatically whenever a global session is
//               installed. Merging and export are pull-based: nothing is
//               aggregated until write_*()/print_summary() runs.
//   recorder  — one per simulated rank: a metrics_registry, an event ring,
//               a string-intern table, and a fixed array of well-known
//               counters/histograms for hot paths (O(1), no hashing).
//   tls()     — thread-local recorder pointer. All instrumentation helpers
//               are a null check away from zero work, so an uninstrumented
//               run costs one thread-local load + predictable branch per
//               call site. Compile out entirely with -DYGM_TELEMETRY=OFF
//               (which defines YGM_TELEMETRY_DISABLED).
//   span      — RAII complete-event timer ("X" phase in the Chrome trace).
//
// Layering: telemetry sits between ser and mpisim — it depends only on
// common, and every higher layer (mpisim, routing, core, bench) may record
// into it.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "telemetry/live.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace ygm::telemetry {

// ------------------------------------------------- well-known fast metrics
//
// Hot-path instrumentation (router next_hop, every mpisim send/recv) cannot
// afford a string hash per update, so the layers below core record into
// fixed enum-indexed slots; the session folds them into the named registry
// at export under the canonical names in fast_counter_name()/
// fast_histogram_name().

enum class fast_counter : unsigned {
  route_next_hop,       ///< router::next_hop decisions
  route_bcast_fanout,   ///< fan-out edges returned by bcast_next_hops
  mpi_sends,            ///< mpisim point-to-point sends
  mpi_send_bytes,
  mpi_recvs,
  mpi_recv_bytes,
  mpi_collectives,      ///< barrier/collective invocations
  term_rounds,          ///< termination-detection rounds completed
  pool_hits,            ///< packet-buffer-pool acquires served from the pool
  pool_misses,          ///< pool acquires that had to heap-allocate
  alloc_bytes,          ///< bytes freshly reserved by pool misses
  deliveries,           ///< mailbox message deliveries (live msg-rate feed)
  count_  // sentinel
};

enum class fast_histogram : unsigned {
  remote_packet_bytes,  ///< coalesced wire packet sizes (cross-node)
  local_packet_bytes,   ///< coalesced/handoff packet sizes (same-node)
  exchange_us,          ///< duration of capacity-triggered exchanges
  count_  // sentinel
};

std::string_view fast_counter_name(fast_counter c);
std::string_view fast_histogram_name(fast_histogram h);

// -------------------------------------------------------------- recorder

class session;

class recorder {
 public:
  recorder(session& owner, int world, int rank, std::size_t ring_capacity);

  int world() const noexcept { return world_; }
  int rank() const noexcept { return rank_; }

  /// Microseconds since the owning session's epoch.
  double now_us() const noexcept;

  metrics_registry& metrics() noexcept { return metrics_; }
  const metrics_registry& metrics() const noexcept { return metrics_; }
  event_ring& ring() noexcept { return ring_; }
  const event_ring& ring() const noexcept { return ring_; }

  /// Intern a name for use in trace events (stable per recorder).
  name_id intern(std::string_view s);
  const std::vector<std::string>& names() const noexcept { return names_; }

  void push(const trace_event& e) noexcept { ring_.push(e); }

  // Fast counters stay single-writer (the lane's owning thread), but the
  // live sampler/statusz threads read them concurrently — so the slots are
  // accessed through relaxed atomic_refs: same generated code on the write
  // side (one load + add + store), defined behaviour on the read side.
  void fast_add(fast_counter c, std::uint64_t n) noexcept {
    std::atomic_ref<std::uint64_t> slot(
        fast_counters_[static_cast<unsigned>(c)]);
    slot.store(slot.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
  }
  void fast_add_scheme_hop(unsigned scheme_index) noexcept {
    if (scheme_index < kSchemes) {
      std::atomic_ref<std::uint64_t> slot(scheme_hops_[scheme_index]);
      slot.store(slot.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
    }
  }
  void fast_record(fast_histogram h, double v) noexcept {
    fast_histos_[static_cast<unsigned>(h)].record(v);
  }

  std::uint64_t fast_value(fast_counter c) const noexcept {
    return std::atomic_ref<const std::uint64_t>(
               fast_counters_[static_cast<unsigned>(c)])
        .load(std::memory_order_relaxed);
  }
  std::uint64_t fast_scheme_hop_value(unsigned scheme_index) const noexcept {
    if (scheme_index >= kSchemes) return 0;
    return std::atomic_ref<const std::uint64_t>(scheme_hops_[scheme_index])
        .load(std::memory_order_relaxed);
  }

  /// The live-telemetry block (gauge slots + latency sketches) the sampler
  /// and statusz may read while this lane's thread is still running.
  live::live_block& live() noexcept { return live_; }
  const live::live_block& live() const noexcept { return live_; }

  /// Fold the fast slots into the named registry (idempotent only once —
  /// the session calls this exactly once per recorder at export).
  void fold_fast_metrics();

 private:
  static constexpr unsigned kSchemes = 4;  // routing::scheme_kind cardinality

  session* owner_;
  int world_;
  int rank_;
  metrics_registry metrics_;
  event_ring ring_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, name_id> name_ids_;
  std::uint64_t fast_counters_[static_cast<unsigned>(fast_counter::count_)] = {};
  std::uint64_t scheme_hops_[kSchemes] = {};
  histogram fast_histos_[static_cast<unsigned>(fast_histogram::count_)];
  live::live_block live_;
  std::uint64_t dropped_folded_ = 0;  // drops already folded into metrics
};

// --------------------------------------------------------------- session

struct config {
  /// Per-rank event ring capacity (events). 0 disables the timeline but
  /// keeps metrics.
  std::size_t ring_capacity = std::size_t{1} << 16;
};

class session {
 public:
  explicit session(config cfg = {});
  ~session();

  session(const session&) = delete;
  session& operator=(const session&) = delete;

  /// Open a lane group for one mpisim world of `nranks` ranks; returns the
  /// world index (Chrome-trace pid). Thread-safe.
  int begin_world(int nranks);

  /// Append one extra lane to an already-begun world (lane index = previous
  /// lane count) and return its index. Used for non-rank service threads
  /// whose events must stitch with the world's rank lanes — the progress
  /// engine records causal hop events and steal counters here. Thread-safe.
  int add_lane(int world);

  /// The recorder for one (world, rank) lane. Thread-safe lookup; the
  /// returned recorder itself must only be used from its rank thread.
  recorder& rank_recorder(int world, int rank);

  /// Microseconds since session construction (trace timestamp base).
  double now_us() const noexcept;

  /// Number of worlds begun so far (world indices are [0, world_count())).
  int world_count() const;

  /// All per-rank registries (plus folded fast metrics) merged into one.
  /// The all-worlds overload folds every lane the session ever opened —
  /// reusing one session across consecutive mpisim::run calls therefore
  /// mixes runs (gauges keep the max across them); use the per-world
  /// overload to read one run's metrics in isolation.
  metrics_registry merged_metrics() const;
  metrics_registry merged_metrics(int world) const;

  /// Visit every lane (export-time only: visited rank threads must have
  /// finished, except from a crash-dump path that accepts torn reads).
  void visit_lanes(const std::function<void(const recorder&)>& f) const;

  // Exporters (export.cpp). Path overloads return false on I/O failure.
  void write_chrome_trace(std::ostream& os) const;
  bool write_chrome_trace(const std::string& path) const;
  void write_metrics_json(std::ostream& os) const;
  bool write_metrics_json(const std::string& path) const;
  void print_summary(std::FILE* out = stdout) const;

  /// Total events dropped to ring overwrite across all lanes.
  std::uint64_t events_dropped() const;

 private:
  /// Visit every recorder of every world (export-time only; the visited
  /// rank threads must have finished).
  template <class F>
  void for_each_recorder(F&& f) const {
    std::lock_guard lock(mtx_);
    for (const auto& lanes : worlds_) {
      for (const auto& rec : lanes) f(*rec);
    }
  }

  mutable std::mutex mtx_;
  std::vector<std::vector<std::unique_ptr<recorder>>> worlds_;
  std::chrono::steady_clock::time_point epoch_;
  config cfg_;
};

// ------------------------------------------------ global session + attach

/// The installed process-wide session, or nullptr when telemetry is off.
session* global();

/// Install (or clear, with nullptr) the global session. Not thread-safe:
/// call from the driver thread before/after mpisim::run.
void set_global(session* s);

namespace detail {
// constinit matters: without it, every cross-TU access to an extern
// thread_local goes through the dynamic-init wrapper function, turning the
// hot-path "one load + branch" promise into a call per hook.
extern constinit thread_local recorder* tls_recorder;
}

/// This thread's recorder (nullptr when unattached or telemetry disabled).
inline recorder* tls() noexcept {
#if defined(YGM_TELEMETRY_DISABLED)
  return nullptr;
#else
  return detail::tls_recorder;
#endif
}

/// RAII: bind this thread to a (world, rank) lane of a session. Also
/// registers the lane with the live lane registry (live.hpp) so the
/// sampler/statusz see it for exactly the scope's lifetime.
class rank_scope {
 public:
  rank_scope(session& s, int world, int rank);
  ~rank_scope();
  rank_scope(const rank_scope&) = delete;
  rank_scope& operator=(const rank_scope&) = delete;

 private:
  recorder* prev_;
  recorder* bound_;
};

// ------------------------------------------------------ hot-path helpers
//
// All helpers are no-ops (a thread-local load + branch) when this thread
// has no recorder, and compile to nothing under YGM_TELEMETRY_DISABLED.

inline void add(fast_counter c, std::uint64_t n = 1) noexcept {
  if (recorder* r = tls()) r->fast_add(c, n);
}

inline void add_scheme_hop(unsigned scheme_index) noexcept {
  if (recorder* r = tls()) r->fast_add_scheme_hop(scheme_index);
}

inline void sample(fast_histogram h, double v) noexcept {
  if (recorder* r = tls()) r->fast_record(h, v);
}

/// Record an instant event ("i" phase) on this rank's lane.
void instant(std::string_view name);
void instant(std::string_view name, std::string_view arg_name,
             std::uint64_t arg, double vtime_us = -1);

/// Bump a named counter in this rank's registry (cold paths only — hashes
/// the name; hot paths use fast_counter slots).
void count(std::string_view name, std::uint64_t n = 1);

/// Microseconds on this thread's lane clock (0 when unattached).
inline double now_us() noexcept {
  recorder* r = tls();
  return r == nullptr ? 0.0 : r->now_us();
}

// ------------------------------------------------- live-telemetry helpers
//
// Feed points for the live layer (docs/TELEMETRY.md §Live telemetry). Same
// contract as the hot-path helpers above: one tls() load + branch when
// unattached, nothing at all under YGM_TELEMETRY_DISABLED.

namespace live {

/// Publish a live gauge value on this thread's lane (single writer per
/// lane holds because each lane is owned by one thread).
inline void gauge_set(gauge g, double v) noexcept {
  if (recorder* r = telemetry::tls()) r->live().set_gauge(g, v);
}

/// Feed one observed latency into this lane's (scheme, kind) sketch.
inline void note_latency(unsigned scheme_index, latency_kind k,
                         double us) noexcept {
  if (recorder* r = telemetry::tls()) {
    r->live().record_latency(scheme_index, k, us);
  }
}

}  // namespace live

/// Pre-interned instant-event template for hot call sites (e.g. per-hop
/// routing decisions): name lookup happens once per recorder, after which
/// each record() is a timestamp plus a handful of stores.
class instant_marker {
 public:
  explicit instant_marker(std::string_view name, std::string_view arg0 = {},
                          std::string_view arg1 = {})
      : name_str_(name), arg0_str_(arg0), arg1_str_(arg1) {}

  void record(std::uint64_t v0 = 0, std::uint64_t v1 = 0,
              double vtime_us = -1) noexcept {
    recorder* r = tls();
    if (r == nullptr) return;
    if (r != cached_) rebind(r);
    trace_event e;
    e.kind = event_kind::instant;
    e.name = name_;
    e.ts_us = r->now_us();
    e.vtime_us = vtime_us;
    e.arg0_name = arg0_;
    e.arg0 = v0;
    e.arg1_name = arg1_;
    e.arg1 = v1;
    r->push(e);
  }

 private:
  void rebind(recorder* r) {
    cached_ = r;
    name_ = r->intern(name_str_);
    arg0_ = arg0_str_.empty() ? no_name : r->intern(arg0_str_);
    arg1_ = arg1_str_.empty() ? no_name : r->intern(arg1_str_);
  }

  std::string_view name_str_, arg0_str_, arg1_str_;
  recorder* cached_ = nullptr;
  name_id name_ = no_name;
  name_id arg0_ = no_name;
  name_id arg1_ = no_name;
};

/// RAII span timer: records one complete ("X") event on destruction.
/// Inert when the thread has no recorder — construction is then just a
/// tls() check.
class span {
 public:
  explicit span(std::string_view name) : rec_(tls()) {
    if (rec_ != nullptr) {
      name_ = rec_->intern(name);
      start_us_ = rec_->now_us();
    }
  }

  span(const span&) = delete;
  span& operator=(const span&) = delete;

  /// Attach up to two integer args (shown in the trace viewer).
  void arg(std::string_view arg_name, std::uint64_t v) noexcept {
    if (rec_ == nullptr) return;
    if (e_arg0_ == no_name) {
      e_arg0_ = rec_->intern(arg_name);
      arg0_ = v;
    } else if (e_arg1_ == no_name) {
      e_arg1_ = rec_->intern(arg_name);
      arg1_ = v;
    }
  }

  /// Stamp the modeled virtual-time clock (seconds) onto the event.
  void vtime_seconds(double t) noexcept { vtime_us_ = t * 1e6; }

  /// Also feed the duration into a well-known histogram on close.
  void sample_into(fast_histogram h) noexcept {
    histo_ = static_cast<int>(h);
  }

  ~span() {
    if (rec_ == nullptr) return;
    const double end = rec_->now_us();
    trace_event e;
    e.kind = event_kind::complete;
    e.name = name_;
    e.ts_us = start_us_;
    e.dur_us = end - start_us_;
    e.vtime_us = vtime_us_;
    e.arg0_name = e_arg0_;
    e.arg0 = arg0_;
    e.arg1_name = e_arg1_;
    e.arg1 = arg1_;
    rec_->push(e);
    if (histo_ >= 0) {
      rec_->fast_record(static_cast<fast_histogram>(histo_), e.dur_us);
    }
  }

 private:
  recorder* rec_;
  name_id name_ = no_name;
  name_id e_arg0_ = no_name;
  name_id e_arg1_ = no_name;
  std::uint64_t arg0_ = 0;
  std::uint64_t arg1_ = 0;
  double start_us_ = 0;
  double vtime_us_ = -1;
  int histo_ = -1;
};

}  // namespace ygm::telemetry
