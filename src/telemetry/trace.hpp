// Timeline tracing: compact trace events in a bounded per-rank ring buffer.
//
// Two event shapes, mirroring the Chrome trace_event phases they export to:
//   complete ("X") — a span with a start timestamp and a duration
//                    (begin/end collapse into one record at end time, so a
//                    partially overwritten ring never yields unbalanced
//                    begin/end pairs);
//   instant  ("i") — a point event (flush trigger, quiescence verdict, ...).
//
// Events carry interned name/arg-name ids (the recorder owns the string
// table) and up to two integer args plus an optional virtual-time stamp, so
// one record is 64 bytes and recording is a few stores — cheap enough to
// leave on in instrumented hot paths.
//
// Overflow policy: the ring OVERWRITES OLDEST. A long run keeps the most
// recent window of events (the part of the timeline a stall investigation
// looks at) and the exporter reports how many older events were dropped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ygm::telemetry {

enum class event_kind : std::uint8_t { complete, instant };

/// Interned-string id (index into the owning recorder's name table).
using name_id = std::uint32_t;
inline constexpr name_id no_name = 0xffffffffu;

struct trace_event {
  double ts_us = 0;    ///< start time, microseconds since session epoch
  double dur_us = 0;   ///< complete events only
  double vtime_us = -1;  ///< virtual-clock stamp (microseconds), < 0 if none
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  name_id name = no_name;
  name_id arg0_name = no_name;  ///< no_name when arg0 unused
  name_id arg1_name = no_name;
  event_kind kind = event_kind::instant;
};

/// Fixed-capacity ring of trace events, overwrite-oldest on overflow.
class event_ring {
 public:
  explicit event_ring(std::size_t capacity) : events_(capacity) {}

  void push(const trace_event& e) noexcept {
    if (events_.empty()) {
      ++recorded_;
      return;  // capacity 0: tracing off, still count for diagnostics
    }
    events_[static_cast<std::size_t>(recorded_ % events_.size())] = e;
    ++recorded_;
  }

  std::size_t capacity() const noexcept { return events_.size(); }

  /// Total events ever pushed.
  std::uint64_t recorded() const noexcept { return recorded_; }

  /// Events lost to overwriting (oldest first).
  std::uint64_t dropped() const noexcept {
    return recorded_ > events_.size() ? recorded_ - events_.size() : 0;
  }

  /// Events currently retained.
  std::size_t size() const noexcept {
    return recorded_ < events_.size() ? static_cast<std::size_t>(recorded_)
                                      : events_.size();
  }

  /// Visit retained events oldest to newest.
  template <class F>
  void for_each(F&& f) const {
    const std::size_t n = size();
    if (n == 0) return;
    const std::size_t start =
        static_cast<std::size_t>((recorded_ - n) % events_.size());
    for (std::size_t i = 0; i < n; ++i) {
      f(events_[(start + i) % events_.size()]);
    }
  }

 private:
  std::vector<trace_event> events_;
  std::uint64_t recorded_ = 0;
};

}  // namespace ygm::telemetry
