#include "transport/chaos.hpp"

#include <cstdlib>
#include <sstream>
#include <string>

namespace ygm::transport {

chaos_config chaos_config::light(std::uint64_t seed) {
  chaos_config c;
  c.seed = seed;
  c.delay_prob = 0.25;
  c.max_delay_ticks = 6;
  c.iprobe_miss_prob = 0.10;
  c.max_consecutive_misses = 8;
  c.stall_prob = 0.01;
  c.max_stall_us = 50;
  return c;
}

chaos_config chaos_config::heavy(std::uint64_t seed) {
  chaos_config c;
  c.seed = seed;
  c.delay_prob = 0.50;
  c.max_delay_ticks = 16;
  c.iprobe_miss_prob = 0.30;
  c.max_consecutive_misses = 32;
  c.stall_prob = 0.04;
  c.max_stall_us = 100;
  return c;
}

namespace {

bool read_env_u64(const char* name, std::uint64_t& out) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  out = std::strtoull(v, nullptr, 0);
  return true;
}

bool read_env_double(const char* name, double& out) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  out = std::strtod(v, nullptr);
  return true;
}

}  // namespace

std::optional<chaos_config> chaos_config::from_env() {
  if (const char* preset = std::getenv("YGM_CHAOS");
      preset != nullptr && *preset != '\0') {
    const std::string s(preset);
    const auto colon = s.find(':');
    const std::string name = s.substr(0, colon);
    const std::uint64_t seed =
        colon == std::string::npos
            ? 0
            : std::strtoull(s.c_str() + colon + 1, nullptr, 0);
    if (name == "heavy") return heavy(seed);
    if (name == "light") return light(seed);
    return std::nullopt;  // unknown preset name: treat as unset
  }

  chaos_config c;
  bool any = read_env_u64("YGM_CHAOS_SEED", c.seed);
  any |= read_env_double("YGM_CHAOS_DELAY_PROB", c.delay_prob);
  std::uint64_t u = 0;
  if (read_env_u64("YGM_CHAOS_MAX_DELAY_TICKS", u)) {
    c.max_delay_ticks = static_cast<std::uint32_t>(u);
    any = true;
  }
  any |= read_env_double("YGM_CHAOS_IPROBE_MISS_PROB", c.iprobe_miss_prob);
  any |= read_env_double("YGM_CHAOS_STALL_PROB", c.stall_prob);
  if (read_env_u64("YGM_CHAOS_MAX_STALL_US", u)) {
    c.max_stall_us = static_cast<std::uint32_t>(u);
    any = true;
  }
  if (!any) return std::nullopt;
  return c;
}

std::string chaos_config::describe() const {
  std::ostringstream oss;
  oss << "seed=" << seed << " delay=" << delay_prob << "x" << max_delay_ticks
      << " miss=" << iprobe_miss_prob << "/" << max_consecutive_misses
      << " stall=" << stall_prob << "x" << max_stall_us << "us";
  return oss.str();
}

}  // namespace ygm::transport
