// Seeded fault injection for the transport substrate (the "chaos layer").
//
// The substrate's default behaviour is maximally friendly: sends are eager,
// every delivered message is immediately visible, and iprobe never misses.
// Real MPI makes none of those promises — "MPI Progress For All" (Zhou et
// al.) catalogues implementations whose probes exhibit only weak progress,
// and asynchronous many-task traffic routinely sees deep reordering across
// sources. The chaos layer injects exactly the adversity the standard
// permits, so the YGM invariants (exactly-once delivery along routing
// forwards, bcast delivery to every non-origin rank, hop conservation at
// quiescence) can be tested against hostile-but-legal schedules:
//
//   * delivery delay   - an arriving message stays invisible to matching
//                        for a bounded number of the receiver's matching
//                        operations ("ticks"). Per-(source, context) send
//                        order is preserved (MPI non-overtaking), but
//                        messages from different sources reorder freely.
//   * iprobe misses    - iprobe returns "nothing" even though a matchable
//                        message is queued (the classic termination-detector
//                        killer). Misses are capped per slot so progress
//                        remains guaranteed, as the standard requires of
//                        repeated probing.
//   * scheduling stalls- rank threads sleep a bounded random time around
//                        messaging operations, simulating OS jitter and
//                        oversubscription.
//
// All decisions are derived by stateless hashing from (seed, rank, source,
// context, per-stream index), so a given seed reproduces the same fault
// pattern for the same message streams regardless of thread interleaving.
// Because the hashes live in mail_slot — which both backends share as their
// matching engine — a seed produces the same fault pattern on the inproc
// and socket backends alike. Blocking operations never miss and never
// deadlock: a receiver blocked on a delayed message ages the delay with a
// timed wait instead of sleeping forever.
//
// Forced tiny mailbox capacities — the fourth adversary the chaos tests
// sweep — are a mailbox constructor parameter, not a runtime knob; see
// core/invariants.hpp and docs/CHAOS.md.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace ygm::transport {

struct chaos_config {
  std::uint64_t seed = 0;

  // Delivery delay: with probability `delay_prob`, an arriving message is
  // held invisible for 1..max_delay_ticks of the receiver's matching
  // operations (iprobe/probe/recv calls on its slot).
  double delay_prob = 0.0;
  std::uint32_t max_delay_ticks = 0;

  // iprobe false negatives: with probability `iprobe_miss_prob`, an iprobe
  // that would match reports no message. At most `max_consecutive_misses`
  // in a row per slot, so repeated probing always makes progress.
  double iprobe_miss_prob = 0.0;
  std::uint32_t max_consecutive_misses = 16;

  // Scheduling jitter: with probability `stall_prob`, a messaging operation
  // sleeps for up to `max_stall_us` microseconds first.
  double stall_prob = 0.0;
  std::uint32_t max_stall_us = 0;

  bool delays_active() const noexcept {
    return delay_prob > 0.0 && max_delay_ticks > 0;
  }
  bool probe_misses_active() const noexcept { return iprobe_miss_prob > 0.0; }
  bool stalls_active() const noexcept {
    return stall_prob > 0.0 && max_stall_us > 0;
  }
  bool enabled() const noexcept {
    return delays_active() || probe_misses_active() || stalls_active();
  }

  /// Mild adversity: occasional short delays and misses. Suitable for
  /// running the whole regular test suite under chaos.
  static chaos_config light(std::uint64_t seed);

  /// Heavy adversity: frequent deep delays, aggressive probe misses, and
  /// scheduling stalls. The setting the chaos sweep uses to flush out
  /// termination and mailbox bugs.
  static chaos_config heavy(std::uint64_t seed);

  /// Build a config from YGM_CHAOS environment variables (see docs/CHAOS.md):
  ///   YGM_CHAOS=light:SEED | heavy:SEED        preset shorthand
  ///   YGM_CHAOS_SEED, YGM_CHAOS_DELAY_PROB, YGM_CHAOS_MAX_DELAY_TICKS,
  ///   YGM_CHAOS_IPROBE_MISS_PROB, YGM_CHAOS_STALL_PROB,
  ///   YGM_CHAOS_MAX_STALL_US                    individual knobs
  /// Returns nullopt when no YGM_CHAOS* variable is set.
  static std::optional<chaos_config> from_env();

  /// One-line reproduction recipe ("seed=12 delay=0.5x16 miss=0.3/32
  /// stall=0.05x200us"); printed with every invariant violation.
  std::string describe() const;
};

}  // namespace ygm::transport
