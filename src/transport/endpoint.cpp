#include "transport/endpoint.hpp"

#include <cstdlib>
#include <string>

#include <atomic>

#include "common/assert.hpp"
#include "core/buffer_pool.hpp"  // sanctioned upward include (src/CMakeLists.txt)
#include "ser/serialize.hpp"
#include "telemetry/telemetry.hpp"

namespace ygm::transport {

std::string_view to_string(backend_kind k) noexcept {
  switch (k) {
    case backend_kind::inproc:
      return "inproc";
    case backend_kind::socket:
      return "socket";
    case backend_kind::shm:
      return "shm";
  }
  return "?";
}

std::optional<backend_kind> backend_from_name(std::string_view name) noexcept {
  if (name == "inproc") return backend_kind::inproc;
  if (name == "socket") return backend_kind::socket;
  if (name == "shm") return backend_kind::shm;
  return std::nullopt;
}

backend_kind backend_from_env() {
  const char* v = std::getenv("YGM_TRANSPORT");
  if (v == nullptr || *v == '\0') return backend_kind::inproc;
  const auto k = backend_from_name(v);
  YGM_CHECK(k.has_value(), std::string("unknown YGM_TRANSPORT backend '") +
                               v + "' (expected inproc | socket | shm)");
  return *k;
}

namespace {

std::size_t outq_cap_from_env() {
  const char* v = std::getenv("YGM_OUTQ_CAP_BYTES");
  if (v != nullptr && *v != '\0') {
    char* end = nullptr;
    const unsigned long long n = std::strtoull(v, &end, 10);
    if (end != nullptr && *end == '\0') return static_cast<std::size_t>(n);
  }
  return std::size_t{4} << 20;  // 4 MiB
}

// Process-wide so forked socket children inherit the launch override.
std::atomic<std::size_t> g_outq_cap{outq_cap_from_env()};

}  // namespace

std::size_t outq_cap_bytes() noexcept {
  return g_outq_cap.load(std::memory_order_relaxed);
}

void set_outq_cap_bytes(std::size_t cap) noexcept {
  g_outq_cap.store(cap, std::memory_order_relaxed);
}

void endpoint::post(int dest, envelope&& e) {
  stats_.posts.fetch_add(1, std::memory_order_relaxed);
  stats_.post_bytes.fetch_add(e.payload.size(), std::memory_order_relaxed);
  peer(dest).post(std::move(e));
}

void endpoint::barrier(const std::vector<int>& members, int me,
                       std::uint64_t ctx, int base_tag) {
  // Dissemination barrier: ceil(log2 P) rounds; in round r every rank sends
  // a token 2^r ahead and waits for the token from 2^r behind. Token sends
  // count as mpi.sends/recvs exactly like the comm-layer collectives they
  // replace, so metric totals are backend-invariant.
  const int p = static_cast<int>(members.size());
  int round = 0;
  for (int k = 1; k < p; k <<= 1, ++round) {
    const int dest = (me + k) % p;
    const int src = (me - k % p + p) % p;
    telemetry::add(telemetry::fast_counter::mpi_sends);
    post(members[static_cast<std::size_t>(dest)],
         envelope{me, base_tag + round, ctx, {}});
    envelope e = recv_match(src, base_tag + round, ctx);
    telemetry::add(telemetry::fast_counter::mpi_recvs);
    telemetry::add(telemetry::fast_counter::mpi_recv_bytes, e.payload.size());
  }
}

namespace {

std::uint64_t decode_u64(const envelope& e) {
  return ser::from_bytes<std::uint64_t>({e.payload.data(), e.payload.size()});
}

}  // namespace

std::uint64_t endpoint::allreduce_sum(std::uint64_t v,
                                      const std::vector<int>& members, int me,
                                      std::uint64_t ctx, int base_tag) {
  const int p = static_cast<int>(members.size());
  const auto send_u64 = [&](std::uint64_t x, int dest_group, int tag) {
    auto buf = core::buffer_pool::local().acquire();
    ser::append_bytes(x, buf);
    telemetry::add(telemetry::fast_counter::mpi_sends);
    telemetry::add(telemetry::fast_counter::mpi_send_bytes, buf.size());
    post(members[static_cast<std::size_t>(dest_group)],
         envelope{me, tag, ctx, std::move(buf)});
  };
  const auto recv_u64 = [&](int src_group, int tag) {
    envelope e = recv_match(src_group, tag, ctx);
    telemetry::add(telemetry::fast_counter::mpi_recvs);
    telemetry::add(telemetry::fast_counter::mpi_recv_bytes, e.payload.size());
    const std::uint64_t x = decode_u64(e);
    core::buffer_pool::local().release(std::move(e.payload));
    return x;
  };

  // Binomial reduce to group rank 0 ...
  std::uint64_t acc = v;
  int mask = 1;
  while (mask < p) {
    if ((me & mask) == 0) {
      const int peer_rank = me | mask;
      if (peer_rank < p) acc += recv_u64(peer_rank, base_tag);
    } else {
      send_u64(acc, me & ~mask, base_tag);
      break;
    }
    mask <<= 1;
  }
  // ... then binomial broadcast of the total back out (tag block +1 keeps
  // the two phases unambiguous even at P = 2).
  mask = 1;
  while (mask < p) mask <<= 1;
  if (me != 0) {
    int m = 1;
    while ((me & m) == 0) m <<= 1;
    acc = recv_u64(me & ~m, base_tag + 1);
    mask = m;
  }
  for (int m = mask >> 1; m > 0; m >>= 1) {
    if ((me & (m - 1)) == 0 && (me | m) < p && (me & m) == 0) {
      send_u64(acc, me | m, base_tag + 1);
    }
  }
  return acc;
}

void endpoint::publish_stats(std::uint64_t iprobe_calls,
                             std::uint64_t iprobe_draws,
                             std::uint64_t iprobe_misses) const {
  const std::string prefix = std::string("transport.") +
                             std::string(to_string(kind())) + ".";
  telemetry::count(prefix + "posts",
                   stats_.posts.load(std::memory_order_relaxed));
  telemetry::count(prefix + "post_bytes",
                   stats_.post_bytes.load(std::memory_order_relaxed));
  telemetry::count(prefix + "iprobe_calls", iprobe_calls);
  telemetry::count(prefix + "iprobe_draws", iprobe_draws);
  telemetry::count(prefix + "iprobe_misses", iprobe_misses);
}

}  // namespace ygm::transport
