// The transport substrate interface: what mail_slot, comm, and the runtime
// need from a communication backend, and nothing more.
//
// One `endpoint` object per rank per run. It owns the rank's receive side
// (a mail_slot matching engine) and a per-peer send `channel` for every
// other rank. The contract (docs/TRANSPORT.md):
//
//   * post() is eager but *bounded*: the payload is framed and either
//     delivered (inproc) or queued on the peer channel (socket). Each
//     channel enforces an outbound byte cap (outq_cap_bytes(), YGM_OUTQ_CAP
//     _BYTES, 0 disables): at the cap the socket backend blocks acceptance
//     until the wire drains (pumping its own receive side meanwhile, so two
//     mutually-flooding ranks cannot deadlock), and the inproc backend
//     applies a bounded wait on the destination slot's queued bytes. The
//     payload vector is taken by value and recycled through
//     core::buffer_pool when the bytes are off this rank's hands, so the
//     zero-copy packet discipline survives the seam.
//   * per-(source, context) delivery order is FIFO (MPI non-overtaking);
//     cross-source order is unspecified.
//   * recv/probe semantics are mail_slot's, chaos hooks included: both
//     backends share the engine, so a chaos seed reproduces the same fault
//     pattern on either.
//   * collective hooks (barrier, allreduce_sum) exist so a backend with a
//     native collective fabric can override them; the defaults run
//     dissemination/binomial algorithms over post/recv on a caller-supplied
//     context + tag block. comm::barrier and the termination detector's
//     global sum delegate here.
//
// Backends today: transport/inproc/ (threads as ranks, one process),
// transport/socket/ (one process per rank over Unix-domain sockets), and
// transport/shm/ (one process per rank over shared-memory SPSC rings).
// Selection is a runtime choice: mpisim::run takes a backend argument and
// defaults to the YGM_TRANSPORT environment variable.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "transport/envelope.hpp"
#include "transport/types.hpp"

namespace ygm::transport {

enum class backend_kind {
  inproc,  ///< threads as ranks inside one process (the original simulator)
  socket,  ///< one OS process per rank over Unix-domain sockets
  shm,     ///< one OS process per rank over shared-memory SPSC rings
};

std::string_view to_string(backend_kind k) noexcept;

/// Parse a backend name ("inproc" | "socket" | "shm"); nullopt on anything
/// else.
std::optional<backend_kind> backend_from_name(std::string_view name) noexcept;

/// What a backend lets node-local ranks share, ordered weakest to
/// strongest. The hybrid mailbox keys its local fast paths off this:
/// `shared_address_space` enables the raw-pointer zero-copy inbox handoff,
/// `node_local_map` enables the per-record direct handoff over shared
/// mappings (bytes cross once through a mapped ring, skipping the packet
/// coalescing/framing layer), `none` forces the serializing packet path for
/// every hop.
enum class locality_level {
  none,                  ///< ranks share nothing mappable (socket)
  node_local_map,        ///< ranks exchange bytes via shared mappings (shm)
  shared_address_space,  ///< raw pointers valid across ranks (inproc)
};

/// The backend named by YGM_TRANSPORT, defaulting to inproc when the
/// variable is unset or empty. Throws ygm::error on an unknown name (a typo
/// silently falling back to inproc would fake multi-process coverage).
backend_kind backend_from_env();

/// Channel-level outbound byte cap, the transport-layer floor under the
/// mailbox credit budget (docs/BACKPRESSURE.md). Resolution: launch
/// override (run_options::outq_cap_bytes via set_outq_cap_bytes) >
/// YGM_OUTQ_CAP_BYTES > 4 MiB default; 0 disables the cap and restores the
/// historical unbounded-queue behaviour.
std::size_t outq_cap_bytes() noexcept;

/// Override the cap process-wide (launch plumbing; set before worlds come
/// up so forked socket children inherit it).
void set_outq_cap_bytes(std::size_t cap) noexcept;

/// One rank's view of the path toward one peer. post() frames the envelope
/// and moves it toward the peer's mail_slot. It is eager below the
/// channel's outbound cap; at the cap a slow peer stalls the caller
/// (bounded-memory semantics — see outq_cap_bytes()) instead of growing
/// the queue without bound.
class channel {
 public:
  virtual ~channel() = default;
  virtual void post(envelope&& e) = 0;
};

/// Per-endpoint transport counters, published into the owning rank's
/// telemetry lane at endpoint teardown under "transport.<backend>.*" (plus
/// the slot's probe counters — see mail_slot::probe_stats). Backends may
/// extend the set (the socket backend adds wire.* counters). Atomic
/// (relaxed — they are counters, not synchronization) because the progress
/// engine posts through the same endpoint rank threads post through.
struct endpoint_stats {
  std::atomic<std::uint64_t> posts{0};  ///< envelopes posted (self included)
  std::atomic<std::uint64_t> post_bytes{0};  ///< payload bytes posted
};

class endpoint {
 public:
  virtual ~endpoint() = default;

  virtual backend_kind kind() const noexcept = 0;
  virtual int world_rank() const noexcept = 0;
  virtual int world_size() const noexcept = 0;

  /// What node-local ranks share on this backend (see locality_level).
  /// Defaults to none — the safe answer for any backend with OS-process or
  /// remote ranks; inproc answers shared_address_space, shm answers
  /// node_local_map.
  virtual locality_level locality() const noexcept {
    return locality_level::none;
  }

  /// True when every rank of the world lives in this process, so raw
  /// pointers can be exchanged between ranks and dereferenced (the hybrid
  /// mailbox's zero-copy node-local inbox handoff relies on this).
  bool shared_address_space() const noexcept {
    return locality() == locality_level::shared_address_space;
  }

  /// The send channel toward `dest` (world rank; dest == world_rank() is
  /// valid and loops back into this rank's own slot).
  virtual channel& peer(int dest) = 0;

  /// Convenience: frame-and-send toward a world rank, with stats.
  void post(int dest, envelope&& e);

  // ------------------------------------------------- receive side (own slot)
  //
  // src is a *group* rank as stored in envelope::src (or any_source); the
  // endpoint only matches, it does not translate ranks.

  /// Blocking matched receive; throws ygm::error once the world aborts.
  virtual envelope recv_match(int src, int tag, std::uint64_t ctx) = 0;
  virtual std::optional<envelope> try_recv_match(int src, int tag,
                                                 std::uint64_t ctx) = 0;
  /// Nonblocking probe; the one operation chaos may turn into a false
  /// negative.
  virtual std::optional<status> iprobe(int src, int tag, std::uint64_t ctx) = 0;
  /// Blocking probe (miss-immune, like recv).
  virtual status probe(int src, int tag, std::uint64_t ctx) = 0;
  /// Queued unreceived messages on this rank, across all contexts.
  virtual std::size_t pending() = 0;

  // ------------------------------------------------------------ world hooks

  /// Seconds since this world's transport came up (MPI_Wtime deltas).
  virtual double wtime() const = 0;

  /// Poison the world: every rank blocked in transport wakes with
  /// ygm::error. Called when a rank function throws so the rest of the
  /// world does not deadlock.
  virtual void abort_world() = 0;

  /// Donated progress: called from the progress engine thread while ranks
  /// compute. A backend with wire state to service (the socket backend's
  /// send queues and receive pump) overrides this to advance it without
  /// blocking; returns true if any bytes moved. The default no-op is
  /// correct for backends whose post() completes delivery synchronously
  /// (inproc). Overrides MUST be safe to call concurrently with the owning
  /// rank's own endpoint calls — try-lock and bail beats blocking the rank.
  virtual bool progress_hook() { return false; }

  // ------------------------------------------------------- collective hooks
  //
  // `members` maps group rank -> world rank, `me` is this rank's group
  // rank; rounds use tags base_tag .. base_tag+63 on context `ctx` (the
  // caller's collective plane). Defaults below are backend-agnostic p2p
  // algorithms; a backend with a native fabric may override.

  /// Dissemination barrier, O(log P) rounds.
  virtual void barrier(const std::vector<int>& members, int me,
                       std::uint64_t ctx, int base_tag);

  /// Binomial reduce-to-zero plus broadcast of a u64 sum (the shape the
  /// termination detector's global counter exchange needs).
  virtual std::uint64_t allreduce_sum(std::uint64_t v,
                                      const std::vector<int>& members, int me,
                                      std::uint64_t ctx, int base_tag);

 protected:
  endpoint_stats stats_;

  /// Fold stats_ + the slot's probe counters into this thread's telemetry
  /// lane under "transport.<backend>." — backends call this from their
  /// destructor, on the rank's own thread, before the rank lane unbinds.
  void publish_stats(std::uint64_t iprobe_calls, std::uint64_t iprobe_draws,
                     std::uint64_t iprobe_misses) const;
};

}  // namespace ygm::transport
