// The in-flight message representation of the transport substrate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ygm::transport {

/// A framed packet in a rank's incoming queue. Sends are eager: the sender
/// serializes the payload and posts the envelope toward the destination's
/// mail_slot, so a send never blocks (mirroring MPI's buffered/eager path;
/// the scales this repo runs at keep queues comfortably in memory). The
/// payload vector travels by move end to end — acquired from the sender's
/// buffer_pool, released to the receiver's — so the zero-copy discipline of
/// docs/PERF.md survives the substrate seam on both backends.
struct envelope {
  int src = -1;              ///< sender's group rank within the communicator
  int tag = -1;              ///< user or collective tag
  std::uint64_t ctx = 0;     ///< communicator context id (segregates comms)
  std::vector<std::byte> payload;
};

}  // namespace ygm::transport
