#include "transport/inproc/fabric.hpp"

#include <chrono>
#include <thread>

#include "common/assert.hpp"
#include "telemetry/telemetry.hpp"

namespace ygm::transport::inproc {

fabric::fabric(int nranks) {
  YGM_CHECK(nranks > 0, "fabric size must be positive");
  slots_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    slots_.push_back(std::make_unique<mail_slot>());
  }
  epoch_ = std::chrono::steady_clock::now();
}

void fabric::set_chaos(const chaos_config& cfg) {
  chaos_ = cfg;
  for (int r = 0; r < size(); ++r) {
    slots_[static_cast<std::size_t>(r)]->configure_chaos(cfg, r);
  }
}

mail_slot& fabric::slot(int world_rank) {
  YGM_ASSERT(world_rank >= 0 && world_rank < size());
  return *slots_[static_cast<std::size_t>(world_rank)];
}

double fabric::wtime() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - epoch_).count();
}

void fabric::abort_all() {
  bool expected = false;
  if (aborted_.compare_exchange_strong(expected, true)) {
    for (auto& s : slots_) s->abort();
  }
}

endpoint::endpoint(fabric& f, int rank)
    : fabric_(&f), rank_(rank), slot_(&f.slot(rank)) {
  channels_.reserve(static_cast<std::size_t>(f.size()));
  for (int d = 0; d < f.size(); ++d) channels_.emplace_back(this, d);
}

endpoint::~endpoint() {
  const auto probes = slot_->probe_stats();
  publish_stats(probes.iprobe_calls, probes.draws, probes.misses);
  telemetry::count("transport.inproc.outq_bytes", outq_peak_bytes_);
  telemetry::count("transport.inproc.outq_stalls", outq_stalls_);
  telemetry::count("transport.inproc.outq_overflows", outq_overflows_);
}

void endpoint::post_local(int dest, envelope&& e) {
  mail_slot& dst = fabric_->slot(dest);
  const std::size_t cap = transport::outq_cap_bytes();
  // Self-delivery never waits: the only thread that could drain this slot
  // is the one posting.
  if (cap != 0 && dest != rank_ &&
      dst.queued_bytes() + e.payload.size() > cap && !fabric_->aborted()) {
    ++outq_stalls_;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(100);
    while (dst.queued_bytes() + e.payload.size() > cap &&
           !fabric_->aborted() &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
    if (dst.queued_bytes() + e.payload.size() > cap) ++outq_overflows_;
  }
  const std::size_t depth = dst.queued_bytes() + e.payload.size();
  if (depth > outq_peak_bytes_) outq_peak_bytes_ = depth;
  dst.deliver(std::move(e));
}

transport::channel& endpoint::peer(int dest) {
  YGM_ASSERT(dest >= 0 && dest < world_size());
  return channels_[static_cast<std::size_t>(dest)];
}

envelope endpoint::recv_match(int src, int tag, std::uint64_t ctx) {
  return slot_->recv_match(src, tag, ctx);
}

std::optional<envelope> endpoint::try_recv_match(int src, int tag,
                                                 std::uint64_t ctx) {
  return slot_->try_recv_match(src, tag, ctx);
}

std::optional<status> endpoint::iprobe(int src, int tag, std::uint64_t ctx) {
  return slot_->iprobe(src, tag, ctx);
}

status endpoint::probe(int src, int tag, std::uint64_t ctx) {
  return slot_->probe(src, tag, ctx);
}

std::size_t endpoint::pending() { return slot_->pending(); }

double endpoint::wtime() const { return fabric_->wtime(); }

void endpoint::abort_world() { fabric_->abort_all(); }

}  // namespace ygm::transport::inproc
