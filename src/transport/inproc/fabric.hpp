// Backend #1: the in-process threaded simulator (ranks are threads, one
// address space). This is the original mpisim substrate re-homed behind the
// transport::endpoint interface — behaviour-identical, chaos hooks
// preserved.
//
// A `fabric` is the process-wide shared state of one run: the per-rank mail
// slots, the chaos config, the clock epoch, and abort propagation (what
// `mpisim::world` used to be). Each rank thread then holds one
// `inproc::endpoint`, which sends by locking the destination slot directly —
// no wire, no framing cost, which is exactly why this backend remains the
// default for tests and single-host benchmarks.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "transport/chaos.hpp"
#include "transport/endpoint.hpp"
#include "transport/mail_slot.hpp"

namespace ygm::transport::inproc {

/// Shared by every rank thread of one run invocation. Thread-safe.
class fabric {
 public:
  explicit fabric(int nranks);

  int size() const noexcept { return static_cast<int>(slots_.size()); }

  mail_slot& slot(int world_rank);

  /// Install seeded fault injection on every rank slot. Must run before any
  /// traffic flows (mpisim::run calls this before spawning rank threads).
  void set_chaos(const chaos_config& cfg);

  /// The chaos config in force (defaults to everything-off).
  const chaos_config& chaos() const noexcept { return chaos_; }

  /// Seconds since this fabric was created (like MPI_Wtime deltas).
  double wtime() const;

  /// Poison all slots so blocked ranks wake with an error; called when a
  /// rank function throws, to avoid deadlocking the remaining ranks.
  void abort_all();

  bool aborted() const noexcept {
    return aborted_.load(std::memory_order_acquire);
  }

 private:
  std::vector<std::unique_ptr<mail_slot>> slots_;
  chaos_config chaos_{};
  std::atomic<bool> aborted_{false};
  std::chrono::steady_clock::time_point epoch_;
};

/// One rank thread's endpoint onto a shared fabric. The receive side
/// delegates straight to the rank's slot (whose condition variable is
/// signalled by in-process senders, so blocking receives need no progress
/// pump); the send side is a per-peer channel that locks the destination
/// slot.
class endpoint final : public transport::endpoint {
 public:
  endpoint(fabric& f, int rank);
  ~endpoint() override;

  backend_kind kind() const noexcept override { return backend_kind::inproc; }
  int world_rank() const noexcept override { return rank_; }
  int world_size() const noexcept override { return fabric_->size(); }
  locality_level locality() const noexcept override {
    return locality_level::shared_address_space;
  }

  transport::channel& peer(int dest) override;

  envelope recv_match(int src, int tag, std::uint64_t ctx) override;
  std::optional<envelope> try_recv_match(int src, int tag,
                                         std::uint64_t ctx) override;
  std::optional<status> iprobe(int src, int tag, std::uint64_t ctx) override;
  status probe(int src, int tag, std::uint64_t ctx) override;
  std::size_t pending() override;

  double wtime() const override;
  void abort_world() override;

 private:
  class slot_channel final : public transport::channel {
   public:
    slot_channel() = default;
    slot_channel(endpoint* ep, int dest) : ep_(ep), dest_(dest) {}
    void post(envelope&& e) override { ep_->post_local(dest_, std::move(e)); }

   private:
    endpoint* ep_ = nullptr;
    int dest_ = 0;
  };

  /// Deliver into the destination slot, applying the channel-level outbound
  /// cap as a *soft* bound: when the destination's queued bytes exceed
  /// outq_cap_bytes() the sender waits (bounded) for the receiver to drain,
  /// then proceeds regardless — with threads sharing one address space a
  /// hard block here could deadlock a receiver that is itself blocked
  /// posting, so overruns are counted (outq_overflows) instead of risking
  /// liveness. The mailbox credit layer above provides the hard guarantee.
  void post_local(int dest, envelope&& e);

  fabric* fabric_;
  int rank_;
  mail_slot* slot_;  // fabric_->slot(rank_), cached
  std::vector<slot_channel> channels_;
  // outbound-cap counters, published at teardown
  std::uint64_t outq_peak_bytes_ = 0;
  std::uint64_t outq_stalls_ = 0;
  std::uint64_t outq_overflows_ = 0;
};

}  // namespace ygm::transport::inproc
