#include "transport/mail_slot.hpp"

#include <chrono>
#include <thread>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace ygm::transport {

namespace {

/// Stateless decision hash: fold the fields through splitmix64 so every
/// (seed, salt, fields...) tuple yields an independent 64-bit draw.
template <class... Us>
std::uint64_t chaos_mix(std::uint64_t seed, std::uint64_t salt, Us... fields) {
  std::uint64_t h = splitmix64(seed ^ salt);
  ((h = splitmix64(h ^ static_cast<std::uint64_t>(fields))), ...);
  return h;
}

/// Map a 64-bit hash to [0, 1).
double chaos_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Key identifying one sender stream for the non-overtaking clamp. Collisions
/// only merge ordering constraints (more conservative, still MPI-legal).
std::uint64_t stream_key(int src, std::uint64_t ctx) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) ^
         splitmix64(ctx);
}

/// How long a blocked receiver waits per clock tick while a matching message
/// is chaos-delayed. Small enough that delays mature quickly, large enough
/// to avoid a hot spin.
constexpr auto kDelayedWait = std::chrono::microseconds(50);

}  // namespace

void mail_slot::configure_chaos(const chaos_config& cfg, int owner_rank) {
  std::lock_guard lock(mtx_);
  YGM_CHECK(q_.empty(),
            "chaos must be configured before any traffic reaches the slot");
  chaos_ = cfg;
  rank_ = owner_rank;
}

void mail_slot::maybe_stall() {
  if (!chaos_.stalls_active()) return;
  const std::uint64_t draw =
      stall_draws_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t h = chaos_mix(chaos_.seed, 0x57A11u, rank_, draw);
  if (chaos_unit(h) < chaos_.stall_prob) {
    const std::uint64_t us =
        1 + splitmix64(h) % static_cast<std::uint64_t>(chaos_.max_stall_us);
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
}

void mail_slot::deliver(envelope&& e) {
  maybe_stall();
  {
    std::lock_guard lock(mtx_);
    std::uint64_t visible_at = 0;
    if (chaos_.delays_active()) {
      auto& stream = streams_[stream_key(e.src, e.ctx)];
      const std::uint64_t idx = stream.arrivals++;
      const std::uint64_t h =
          chaos_mix(chaos_.seed, 0xDE1A7u, rank_, e.src, e.ctx, idx);
      if (chaos_unit(h) < chaos_.delay_prob) {
        visible_at =
            clock_ + 1 + splitmix64(h) % chaos_.max_delay_ticks;
      }
      // Non-overtaking: a message may not become visible before an earlier
      // message of the same (source, context) stream.
      visible_at = std::max(visible_at, stream.last_visible_at);
      stream.last_visible_at = visible_at;
    }
    payload_bytes_.fetch_add(e.payload.size(), std::memory_order_relaxed);
    q_.push_back(queued{std::move(e), visible_at});
  }
  cv_.notify_all();
}

mail_slot::match_result mail_slot::find_match_locked(
    int src, int tag, std::uint64_t ctx) const {
  bool delayed = false;
  for (std::size_t i = 0; i < q_.size(); ++i) {
    if (!matches(q_[i].env, src, tag, ctx)) continue;
    if (q_[i].visible_at <= clock_) return {i, delayed};
    delayed = true;
  }
  return {npos, delayed};
}

envelope mail_slot::recv_match(int src, int tag, std::uint64_t ctx) {
  maybe_stall();
  std::unique_lock lock(mtx_);
  for (;;) {
    YGM_CHECK(!aborted_, "transport world aborted while blocked in recv");
    tick_locked();
    const auto m = find_match_locked(src, tag, ctx);
    if (m.index != npos) {
      envelope e = std::move(q_[m.index].env);
      q_.erase(q_.begin() + static_cast<std::ptrdiff_t>(m.index));
      payload_bytes_.fetch_sub(e.payload.size(), std::memory_order_relaxed);
      return e;
    }
    // A delayed match matures with this rank's clock, which only advances
    // here — wake up periodically to age it instead of waiting for a
    // notify that may never come.
    if (m.delayed_match) {
      cv_.wait_for(lock, kDelayedWait);
    } else {
      cv_.wait(lock);
    }
  }
}

std::optional<envelope> mail_slot::try_recv_match(int src, int tag,
                                                  std::uint64_t ctx,
                                                  bool* delayed_match) {
  std::lock_guard lock(mtx_);
  YGM_CHECK(!aborted_, "transport world aborted");
  tick_locked();
  const auto m = find_match_locked(src, tag, ctx);
  if (delayed_match != nullptr) *delayed_match = m.delayed_match;
  if (m.index == npos) return std::nullopt;
  envelope e = std::move(q_[m.index].env);
  q_.erase(q_.begin() + static_cast<std::ptrdiff_t>(m.index));
  payload_bytes_.fetch_sub(e.payload.size(), std::memory_order_relaxed);
  return e;
}

std::optional<status> mail_slot::iprobe(int src, int tag, std::uint64_t ctx) {
  maybe_stall();
  std::lock_guard lock(mtx_);
  YGM_CHECK(!aborted_, "transport world aborted");
  tick_locked();
  ++iprobe_calls_;
  const auto m = find_match_locked(src, tag, ctx);
  if (m.index == npos) return std::nullopt;
  if (chaos_.probe_misses_active() &&
      misses_ < chaos_.max_consecutive_misses) {
    // Draw on a counter of *eligible* probes (matchable message present),
    // not on clock_: the clock also advances on blocking-recv wakeups,
    // whose count is timing-dependent, and the miss pattern must be a pure
    // function of the seed and the probe stream.
    const std::uint64_t h =
        chaos_mix(chaos_.seed, 0x1970BEu, rank_, probe_draws_++);
    if (chaos_unit(h) < chaos_.iprobe_miss_prob) {
      // MPI-legal weak progress: report no message although one is
      // matchable. The consecutive-miss cap keeps repeated probing live.
      ++misses_;
      ++miss_total_;
      return std::nullopt;
    }
  }
  misses_ = 0;
  const envelope& e = q_[m.index].env;
  return status{e.src, e.tag, e.payload.size()};
}

std::optional<status> mail_slot::try_probe(int src, int tag, std::uint64_t ctx,
                                           bool* delayed_match) {
  std::lock_guard lock(mtx_);
  YGM_CHECK(!aborted_, "transport world aborted");
  tick_locked();
  const auto m = find_match_locked(src, tag, ctx);
  if (delayed_match != nullptr) *delayed_match = m.delayed_match;
  if (m.index == npos) return std::nullopt;
  const envelope& e = q_[m.index].env;
  return status{e.src, e.tag, e.payload.size()};
}

status mail_slot::probe(int src, int tag, std::uint64_t ctx) {
  maybe_stall();
  std::unique_lock lock(mtx_);
  for (;;) {
    YGM_CHECK(!aborted_, "transport world aborted while blocked in probe");
    tick_locked();
    const auto m = find_match_locked(src, tag, ctx);
    if (m.index != npos) {
      const envelope& e = q_[m.index].env;
      return status{e.src, e.tag, e.payload.size()};
    }
    if (m.delayed_match) {
      cv_.wait_for(lock, kDelayedWait);
    } else {
      cv_.wait(lock);
    }
  }
}

std::size_t mail_slot::pending() const {
  std::lock_guard lock(mtx_);
  return q_.size();
}

void mail_slot::abort() {
  {
    std::lock_guard lock(mtx_);
    aborted_ = true;
  }
  cv_.notify_all();
}

mail_slot::probe_counters mail_slot::probe_stats() const {
  std::lock_guard lock(mtx_);
  return probe_counters{iprobe_calls_, probe_draws_, miss_total_};
}

}  // namespace ygm::transport
