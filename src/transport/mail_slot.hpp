// Per-rank incoming-message queue with MPI-style matching.
//
// This is the matching engine both transport backends share: the inproc
// backend delivers into it from sender threads, the socket backend delivers
// into it from its progress pump as frames complete. Keeping one engine
// keeps the matching semantics — and the chaos fault patterns, which hash
// from slot-local state — bitwise identical across backends.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "transport/chaos.hpp"
#include "transport/envelope.hpp"
#include "transport/types.hpp"

namespace ygm::transport {

/// One rank's incoming mailbox. Senders call deliver(); the owning rank
/// matches messages by (source, tag, context), with any_source/any_tag
/// wildcards. Matching scans the queue in arrival order, which preserves
/// MPI's non-overtaking guarantee per (source, context): messages from one
/// sender are delivered in the order they were sent.
///
/// With a chaos config installed (configure_chaos), the slot additionally
/// injects MPI-legal adversity: arriving messages may stay invisible to
/// matching for a bounded number of this rank's matching operations
/// (per-source order preserved, cross-source order scrambled), iprobe may
/// report false negatives a bounded number of times in a row, and messaging
/// operations may stall briefly. All decisions are hashes of
/// (seed, rank, source, context, stream index), so a seed reproduces the
/// same fault pattern for the same message streams.
///
/// abort() poisons the slot so that a rank blocked in recv/probe wakes up
/// and throws instead of deadlocking when another rank dies with an
/// exception.
class mail_slot {
 public:
  /// Enqueue a message (called by sender threads or the backend's wire
  /// pump).
  void deliver(envelope&& e);

  /// Blocking matched receive; removes and returns the first match.
  /// Throws ygm::error if the world has been aborted. Only usable when
  /// deliverers run concurrently with the receiver (inproc backend); a
  /// single-threaded backend drives try_recv_match from its progress loop
  /// instead.
  envelope recv_match(int src, int tag, std::uint64_t ctx);

  /// Nonblocking matched receive. When `delayed_match` is non-null it is
  /// set to true iff a matching message exists that is merely
  /// chaos-delayed — a polling backend uses that to tick the clock promptly
  /// (maturing the delay) instead of sleeping a full poll interval.
  std::optional<envelope> try_recv_match(int src, int tag, std::uint64_t ctx,
                                         bool* delayed_match = nullptr);

  /// Nonblocking probe: peek at the first match without removing it. Under
  /// chaos this is the only operation allowed to lie (bounded false
  /// negatives).
  std::optional<status> iprobe(int src, int tag, std::uint64_t ctx);

  /// Nonblocking peek that never takes chaos misses (the building block for
  /// a polling backend's *blocking* probe, which must be miss-immune just
  /// like recv). `delayed_match` as in try_recv_match.
  std::optional<status> try_probe(int src, int tag, std::uint64_t ctx,
                                  bool* delayed_match = nullptr);

  /// Blocking probe. Same threading caveat as recv_match.
  status probe(int src, int tag, std::uint64_t ctx);

  /// Number of queued (unreceived) messages, across all contexts. Counts
  /// chaos-delayed messages too (they have been sent, just not yet "seen").
  std::size_t pending() const;

  /// Payload bytes currently queued (unreceived), across all contexts.
  /// Lock-free (relaxed atomic) so a *sender* can consult the destination's
  /// queue depth for backpressure without contending on the slot mutex.
  std::size_t queued_bytes() const noexcept {
    return payload_bytes_.load(std::memory_order_relaxed);
  }

  /// Install fault injection for this slot; `owner_rank` diversifies the
  /// per-rank hash streams. Must be called before any traffic flows
  /// (backends do this during endpoint setup).
  void configure_chaos(const chaos_config& cfg, int owner_rank);

  /// Wake all blocked operations with an error (world teardown on failure).
  void abort();

  /// Cumulative probe behaviour, for the endpoint's per-backend telemetry
  /// lane (docs/TRANSPORT.md §Observability). `draws` counts the eligible
  /// miss draws taken (iprobe calls that had a matchable message while
  /// misses were armed) and `misses` the false negatives actually injected;
  /// `iprobe_calls` counts every iprobe regardless of queue state.
  struct probe_counters {
    std::uint64_t iprobe_calls = 0;
    std::uint64_t draws = 0;
    std::uint64_t misses = 0;
  };
  probe_counters probe_stats() const;

 private:
  struct queued {
    envelope env;
    std::uint64_t visible_at = 0;  ///< tick at which matching may see it
  };

  /// Per-(source, context) chaos bookkeeping: how many messages this stream
  /// has delivered (the deterministic per-message index) and the visibility
  /// deadline of its latest message (non-overtaking clamp).
  struct stream_state {
    std::uint64_t arrivals = 0;
    std::uint64_t last_visible_at = 0;
  };

  static bool matches(const envelope& e, int src, int tag, std::uint64_t ctx) {
    return e.ctx == ctx && (src == any_source || e.src == src) &&
           (tag == any_tag || e.tag == tag);
  }

  /// First *visible* match in q_ (npos when none), plus whether a matching
  /// message exists that is merely chaos-delayed — blocked callers use that
  /// to age the delay with a timed wait instead of sleeping forever.
  struct match_result {
    std::size_t index;
    bool delayed_match;
  };
  match_result find_match_locked(int src, int tag, std::uint64_t ctx) const;

  /// Advance this rank's matching-operation clock (matures delayed
  /// messages). Caller holds mtx_.
  void tick_locked() { ++clock_; }

  /// Maybe sleep (scheduling jitter). Called WITHOUT mtx_ held.
  void maybe_stall();

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  mutable std::mutex mtx_;
  mutable std::condition_variable cv_;
  std::deque<queued> q_;
  std::atomic<std::size_t> payload_bytes_{0};  ///< sum of q_ payload sizes
  bool aborted_ = false;

  // ------------------------------------------------------------- chaos
  chaos_config chaos_{};  // default: everything off
  int rank_ = 0;
  std::uint64_t clock_ = 0;    ///< matching operations performed
  std::uint32_t misses_ = 0;   ///< consecutive iprobe false negatives
  std::uint64_t probe_draws_ = 0;  ///< eligible iprobe miss draws taken
  std::uint64_t iprobe_calls_ = 0;  ///< every iprobe (telemetry only)
  std::uint64_t miss_total_ = 0;    ///< false negatives injected (telemetry)
  std::unordered_map<std::uint64_t, stream_state> streams_;
  std::atomic<std::uint64_t> stall_draws_{0};
};

}  // namespace ygm::transport
