#include "transport/proc/launch.hpp"

#include <dirent.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <map>
#include <tuple>
#include <utility>

#include "common/assert.hpp"
#include "ser/serialize.hpp"
#include "telemetry/live.hpp"
#include "telemetry/telemetry.hpp"

namespace ygm::transport::proc {

namespace {

// ------------------------------------------------- telemetry lane shipping

using counters_t = std::map<std::string, std::uint64_t, std::less<>>;
using gauges_t = std::map<std::string, double, std::less<>>;
using histo_parts_t =
    std::tuple<std::array<std::uint64_t, telemetry::histogram::num_buckets>,
               std::uint64_t, double, double, double>;
using histos_t = std::map<std::string, histo_parts_t, std::less<>>;
// kind, ts_us, dur_us, vtime_us, arg0, arg1, name, arg0_name, arg1_name
// (name ids index the shipped names table; no_name passes through).
using wire_event_t =
    std::tuple<std::uint8_t, double, double, double, std::uint64_t,
               std::uint64_t, std::uint32_t, std::uint32_t, std::uint32_t>;
using lane_snapshot_t =
    std::tuple<counters_t, gauges_t, histos_t, std::vector<std::string>,
               std::vector<wire_event_t>>;

std::vector<std::byte> snapshot_lane(telemetry::recorder& rec) {
  rec.fold_fast_metrics();
  lane_snapshot_t snap;
  auto& [counters, gauges, histos, names, events] = snap;
  for (const auto& [k, v] : rec.metrics().counters()) counters.emplace(k, v);
  for (const auto& [k, v] : rec.metrics().gauges()) gauges.emplace(k, v);
  for (const auto& [k, h] : rec.metrics().histos()) {
    histos.emplace(k, histo_parts_t{h.buckets(), h.count(), h.sum(), h.min(),
                                    h.max()});
  }
  names = rec.names();
  events.reserve(rec.ring().size());
  rec.ring().for_each([&](const telemetry::trace_event& e) {
    events.emplace_back(static_cast<std::uint8_t>(e.kind), e.ts_us, e.dur_us,
                        e.vtime_us, e.arg0, e.arg1, e.name, e.arg0_name,
                        e.arg1_name);
  });
  return ser::to_bytes(snap);
}

void absorb_lane(telemetry::recorder& rec, std::span<const std::byte> blob) {
  const auto snap = ser::from_bytes<lane_snapshot_t>(blob);
  const auto& [counters, gauges, histos, names, events] = snap;
  for (const auto& [k, v] : counters) rec.metrics().counter(k) += v;
  for (const auto& [k, v] : gauges) {
    double& g = rec.metrics().gauge(k);
    if (v > g) g = v;
  }
  for (const auto& [k, parts] : histos) {
    const auto& [buckets, count, sum, mn, mx] = parts;
    rec.metrics().histo(k).merge(
        telemetry::histogram::from_parts(buckets, count, sum, mn, mx));
  }
  const auto remap = [&](std::uint32_t id) {
    if (id == telemetry::no_name || id >= names.size()) {
      return telemetry::no_name;
    }
    return rec.intern(names[id]);
  };
  for (const auto& we : events) {
    telemetry::trace_event e;
    e.kind = static_cast<telemetry::event_kind>(std::get<0>(we));
    e.ts_us = std::get<1>(we);
    e.dur_us = std::get<2>(we);
    e.vtime_us = std::get<3>(we);
    e.arg0 = std::get<4>(we);
    e.arg1 = std::get<5>(we);
    e.name = remap(std::get<6>(we));
    e.arg0_name = remap(std::get<7>(we));
    e.arg1_name = remap(std::get<8>(we));
    rec.push(e);
  }
}

// ------------------------------------------------------------ pipe framing

// status, error message, rank result, telemetry lane snapshot
using child_report_t = std::tuple<std::uint8_t, std::string,
                                  std::vector<std::byte>, std::vector<std::byte>>;

void write_fully(int fd, const std::byte* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return;  // parent died; nothing useful left to do
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

// ------------------------------------------------------- rendezvous dir

std::string make_rendezvous_dir(const std::string& prefix) {
  const char* tmp = std::getenv("TMPDIR");
  std::string templ = std::string(tmp != nullptr && *tmp != '\0' ? tmp : "/tmp") +
                      "/" + prefix + "-XXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  YGM_CHECK(mkdtemp(buf.data()) != nullptr,
            std::string("mkdtemp failed: ") + std::strerror(errno));
  return std::string(buf.data());
}

void remove_rendezvous_dir(const std::string& dir) {
  DIR* d = opendir(dir.c_str());
  if (d != nullptr) {
    while (dirent* ent = readdir(d)) {
      const std::string name = ent->d_name;
      if (name == "." || name == "..") continue;
      (void)::unlink((dir + "/" + name).c_str());
    }
    closedir(d);
  }
  (void)::rmdir(dir.c_str());
}

bool is_abort_echo(const std::string& msg) {
  // Ranks that died *because* the world was poisoned report the generic
  // abort text; the rank that started it carries the root cause.
  return msg.find("world aborted") != std::string::npos;
}

}  // namespace

std::vector<std::vector<std::byte>> launch(
    int nranks, const std::optional<chaos_config>& chaos,
    const std::string& dir_hint, const launch_hooks& hooks,
    const std::function<std::vector<std::byte>(transport::endpoint&)>& body) {
  YGM_CHECK(nranks > 0,
            hooks.backend_name + " launch requires a positive rank count");
  YGM_CHECK(static_cast<bool>(hooks.make_endpoint),
            hooks.backend_name + " launch needs an endpoint factory");

  const std::string dir =
      dir_hint.empty() ? make_rendezvous_dir(hooks.dir_prefix) : dir_hint;
  const bool own_dir = dir_hint.empty();
  const chaos_config* chaos_ptr =
      chaos.has_value() && chaos->enabled() ? &*chaos : nullptr;

  telemetry::session* const tsess = telemetry::global();
  const int tworld = tsess != nullptr ? tsess->begin_world(nranks) : -1;

  // All pipes exist before the first fork so each child can close every
  // descriptor that is not its own write end — otherwise a sibling holding
  // an inherited write end would keep a pipe from ever reaching EOF.
  std::vector<std::array<int, 2>> pipes(static_cast<std::size_t>(nranks));
  for (auto& p : pipes) {
    YGM_CHECK(::pipe(p.data()) == 0,
              std::string("pipe failed: ") + std::strerror(errno));
  }

  // Children inherit a copy of the parent's stdio buffers and flush them on
  // exit; drain them now so pre-run output (bench banners etc.) is not
  // replayed once per rank.
  std::fflush(nullptr);

  std::vector<pid_t> pids(static_cast<std::size_t>(nranks), -1);
  for (int r = 0; r < nranks; ++r) {
    const pid_t pid = ::fork();
    YGM_CHECK(pid >= 0, std::string("fork failed: ") + std::strerror(errno));
    if (pid > 0) {
      pids[static_cast<std::size_t>(r)] = pid;
      continue;
    }

    // ----------------------------------------------------------- child
    for (int i = 0; i < nranks; ++i) {
      ::close(pipes[static_cast<std::size_t>(i)][0]);
      if (i != r) ::close(pipes[static_cast<std::size_t>(i)][1]);
    }
    const int out_fd = pipes[static_cast<std::size_t>(r)][1];

    // Advertise statusz endpoints through the rendezvous directory: every
    // child binds its introspection socket next to the rank rendezvous
    // files, so ygm_top can discover the whole job from the one directory.
    telemetry::live::set_statusz_dir_hint(dir);

    std::uint8_t rank_status = 0;
    std::string errmsg;
    std::vector<std::byte> result;
    {
      std::optional<telemetry::rank_scope> tscope;
      if (tsess != nullptr) tscope.emplace(*tsess, tworld, r);
      {
        telemetry::span rank_span("rank.main");
        try {
          auto ep = hooks.make_endpoint(dir, r, nranks, chaos_ptr);
          try {
            result = body(*ep);
          } catch (...) {
            ep->abort_world();
            throw;
          }
        } catch (const std::exception& e) {
          rank_status = 1;
          errmsg = e.what();
        } catch (...) {
          rank_status = 1;
          errmsg = "unknown error in " + hooks.backend_name + " rank";
        }
      }  // rank.main span recorded; endpoint stats published to the lane
    }
    std::vector<std::byte> tblob;
    if (tsess != nullptr) {
      tblob = snapshot_lane(tsess->rank_recorder(tworld, r));
    }
    const auto report = ser::to_bytes(
        child_report_t{rank_status, errmsg, std::move(result), std::move(tblob)});
    write_fully(out_fd, report.data(), report.size());
    ::close(out_fd);
    std::fflush(nullptr);
    ::_exit(0);
  }

  // ----------------------------------------------------------- parent
  for (int r = 0; r < nranks; ++r) ::close(pipes[static_cast<std::size_t>(r)][1]);

  // Drain every pipe to EOF before reaping: a child blocked writing a large
  // report into a full pipe must never deadlock against a parent blocked in
  // waitpid.
  std::vector<std::vector<std::byte>> raw(static_cast<std::size_t>(nranks));
  std::vector<pollfd> pfds;
  std::vector<int> pfd_rank;
  for (;;) {
    pfds.clear();
    pfd_rank.clear();
    for (int r = 0; r < nranks; ++r) {
      const int fd = pipes[static_cast<std::size_t>(r)][0];
      if (fd < 0) continue;
      pfds.push_back(pollfd{fd, POLLIN, 0});
      pfd_rank.push_back(r);
    }
    if (pfds.empty()) break;
    const int n = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), -1);
    if (n < 0 && errno == EINTR) continue;
    YGM_CHECK(n >= 0, std::string("poll failed: ") + std::strerror(errno));
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      auto& fd = pipes[static_cast<std::size_t>(pfd_rank[i])][0];
      std::byte buf[64 * 1024];
      const ssize_t got = ::read(fd, buf, sizeof(buf));
      if (got > 0) {
        auto& dst = raw[static_cast<std::size_t>(pfd_rank[i])];
        dst.insert(dst.end(), buf, buf + got);
      } else if (got == 0 || (got < 0 && errno != EINTR && errno != EAGAIN)) {
        ::close(fd);
        fd = -1;
      }
    }
  }

  std::vector<int> exit_codes(static_cast<std::size_t>(nranks), -1);
  for (int r = 0; r < nranks; ++r) {
    int st = 0;
    while (::waitpid(pids[static_cast<std::size_t>(r)], &st, 0) < 0 &&
           errno == EINTR) {
    }
    exit_codes[static_cast<std::size_t>(r)] =
        WIFEXITED(st) ? WEXITSTATUS(st) : 128 + WTERMSIG(st);
  }

  // Backend sweep first (it may unlink artifacts *inside* dir left by
  // abnormally-dying children), then the directory itself.
  if (hooks.post_reap) hooks.post_reap(dir, nranks);
  if (own_dir) remove_rendezvous_dir(dir);

  // Parse reports; absorb telemetry even from failed ranks (their lanes
  // show where the failure happened).
  std::vector<std::vector<std::byte>> results(static_cast<std::size_t>(nranks));
  std::string first_error;
  std::string first_real_error;  // not just an echo of the world abort
  for (int r = 0; r < nranks; ++r) {
    const auto& blob = raw[static_cast<std::size_t>(r)];
    std::string msg;
    if (blob.empty()) {
      msg = hooks.backend_name + " rank " + std::to_string(r) +
            " terminated without reporting (exit code " +
            std::to_string(exit_codes[static_cast<std::size_t>(r)]) + ")";
    } else {
      try {
        auto report = ser::from_bytes<child_report_t>(
            {blob.data(), blob.size()});
        auto& [st, err, result, tblob] = report;
        if (tsess != nullptr && !tblob.empty()) {
          absorb_lane(tsess->rank_recorder(tworld, r),
                      {tblob.data(), tblob.size()});
        }
        if (st == 0) {
          results[static_cast<std::size_t>(r)] = std::move(result);
        } else {
          msg = std::move(err);
        }
      } catch (const std::exception& e) {
        msg = hooks.backend_name + " rank " + std::to_string(r) +
              " sent a corrupt report: " + e.what();
      }
    }
    if (!msg.empty()) {
      if (first_error.empty()) first_error = msg;
      if (first_real_error.empty() && !is_abort_echo(msg)) {
        first_real_error = msg;
      }
    }
  }
  if (!first_error.empty()) {
    throw ygm::error(first_real_error.empty() ? first_error
                                              : first_real_error);
  }
  return results;
}

}  // namespace ygm::transport::proc
