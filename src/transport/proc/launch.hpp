// Generic rank-0 rendezvous/launch helper for process-per-rank transport
// backends: fork one OS process per rank, rendezvous them over a shared
// directory, and collect per-rank results and telemetry back in the parent.
// The socket and shm backends are both thin wrappers over this — they
// differ only in the endpoint they construct over the rendezvous directory
// and in what the parent sweeps up afterwards (socket files vs. orphaned
// shm segments).
//
// Result channel: one pipe per rank. A child runs the rank body, then ships
// a single framed blob — status, error text, the body's result bytes, and a
// telemetry lane snapshot — and _exits without returning through the
// parent's stack. The parent drains every pipe to EOF (before waiting, so a
// child blocked on a full pipe cannot deadlock the join), reaps the
// children, absorbs the telemetry lanes into the installed session, and
// rethrows the first real rank error.
//
// Telemetry across the fork: the parent opens the world's lane group
// *before* forking, so every child inherits a session whose (world, rank)
// indices agree with the parent's; a child records into its copy-on-write
// recorder, serializes the lane (names, metrics, retained ring events) into
// its result blob, and the parent splices it into the original recorder —
// name ids re-interned, counters summed, gauges maxed, histograms merged.
// The session epoch is a steady_clock point captured pre-fork, so child
// timestamps land on the parent's timeline unadjusted.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "transport/chaos.hpp"
#include "transport/endpoint.hpp"

namespace ygm::transport::proc {

/// What a backend plugs into the shared fork-per-rank machinery.
struct launch_hooks {
  /// Name used in error messages ("socket rank 3 terminated ...").
  std::string backend_name = "proc";

  /// mkdtemp template prefix for a fresh rendezvous directory
  /// ("ygm-sock" -> $TMPDIR/ygm-sock-XXXXXX). The directory doubles as the
  /// statusz endpoint directory for every child, so live tooling discovers
  /// the whole job from it.
  std::string dir_prefix = "ygm-proc";

  /// Build the child's endpoint over the rendezvous directory. Runs in the
  /// forked child; blocking until the world has rendezvoused is the
  /// factory's business (both backends enforce their own handshake
  /// deadline). `chaos` is non-null only when fault injection is enabled.
  std::function<std::unique_ptr<transport::endpoint>(
      const std::string& dir, int rank, int nranks, const chaos_config* chaos)>
      make_endpoint;

  /// Parent-side sweep after every child has been reaped — the place to
  /// unlink rendezvous artifacts that outlive an abnormally-dying child
  /// (the shm backend unlinks orphaned segments here). Runs whether or not
  /// the ranks succeeded, before the rendezvous directory is removed.
  std::function<void(const std::string& dir, int nranks)> post_reap;
};

/// Run `body` on `nranks` forked processes connected by the hooks' endpoint;
/// returns one result blob per rank, ordered by rank. `dir_hint` names the
/// rendezvous directory ("" = fresh mkdtemp under $TMPDIR, removed
/// afterwards). Throws ygm::error carrying the first failing rank's message
/// if any rank fails.
std::vector<std::vector<std::byte>> launch(
    int nranks, const std::optional<chaos_config>& chaos,
    const std::string& dir_hint, const launch_hooks& hooks,
    const std::function<std::vector<std::byte>(transport::endpoint&)>& body);

}  // namespace ygm::transport::proc
