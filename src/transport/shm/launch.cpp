#include "transport/shm/launch.hpp"

#include <sys/mman.h>

#include <memory>

#include "transport/proc/launch.hpp"
#include "transport/shm/shm_transport.hpp"

namespace ygm::transport::shm {

std::vector<std::vector<std::byte>> launch(
    int nranks, const std::optional<chaos_config>& chaos,
    const std::string& dir_hint,
    const std::function<std::vector<std::byte>(transport::endpoint&)>& body) {
  proc::launch_hooks hooks;
  hooks.backend_name = "shm";
  hooks.dir_prefix = "ygm-shm";
  hooks.make_endpoint = [](const std::string& dir, int rank, int world,
                           const chaos_config* cfg)
      -> std::unique_ptr<transport::endpoint> {
    return std::make_unique<endpoint>(dir, rank, world, cfg);
  };
  hooks.post_reap = [](const std::string& dir, int world) {
    // Healthy ranks unlinked their own segment already (ENOENT here); this
    // catches ranks that died before their endpoint destructor ran.
    for (int r = 0; r < world; ++r) {
      (void)::shm_unlink(segment_name(dir, r).c_str());
    }
  };
  return proc::launch(nranks, chaos, dir_hint, hooks, body);
}

}  // namespace ygm::transport::shm
