// Rank-0 rendezvous/launch helper for the shm backend: fork one OS process
// per rank over the generic machinery in transport/proc/launch.hpp, with
// the rendezvous directory's basename doubling as the shm segment token.
// After reaping children the parent sweeps "/<token>.r<i>" for every rank —
// a child that died abnormally (signal, _exit mid-run) never reaches its
// endpoint destructor's shm_unlink, and /dev/shm space must not leak.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "transport/chaos.hpp"
#include "transport/endpoint.hpp"

namespace ygm::transport::shm {

/// Run `body` on `nranks` forked processes connected by a shm-backend
/// endpoint; returns one result blob per rank, ordered by rank. `dir_hint`
/// names the rendezvous directory ("" = fresh mkdtemp under $TMPDIR,
/// removed afterwards). Throws ygm::error carrying the first failing rank's
/// message if any rank fails.
std::vector<std::vector<std::byte>> launch(
    int nranks, const std::optional<chaos_config>& chaos,
    const std::string& dir_hint,
    const std::function<std::vector<std::byte>(transport::endpoint&)>& body);

}  // namespace ygm::transport::shm
