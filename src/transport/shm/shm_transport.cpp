#include "transport/shm/shm_transport.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <new>
#include <thread>
#include <utility>

#include "common/assert.hpp"
#include "core/buffer_pool.hpp"  // sanctioned upward include (src/CMakeLists.txt)
#include "telemetry/live.hpp"
#include "telemetry/telemetry.hpp"

namespace ygm::transport::shm {

namespace {

double monotonic_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

pair_block* block_at(void* base, int producer) {
  return reinterpret_cast<pair_block*>(
      static_cast<std::byte*>(base) + sizeof(seg_header) +
      static_cast<std::size_t>(producer) * sizeof(pair_block));
}

/// Wake the (single) producer parked on a ring's space doorbell, if any.
/// Pairs with the producer's parked-flag Dekker check: our head store
/// (release) happened before the seq_cst fence, so either the producer's
/// re-check sees the freed space or we see its parked flag and ding it.
void wake_parked_producer(ring_ctrl& c) {
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (c.producer_parked.load(std::memory_order_relaxed) != 0) {
    c.space_seq.fetch_add(1, std::memory_order_release);
    futex_wake(&c.space_seq, 1);
  }
}

}  // namespace

std::string segment_name(const std::string& dir, int rank) {
  const auto slash = dir.find_last_of('/');
  const std::string token =
      slash == std::string::npos ? dir : dir.substr(slash + 1);
  return "/" + token + ".r" + std::to_string(rank);
}

endpoint::endpoint(const std::string& dir, int rank, int nranks,
                   const chaos_config* chaos)
    : rank_(rank), nranks_(nranks) {
  YGM_CHECK(nranks > 0 && rank >= 0 && rank < nranks,
            "shm endpoint rank outside world");
  segments_.resize(static_cast<std::size_t>(nranks));
  out_.resize(static_cast<std::size_t>(nranks));
  in_.resize(static_cast<std::size_t>(nranks));
  channels_.reserve(static_cast<std::size_t>(nranks));
  for (int d = 0; d < nranks; ++d) channels_.emplace_back(this, d);
  handshake(dir, chaos);
  epoch_wtime_ = monotonic_seconds();
}

void endpoint::handshake(const std::string& dir, const chaos_config* chaos) {
  if (chaos != nullptr && chaos->enabled()) {
    slot_.configure_chaos(*chaos, rank_);
  }
  if (nranks_ == 1) return;

  const std::size_t bytes = segment_bytes(nranks_);

  // Create this rank's inbound segment first, so peers' open loops can
  // succeed regardless of arrival order (the mirror of bind-before-connect
  // in the socket handshake). A stale segment with the same name (reused
  // dir_hint after a crash) is unlinked first — each rank only ever creates
  // its own name, so the unlink cannot race a sibling.
  seg_name_ = segment_name(dir, rank_);
  (void)::shm_unlink(seg_name_.c_str());
  const int fd = ::shm_open(seg_name_.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  YGM_CHECK(fd >= 0, std::string("shm_open(create) failed on ") + seg_name_ +
                         ": " + std::strerror(errno));
  YGM_CHECK(::ftruncate(fd, static_cast<off_t>(bytes)) == 0,
            std::string("ftruncate failed on ") + seg_name_ + ": " +
                std::strerror(errno));
  void* base =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  YGM_CHECK(base != MAP_FAILED,
            std::string("mmap failed: ") + std::strerror(errno));

  auto* h = new (base) seg_header;
  h->magic.store(0, std::memory_order_relaxed);
  h->nranks = static_cast<std::uint32_t>(nranks_);
  h->aborted.store(0, std::memory_order_relaxed);
  h->recv_seq.store(0, std::memory_order_relaxed);
  h->recv_parked.store(0, std::memory_order_relaxed);
  for (int p = 0; p < nranks_; ++p) {
    auto* pb = new (block_at(base, p)) pair_block;
    pb->main_ctrl.init();
    pb->spill_ctrl.init();
  }
  // Everything above must be visible before the magic: openers acquire it.
  h->magic.store(seg_magic, std::memory_order_release);
  segments_[static_cast<std::size_t>(rank_)] = {base, bytes, h};
  for (int p = 0; p < nranks_; ++p) {
    if (p == rank_) continue;
    auto* pb = block_at(base, p);
    auto& ip = in_[static_cast<std::size_t>(p)];
    ip.main = ring_view(&pb->main_ctrl, pb->main_data, main_ring_bytes);
    ip.spill = ring_view(&pb->spill_ctrl, pb->spill_data, spill_ring_bytes);
  }

  // Map every peer's segment (we are the producer of our pair_block there),
  // retrying while the file is still appearing or being sized.
  const double deadline = monotonic_seconds() + handshake_timeout_s;
  for (int d = 0; d < nranks_; ++d) {
    if (d == rank_) continue;
    const std::string name = segment_name(dir, d);
    int pfd = -1;
    for (;;) {
      pfd = ::shm_open(name.c_str(), O_RDWR, 0600);
      if (pfd >= 0) break;
      YGM_CHECK(errno == ENOENT || errno == EACCES,
                std::string("shm_open failed on ") + name + ": " +
                    std::strerror(errno));
      YGM_CHECK(monotonic_seconds() < deadline,
                "shm rendezvous timed out waiting for rank " +
                    std::to_string(d));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // ftruncate may not have landed yet; wait for the full size so the map
    // never faults past EOF.
    for (;;) {
      struct stat st{};
      YGM_CHECK(::fstat(pfd, &st) == 0, "fstat failed during shm rendezvous");
      if (static_cast<std::size_t>(st.st_size) >= bytes) break;
      YGM_CHECK(monotonic_seconds() < deadline,
                "shm rendezvous timed out sizing rank " + std::to_string(d));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    void* pbase =
        ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, pfd, 0);
    ::close(pfd);
    YGM_CHECK(pbase != MAP_FAILED,
              std::string("mmap failed: ") + std::strerror(errno));
    auto* ph = reinterpret_cast<seg_header*>(pbase);
    while (ph->magic.load(std::memory_order_acquire) != seg_magic) {
      YGM_CHECK(monotonic_seconds() < deadline,
                "shm rendezvous timed out initializing rank " +
                    std::to_string(d));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    segments_[static_cast<std::size_t>(d)] = {pbase, bytes, ph};
    auto* mine = block_at(pbase, rank_);
    auto& op = out_[static_cast<std::size_t>(d)];
    op.main = ring_view(&mine->main_ctrl, mine->main_data, main_ring_bytes);
    op.spill = ring_view(&mine->spill_ctrl, mine->spill_data, spill_ring_bytes);
  }
}

endpoint::~endpoint() {
  // By teardown the progress engine is forbidden from touching this
  // endpoint (comm_world::~comm_world shut the station down first), but the
  // lock discipline is kept uniform anyway — it costs nothing here.
  std::lock_guard lock(io_mtx_);
  if (nranks_ > 1) {
    const double deadline = monotonic_seconds() + (aborted_ ? 1.0 : 10.0);

    // Orderly teardown: mark fin on every outbound main ring (after the last
    // published frame, so fin-after-data order holds), then keep draining
    // inbound until every peer has said fin too. Unlike the socket backend
    // nothing outbound can be lost here — our published frames live in the
    // CONSUMER's segment, which outlives our mappings — but waiting for the
    // peers' fins guarantees no peer is still posting to us when we stop
    // consuming, all under a deadline so a crashed peer cannot wedge exit.
    for (int d = 0; d < nranks_; ++d) {
      if (d == rank_) continue;
      auto& op = out_[static_cast<std::size_t>(d)];
      op.main.set_fin();
      op.fin_sent = true;
      ding_peer(d);
    }
    for (;;) {
      pump_inbound();
      bool done = true;
      for (int r = 0; r < nranks_; ++r) {
        if (r == rank_) continue;
        if (!in_[static_cast<std::size_t>(r)].fin_seen) done = false;
      }
      if (done || aborted_ || world_marked_aborted() ||
          monotonic_seconds() > deadline) {
        break;
      }
      park_for_inbound(5000);
    }
  }

  const auto probes = slot_.probe_stats();
  publish_stats(probes.iprobe_calls, probes.draws, probes.misses);
  telemetry::count("transport.shm.ring_tx_bytes", ring_tx_bytes_);
  telemetry::count("transport.shm.ring_rx_bytes", ring_rx_bytes_);
  telemetry::count("transport.shm.spill_tx_bytes", spill_tx_bytes_);
  telemetry::count("transport.shm.spill_rx_bytes", spill_rx_bytes_);
  telemetry::count("transport.shm.ring_full_stalls", ring_full_stalls_);
  telemetry::count("transport.shm.outq_stalls", outq_stalls_);
  telemetry::count("transport.shm.outq_bytes", outq_peak_bytes_);
  telemetry::count("transport.shm.futex_parks", futex_parks_);

  // Unlink our own segment; mappings (ours and every producer's) survive
  // the unlink, so stragglers write into orphaned memory harmlessly. The
  // launcher's post_reap sweep covers ranks that never reached this line.
  for (auto& s : segments_) {
    if (s.base != nullptr) ::munmap(s.base, s.bytes);
    s = {};
  }
  if (!seg_name_.empty()) (void)::shm_unlink(seg_name_.c_str());
}

transport::channel& endpoint::peer(int dest) {
  YGM_ASSERT(dest >= 0 && dest < nranks_);
  return channels_[static_cast<std::size_t>(dest)];
}

bool endpoint::world_marked_aborted() const {
  if (nranks_ == 1) return false;
  return own_hdr()->aborted.load(std::memory_order_acquire) != 0;
}

void endpoint::mark_aborted_locked() {
  if (!aborted_) {
    aborted_ = true;
    slot_.abort();
  }
}

void endpoint::publish_outq_gauge() const {
  // Live outbound-depth gauge: published-but-unconsumed ring bytes across
  // peers. Published only from the post path (the rank thread or, under
  // io_mtx_, the engine), keeping a single writer per lane gauge slot.
  std::size_t qb = 0;
  for (const auto& op : out_) {
    if (op.main.valid()) qb += op.main.in_flight() + op.spill.in_flight();
  }
  telemetry::live::gauge_set(telemetry::live::gauge::outq_bytes,
                             static_cast<double>(qb));
}

void endpoint::ding_peer(int dest) {
  auto* h = segments_[static_cast<std::size_t>(dest)].hdr;
  // Dekker partner of park_for_inbound: our tail store (release) precedes
  // this fence, the consumer's parked store precedes its re-check, so one
  // of us must see the other.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (h->recv_parked.load(std::memory_order_relaxed) != 0) {
    h->recv_seq.fetch_add(1, std::memory_order_release);
    futex_wake(&h->recv_seq, 1);
  }
}

void endpoint::park_for_inbound(std::uint32_t timeout_us) {
  if (nranks_ == 1) {
    // Single-rank worlds have no segment (and no producers) — only a
    // chaos-delayed self-send can mature, which needs wall time, not wakes.
    std::this_thread::sleep_for(std::chrono::microseconds(
        std::min<std::uint32_t>(timeout_us, 1000)));
    return;
  }
  auto* h = own_hdr();
  const std::uint32_t seen = h->recv_seq.load(std::memory_order_acquire);
  h->recv_parked.store(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  // Re-check AFTER publishing the parked flag (Dekker): any producer that
  // published before our fence either left visible bytes or will see the
  // flag and ding. The wait stays bounded regardless — a lost wake costs
  // one timeout, never liveness.
  bool ready = h->aborted.load(std::memory_order_relaxed) != 0;
  if (!ready) {
    for (int r = 0; r < nranks_ && !ready; ++r) {
      if (r == rank_) continue;
      const auto& p = in_[static_cast<std::size_t>(r)];
      if (p.main.readable() != 0 ||
          (p.have_spill_hdr && p.spill.readable() != 0) ||
          (p.main.fin() && !p.fin_seen)) {
        ready = true;
      }
    }
  }
  if (!ready) {
    ++futex_parks_;
    futex_wait(&h->recv_seq, seen, timeout_us);
  }
  h->recv_parked.store(0, std::memory_order_relaxed);
}

bool endpoint::wait_for_space(int dest, ring_view& ring, std::size_t need) {
  // Caller holds io_mtx_. Pump our own inbound while waiting so two
  // mutually-flooding ranks drain each other (the consumer we are waiting
  // on may itself be blocked posting to us).
  for (;;) {
    if (aborted_ || world_marked_aborted()) {
      mark_aborted_locked();
      return false;
    }
    if (ring.free_space() >= need) return true;
    pump_inbound();
    if (ring.free_space() >= need) return true;
    auto& c = ring.ctrl();
    const std::uint32_t seen = c.space_seq.load(std::memory_order_acquire);
    c.producer_parked.store(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (ring.free_space() < need &&
        segments_[static_cast<std::size_t>(dest)].hdr->aborted.load(
            std::memory_order_relaxed) == 0) {
      ++futex_parks_;
      futex_wait(&c.space_seq, seen, 1000);
    }
    c.producer_parked.store(0, std::memory_order_relaxed);
  }
}

void endpoint::post_to_peer(int dest, envelope&& e) {
  if (dest == rank_) {
    slot_.deliver(std::move(e));
    return;
  }
  const bool spill = e.payload.size() > inline_payload_max;
  wire_header hdr;
  hdr.kind = static_cast<std::uint32_t>(spill ? frame_kind::spill
                                              : frame_kind::data);
  hdr.payload_len = static_cast<std::uint32_t>(e.payload.size());
  hdr.src = e.src;
  hdr.tag = e.tag;
  hdr.ctx = e.ctx;
  const std::size_t frame_bytes = sizeof(wire_header) + e.payload.size();

  bool cap_stalled = false;
  for (;;) {
    std::unique_lock lock(io_mtx_);
    if (aborted_ || world_marked_aborted()) {
      // World is poisoned: drop the frame; callers surface the error on
      // their next receive (the socket backend's fail_peer clears its queue
      // the same way).
      mark_aborted_locked();
      if (!e.payload.empty()) {
        core::buffer_pool::local().release(std::move(e.payload));
      }
      return;
    }
    auto& op = out_[static_cast<std::size_t>(dest)];
    YGM_CHECK(op.main.valid() && !op.fin_sent, "post after shm teardown");

    // The socket backend's accept rule, with in-flight ring bytes standing
    // in for queued outq bytes: accept when nothing is in flight (a single
    // frame beyond the cap must still pass) or the frame fits under
    // outq_cap_bytes(). The ring's own capacity is the hard floor below.
    const std::size_t cap = transport::outq_cap_bytes();
    const std::size_t in_flight = op.main.in_flight() + op.spill.in_flight();
    if (cap != 0 && in_flight != 0 && in_flight + frame_bytes > cap) {
      if (!cap_stalled) {
        cap_stalled = true;
        ++outq_stalls_;
      }
      pump_inbound();
      publish_outq_gauge();
      lock.unlock();
      // Park on the main ring's space doorbell: the consumer dings it as it
      // frees space. A consumer draining only the spill ring dings the
      // other doorbell, so keep the wait short — worst case one timeout of
      // latency, same order as the socket backend's poll interval.
      auto& c = op.main.ctrl();
      const std::uint32_t seen = c.space_seq.load(std::memory_order_acquire);
      c.producer_parked.store(1, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (op.main.in_flight() + op.spill.in_flight() + frame_bytes > cap &&
          segments_[static_cast<std::size_t>(dest)].hdr->aborted.load(
              std::memory_order_relaxed) == 0) {
        ++futex_parks_;
        futex_wait(&c.space_seq, seen, 2000);
      }
      c.producer_parked.store(0, std::memory_order_relaxed);
      continue;
    }

    if (!spill) {
      if (op.main.free_space() < frame_bytes) {
        ++ring_full_stalls_;
        if (!wait_for_space(dest, op.main, frame_bytes)) {
          if (!e.payload.empty()) {
            core::buffer_pool::local().release(std::move(e.payload));
          }
          return;
        }
      }
      // Header + payload staged together, one release store publishes the
      // whole frame: the consumer never sees a torn size or a header whose
      // payload has not arrived.
      op.main.stage(&hdr, sizeof(hdr));
      if (!e.payload.empty()) op.main.stage(e.payload.data(), e.payload.size());
      ring_tx_bytes_ += op.main.publish();
      if (!e.payload.empty()) {
        core::buffer_pool::local().release(std::move(e.payload));
      }
      ding_peer(dest);
    } else {
      // Spill frame: the header takes the frame's place in main-ring order,
      // then the payload streams through the spill ring in chunks (so
      // payloads larger than the ring still pass). The pooled packet buffer
      // is the memcpy source — no staging copy. The lock is held across the
      // stream: frames toward one peer must not interleave, and we keep
      // pumping our own inbound inside the waits so liveness never depends
      // on releasing it.
      if (op.main.free_space() < sizeof(hdr)) {
        ++ring_full_stalls_;
        if (!wait_for_space(dest, op.main, sizeof(hdr))) {
          core::buffer_pool::local().release(std::move(e.payload));
          return;
        }
      }
      op.main.stage(&hdr, sizeof(hdr));
      ring_tx_bytes_ += op.main.publish();
      ding_peer(dest);
      std::size_t sent = 0;
      while (sent < e.payload.size()) {
        std::size_t room = op.spill.free_space();
        if (room == 0) {
          ++ring_full_stalls_;
          if (!wait_for_space(dest, op.spill, 1)) {
            core::buffer_pool::local().release(std::move(e.payload));
            return;
          }
          room = op.spill.free_space();
        }
        const std::size_t take = std::min(room, e.payload.size() - sent);
        op.spill.stage(e.payload.data() + sent, take);
        spill_tx_bytes_ += op.spill.publish();
        sent += take;
        ding_peer(dest);
      }
      core::buffer_pool::local().release(std::move(e.payload));
    }

    const std::size_t now_in_flight =
        op.main.in_flight() + op.spill.in_flight();
    if (now_in_flight > outq_peak_bytes_) outq_peak_bytes_ = now_in_flight;
    publish_outq_gauge();
    return;
  }
}

bool endpoint::pump_pair(int src, in_pair& p) {
  bool moved = false;
  for (;;) {
    // Finish an in-progress spill first: per-pair frame order is main-ring
    // order, so nothing behind the spill header may be delivered before it.
    if (p.have_spill_hdr) {
      const std::size_t want = p.spill_hdr.payload_len - p.spill_got;
      const std::size_t take = std::min(want, p.spill.readable());
      if (take != 0) {
        p.spill.peek(0, p.spill_payload.data() + p.spill_got, take);
        p.spill.consume(take);
        spill_rx_bytes_ += take;
        p.spill_got += take;
        moved = true;
        wake_parked_producer(p.spill.ctrl());
      }
      if (p.spill_got < p.spill_hdr.payload_len) break;  // resume next pump
      slot_.deliver(envelope{p.spill_hdr.src, p.spill_hdr.tag, p.spill_hdr.ctx,
                             std::move(p.spill_payload)});
      p.spill_payload = {};
      p.have_spill_hdr = false;
      p.spill_got = 0;
      continue;
    }
    if (p.main.readable() < sizeof(wire_header)) break;
    wire_header hdr;
    p.main.peek(0, &hdr, sizeof(hdr));
    if (hdr.kind == static_cast<std::uint32_t>(frame_kind::data)) {
      // Whole-frame publication: the payload is readable the moment the
      // header is. Read it straight into a pooled vector — the buffer that
      // crosses into mail_slot (and later the application's recv) is the
      // one the ring filled.
      std::vector<std::byte> payload;
      if (hdr.payload_len > 0) {
        payload = core::buffer_pool::local().acquire(hdr.payload_len);
        payload.resize(hdr.payload_len);
        p.main.peek(sizeof(hdr), payload.data(), hdr.payload_len);
      }
      p.main.consume(sizeof(hdr) + hdr.payload_len);
      ring_rx_bytes_ += sizeof(hdr) + hdr.payload_len;
      moved = true;
      wake_parked_producer(p.main.ctrl());
      slot_.deliver(envelope{hdr.src, hdr.tag, hdr.ctx, std::move(payload)});
    } else if (hdr.kind == static_cast<std::uint32_t>(frame_kind::spill)) {
      p.main.consume(sizeof(hdr));
      ring_rx_bytes_ += sizeof(hdr);
      moved = true;
      wake_parked_producer(p.main.ctrl());
      p.spill_hdr = hdr;
      p.have_spill_hdr = true;
      p.spill_got = 0;
      p.spill_payload = core::buffer_pool::local().acquire(hdr.payload_len);
      p.spill_payload.resize(hdr.payload_len);
    } else {
      YGM_CHECK(false, "corrupt frame kind in shm ring from rank " +
                           std::to_string(src));
    }
  }
  if (!p.fin_seen && p.main.fin() && p.main.readable() == 0 &&
      !p.have_spill_hdr) {
    p.fin_seen = true;
  }
  return moved;
}

bool endpoint::pump_inbound() {
  if (nranks_ == 1) return false;
  if (!aborted_ && world_marked_aborted()) mark_aborted_locked();
  bool moved = false;
  for (int r = 0; r < nranks_; ++r) {
    if (r == rank_) continue;
    if (pump_pair(r, in_[static_cast<std::size_t>(r)])) moved = true;
  }
  return moved;
}

envelope endpoint::recv_match(int src, int tag, std::uint64_t ctx) {
  // Per-iteration locking, same discipline as the socket backend: the mutex
  // is released between park intervals (and the intervals are short) so a
  // concurrent progress-engine post is never starved for long.
  for (;;) {
    bool delayed = false;
    if (auto e = slot_.try_recv_match(src, tag, ctx, &delayed)) {
      return std::move(*e);
    }
    std::lock_guard lock(io_mtx_);
    if (pump_inbound()) continue;  // fresh deliveries: retry the match now
    YGM_CHECK(delayed || !all_peers_silent(),
              "shm recv would block forever: all peers finished and no "
              "matching message is queued");
    // A chaos-delayed match matures with the slot clock, which ticks on
    // each try above — park briefly so the delay ages instead of waiting a
    // full interval for ring traffic that may never come.
    park_for_inbound(delayed ? 1000 : 10000);
  }
}

std::optional<envelope> endpoint::try_recv_match(int src, int tag,
                                                 std::uint64_t ctx) {
  {
    std::lock_guard lock(io_mtx_);
    pump_inbound();
  }
  return slot_.try_recv_match(src, tag, ctx);
}

std::optional<status> endpoint::iprobe(int src, int tag, std::uint64_t ctx) {
  {
    std::lock_guard lock(io_mtx_);
    pump_inbound();
  }
  return slot_.iprobe(src, tag, ctx);
}

status endpoint::probe(int src, int tag, std::uint64_t ctx) {
  for (;;) {
    bool delayed = false;
    if (auto st = slot_.try_probe(src, tag, ctx, &delayed)) return *st;
    std::lock_guard lock(io_mtx_);
    if (pump_inbound()) continue;
    YGM_CHECK(delayed || !all_peers_silent(),
              "shm probe would block forever: all peers finished and no "
              "matching message is queued");
    park_for_inbound(delayed ? 1000 : 10000);
  }
}

std::size_t endpoint::pending() {
  {
    std::lock_guard lock(io_mtx_);
    pump_inbound();
  }
  return slot_.pending();
}

bool endpoint::progress_hook() {
  // Never block the owning rank: if it is mid-operation, skip this pass.
  std::unique_lock lock(io_mtx_, std::try_to_lock);
  if (!lock.owns_lock()) return false;
  return pump_inbound();
}

double endpoint::wtime() const { return monotonic_seconds() - epoch_wtime_; }

void endpoint::abort_world() {
  {
    std::lock_guard lock(io_mtx_);
    if (!aborted_) {
      aborted_ = true;
      // Poison every mapped segment (peers notice on their next pump or
      // bounded park) and ring every doorbell so parked ranks wake now
      // rather than on timeout.
      for (int r = 0; r < nranks_; ++r) {
        auto* h = segments_[static_cast<std::size_t>(r)].hdr;
        if (h == nullptr) continue;
        h->aborted.store(1, std::memory_order_release);
        h->recv_seq.fetch_add(1, std::memory_order_release);
        futex_wake(&h->recv_seq, 1);
      }
      // Producers of OUR segment may be parked on its space doorbells.
      for (int r = 0; r < nranks_; ++r) {
        if (r == rank_) continue;
        auto& p = in_[static_cast<std::size_t>(r)];
        if (!p.main.valid()) continue;
        p.main.ctrl().space_seq.fetch_add(1, std::memory_order_release);
        futex_wake(&p.main.ctrl().space_seq, 1);
        p.spill.ctrl().space_seq.fetch_add(1, std::memory_order_release);
        futex_wake(&p.spill.ctrl().space_seq, 1);
      }
    }
  }
  slot_.abort();
}

bool endpoint::all_peers_silent() const {
  for (int r = 0; r < nranks_; ++r) {
    if (r == rank_) continue;
    const auto& p = in_[static_cast<std::size_t>(r)];
    if (!p.fin_seen) return false;
    if (p.main.readable() != 0 || p.have_spill_hdr) return false;
  }
  return true;
}

}  // namespace ygm::transport::shm
