// Backend #3: one OS process per rank over shared-memory SPSC rings.
//
// Topology: full mesh of bounded byte rings. Each rank owns ONE shm_open
// segment named "/<token>.r<rank>" (token = basename of the rendezvous
// directory) holding every ring INBOUND to it: a pair_block per producer
// rank with a main ring (whole frames, header + payload published with one
// release store) and a spill ring (payload bytes of frames too large to
// inline). A rank therefore maps nranks segments — its own as the consumer,
// every peer's as a producer — and rendezvous is pure filesystem: the
// creator sizes and initializes its segment then release-stores a magic
// word; openers retry shm_open/fstat until the segment exists at full size
// and the magic is visible, under the same handshake deadline as the socket
// backend.
//
// Wire format: the frame header {kind, payload_len, src, tag, ctx} is
// byte-identical to the socket backend's. A payload at or under
// inline_payload_max rides in the main ring behind its header, staged
// together and published with a single release store — the consumer can
// trust any visible header (sizes never tear) and the whole frame is
// readable the moment the header is. Larger payloads put a spill-kind
// header in the main ring and stream their bytes through the spill ring in
// chunks; pooled packet buffers from the PR 5 hot path are the memcpy
// source and destination on the two sides, so bytes cross the process
// boundary exactly once, with no intermediate serialization or staging
// copy.
//
// Idle ranks park on futexes instead of spinning: a consumer with nothing
// readable publishes a parked flag and waits (bounded) on its segment's
// recv doorbell, which producers bump after publishing; a producer blocked
// on a full ring parks the same way on the ring's space doorbell, which the
// consumer bumps after freeing room. Waits are bounded (lost-wake
// insurance) and every loop re-checks the abort flag, so a crashed peer
// costs latency, never liveness.
//
// Backpressure: the ring's fixed capacity is the hard bound — a producer
// that cannot fit a frame stalls (pumping its own inbound rings meanwhile,
// so two mutually-flooding ranks drain each other instead of deadlocking),
// and transport::outq_cap_bytes() is additionally honoured when it is
// tighter than the ring, mirroring the socket backend's accept rule.
//
// The receive side shares mail_slot with the other backends: the pump
// delivers completed frames into the slot, so all matching/chaos semantics
// come from the one engine and a chaos seed reproduces the same fault
// pattern on any backend.
//
// Failure: abort_world sets an aborted flag in every mapped segment and
// bumps every doorbell; peers notice on their next pump or park and poison
// their slots. A peer that dies without fin leaves its segment behind —
// the launcher's post_reap sweep shm_unlinks every "/<token>.r<i>" after
// reaping children, so abnormal exits cannot leak /dev/shm space.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "transport/chaos.hpp"
#include "transport/endpoint.hpp"
#include "transport/mail_slot.hpp"
#include "transport/shm/spsc_ring.hpp"

namespace ygm::transport::shm {

/// Main-ring capacity per pair (power of two). Frames up to
/// inline_payload_max + header must fit with room to spare.
inline constexpr std::size_t main_ring_bytes = 256 * 1024;
/// Spill-ring capacity per pair (power of two); payloads larger than the
/// ring still pass — they stream through in chunks.
inline constexpr std::size_t spill_ring_bytes = 256 * 1024;
/// Largest payload carried inline in the main ring.
inline constexpr std::size_t inline_payload_max = 16 * 1024;

/// Head of every segment. magic is release-stored LAST by the creator, so
/// an opener that acquire-loads it sees a fully initialized layout.
struct alignas(cache_line) seg_header {
  std::atomic<std::uint32_t> magic;
  std::uint32_t nranks;
  std::atomic<std::uint32_t> aborted;
  /// Doorbell the owning (consumer) rank parks on; every producer bumps it
  /// after publishing into any of this segment's rings.
  std::atomic<std::uint32_t> recv_seq;
  std::atomic<std::uint32_t> recv_parked;
};
static_assert(sizeof(seg_header) == cache_line);

/// One producer rank's lane into a segment: control + data for the main
/// and spill rings. Fixed-size so the segment layout is plain indexing.
struct alignas(cache_line) pair_block {
  ring_ctrl main_ctrl;
  ring_ctrl spill_ctrl;
  std::byte main_data[main_ring_bytes];
  std::byte spill_data[spill_ring_bytes];
};

inline constexpr std::uint32_t seg_magic = 0x79676d73;  // "ygms"

/// Segment byte size for a world of nranks (a pair_block per producer;
/// the self slot is unused but keeps indexing trivial).
constexpr std::size_t segment_bytes(int nranks) {
  return sizeof(seg_header) +
         static_cast<std::size_t>(nranks) * sizeof(pair_block);
}

/// "/<token>.r<rank>" — the shm_open name of one rank's inbound segment,
/// where token is the basename of the rendezvous directory. Exposed so the
/// launcher's orphan sweep and tests can reconstruct names.
std::string segment_name(const std::string& dir, int rank);

class endpoint final : public transport::endpoint {
 public:
  /// Rendezvous under `dir` (every rank of the world passes the same
  /// directory): create this rank's segment, then map every peer's. Blocks
  /// until all segments are up or `handshake_timeout_s` elapses. `chaos`
  /// installs fault injection on the receive slot (nullptr: none).
  endpoint(const std::string& dir, int rank, int nranks,
           const chaos_config* chaos);
  ~endpoint() override;

  backend_kind kind() const noexcept override { return backend_kind::shm; }
  int world_rank() const noexcept override { return rank_; }
  int world_size() const noexcept override { return nranks_; }

  /// Node-local ranks exchange bytes over shared mappings: the hybrid
  /// mailbox's per-record direct handoff applies, the raw-pointer inbox
  /// handoff does not.
  locality_level locality() const noexcept override {
    return locality_level::node_local_map;
  }

  transport::channel& peer(int dest) override;

  envelope recv_match(int src, int tag, std::uint64_t ctx) override;
  std::optional<envelope> try_recv_match(int src, int tag,
                                         std::uint64_t ctx) override;
  std::optional<status> iprobe(int src, int tag, std::uint64_t ctx) override;
  status probe(int src, int tag, std::uint64_t ctx) override;
  std::size_t pending() override;

  double wtime() const override;
  void abort_world() override;

  /// Engine-donated progress: try-lock the I/O mutex (never block the rank
  /// mid-operation) and drain inbound rings; reports whether bytes moved.
  bool progress_hook() override;

  /// Seconds a rank will wait for the rest of the world to rendezvous.
  static constexpr double handshake_timeout_s = 30.0;

 private:
  enum class frame_kind : std::uint32_t {
    data = 2,   ///< header + payload inline in the main ring
    spill = 5,  ///< header in the main ring; payload streams via spill ring
  };

  // Byte-identical to socket::endpoint::wire_header — the framed-header
  // layout is the ABI shared by the process-per-rank backends.
  struct wire_header {
    std::uint32_t kind = 0;
    std::uint32_t payload_len = 0;
    std::int32_t src = 0;
    std::int32_t tag = 0;
    std::uint64_t ctx = 0;
  };
  static_assert(sizeof(wire_header) == 24, "framed header layout is the ABI");

  /// One mapped segment (own or a peer's).
  struct segment {
    void* base = nullptr;
    std::size_t bytes = 0;
    seg_header* hdr = nullptr;
  };

  /// Producer-side view of the pair of rings toward one peer.
  struct out_pair {
    ring_view main;
    ring_view spill;
    bool fin_sent = false;
  };

  /// Consumer-side view of one inbound pair, plus spill reassembly state:
  /// the pump never blocks mid-frame, so a partially-streamed spill payload
  /// parks here between passes.
  struct in_pair {
    ring_view main;
    ring_view spill;
    bool have_spill_hdr = false;
    wire_header spill_hdr{};
    std::vector<std::byte> spill_payload;
    std::size_t spill_got = 0;
    bool fin_seen = false;
  };

  class peer_channel final : public transport::channel {
   public:
    peer_channel() = default;
    peer_channel(endpoint* ep, int dest) : ep_(ep), dest_(dest) {}
    void post(envelope&& e) override { ep_->post_to_peer(dest_, std::move(e)); }

   private:
    endpoint* ep_ = nullptr;
    int dest_ = 0;
  };

  void post_to_peer(int dest, envelope&& e);

  /// Drain every inbound ring into the slot (strictly nonblocking).
  /// Returns true if any bytes were consumed.
  bool pump_inbound();
  bool pump_pair(int src, in_pair& p);

  /// Park until this rank's recv doorbell rings or ~timeout_us elapses,
  /// Dekker-checked against the inbound rings so a concurrent publish is
  /// never slept through.
  void park_for_inbound(std::uint32_t timeout_us);

  /// Ring the recv doorbell of `dest`'s segment if its owner is parked.
  void ding_peer(int dest);

  /// Wait (bounded park) for free space on a ring toward `dest`; pumps
  /// own inbound each pass and honours abort. Returns false on abort.
  bool wait_for_space(int dest, ring_view& ring, std::size_t need);

  void handshake(const std::string& dir, const chaos_config* chaos);
  void mark_aborted_locked();
  bool world_marked_aborted() const;
  bool all_peers_silent() const;
  void publish_outq_gauge() const;

  seg_header* own_hdr() const {
    return segments_[static_cast<std::size_t>(rank_)].hdr;
  }

  int rank_ = 0;
  int nranks_ = 1;
  std::string seg_name_;  ///< own segment's shm name (for unlink)
  /// Serializes all ring-touching state between the owning rank thread and
  /// the progress engine, same discipline as the socket backend: blocking
  /// operations lock per pump iteration (with short park timeouts) so the
  /// engine's posts are never starved for long; the engine only try-locks.
  std::mutex io_mtx_;
  mail_slot slot_;
  std::vector<segment> segments_;  // indexed by world rank
  std::vector<out_pair> out_;      // toward each peer; self unused
  std::vector<in_pair> in_;        // from each peer; self unused
  std::vector<peer_channel> channels_;
  double epoch_wtime_ = 0;  // CLOCK_MONOTONIC seconds at setup
  bool aborted_ = false;
  // ring-level counters, published with the endpoint stats at teardown
  std::uint64_t ring_tx_bytes_ = 0;
  std::uint64_t ring_rx_bytes_ = 0;
  std::uint64_t spill_tx_bytes_ = 0;
  std::uint64_t spill_rx_bytes_ = 0;
  std::uint64_t ring_full_stalls_ = 0;  ///< posts that waited for ring space
  std::uint64_t outq_stalls_ = 0;       ///< posts that hit outq_cap_bytes
  std::uint64_t outq_peak_bytes_ = 0;   ///< high-water in-flight ring bytes
  std::uint64_t futex_parks_ = 0;       ///< times this rank actually parked
};

}  // namespace ygm::transport::shm
