#include "transport/shm/spsc_ring.hpp"

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <ctime>
#else
#include <chrono>
#include <thread>
#endif

namespace ygm::transport::shm {

#if defined(__linux__)

void futex_wait(const std::atomic<std::uint32_t>* addr, std::uint32_t expected,
                std::uint32_t timeout_us) noexcept {
  timespec ts;
  ts.tv_sec = timeout_us / 1000000u;
  ts.tv_nsec = static_cast<long>(timeout_us % 1000000u) * 1000;
  // FUTEX_WAIT (not _PRIVATE): the word lives in a mapping shared between
  // rank processes. EAGAIN (value changed), EINTR, and ETIMEDOUT are all
  // fine — callers re-check their condition in a loop regardless.
  (void)::syscall(SYS_futex, reinterpret_cast<const std::uint32_t*>(addr),
                  FUTEX_WAIT, expected, &ts, nullptr, 0);
}

void futex_wake(const std::atomic<std::uint32_t>* addr, int count) noexcept {
  (void)::syscall(SYS_futex, reinterpret_cast<const std::uint32_t*>(addr),
                  FUTEX_WAKE, count, nullptr, nullptr, 0);
}

#else  // portable fallback: bounded sleep keeps waits correct, just not woken

void futex_wait(const std::atomic<std::uint32_t>* addr, std::uint32_t expected,
                std::uint32_t timeout_us) noexcept {
  if (addr->load(std::memory_order_acquire) != expected) return;
  const std::uint32_t capped = timeout_us < 1000u ? timeout_us : 1000u;
  std::this_thread::sleep_for(std::chrono::microseconds(capped));
}

void futex_wake(const std::atomic<std::uint32_t>*, int) noexcept {}

#endif

}  // namespace ygm::transport::shm
