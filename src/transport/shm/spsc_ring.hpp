// Bounded SPSC byte ring over a shared mapping — the wire of the shm
// backend. One producer process, one consumer process, no locks:
//
//   * head/tail are free-running 64-bit counters on separate cache lines
//     (the producer only writes tail, the consumer only writes head, so
//     neither invalidates the other's line on its own store).
//   * publication is release/acquire: the producer copies frame bytes into
//     the data area first, then release-stores the advanced tail; a
//     consumer that acquire-loads tail therefore always sees *whole*
//     frames — sizes can never be torn, which is what lets the reader
//     trust a frame header before the rest of the frame "arrives".
//   * tail updates batch: stage() copies bytes at the staged (private)
//     tail, publish() makes everything staged visible with one store —
//     a packet header + payload cross with a single release instead of
//     one synchronizing store per piece.
//   * the consumer frees space the same way in reverse: it copies bytes
//     out, then release-stores the advanced head, so a producer that
//     acquire-loads head never overwrites bytes the consumer still reads.
//
// Parking lives beside the ring, not in it: each doorbell is a 32-bit
// futex word in the same shared mapping (process-shared, so no
// FUTEX_PRIVATE_FLAG), with a parked flag published seq_cst on both sides
// of the Dekker check so a waiter that re-verified emptiness and a waker
// that published work cannot both proceed without one seeing the other.
// Waits are bounded anyway (lost-wake insurance), so a missed doorbell
// costs latency, never liveness.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace ygm::transport::shm {

inline constexpr std::size_t cache_line = 64;

/// Shared-mapping control block of one ring. The data area is placed by the
/// segment layout (it does not have to adjoin this struct); capacity must
/// be a power of two.
struct alignas(cache_line) ring_ctrl {
  /// Producer-owned publication cursor (bytes ever published).
  alignas(cache_line) std::atomic<std::uint64_t> tail;
  /// Consumer-owned consumption cursor (bytes ever consumed).
  alignas(cache_line) std::atomic<std::uint64_t> head;
  /// Doorbell a producer parks on when the ring is full; the consumer bumps
  /// it after freeing space. 32-bit because futexes are.
  alignas(cache_line) std::atomic<std::uint32_t> space_seq;
  std::atomic<std::uint32_t> producer_parked;
  /// Producer's end-of-stream mark: no further publish will happen.
  std::atomic<std::uint32_t> fin;

  void init() noexcept {
    tail.store(0, std::memory_order_relaxed);
    head.store(0, std::memory_order_relaxed);
    space_seq.store(0, std::memory_order_relaxed);
    producer_parked.store(0, std::memory_order_relaxed);
    fin.store(0, std::memory_order_relaxed);
  }
};
static_assert(sizeof(ring_ctrl) % cache_line == 0);

// ------------------------------------------------------------ futex parking
//
// Thin wrappers over the futex syscall on process-SHARED words (the
// mapping is shared between ranks, so FUTEX_PRIVATE_FLAG would be wrong).
// On non-Linux builds these degrade to a short nanosleep / no-op, keeping
// the ring correct (bounded waits) if not power-efficient.

/// Sleep until *addr != expected or ~timeout_us elapsed or a wake arrives.
void futex_wait(const std::atomic<std::uint32_t>* addr, std::uint32_t expected,
                std::uint32_t timeout_us) noexcept;

/// Wake up to `count` waiters parked on addr.
void futex_wake(const std::atomic<std::uint32_t>* addr, int count) noexcept;

// ---------------------------------------------------------------- ring view

/// One side's handle onto a mapped ring: control block + data pointer +
/// capacity. Views are cheap value objects rebuilt per process from the
/// segment layout; all shared state lives behind the pointers.
class ring_view {
 public:
  ring_view() = default;
  ring_view(ring_ctrl* ctrl, std::byte* data, std::size_t capacity) noexcept
      : ctrl_(ctrl), data_(data), cap_(capacity), mask_(capacity - 1) {}

  bool valid() const noexcept { return ctrl_ != nullptr; }
  std::size_t capacity() const noexcept { return cap_; }
  ring_ctrl& ctrl() const noexcept { return *ctrl_; }

  // ------------------------------------------------------- producer side
  //
  // Single producer: tail is only ever advanced by this process, so the
  // staged cursor can live in the view between stage() calls.

  /// Bytes the producer may stage right now without overtaking the
  /// consumer (acquire on head so freed space implies the consumer is done
  /// reading those bytes).
  std::size_t free_space() const noexcept {
    const std::uint64_t head = ctrl_->head.load(std::memory_order_acquire);
    return cap_ - static_cast<std::size_t>(staged_tail() - head);
  }

  /// Copy n bytes at the staged tail WITHOUT publishing them. The caller
  /// must have checked free_space() >= n.
  void stage(const void* p, std::size_t n) noexcept {
    copy_in(staged_tail(), p, n);
    staged_ += n;
  }

  /// Unpublished staged bytes.
  std::size_t staged() const noexcept { return staged_; }

  /// Make every staged byte visible to the consumer with one release
  /// store. Returns the number of bytes published.
  std::size_t publish() noexcept {
    const std::size_t n = staged_;
    if (n != 0) {
      ctrl_->tail.store(staged_tail(), std::memory_order_release);
      staged_ = 0;
    }
    return n;
  }

  /// Convenience: stage-and-publish one whole blob if it fits. False (and
  /// nothing visible changes) when the ring lacks space.
  bool try_write(const void* p, std::size_t n) noexcept {
    if (free_space() < n) return false;
    stage(p, n);
    publish();
    return true;
  }

  /// Occupancy as the producer sees it: published-but-unconsumed bytes.
  std::size_t in_flight() const noexcept {
    return static_cast<std::size_t>(
        ctrl_->tail.load(std::memory_order_relaxed) -
        ctrl_->head.load(std::memory_order_acquire));
  }

  void set_fin() noexcept {
    ctrl_->fin.store(1, std::memory_order_release);
  }

  // ------------------------------------------------------- consumer side

  /// Whole-frame bytes available to read (acquire on tail: everything
  /// below it is fully copied in).
  std::size_t readable() const noexcept {
    const std::uint64_t tail = ctrl_->tail.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head_cursor());
  }

  /// Copy n bytes starting `offset` bytes past the head cursor, without
  /// consuming. The caller must have checked readable() >= offset + n.
  void peek(std::size_t offset, void* out, std::size_t n) const noexcept {
    copy_out(head_cursor() + offset, out, n);
  }

  /// Free n bytes back to the producer (release so the producer's
  /// acquire-load of head implies we are done reading them).
  void consume(std::size_t n) noexcept {
    ctrl_->head.store(head_cursor() + n, std::memory_order_release);
  }

  bool fin() const noexcept {
    return ctrl_->fin.load(std::memory_order_acquire) != 0;
  }

 private:
  std::uint64_t staged_tail() const noexcept {
    return ctrl_->tail.load(std::memory_order_relaxed) + staged_;
  }
  std::uint64_t head_cursor() const noexcept {
    return ctrl_->head.load(std::memory_order_relaxed);
  }

  void copy_in(std::uint64_t at, const void* p, std::size_t n) noexcept {
    const std::size_t off = static_cast<std::size_t>(at) & mask_;
    const std::size_t first = n < cap_ - off ? n : cap_ - off;
    std::memcpy(data_ + off, p, first);
    if (first < n) {
      std::memcpy(data_, static_cast<const std::byte*>(p) + first, n - first);
    }
  }
  void copy_out(std::uint64_t at, void* out, std::size_t n) const noexcept {
    const std::size_t off = static_cast<std::size_t>(at) & mask_;
    const std::size_t first = n < cap_ - off ? n : cap_ - off;
    std::memcpy(out, data_ + off, first);
    if (first < n) {
      std::memcpy(static_cast<std::byte*>(out) + first, data_, n - first);
    }
  }

  ring_ctrl* ctrl_ = nullptr;
  std::byte* data_ = nullptr;
  std::size_t cap_ = 0;
  std::size_t mask_ = 0;
  std::size_t staged_ = 0;  // producer-process-private
};

}  // namespace ygm::transport::shm
