// Rank-0 rendezvous/launch helper for the socket backend: fork one OS
// process per rank, rendezvous them over a shared directory of Unix-domain
// sockets, and collect per-rank results and telemetry back in the parent.
//
// Result channel: one pipe per rank. A child runs the rank body, then ships
// a single framed blob — status, error text, the body's result bytes, and a
// telemetry lane snapshot — and _exits without returning through the
// parent's stack. The parent drains every pipe to EOF (before waiting, so a
// child blocked on a full pipe cannot deadlock the join), reaps the
// children, absorbs the telemetry lanes into the installed session, and
// rethrows the first real rank error.
//
// Telemetry across the fork: the parent opens the world's lane group
// *before* forking, so every child inherits a session whose (world, rank)
// indices agree with the parent's; a child records into its copy-on-write
// recorder, serializes the lane (names, metrics, retained ring events) into
// its result blob, and the parent splices it into the original recorder —
// name ids re-interned, counters summed, gauges maxed, histograms merged.
// The session epoch is a steady_clock point captured pre-fork, so child
// timestamps land on the parent's timeline unadjusted.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "transport/chaos.hpp"
#include "transport/endpoint.hpp"

namespace ygm::transport::socket {

/// Run `body` on `nranks` forked processes connected by a socket-backend
/// endpoint; returns one result blob per rank, ordered by rank. `dir_hint`
/// names the rendezvous directory ("" = fresh mkdtemp under $TMPDIR,
/// removed afterwards). Throws ygm::error carrying the first failing rank's
/// message if any rank fails.
std::vector<std::vector<std::byte>> launch(
    int nranks, const std::optional<chaos_config>& chaos,
    const std::string& dir_hint,
    const std::function<std::vector<std::byte>(transport::endpoint&)>& body);

}  // namespace ygm::transport::socket
