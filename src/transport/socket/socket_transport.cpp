#include "transport/socket/socket_transport.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <utility>

#include "common/assert.hpp"
#include "core/buffer_pool.hpp"  // sanctioned upward include (src/CMakeLists.txt)
#include "telemetry/live.hpp"
#include "telemetry/telemetry.hpp"

namespace ygm::transport::socket {

namespace {

double monotonic_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

std::string sock_path(const std::string& dir, int rank) {
  return dir + "/r" + std::to_string(rank) + ".sock";
}

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  YGM_CHECK(flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
            "fcntl(O_NONBLOCK) failed");
}

/// Blocking write of exactly n bytes (handshake only — data path is
/// nonblocking).
void write_all(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      YGM_CHECK(false, std::string("handshake write failed: ") +
                           std::strerror(errno));
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

/// Blocking read of exactly n bytes (handshake only).
void read_all(int fd, void* buf, std::size_t n) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    YGM_CHECK(r > 0, r == 0 ? "peer hung up during handshake"
                            : std::string("handshake read failed: ") +
                                  std::strerror(errno));
    p += r;
    n -= static_cast<std::size_t>(r);
  }
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  YGM_CHECK(path.size() < sizeof(addr.sun_path),
            "socket rendezvous path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

endpoint::endpoint(const std::string& dir, int rank, int nranks,
                   const chaos_config* chaos)
    : rank_(rank), nranks_(nranks) {
  YGM_CHECK(nranks > 0 && rank >= 0 && rank < nranks,
            "socket endpoint rank outside world");
  peers_.resize(static_cast<std::size_t>(nranks));
  channels_.reserve(static_cast<std::size_t>(nranks));
  for (int d = 0; d < nranks; ++d) channels_.emplace_back(this, d);
  handshake(dir, chaos);
  epoch_wtime_ = monotonic_seconds();
}

void endpoint::handshake(const std::string& dir, const chaos_config* chaos) {
  if (chaos != nullptr && chaos->enabled()) {
    slot_.configure_chaos(*chaos, rank_);
  }
  if (nranks_ == 1) return;

  // Bind + listen first, so peers' connect() can succeed (into the backlog)
  // regardless of the order ranks reach their accept loops.
  const int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  YGM_CHECK(lfd >= 0, "socket() failed");
  const auto my_addr = make_addr(sock_path(dir, rank_));
  YGM_CHECK(::bind(lfd, reinterpret_cast<const sockaddr*>(&my_addr),
                   sizeof(my_addr)) == 0,
            std::string("bind failed on ") + my_addr.sun_path + ": " +
                std::strerror(errno));
  YGM_CHECK(::listen(lfd, nranks_) == 0, "listen failed");

  const double deadline = monotonic_seconds() + handshake_timeout_s;

  // Connect to every lower rank, retrying while its socket file or backlog
  // slot is still appearing.
  for (int peer_rank = 0; peer_rank < rank_; ++peer_rank) {
    const auto addr = make_addr(sock_path(dir, peer_rank));
    int fd = -1;
    for (;;) {
      fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      YGM_CHECK(fd >= 0, "socket() failed");
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        break;
      }
      const int err = errno;
      ::close(fd);
      YGM_CHECK(err == ENOENT || err == ECONNREFUSED || err == EAGAIN ||
                    err == EINTR,
                std::string("connect to rank ") + std::to_string(peer_rank) +
                    " failed: " + std::strerror(err));
      YGM_CHECK(monotonic_seconds() < deadline,
                "socket rendezvous timed out waiting for rank " +
                    std::to_string(peer_rank));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    wire_header hello{};
    hello.kind = static_cast<std::uint32_t>(frame_kind::hello);
    hello.src = rank_;
    write_all(fd, &hello, sizeof(hello));
    peers_[static_cast<std::size_t>(peer_rank)].fd = fd;
  }

  // Accept one connection from every higher rank; the hello frame says who
  // is calling.
  for (int accepted = 0; accepted < nranks_ - 1 - rank_; ++accepted) {
    const int fd = ::accept(lfd, nullptr, nullptr);
    YGM_CHECK(fd >= 0, std::string("accept failed: ") + std::strerror(errno));
    wire_header hello{};
    read_all(fd, &hello, sizeof(hello));
    YGM_CHECK(hello.kind == static_cast<std::uint32_t>(frame_kind::hello) &&
                  hello.src > rank_ && hello.src < nranks_,
              "malformed hello during socket rendezvous");
    auto& p = peers_[static_cast<std::size_t>(hello.src)];
    YGM_CHECK(p.fd < 0, "duplicate hello during socket rendezvous");
    p.fd = fd;
  }
  ::close(lfd);

  for (int r = 0; r < nranks_; ++r) {
    if (r != rank_) set_nonblocking(peers_[static_cast<std::size_t>(r)].fd);
  }
}

endpoint::~endpoint() {
  // By teardown the progress engine is forbidden from touching this
  // endpoint (comm_world::~comm_world shut the station down first), but the
  // lock discipline is kept uniform anyway — it costs nothing here.
  std::lock_guard lock(io_mtx_);
  const double deadline = monotonic_seconds() + (aborted_ ? 1.0 : 10.0);

  // Orderly teardown: flush what the world is owed, announce fin, then keep
  // pumping until every peer has said fin too (so nobody's last frames are
  // lost to an early close), all under a deadline so a crashed peer cannot
  // wedge our exit.
  for (int r = 0; r < nranks_; ++r) {
    if (r == rank_) continue;
    auto& p = peers_[static_cast<std::size_t>(r)];
    if (p.fd >= 0 && !p.fin_sent && !p.eof) {
      enqueue_control(p, frame_kind::fin);
      p.fin_sent = true;
    }
  }
  for (;;) {
    bool done = true;
    for (int r = 0; r < nranks_; ++r) {
      if (r == rank_) continue;
      const auto& p = peers_[static_cast<std::size_t>(r)];
      if (p.fd >= 0 && !p.eof && (!p.outq.empty() || !p.fin_seen)) {
        done = false;
      }
    }
    if (done || monotonic_seconds() > deadline) break;
    progress(10);
  }

  for (auto& p : peers_) {
    if (p.fd >= 0) ::close(p.fd);
    p.fd = -1;
  }

  const auto probes = slot_.probe_stats();
  publish_stats(probes.iprobe_calls, probes.draws, probes.misses);
  telemetry::count("transport.socket.wire_tx_bytes", wire_tx_bytes_);
  telemetry::count("transport.socket.wire_rx_bytes", wire_rx_bytes_);
  telemetry::count("transport.socket.wire_sendmsg_calls", wire_sendmsg_calls_);
  telemetry::count("transport.socket.wire_partial_sends", wire_partial_sends_);
  telemetry::count("transport.socket.outq_bytes", outq_peak_bytes_);
  telemetry::count("transport.socket.outq_stalls", outq_stalls_);
}

transport::channel& endpoint::peer(int dest) {
  YGM_ASSERT(dest >= 0 && dest < nranks_);
  return channels_[static_cast<std::size_t>(dest)];
}

void endpoint::post_to_peer(int dest, envelope&& e) {
  if (dest == rank_) {
    slot_.deliver(std::move(e));
    return;
  }
  const std::size_t frame_bytes = sizeof(wire_header) + e.payload.size();
  // Live outbound-depth gauge: total bytes queued across peers. Published
  // only from here (the rank thread), so each telemetry lane's gauge slot
  // keeps a single writer; caller must hold io_mtx_.
  const auto publish_outq = [this] {
    std::size_t qb = 0;
    for (const auto& ps : peers_) qb += ps.outq_bytes;
    telemetry::live::gauge_set(telemetry::live::gauge::outq_bytes,
                               static_cast<double>(qb));
  };
  bool stalled = false;
  // Cap-stall pacing: poll() already sleeps for the pump interval, but a
  // fixed 10 ms interval still costs ~100 lock/flush/poll wakeups per
  // second while a receiver stays away for hundreds of milliseconds. Back
  // the interval off exponentially while nothing drains (bounded at 50 ms
  // so abort/fin frames are still noticed promptly) and snap back to the
  // short interval the moment any byte moves, so resumption latency stays
  // at one short interval.
  int wait_ms = 10;
  // Per-iteration locking, like the blocking receive loops: the mutex is
  // released between pump intervals so a concurrent progress-engine pass is
  // never starved while we wait out a full peer queue.
  for (;;) {
    std::unique_lock lock(io_mtx_);
    auto& p = peers_[static_cast<std::size_t>(dest)];
    YGM_CHECK(p.fd >= 0 && !p.fin_sent, "post after socket teardown");

    const std::size_t cap = transport::outq_cap_bytes();
    // Accept when under the cap — or unconditionally when the queue is
    // empty (a single frame larger than the cap must still pass) or the
    // peer is already failed/aborting (fail_peer drops the queue anyway).
    if (cap == 0 || p.outq.empty() || p.outq_bytes + frame_bytes <= cap ||
        p.eof || aborted_) {
      out_msg m;
      m.hdr.kind = static_cast<std::uint32_t>(frame_kind::data);
      m.hdr.payload_len = static_cast<std::uint32_t>(e.payload.size());
      m.hdr.src = e.src;
      m.hdr.tag = e.tag;
      m.hdr.ctx = e.ctx;
      m.payload = std::move(e.payload);
      p.outq_bytes += frame_bytes;
      if (p.outq_bytes > outq_peak_bytes_) outq_peak_bytes_ = p.outq_bytes;
      p.outq.push_back(std::move(m));
      // Opportunistic immediate flush: in the common case the kernel takes
      // the whole frame here and the payload goes straight back to the pool.
      flush_peer(p);
      publish_outq();
      return;
    }
    if (!stalled) {
      stalled = true;
      ++outq_stalls_;
    }
    flush_peer(p);
    publish_outq();
    if (p.outq_bytes + frame_bytes <= cap) continue;  // room now — retry
    // Wait for POLLOUT on the full peer; the pump also keeps reading
    // inbound frames, so a peer blocked posting to *us* drains too.
    const std::size_t before = p.outq_bytes;
    progress(wait_ms);
    wait_ms = p.outq_bytes < before ? 10 : std::min(wait_ms * 2, 50);
  }
}

void endpoint::enqueue_control(peer_state& p, frame_kind k) {
  // Control frames bypass the outbound cap: abort/fin must never queue
  // behind a backpressured data stream.
  out_msg m;
  m.hdr.kind = static_cast<std::uint32_t>(k);
  m.hdr.src = rank_;
  p.outq_bytes += sizeof(wire_header);
  p.outq.push_back(std::move(m));
  flush_peer(p);
}

bool endpoint::flush_peer(peer_state& p) {
  while (!p.outq.empty()) {
    out_msg& m = p.outq.front();
    const auto* hdr_bytes = reinterpret_cast<const std::byte*>(&m.hdr);
    const std::size_t total = sizeof(wire_header) + m.payload.size();

    iovec iov[2];
    int iovcnt = 0;
    if (m.sent < sizeof(wire_header)) {
      iov[iovcnt].iov_base =
          const_cast<std::byte*>(hdr_bytes + m.sent);
      iov[iovcnt].iov_len = sizeof(wire_header) - m.sent;
      ++iovcnt;
      if (!m.payload.empty()) {
        iov[iovcnt].iov_base = m.payload.data();
        iov[iovcnt].iov_len = m.payload.size();
        ++iovcnt;
      }
    } else {
      const std::size_t off = m.sent - sizeof(wire_header);
      iov[iovcnt].iov_base = m.payload.data() + off;
      iov[iovcnt].iov_len = m.payload.size() - off;
      ++iovcnt;
    }

    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
    ++wire_sendmsg_calls_;
    const ssize_t w = ::sendmsg(p.fd, &msg, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
      if (errno == EINTR) continue;
      // EPIPE/ECONNRESET: peer is gone. During orderly teardown that just
      // means it exited first; otherwise it is a world failure.
      fail_peer(p, "send");
      return false;
    }
    wire_tx_bytes_ += static_cast<std::uint64_t>(w);
    m.sent += static_cast<std::size_t>(w);
    if (m.sent < total) {
      ++wire_partial_sends_;
      return false;  // kernel buffer full mid-frame
    }
    if (!m.payload.empty()) {
      // Frame fully on the wire: recycle the packet buffer.
      core::buffer_pool::local().release(std::move(m.payload));
    }
    p.outq_bytes -= std::min(p.outq_bytes, total);
    p.outq.pop_front();
  }
  return true;
}

void endpoint::fail_peer(peer_state& p, const char* why) {
  (void)why;
  p.eof = true;
  p.outq.clear();
  p.outq_bytes = 0;  // releases any post blocked on this peer's cap
  // A peer vanishing before its fin means its process died: poison the
  // local world so blocked operations surface an error instead of hanging.
  if (!p.fin_seen && !aborted_) {
    aborted_ = true;
    slot_.abort();
  }
}

void endpoint::handle_frame(peer_state& p) {
  switch (static_cast<frame_kind>(p.hdr.kind)) {
    case frame_kind::data:
      slot_.deliver(envelope{p.hdr.src, p.hdr.tag, p.hdr.ctx,
                             std::move(p.payload)});
      p.payload = {};
      break;
    case frame_kind::abort:
      aborted_ = true;
      slot_.abort();
      break;
    case frame_kind::fin:
      p.fin_seen = true;
      break;
    case frame_kind::hello:
    default:
      YGM_CHECK(false, "unexpected frame kind on established socket channel");
  }
  p.hdr_got = 0;
  p.payload_got = 0;
}

void endpoint::read_peer(peer_state& p) {
  for (;;) {
    if (p.hdr_got < sizeof(wire_header)) {
      const ssize_t r = ::read(p.fd, p.hdr_buf.data() + p.hdr_got,
                               sizeof(wire_header) - p.hdr_got);
      if (r == 0) {
        if (!p.fin_seen) {
          fail_peer(p, "eof");
        } else {
          p.eof = true;
        }
        return;
      }
      if (r < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        fail_peer(p, "read");
        return;
      }
      wire_rx_bytes_ += static_cast<std::uint64_t>(r);
      p.hdr_got += static_cast<std::size_t>(r);
      if (p.hdr_got < sizeof(wire_header)) continue;
      std::memcpy(&p.hdr, p.hdr_buf.data(), sizeof(wire_header));
      if (p.hdr.payload_len > 0) {
        // Read the payload straight into a pooled vector: the buffer that
        // crosses into mail_slot (and later into the application's recv) is
        // the one the wire filled.
        p.payload = core::buffer_pool::local().acquire(p.hdr.payload_len);
        p.payload.resize(p.hdr.payload_len);
        p.payload_got = 0;
      } else {
        p.payload.clear();
        handle_frame(p);
        continue;
      }
    }
    const std::size_t want = p.hdr.payload_len - p.payload_got;
    const ssize_t r = ::read(p.fd, p.payload.data() + p.payload_got, want);
    if (r == 0) {
      fail_peer(p, "eof mid-frame");
      return;
    }
    if (r < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      fail_peer(p, "read");
      return;
    }
    wire_rx_bytes_ += static_cast<std::uint64_t>(r);
    p.payload_got += static_cast<std::size_t>(r);
    if (p.payload_got == p.hdr.payload_len) handle_frame(p);
  }
}

void endpoint::progress(int timeout_ms) {
  if (nranks_ == 1) return;
  pollfds_.clear();
  static thread_local std::vector<int> fd_rank;
  fd_rank.clear();
  for (int r = 0; r < nranks_; ++r) {
    if (r == rank_) continue;
    auto& p = peers_[static_cast<std::size_t>(r)];
    if (p.fd < 0 || p.eof) continue;
    pollfd pf{};
    pf.fd = p.fd;
    pf.events = POLLIN;
    if (!p.outq.empty()) pf.events |= POLLOUT;
    pollfds_.push_back(pf);
    fd_rank.push_back(r);
  }
  if (pollfds_.empty()) return;

  const int n = ::poll(pollfds_.data(),
                       static_cast<nfds_t>(pollfds_.size()), timeout_ms);
  if (n <= 0) return;
  for (std::size_t i = 0; i < pollfds_.size(); ++i) {
    auto& p = peers_[static_cast<std::size_t>(fd_rank[i])];
    if (p.fd < 0 || p.eof) continue;
    const short re = pollfds_[i].revents;
    if (re & (POLLIN | POLLHUP | POLLERR)) read_peer(p);
    if (p.fd >= 0 && !p.eof && (re & POLLOUT)) flush_peer(p);
  }
}

envelope endpoint::recv_match(int src, int tag, std::uint64_t ctx) {
  // Per-iteration locking: the mutex is released between pump intervals
  // (and the intervals are short) so a concurrent progress-engine post is
  // never starved for more than one poll timeout.
  for (;;) {
    bool delayed = false;
    if (auto e = slot_.try_recv_match(src, tag, ctx, &delayed)) {
      return std::move(*e);
    }
    std::lock_guard lock(io_mtx_);
    YGM_CHECK(delayed || !all_peers_silent(),
              "socket recv would block forever: all peers finished and no "
              "matching message is queued");
    // A chaos-delayed match matures with the slot clock, which ticks on each
    // try above — poll briefly so the delay ages instead of waiting a full
    // interval for wire traffic that may never come.
    progress(delayed ? 1 : 10);
  }
}

std::optional<envelope> endpoint::try_recv_match(int src, int tag,
                                                 std::uint64_t ctx) {
  {
    std::lock_guard lock(io_mtx_);
    progress(0);
  }
  return slot_.try_recv_match(src, tag, ctx);
}

std::optional<status> endpoint::iprobe(int src, int tag, std::uint64_t ctx) {
  {
    std::lock_guard lock(io_mtx_);
    progress(0);
  }
  return slot_.iprobe(src, tag, ctx);
}

status endpoint::probe(int src, int tag, std::uint64_t ctx) {
  for (;;) {
    bool delayed = false;
    if (auto st = slot_.try_probe(src, tag, ctx, &delayed)) return *st;
    std::lock_guard lock(io_mtx_);
    YGM_CHECK(delayed || !all_peers_silent(),
              "socket probe would block forever: all peers finished and no "
              "matching message is queued");
    progress(delayed ? 1 : 10);
  }
}

std::size_t endpoint::pending() {
  {
    std::lock_guard lock(io_mtx_);
    progress(0);
  }
  return slot_.pending();
}

bool endpoint::progress_hook() {
  // Never block the owning rank: if it is mid-operation, skip this pass.
  std::unique_lock lock(io_mtx_, std::try_to_lock);
  if (!lock.owns_lock()) return false;
  const std::uint64_t before = wire_tx_bytes_ + wire_rx_bytes_;
  progress(0);
  return wire_tx_bytes_ + wire_rx_bytes_ != before;
}

double endpoint::wtime() const { return monotonic_seconds() - epoch_wtime_; }

void endpoint::abort_world() {
  {
    std::lock_guard lock(io_mtx_);
    if (!aborted_) {
      aborted_ = true;
      for (int r = 0; r < nranks_; ++r) {
        if (r == rank_) continue;
        auto& p = peers_[static_cast<std::size_t>(r)];
        if (p.fd >= 0 && !p.eof) enqueue_control(p, frame_kind::abort);
      }
      // Best-effort: give the abort frames one brief pump to leave.
      progress(0);
    }
  }
  slot_.abort();
}

bool endpoint::all_peers_silent() const {
  for (int r = 0; r < nranks_; ++r) {
    if (r == rank_) continue;
    const auto& p = peers_[static_cast<std::size_t>(r)];
    if (p.fd >= 0 && !p.eof && !p.fin_seen) return false;
    if (p.hdr_got > 0) return false;  // frame mid-reassembly
  }
  return true;
}

}  // namespace ygm::transport::socket
