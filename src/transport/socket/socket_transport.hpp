// Backend #2: one OS process per rank over Unix-domain stream sockets.
//
// Topology: full mesh. Each rank binds and listens on <dir>/r<rank>.sock,
// connects to every lower rank (retrying while the peer's socket file is
// still appearing), and accepts one connection from every higher rank; a
// hello frame identifies the connecting peer. After the handshake every
// per-peer fd goes nonblocking and all I/O runs through a single-threaded
// poll(2) progress pump — the per-peer channel + explicit-progress structure
// of the PGAS async-progress designs (arXiv 1609.08574).
//
// Wire format: length-prefixed frames, header {kind, payload_len, src, tag,
// ctx} followed by the payload bytes. Sends are writev-style gather I/O
// (sendmsg with a two-entry iovec) so header and payload leave in one
// syscall without a copy into a staging buffer: the pooled packet vector
// handed to post() by value IS the iovec base, and it is released back to
// core::buffer_pool when the wire accepts the last byte — PR 5's zero-copy
// discipline across the process boundary. A send the kernel won't accept
// whole parks the remainder on the channel's outbound queue, which is
// *bounded*: at transport::outq_cap_bytes() the posting rank stops
// accepting new data frames and pumps the wire (POLLOUT wakes it when the
// peer drains, and the pump keeps reading inbound frames meanwhile, so two
// mutually-flooding ranks drain each other instead of deadlocking) until
// the queue has room. Control frames (hello/abort/fin) bypass the cap so
// teardown and failure propagation can never be wedged behind data.
//
// The receive side shares mail_slot with the inproc backend: completed data
// frames are delivered into the slot by the pump, and all matching/chaos
// semantics come from the shared engine. Blocking operations are
// pump-then-match loops (the slot's condition variable has no in-process
// senders to signal it here).
//
// Failure: an uncaught exception in a rank turns into an abort frame to
// every peer plus a poisoned slot; peers reading the frame (or seeing a
// pre-fin EOF) poison theirs, so the whole world unblocks with ygm::error
// instead of deadlocking — the multi-process analogue of fabric::abort_all.
#pragma once

#include <poll.h>

#include <array>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "transport/chaos.hpp"
#include "transport/endpoint.hpp"
#include "transport/mail_slot.hpp"

namespace ygm::transport::socket {

class endpoint final : public transport::endpoint {
 public:
  /// Rendezvous under `dir` (every rank of the world passes the same
  /// directory) and connect the full mesh. Blocks until all peers are up or
  /// `handshake_timeout_s` elapses. `chaos` installs fault injection on the
  /// receive slot (nullptr: none).
  endpoint(const std::string& dir, int rank, int nranks,
           const chaos_config* chaos);
  ~endpoint() override;

  backend_kind kind() const noexcept override { return backend_kind::socket; }
  int world_rank() const noexcept override { return rank_; }
  int world_size() const noexcept override { return nranks_; }

  transport::channel& peer(int dest) override;

  envelope recv_match(int src, int tag, std::uint64_t ctx) override;
  std::optional<envelope> try_recv_match(int src, int tag,
                                         std::uint64_t ctx) override;
  std::optional<status> iprobe(int src, int tag, std::uint64_t ctx) override;
  status probe(int src, int tag, std::uint64_t ctx) override;
  std::size_t pending() override;

  double wtime() const override;
  void abort_world() override;

  /// Engine-donated progress: try-lock the I/O mutex (never block the rank
  /// mid-operation) and run one nonblocking pump; reports whether any wire
  /// bytes moved.
  bool progress_hook() override;

  /// Seconds a rank will wait for the rest of the world to rendezvous.
  static constexpr double handshake_timeout_s = 30.0;

 private:
  enum class frame_kind : std::uint32_t {
    hello = 1,  ///< handshake: src names the connecting rank
    data = 2,   ///< one envelope
    abort = 3,  ///< sender's world is poisoned; poison yours
    fin = 4,    ///< orderly end-of-stream: sender will write nothing more
  };

  struct wire_header {
    std::uint32_t kind = 0;
    std::uint32_t payload_len = 0;
    std::int32_t src = 0;
    std::int32_t tag = 0;
    std::uint64_t ctx = 0;
  };
  static_assert(sizeof(wire_header) == 24, "framed header layout is the ABI");

  /// One queued outbound frame: unsent header bytes + payload, with a
  /// cursor over the concatenation.
  struct out_msg {
    wire_header hdr;
    std::vector<std::byte> payload;
    std::size_t sent = 0;  ///< bytes of (header + payload) already on the wire
  };

  /// Per-peer connection state (send queue + receive reassembly).
  struct peer_state {
    int fd = -1;
    std::deque<out_msg> outq;
    std::size_t outq_bytes = 0;  ///< header+payload bytes queued in outq
    bool fin_sent = false;
    bool fin_seen = false;  ///< peer sent fin, or EOF after fin
    bool eof = false;       ///< read side closed
    // Receive reassembly: header first, then payload.
    std::array<std::byte, sizeof(wire_header)> hdr_buf;
    std::size_t hdr_got = 0;
    wire_header hdr;
    std::vector<std::byte> payload;
    std::size_t payload_got = 0;
  };

  class peer_channel final : public transport::channel {
   public:
    peer_channel() = default;
    peer_channel(endpoint* ep, int dest) : ep_(ep), dest_(dest) {}
    void post(envelope&& e) override { ep_->post_to_peer(dest_, std::move(e)); }

   private:
    endpoint* ep_ = nullptr;
    int dest_ = 0;
  };

  void post_to_peer(int dest, envelope&& e);

  /// Pump the wire: flush outbound queues, read inbound frames into the
  /// slot. Waits up to timeout_ms for activity when nothing is immediately
  /// ready (0: strictly nonblocking).
  void progress(int timeout_ms);

  /// Try to push one frame (or the front of the queue) onto fd. Returns
  /// false when the kernel would block.
  bool flush_peer(peer_state& p);
  void read_peer(peer_state& p);
  void handle_frame(peer_state& p);

  /// Enqueue a control frame (hello/abort/fin) to one peer.
  void enqueue_control(peer_state& p, frame_kind k);

  void handshake(const std::string& dir, const chaos_config* chaos);
  void fail_peer(peer_state& p, const char* why);

  /// True when no peer can ever deliver another message (all fin/EOF and
  /// nothing mid-reassembly) — a blocked receive is then a deadlock, not a
  /// wait.
  bool all_peers_silent() const;

  int rank_ = 0;
  int nranks_ = 1;
  /// Serializes all wire-touching state (peers_, pollfds_, counters)
  /// between the owning rank thread and the progress engine. Blocking
  /// operations lock per pump iteration (with short poll timeouts) so the
  /// engine's posts are never starved for long; the engine itself only ever
  /// try-locks (progress_hook). mail_slot stays internally synchronized as
  /// before.
  std::mutex io_mtx_;
  mail_slot slot_;
  std::vector<peer_state> peers_;      // indexed by world rank; self unused
  std::vector<peer_channel> channels_;
  std::vector<pollfd> pollfds_;  // scratch, rebuilt per progress()
  double epoch_wtime_ = 0;              // CLOCK_MONOTONIC seconds at setup
  bool aborted_ = false;
  // wire-level counters, published with the endpoint stats at teardown
  std::uint64_t wire_tx_bytes_ = 0;
  std::uint64_t wire_rx_bytes_ = 0;
  std::uint64_t wire_sendmsg_calls_ = 0;
  std::uint64_t wire_partial_sends_ = 0;
  std::uint64_t outq_peak_bytes_ = 0;  ///< high-water mark across all peers
  std::uint64_t outq_stalls_ = 0;      ///< posts that hit the outbound cap
};

}  // namespace ygm::transport::socket
