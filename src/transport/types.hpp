// Shared constants and small value types for the transport substrate.
//
// The transport layer carries the MPI-flavoured subset of semantics the
// layers above (mpisim, core) rely on: framed packets with eager buffered
// point-to-point delivery, per-(source, destination, context) non-overtaking
// order, tag matching with wildcards, and probing. Two backends implement
// the contract today — the in-process threaded simulator (transport/inproc/)
// and the multi-process Unix-domain-socket backend (transport/socket/); see
// docs/TRANSPORT.md for the contract and the backend matrix.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ygm::transport {

/// Wildcard source for recv/probe, like MPI_ANY_SOURCE.
inline constexpr int any_source = -1;

/// Wildcard tag for recv/probe, like MPI_ANY_TAG.
inline constexpr int any_tag = -1;

/// Largest tag available to user code, like MPI_TAG_UB.
inline constexpr int tag_ub = (1 << 24) - 1;

/// Context id of the world communicator's point-to-point plane; the
/// collective plane is world_context + 1. Derived communicators (split/dup)
/// use deterministically hashed context ids with the high bit set, so they
/// can never collide with these reserved low ids.
inline constexpr std::uint64_t world_context = 1;

/// Result of a completed receive or probe, like MPI_Status.
struct status {
  int source = any_source;       ///< group rank of the sender
  int tag = any_tag;             ///< tag of the matched message
  std::size_t byte_count = 0;    ///< payload size in bytes
};

}  // namespace ygm::transport
