// Compile-out probe: this TU is compiled with YGM_TELEMETRY_DISABLED=1
// (the macro -DYGM_TELEMETRY=OFF defines globally) against the same
// headers the instrumented build uses. It is an OBJECT-library member that
// is never linked — building it IS the test: the live-telemetry layer and
// the mailbox hot paths that feed it must compile away cleanly when the
// telemetry subsystem is off.
#include "core/hybrid_mailbox.hpp"
#include "core/mailbox.hpp"
#include "telemetry/live.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/statusz.hpp"
#include "telemetry/telemetry.hpp"

static_assert(true, "");  // silence no-op-TU lints

// The instrumented templates must instantiate fully with tls() pinned to
// nullptr — this is what catches a hook call that only compiles when the
// telemetry subsystem is on.
struct off_probe_msg {
  int v = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar & v;
  }
};
template class ygm::core::mailbox<off_probe_msg>;
template class ygm::core::hybrid_mailbox<off_probe_msg>;

// Exercise the inline feed helpers in a reachable (but never called)
// function so they cannot rot behind the macro.
void ygm_telemetry_off_probe() {
  namespace tel = ygm::telemetry;
  tel::add(tel::fast_counter::deliveries);
  tel::live::gauge_set(tel::live::gauge::queued_bytes, 1.0);
  tel::live::note_latency(0, tel::live::latency_kind::e2e, 1.0);
  auto services = tel::live::make_process_services();
  (void)services;
}
