// End-to-end tests for the paper's three applications (apps/) against
// serial oracles, across routing schemes and with/without delegates.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "apps/connected_components.hpp"
#include "apps/degree_count.hpp"
#include "apps/spmv.hpp"
#include "core/ygm.hpp"
#include "graph/generators.hpp"
#include "graph/rmat.hpp"
#include "linalg/csc.hpp"

namespace {

namespace sim = ygm::mpisim;
using ygm::core::comm_world;
using ygm::graph::delegate_set;
using ygm::graph::edge;
using ygm::graph::round_robin_partition;
using ygm::graph::vertex_id;
using ygm::linalg::triplet;
using ygm::routing::scheme_kind;
using ygm::routing::topology;

// Regenerate the FULL edge stream locally (generators are deterministic per
// rank), giving every test a serial oracle without communication.
template <class MakeGen>
std::vector<edge> full_edge_list(int nranks, MakeGen&& make) {
  std::vector<edge> all;
  for (int r = 0; r < nranks; ++r) {
    make(r).for_each([&](const edge& e) { all.push_back(e); });
  }
  return all;
}

// ---------------------------------------------------------- degree count

class DegreeCountSchemes : public ::testing::TestWithParam<scheme_kind> {};

TEST_P(DegreeCountSchemes, MatchesSerialOracleOnErdosRenyi) {
  const topology topo(2, 3);
  const vertex_id n = 200;
  const std::uint64_t m = 3000;
  const auto make = [&](int r) {
    return ygm::graph::erdos_renyi_generator(n, m, 17, r, topo.num_ranks());
  };

  std::vector<std::uint64_t> oracle(n, 0);
  for (const auto& e : full_edge_list(topo.num_ranks(), make)) {
    ++oracle[e.src];
    ++oracle[e.dst];
  }

  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, GetParam());
    const auto res =
        ygm::apps::degree_count(world, make(c.rank()), /*capacity=*/512);
    const round_robin_partition part{c.size()};
    ASSERT_EQ(res.local_degrees.size(), part.local_count(c.rank(), n));
    for (std::uint64_t i = 0; i < res.local_degrees.size(); ++i) {
      EXPECT_EQ(res.local_degrees[i], oracle[part.global_id(c.rank(), i)]);
    }
    EXPECT_EQ(res.stats.app_sends, 2 * make(c.rank()).local_edge_count());
  });
}

TEST_P(DegreeCountSchemes, MatchesSerialOracleOnRmat) {
  const topology topo(4, 2);
  const int scale = 8;
  const std::uint64_t m = 4096;
  const auto make = [&](int r) {
    return ygm::graph::rmat_generator(
        scale, m, ygm::graph::rmat_params::graph500(), 23, r,
        topo.num_ranks());
  };

  std::vector<std::uint64_t> oracle(vertex_id{1} << scale, 0);
  for (const auto& e : full_edge_list(topo.num_ranks(), make)) {
    ++oracle[e.src];
    ++oracle[e.dst];
  }

  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, GetParam());
    const auto res = ygm::apps::degree_count(world, make(c.rank()), 1024);
    const round_robin_partition part{c.size()};
    for (std::uint64_t i = 0; i < res.local_degrees.size(); ++i) {
      EXPECT_EQ(res.local_degrees[i], oracle[part.global_id(c.rank(), i)]);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, DegreeCountSchemes,
    ::testing::ValuesIn(std::vector<scheme_kind>(
        std::begin(ygm::routing::all_schemes),
        std::end(ygm::routing::all_schemes))),
    [](const ::testing::TestParamInfo<scheme_kind>& info) {
      return std::string(ygm::routing::to_string(info.param));
    });

// ----------------------------------------------------- connected components

std::vector<vertex_id> run_cc(const topology& topo, scheme_kind kind,
                              const std::vector<edge>& all_edges, vertex_id n,
                              std::uint64_t delegate_threshold,
                              std::uint64_t* broadcasts = nullptr,
                              int* passes = nullptr) {
  std::vector<vertex_id> labels(n, 0);
  std::uint64_t bc_total = 0;
  int pass_count = 0;
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, kind);
    const round_robin_partition part{c.size()};

    // Slice the shared edge list round-robin across ranks.
    std::vector<edge> mine;
    for (std::size_t i = 0; i < all_edges.size(); ++i) {
      if (static_cast<int>(i % static_cast<std::size_t>(c.size())) ==
          c.rank()) {
        mine.push_back(all_edges[i]);
      }
    }

    delegate_set delegates;
    if (delegate_threshold > 0) {
      std::vector<std::uint64_t> degrees(part.local_count(c.rank(), n), 0);
      for (const auto& e : all_edges) {
        for (vertex_id v : {e.src, e.dst}) {
          if (part.owner(v) == c.rank()) ++degrees[part.local_index(v)];
        }
      }
      delegates = ygm::graph::select_delegates(world, degrees, part,
                                               delegate_threshold);
    }

    const auto res = ygm::apps::connected_components(world, mine, n,
                                                     delegates, 1024);
    // Stitch the distributed labelling back together for comparison.
    for (std::uint64_t i = 0; i < res.local_labels.size(); ++i) {
      labels[part.global_id(c.rank(), i)] = res.local_labels[i];
    }
    const auto bc = c.allreduce(res.broadcasts, sim::op_sum{});
    if (c.rank() == 0) {
      bc_total = bc;
      pass_count = res.passes;
    }
  });
  if (broadcasts != nullptr) *broadcasts = bc_total;
  if (passes != nullptr) *passes = pass_count;
  return labels;
}

TEST(ConnectedComponents, HandlesEmptyGraph) {
  const vertex_id n = 10;
  const auto labels = run_cc(topology(2, 2), scheme_kind::node_local, {}, n, 0);
  for (vertex_id v = 0; v < n; ++v) EXPECT_EQ(labels[v], v);
}

TEST(ConnectedComponents, LabelsChainGraphAcrossManyPasses) {
  // A path graph has maximal diameter: the worst case for the simple
  // pass-until-stable algorithm.
  const vertex_id n = 24;
  std::vector<edge> edges;
  for (vertex_id v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  int passes = 0;
  const auto labels = run_cc(topology(2, 2), scheme_kind::node_remote, edges,
                             n, 0, nullptr, &passes);
  for (vertex_id v = 0; v < n; ++v) EXPECT_EQ(labels[v], 0u);
  EXPECT_GT(passes, 2);  // must actually iterate
}

class CcSchemes : public ::testing::TestWithParam<scheme_kind> {};

TEST_P(CcSchemes, MatchesUnionFindOnRandomRmatGraph) {
  const topology topo(2, 4);
  const int scale = 7;
  const vertex_id n = vertex_id{1} << scale;
  const auto make = [&](int r) {
    return ygm::graph::rmat_generator(
        scale, 1500, ygm::graph::rmat_params::graph500(), 31, r,
        topo.num_ranks());
  };
  const auto all = full_edge_list(topo.num_ranks(), make);
  const auto oracle = ygm::apps::connected_components_reference(n, all);

  // Without delegates.
  EXPECT_EQ(run_cc(topo, GetParam(), all, n, 0), oracle);
  // With aggressively many delegates (threshold 4), exercising broadcasts.
  std::uint64_t broadcasts = 0;
  EXPECT_EQ(run_cc(topo, GetParam(), all, n, 4, &broadcasts), oracle);
  EXPECT_GT(broadcasts, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, CcSchemes,
    ::testing::ValuesIn(std::vector<scheme_kind>(
        std::begin(ygm::routing::all_schemes),
        std::end(ygm::routing::all_schemes))),
    [](const ::testing::TestParamInfo<scheme_kind>& info) {
      return std::string(ygm::routing::to_string(info.param));
    });

TEST(ConnectedComponents, DelegatesReduceLabelTrafficOnSkewedGraphs) {
  // A star graph: every edge touches the hub. Delegating the hub should
  // remove almost all point-to-point label messages.
  const topology topo(2, 2);
  const vertex_id n = 64;
  std::vector<edge> edges;
  for (vertex_id v = 1; v < n; ++v) edges.push_back({0, v});

  std::uint64_t hops_plain = 0;
  std::uint64_t hops_delegated = 0;
  for (int use_delegates = 0; use_delegates < 2; ++use_delegates) {
    sim::run(topo.num_ranks(), [&](sim::comm& c) {
      comm_world world(c, topo, scheme_kind::node_local);
      std::vector<edge> mine;
      for (std::size_t i = 0; i < edges.size(); ++i) {
        if (static_cast<int>(i % 4) == c.rank()) mine.push_back(edges[i]);
      }
      delegate_set delegates;
      if (use_delegates != 0) {
        delegates = delegate_set({0});  // the hub
      }
      const auto res =
          ygm::apps::connected_components(world, mine, n, delegates, 256);
      const auto hops = c.allreduce(res.stats.hops_sent, sim::op_sum{});
      if (c.rank() == 0) {
        (use_delegates != 0 ? hops_delegated : hops_plain) = hops;
      }
    });
  }
  EXPECT_LT(hops_delegated, hops_plain / 2);
}

// ------------------------------------------------------------------ SpMV

class SpmvSchemes : public ::testing::TestWithParam<scheme_kind> {};

TEST_P(SpmvSchemes, MatchesReferenceWithAndWithoutDelegates) {
  const topology topo(2, 3);
  const std::uint64_t n = 120;
  const std::uint64_t nnz = 900;

  // Shared triplet set, skewed so column 0 and row 1 are hubs.
  ygm::xoshiro256 rng(4);
  std::vector<triplet> all;
  for (std::uint64_t k = 0; k < nnz; ++k) {
    std::uint64_t i = rng.below(n);
    std::uint64_t j = rng.below(n);
    if (k % 4 == 0) j = 0;
    if (k % 5 == 0) i = 1;
    all.push_back({i, j, static_cast<double>(1 + rng.below(5))});
  }
  std::vector<double> x(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    x[i] = static_cast<double>(i % 7) - 3.0;
  }
  const auto ref = ygm::linalg::spmv_reference(n, all, x);

  for (const bool use_delegates : {false, true}) {
    sim::run(topo.num_ranks(), [&](sim::comm& c) {
      comm_world world(c, topo, GetParam());
      const round_robin_partition part{c.size()};

      std::vector<triplet> mine;
      for (std::size_t k = 0; k < all.size(); ++k) {
        if (static_cast<int>(k % static_cast<std::size_t>(c.size())) ==
            c.rank()) {
          mine.push_back(all[k]);
        }
      }
      const delegate_set delegates =
          use_delegates ? delegate_set({0, 1}) : delegate_set{};

      ygm::apps::dist_spmv A(world, n, mine, delegates, 512);

      std::vector<double> x_local(part.local_count(c.rank(), n));
      for (std::uint64_t i = 0; i < x_local.size(); ++i) {
        x_local[i] = x[part.global_id(c.rank(), i)];
      }
      const auto res = A.multiply(x_local);

      for (std::uint64_t i = 0; i < res.local_y.size(); ++i) {
        EXPECT_NEAR(res.local_y[i], ref[part.global_id(c.rank(), i)], 1e-9)
            << "row " << part.global_id(c.rank(), i)
            << " delegates=" << use_delegates;
      }
      for (std::uint64_t s = 0; s < delegates.size(); ++s) {
        EXPECT_NEAR(res.delegate_y[s], ref[delegates.id_of_slot(s)], 1e-9);
      }
    });
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, SpmvSchemes,
    ::testing::ValuesIn(std::vector<scheme_kind>(
        std::begin(ygm::routing::all_schemes),
        std::end(ygm::routing::all_schemes))),
    [](const ::testing::TestParamInfo<scheme_kind>& info) {
      return std::string(ygm::routing::to_string(info.param));
    });

TEST(Spmv, DelegatesEliminateHubMessages) {
  // Dense column 0: without delegates every nonzero in it mails its product;
  // with column 0 delegated all of that work is local.
  const topology topo(2, 2);
  const std::uint64_t n = 64;
  std::vector<triplet> all;
  for (std::uint64_t i = 0; i < n; ++i) all.push_back({i, 0, 1.0});

  std::uint64_t sends_plain = 0;
  std::uint64_t sends_delegated = 0;
  for (const bool use_delegates : {false, true}) {
    sim::run(topo.num_ranks(), [&](sim::comm& c) {
      comm_world world(c, topo, scheme_kind::node_remote);
      const round_robin_partition part{c.size()};
      std::vector<triplet> mine;
      for (std::size_t k = 0; k < all.size(); ++k) {
        if (static_cast<int>(k % 4) == c.rank()) mine.push_back(all[k]);
      }
      const delegate_set delegates =
          use_delegates ? delegate_set({0}) : delegate_set{};
      ygm::apps::dist_spmv A(world, n, mine, delegates);
      std::vector<double> x_local(part.local_count(c.rank(), n), 1.0);
      const auto res = A.multiply(x_local);
      const auto sends = c.allreduce(res.stats.app_sends, sim::op_sum{});
      if (c.rank() == 0) {
        (use_delegates ? sends_delegated : sends_plain) = sends;
      }
    });
  }
  EXPECT_EQ(sends_delegated, 0u);
  EXPECT_GT(sends_plain, 0u);
}

TEST(Spmv, RepeatedMultiplicationIsStable) {
  sim::run(4, [](sim::comm& c) {
    comm_world world(c, 2, scheme_kind::nlnr);
    const std::uint64_t n = 32;
    ygm::xoshiro256 rng(6);
    std::vector<triplet> mine;
    for (int k = 0; k < 40; ++k) {
      mine.push_back({rng.below(n), rng.below(n), 1.0});
    }
    ygm::apps::dist_spmv A(world, n, mine, {});
    const round_robin_partition part{c.size()};
    std::vector<double> x(part.local_count(c.rank(), n), 2.0);
    const auto y1 = A.multiply(x);
    const auto y2 = A.multiply(x);
    EXPECT_EQ(y1.local_y, y2.local_y);
  });
}

TEST(Spmv, ValidatesInputLengths) {
  sim::run(2, [](sim::comm& c) {
    comm_world world(c, 1, scheme_kind::no_route);
    ygm::apps::dist_spmv A(world, 10, {}, {});
    std::vector<double> wrong(3, 0.0);
    EXPECT_THROW(A.multiply(wrong), ygm::error);
    c.barrier();
  });
}

}  // namespace
