// Backpressure tests (docs/BACKPRESSURE.md): credit-based flow control must
// bound per-destination queued bytes when a rank is flooded — the
// unbounded-buffer-growth bug this subsystem fixes — without ever breaking
// delivery invariants or termination detection.
//
// The acceptance grid is a hot producer flooding a slow consumer across
// {mailbox, hybrid} x {inproc, socket, shm} x {engine, polling}, asserting the
// peak bounded quantity (unacked in-flight bytes on packet links, inbox
// depth on the hybrid's zero-copy local links) never exceeded the budget
// and that every message still arrived exactly once. A 16-seed chaos sweep
// reruns the full delivery-invariant ledger with credit active, and
// dedicated tests cover the budget knobs, the socket transport's bounded
// outbound queue, and the stall watchdog's re-arm behavior.
#include <gtest/gtest.h>

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/mini_json.hpp"
#include "core/hybrid_mailbox.hpp"
#include "core/invariants.hpp"
#include "core/ygm.hpp"
#include "ser/serialize.hpp"
#include "telemetry/causal.hpp"
#include "telemetry/telemetry.hpp"
#include "transport/endpoint.hpp"

namespace {

namespace sim = ygm::mpisim;
namespace tel = ygm::telemetry;
namespace causal = ygm::telemetry::causal;
using ygm::common::json_parser;
using ygm::common::json_value;
using ygm::core::comm_world;
using ygm::core::hybrid_mailbox;
using ygm::core::mailbox;
using ygm::core::run_chaos_trial;
using ygm::core::trial_config;
using ygm::routing::scheme_kind;
using ygm::routing::topology;

// ------------------------------------------------------------ flood grid

struct flood_cell {
  bool hybrid = false;
  ygm::transport::backend_kind backend = ygm::transport::backend_kind::inproc;
  bool engine = false;
};

std::string flood_cell_name(const ::testing::TestParamInfo<flood_cell>& info) {
  const auto& p = info.param;
  return std::string(p.hybrid ? "hybrid" : "mailbox") + "_" +
         std::string(ygm::transport::to_string(p.backend)) + "_" +
         (p.engine ? "engine" : "polling");
}

std::vector<flood_cell> flood_cells() {
  std::vector<flood_cell> cells;
  for (bool hybrid : {false, true}) {
    for (auto backend : {ygm::transport::backend_kind::inproc,
                         ygm::transport::backend_kind::socket,
                         ygm::transport::backend_kind::shm}) {
      for (bool engine : {false, true}) {
        cells.push_back({hybrid, backend, engine});
      }
    }
  }
  return cells;
}

/// One rank's verdict from the flood, gathered across processes.
struct flood_result {
  std::uint64_t budget = 0;
  std::uint64_t peak = 0;
  std::uint64_t stalls = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dup_or_corrupt = 0;

  template <class Ar>
  void serialize(Ar& ar) {
    ar & budget & peak & stalls & delivered & dup_or_corrupt;
  }
};

struct flood_msg {
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> filler;

  template <class Ar>
  void serialize(Ar& ar) {
    ar & seq & filler;
  }
};

/// Hot producer (rank 0) floods a slow consumer (rank 1) with far more
/// bytes than the budget. The producer must stall instead of queueing
/// unboundedly; the consumer services its mailbox rarely, so the flood
/// genuinely outruns the drain.
template <template <class> class MailboxT>
flood_result run_flood(sim::comm& c, std::size_t capacity) {
  constexpr int kMsgs = 1500;
  constexpr std::size_t kFiller = 200;

  comm_world world(c, topology(1, 2), scheme_kind::no_route);
  flood_result r;
  std::vector<bool> seen(kMsgs, false);
  MailboxT<flood_msg> mb(
      world,
      [&](const flood_msg& m) {
        ++r.delivered;
        if (m.seq >= kMsgs || seen[m.seq]) ++r.dup_or_corrupt;
        if (m.filler.size() != kFiller) ++r.dup_or_corrupt;
        if (m.seq < kMsgs) seen[m.seq] = true;
      },
      capacity);
  r.budget = mb.credit_budget();

  if (c.rank() == 0) {
    flood_msg m;
    m.filler.assign(kFiller, 0x5a);
    for (int i = 0; i < kMsgs; ++i) {
      m.seq = static_cast<std::uint64_t>(i);
      mb.send(1, m);
    }
  } else {
    // Slow consumer: long pauses between polls, so the producer's traffic
    // piles up against the budget, not against an attentive receiver.
    for (int i = 0; i < 20; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      mb.poll();
    }
  }
  mb.wait_empty();
  r.peak = mb.credit_peak_in_flight();
  r.stalls = mb.stats().credit_stalls;
  return r;
}

class FloodGrid : public ::testing::TestWithParam<flood_cell> {};

TEST_P(FloodGrid, PeakBoundedByBudgetAndExactlyOnce) {
  const auto cell = GetParam();
  constexpr std::size_t kCapacity = 1024;
  constexpr std::size_t kBudget = 8 * 1024;  // << flood volume (~320 KiB)

  ygm::run_options o;
  o.nranks = 2;
  o.backend = cell.backend;
  o.chaos = sim::chaos_config{};
  o.progress_mode = cell.engine ? ygm::progress::mode::engine
                                : ygm::progress::mode::polling;
  o.credit_bytes = kBudget;
  const auto blobs = ygm::launch_collect(o, [&](sim::comm& c) {
    const flood_result local = cell.hybrid
                                   ? run_flood<hybrid_mailbox>(c, kCapacity)
                                   : run_flood<mailbox>(c, kCapacity);
    std::vector<std::byte> out;
    ygm::ser::append_bytes(local, out);
    return out;
  });
  ASSERT_EQ(blobs.size(), 2u);
  std::uint64_t delivered = 0;
  for (std::size_t rank = 0; rank < blobs.size(); ++rank) {
    const auto r = ygm::ser::from_bytes<flood_result>(
        {blobs[rank].data(), blobs[rank].size()});
    EXPECT_EQ(r.budget, kBudget) << "rank " << rank;
    EXPECT_LE(r.peak, r.budget) << "rank " << rank;
    EXPECT_EQ(r.dup_or_corrupt, 0u) << "rank " << rank;
    delivered += r.delivered;
    if (rank == 0) {
      // The whole point: the producer had to stall. A flood 40x the budget
      // that never blocked means the gate is not engaging.
      EXPECT_GT(r.stalls, 0u);
    }
  }
  EXPECT_EQ(delivered, 1500u);
}

INSTANTIATE_TEST_SUITE_P(Matrix, FloodGrid, ::testing::ValuesIn(flood_cells()),
                         flood_cell_name);

// -------------------------------------------------------- 16-seed chaos
//
// The same grid under seeded chaos with credit active: every delivery
// invariant (exactly-once, no phantoms, conservation, sealed silence,
// counter cross-checks) must hold, and neither wait_empty nor test_empty
// may deadlock against the credit gate. Budgets rotate down to 1 byte
// (clamped to 2x capacity — the liveness floor) with the seed.

trial_config make_credit_trial(std::uint64_t seed, bool engine) {
  static constexpr std::pair<int, int> kTopos[] = {
      {2, 2}, {1, 4}, {3, 2}, {2, 3}};
  static constexpr std::size_t kCapacities[] = {1, 24, 96, 4096};
  static constexpr std::size_t kBudgets[] = {1, 64, 1024, 16384};
  trial_config t;
  t.seed = seed;
  t.scheme =
      ygm::routing::all_schemes[seed % std::size(ygm::routing::all_schemes)];
  const auto [n, c] = kTopos[seed % 4];
  t.nodes = n;
  t.cores = c;
  t.capacity = kCapacities[(seed / 2) % 4];
  t.timed = false;
  t.serialize_self_sends = (seed % 4) == 2;
  t.msgs_per_rank = 24;
  t.bcasts_per_rank = 2;
  t.epochs = 2;
  t.use_progress_guard = engine;
  t.credit_bytes = kBudgets[(seed / 3) % 4];
  t.chaos = (seed % 2) == 0 ? sim::chaos_config::light(seed)
                            : sim::chaos_config::heavy(seed);
  return t;
}

class CreditChaosSweep : public ::testing::TestWithParam<flood_cell> {};

TEST_P(CreditChaosSweep, LedgerHoldsUnderBackpressure) {
  const auto cell = GetParam();
  // 16 seeds on the in-process backend; socket and shm trials fork a
  // process per rank, so a smaller block keeps wall time proportionate
  // (same policy as the progress sweep).
  const std::uint64_t seeds =
      cell.backend == ygm::transport::backend_kind::inproc ? 16 : 4;
  for (std::uint64_t seed = 0; seed < seeds; ++seed) {
    const trial_config t = make_credit_trial(seed, cell.engine);
    ygm::run_options o;
    o.nranks = t.num_ranks();
    o.backend = cell.backend;
    o.chaos = t.chaos;
    o.progress_mode = cell.engine ? ygm::progress::mode::engine
                                  : ygm::progress::mode::polling;
    std::vector<std::string> all;
    const auto blobs = ygm::launch_collect(o, [&](sim::comm& c) {
      const auto local = cell.hybrid ? run_chaos_trial<hybrid_mailbox>(c, t)
                                     : run_chaos_trial<mailbox>(c, t);
      std::vector<std::byte> out;
      ygm::ser::append_bytes(local, out);
      return out;
    });
    for (const auto& blob : blobs) {
      const auto local = ygm::ser::from_bytes<std::vector<std::string>>(
          {blob.data(), blob.size()});
      all.insert(all.end(), local.begin(), local.end());
    }
    if (!all.empty()) {
      std::string joined;
      for (const auto& v : all) joined += "\n  " + v;
      FAIL() << "invariant violations for trial {" << t.describe()
             << "} backend=" << ygm::transport::to_string(cell.backend)
             << " engine=" << int(cell.engine) << joined;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, CreditChaosSweep,
                         ::testing::ValuesIn(flood_cells()), flood_cell_name);

// ----------------------------------------------------------- budget knobs

TEST(CreditConfig, LaunchFieldWinsOverEnvAndDefault) {
  ASSERT_EQ(setenv("YGM_CREDIT_BYTES", "777", 1), 0);
  ygm::run_options o;
  o.nranks = 2;
  o.credit_bytes = std::size_t{123456};
  ygm::launch(o, [](sim::comm& c) {
    comm_world world(c, topology(1, 2), scheme_kind::no_route);
    EXPECT_EQ(world.credit_bytes(), 123456u);
  });
  ygm::run_options env_only;
  env_only.nranks = 2;
  ygm::launch(env_only, [](sim::comm& c) {
    comm_world world(c, topology(1, 2), scheme_kind::no_route);
    EXPECT_EQ(world.credit_bytes(), 777u);
  });
  ASSERT_EQ(unsetenv("YGM_CREDIT_BYTES"), 0);
  ygm::run_options none;
  none.nranks = 2;
  ygm::launch(none, [](sim::comm& c) {
    comm_world world(c, topology(1, 2), scheme_kind::no_route);
    EXPECT_EQ(world.credit_bytes(), std::size_t{1} << 20);  // default 1 MiB
  });
}

TEST(CreditConfig, BudgetClampedToTwiceCapacityAndZeroDisables) {
  sim::run(2, [](sim::comm& c) {
    comm_world world(c, topology(1, 2), scheme_kind::no_route);
    world.set_credit_bytes(1);  // absurdly small: ack liveness would die
    mailbox<int> tiny(world, [](const int&) {}, 4096);
    EXPECT_EQ(tiny.credit_budget(), 2u * 4096u);

    world.set_credit_bytes(0);  // opt out entirely
    mailbox<int> off(world, [](const int&) {}, 4096);
    EXPECT_EQ(off.credit_budget(), 0u);
    // With credit off a flood must still complete (the pre-fix behavior,
    // unbounded but live) and record zero stalls.
    if (c.rank() == 0) {
      for (int i = 0; i < 2000; ++i) off.send(1, i);
    }
    off.wait_empty();
    EXPECT_EQ(off.stats().credit_stalls, 0u);
    EXPECT_EQ(off.credit_peak_in_flight(), 0u);
  });
}

// ------------------------------------------------ socket outbound bound
//
// Satellite regression: the socket backend's outbound frame queue is
// bounded. One rank stops pumping while a peer posts far more than the
// cap; post() must block at the cap and keep pumping its own progress
// (draining inbound, flushing what the kernel accepts) instead of
// queueing frames without limit — and must not deadlock.

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ygm_test_has_asan 1
#endif
#if __has_feature(thread_sanitizer)
#define ygm_test_has_tsan 1
#endif
#endif
#ifndef ygm_test_has_asan
#define ygm_test_has_asan 0
#endif
#ifndef ygm_test_has_tsan
#define ygm_test_has_tsan 0
#endif

TEST(SocketOutqBound, StalledPumpDoesNotGrowQueueUnboundedly) {
  // Ranks are forked processes on the socket backend, so violations are
  // thrown (exceptions propagate to the parent; gtest EXPECTs do not).
  sim::run_options o;
  o.nranks = 2;
  o.backend = ygm::transport::backend_kind::socket;
  o.chaos = sim::chaos_config{};
  const auto blobs = sim::run_collect(o, [](sim::comm& c) {
    constexpr int kMsgs = 800;
    constexpr std::size_t kPayload = 32 * 1024;  // 25.6 MiB total
    const auto require = [](bool ok, const std::string& what) {
      if (!ok) throw std::runtime_error(what);
    };
    std::uint64_t rss_growth_kib = 0;
    if (c.rank() == 0) {
      // Idle-CPU witness: while the receiver sleeps, the cap-stalled
      // sender must wait in poll(), not hot-loop. Process CPU time across
      // the flood therefore has to be a small fraction of the stalled
      // wall time (a busy spin shows ~100%). Skipped under sanitizers,
      // whose instrumentation skews both clocks.
      rusage ru_before{};
      getrusage(RUSAGE_SELF, &ru_before);
      const auto wall_start = std::chrono::steady_clock::now();
      // Peak-RSS proxy: VmHWM growth across the flood. With the 4 MiB
      // default cap the sender's growth stays a small multiple of the cap;
      // the pre-fix unbounded queue grew by the whole 12.8 MiB flood.
      const auto vmhwm = [] {
        std::ifstream in("/proc/self/status");
        std::string line;
        while (std::getline(in, line)) {
          if (line.rfind("VmHWM:", 0) == 0) {
            return std::strtoull(line.c_str() + 6, nullptr, 10);  // KiB
          }
        }
        return 0ull;
      };
      const auto before_kib = vmhwm();
      std::vector<std::byte> payload(kPayload, std::byte{0x42});
      for (int i = 0; i < kMsgs; ++i) {
        auto copy = payload;
        copy[0] = static_cast<std::byte>(i);
        c.send_bytes(1, 9, std::move(copy));
      }
      rss_growth_kib = vmhwm() - before_kib;
      rusage ru_after{};
      getrusage(RUSAGE_SELF, &ru_after);
      const double wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - wall_start)
              .count();
      const auto cpu_of = [](const rusage& r) {
        return (static_cast<double>(r.ru_utime.tv_sec) +
                static_cast<double>(r.ru_stime.tv_sec)) *
                   1e3 +
               (static_cast<double>(r.ru_utime.tv_usec) +
                static_cast<double>(r.ru_stime.tv_usec)) /
                   1e3;
      };
      const double cpu_ms = cpu_of(ru_after) - cpu_of(ru_before);
#if !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__) && \
    !ygm_test_has_asan && !ygm_test_has_tsan
      // The receiver sleeps 300 ms before its first read, so most of the
      // flood is spent cap-stalled. Measured healthy behavior is ~3% CPU;
      // a hot loop is ~100%. 40% leaves room for slow CI machines while
      // still failing any real spin.
      if (wall_ms >= 250.0) {
        require(cpu_ms < 0.4 * wall_ms,
                "cap-stalled sender burned CPU while blocked (busy spin): " +
                    std::to_string(cpu_ms) + " ms CPU over " +
                    std::to_string(wall_ms) + " ms wall");
      }
#else
      (void)cpu_ms;
      (void)wall_ms;
#endif
      // The bound is deliberately loose: growth combines the 4 MiB queue
      // cap with kernel socket buffers, pool retention, and allocator
      // fragmentation. What it must NOT be is ~the whole 25.6 MiB flood.
      // ASan's quarantine keeps freed payloads resident, so the RSS proxy
      // says nothing about queue growth there — the liveness and FIFO
      // checks below still run.
#if !defined(__SANITIZE_ADDRESS__) && !ygm_test_has_asan
      require(rss_growth_kib < 14ull * 1024,
              "sender RSS grew ~with the flood (outbound queue unbounded): " +
                  std::to_string(rss_growth_kib) + " KiB");
#endif
    } else {
      // Stalled pump: no progress at all while the flood builds up against
      // the sender's outbound cap.
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
      for (int i = 0; i < kMsgs; ++i) {
        const auto msg = c.recv_bytes(0, 9);
        require(msg.size() == kPayload, "truncated flood frame");
        require(msg[0] == static_cast<std::byte>(i), "FIFO order broken");
      }
    }
    c.barrier();
    std::vector<std::byte> out;
    ygm::ser::append_bytes(rss_growth_kib, out);
    return out;
  });
  ASSERT_EQ(blobs.size(), 2u);
  const auto growth = ygm::ser::from_bytes<std::uint64_t>(
      {blobs[0].data(), blobs[0].size()});
#if !defined(__SANITIZE_ADDRESS__) && !ygm_test_has_asan
  EXPECT_LT(growth, 14ull * 1024) << "sender peak RSS growth (KiB)";
#else
  (void)growth;
#endif
}

// ------------------------------------------------- watchdog re-arm
//
// Satellite regression: the wait_empty stall watchdog used to fire once
// per process; after a successful drain it must re-arm so a second stall
// later in the run is captured too, and the postmortem JSON must carry the
// credit/flow-control state.

TEST(WatchdogRearm, SecondStallFiresAgainAndReportsCredit) {
#if defined(YGM_TELEMETRY_DISABLED)
  GTEST_SKIP() << "stall watchdog compiled out with -DYGM_TELEMETRY=OFF";
#endif
  const std::string dump = "test_backpressure_postmortem.json";
  std::remove(dump.c_str());
  causal::reset_postmortem_latch();
  causal::set_postmortem_path(dump);
  causal::set_stall_timeout_ms(20);

  tel::session session;
  tel::set_global(&session);
  const int world = session.begin_world(1);
  tel::rank_scope scope(session, world, 0);

  causal::stall_watchdog wd;
  causal::stall_report r;
  r.hops_sent = 1;
  r.credit_budget = 4096;
  r.credit_in_flight = 4000;
  r.credit_stalls = 7;

  // First stall episode.
  wd.poll(r);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  wd.poll(r);
  EXPECT_TRUE(causal::postmortem_fired());
  {
    std::ifstream in(dump);
    ASSERT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    json_value root;
    ASSERT_NO_THROW(root = json_parser(buf.str()).parse());
    const auto& credit = root.obj().at("credit").obj();
    EXPECT_EQ(credit.at("budget_bytes").num(), 4096.0);
    EXPECT_EQ(credit.at("in_flight_bytes").num(), 4000.0);
    EXPECT_EQ(credit.at("stalls").num(), 7.0);
  }

  // Progress resumes: the drain succeeded, so the watchdog re-arms and
  // releases the dedup latch. The sticky "did it ever fire" answer stays.
  r.hops_sent = 2;
  wd.poll(r);
  EXPECT_TRUE(causal::postmortem_fired());

  // Second stall episode in the same process must dump again (the old
  // behavior latched forever after the first postmortem); the rewritten
  // file is the proof the latch was handed back.
  std::remove(dump.c_str());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  wd.poll(r);
  EXPECT_TRUE(causal::postmortem_fired());
  EXPECT_TRUE(std::ifstream(dump).good())
      << "watchdog did not re-arm: second stall wrote no postmortem";

  tel::set_global(nullptr);
  causal::set_stall_timeout_ms(0);
  causal::reset_postmortem_latch();
  std::remove(dump.c_str());
}

}  // namespace
