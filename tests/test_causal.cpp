// Tests for the causal-tracing layer (telemetry/causal.hpp): sampling
// determinism, wire-format neutrality at rate 0, journey completeness
// across every routing scheme and both mailbox implementations (including
// under chaos), the stall watchdog's flight-recorder postmortem, and the
// bench flag validation.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "../bench/bench_util.hpp"
#include "common/mini_json.hpp"
#include "core/hybrid_mailbox.hpp"
#include "core/invariants.hpp"
#include "core/mailbox.hpp"
#include "core/ygm.hpp"
#include "telemetry/causal.hpp"
#include "telemetry/journey.hpp"
#include "telemetry/telemetry.hpp"

namespace {

namespace sim = ygm::mpisim;
namespace tel = ygm::telemetry;
namespace causal = ygm::telemetry::causal;
using ygm::common::json_parser;
using ygm::common::json_value;
using ygm::core::comm_world;
using ygm::core::hybrid_mailbox;
using ygm::core::mailbox;
using ygm::routing::router;
using ygm::routing::scheme_kind;
using ygm::routing::topology;

/// Every test must leave the process-global causal config untouched for its
/// neighbours (the knobs are process-wide by design — one runtime, one
/// sampling policy).
struct causal_config_guard {
  causal_config_guard() { causal::reset_postmortem_latch(); }
  ~causal_config_guard() {
    causal::set_sample_rate(0);
    causal::set_stall_timeout_ms(0);
    causal::reset_postmortem_latch();
    tel::set_global(nullptr);
  }
};

// ------------------------------------------------------------- wire format

TEST(CausalWire, ContextRoundTrips) {
  causal::wire_ctx c;
  c.id = (std::uint64_t{1} << 48) - 5;
  c.origin = 513;
  c.hop = 3;
  c.seq = 0xdeadbeef;
  c.origin_us = 123456789.25;  // live e2e sketches need this to survive
  std::vector<std::byte> buf;
  causal::encode_wire(c, buf);
  ASSERT_EQ(buf.size(), causal::wire_ctx_bytes);
  const causal::wire_ctx d = causal::decode_wire(buf);
  EXPECT_EQ(d.id, c.id);
  EXPECT_EQ(d.origin, c.origin);
  EXPECT_EQ(d.hop, c.hop);
  EXPECT_EQ(d.seq, c.seq);
  EXPECT_DOUBLE_EQ(d.origin_us, c.origin_us);
}

TEST(CausalWire, HopBytePackingRoundTripsAndSurvivesJsonDouble) {
  const std::uint64_t packed = causal::pack_hop_bytes(7, 123456789);
  EXPECT_EQ(causal::unpack_hop(packed), 7u);
  EXPECT_EQ(causal::unpack_bytes(packed), 123456789u);
  // Must survive a JSON double round trip (the Chrome trace stores args as
  // numbers).
  EXPECT_LT(packed, std::uint64_t{1} << 53);
  EXPECT_EQ(static_cast<std::uint64_t>(static_cast<double>(packed)), packed);
  // Byte counts clamp instead of bleeding into the hop field.
  const std::uint64_t huge =
      causal::pack_hop_bytes(3, std::uint64_t{1} << 60);
  EXPECT_EQ(causal::unpack_hop(huge), 3u);
  EXPECT_EQ(causal::unpack_bytes(huge), (std::uint64_t{1} << 40) - 1);
}

TEST(CausalSampling, RateEndpointsAndDeterminism) {
  causal_config_guard guard;
  causal::set_sample_rate(0);
  EXPECT_EQ(causal::detail::sample_threshold(), 0u);
  causal::set_sample_rate(1.0);
  // Rate 1.0 must sample EVERY (origin, seq): threshold is all-ones and the
  // decision hash never returns ~0.
  for (int origin = 0; origin < 8; ++origin) {
    for (std::uint32_t seq = 0; seq < 64; ++seq) {
      EXPECT_LE(causal::detail::journey_hash(origin, seq, 7),
                causal::detail::sample_threshold() - 1);
    }
  }
  // Deterministic: same inputs, same hash (replayability of a sampled run).
  EXPECT_EQ(causal::detail::journey_hash(3, 41, 9),
            causal::detail::journey_hash(3, 41, 9));
  // Half rate lands in the right ballpark over a big population.
  causal::set_sample_rate(0.5);
  int sampled = 0;
  const std::uint64_t thr = causal::detail::sample_threshold();
  for (std::uint32_t seq = 0; seq < 10000; ++seq) {
    if (causal::detail::journey_hash(0, seq, 1) <= thr - 1) ++sampled;
  }
  EXPECT_GT(sampled, 4500);
  EXPECT_LT(sampled, 5500);
}

// --------------------------------------------- rate 0 == untraced wire

/// Drive a fixed all-to-all and return the total wire bytes it produced.
std::uint64_t all_to_all_wire_bytes() {
  const topology topo(2, 2);
  std::uint64_t wire = 0;
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::nlnr);
    // Credit acks piggyback on flushes whose timing depends on thread
    // interleaving, which would make the wire-byte totals compared below
    // nondeterministic. They are orthogonal to tracing; pin them off.
    world.set_credit_bytes(0);
    int recv = 0;
    mailbox<int> mb(world, [&](const int&) { ++recv; }, 256);
    for (int i = 0; i < 25; ++i) {
      for (int d = 0; d < c.size(); ++d) {
        if (d != c.rank()) mb.send(d, i);
      }
    }
    mb.wait_empty();
    EXPECT_EQ(recv, 25 * (c.size() - 1));
    const auto total = c.allreduce(
        mb.stats().local_bytes + mb.stats().remote_bytes, sim::op_sum{});
    if (c.rank() == 0) wire = total;
  });
  return wire;
}

TEST(CausalSampling, RateZeroIsWireByteIdenticalToUntraced) {
  causal_config_guard guard;

  // Baseline: no telemetry session at all (the pre-tracing world).
  const std::uint64_t baseline = all_to_all_wire_bytes();
  ASSERT_GT(baseline, 0u);

  // Session installed, sampling at 0: the wire must be byte-identical and
  // nothing may be recorded or annotated.
  tel::session off;
  tel::set_global(&off);
  causal::set_sample_rate(0);
  const std::uint64_t at_zero = all_to_all_wire_bytes();
  tel::set_global(nullptr);
  EXPECT_EQ(at_zero, baseline);
  EXPECT_TRUE(causal::stitch(causal::extract_hops(off)).empty());
  EXPECT_EQ(off.merged_metrics().counters().count("trace.annotated_records"),
            0u);

  // Sampling at 1.0 pays for what it records: strictly more wire bytes and
  // an annotation for every traced leg.
  tel::session on;
  tel::set_global(&on);
  causal::set_sample_rate(1.0);
  const std::uint64_t at_one = all_to_all_wire_bytes();
  tel::set_global(nullptr);
  EXPECT_GT(at_one, baseline);
  EXPECT_GT(on.merged_metrics().counters().at("trace.annotated_records"), 0u);
}

TEST(CausalSampling, InplaceEncodingMatchesReferenceIncludingEscape) {
  // The mailboxes now serialize traced records in place (escape record via
  // packet_append, message payload via packet_append_inplace). The wire
  // bytes must match the reference construction — escape + copy-based
  // append — for every length-slot hint, or ygm_trace's decode breaks.
  causal::wire_ctx ctx;
  ctx.id = 0x00dead'beef'cafeULL;
  ctx.origin = 6;
  ctx.hop = 2;

  const std::vector<std::uint64_t> values = {0, 42, std::uint64_t{1} << 40};
  for (const std::uint64_t v : values) {
    const auto payload = ygm::ser::to_bytes(v);

    std::vector<std::byte> reference;
    std::vector<std::byte> esc;
    causal::encode_wire(ctx, esc);
    ygm::core::packet_append(reference, /*is_bcast=*/false,
                             ygm::core::packet_trace_escape, esc);
    ygm::core::packet_append(reference, /*is_bcast=*/false, /*addr=*/3,
                             payload);

    for (const std::size_t hint : {std::size_t{0}, payload.size(),
                                   std::size_t{200}, std::size_t{20000}}) {
      std::vector<std::byte> inplace;
      std::vector<std::byte> esc2;
      causal::encode_wire(ctx, esc2);
      ygm::core::packet_append(inplace, /*is_bcast=*/false,
                               ygm::core::packet_trace_escape, esc2);
      const auto rec = ygm::core::packet_append_inplace(
          inplace, /*is_bcast=*/false, /*addr=*/3, hint,
          [&](std::vector<std::byte>& out) { ygm::ser::append_bytes(v, out); });
      EXPECT_EQ(inplace, reference) << "value " << v << " hint " << hint;
      EXPECT_EQ(rec.payload_size, payload.size());
    }
  }
}

// ----------------------------------------------- journey completeness

template <template <class> class MailboxT>
void run_journey_trial(scheme_kind scheme) {
  causal_config_guard guard;
  tel::session session;
  tel::set_global(&session);
  causal::set_sample_rate(1.0);

  const topology topo(2, 2);
  constexpr int msgs = 30;
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme);
    int recv = 0;
    MailboxT<std::uint32_t> mb(world, [&](const std::uint32_t&) { ++recv; },
                               512);
    for (int i = 0; i < msgs; ++i) {
      for (int d = 0; d < c.size(); ++d) {
        if (d != c.rank()) mb.send(d, static_cast<std::uint32_t>(i));
      }
    }
    mb.wait_empty();
    EXPECT_EQ(recv, msgs * (c.size() - 1));
  });
  tel::set_global(nullptr);

  const auto journeys = causal::stitch(causal::extract_hops(session));
  // Rate 1.0: every cross-rank send is a journey.
  EXPECT_EQ(journeys.size(),
            static_cast<std::size_t>(topo.num_ranks()) *
                static_cast<std::size_t>(topo.num_ranks() - 1) * msgs);

  const router route(scheme, topo);
  const auto errors = causal::check_journeys(
      journeys, [&](int /*world*/, int origin, int dest) {
        if (origin < 0 || dest < 0) return -1;
        return static_cast<int>(route.path(origin, dest).size());
      });
  for (const auto& e : errors) ADD_FAILURE() << e;
  for (const auto& [key, j] : journeys) {
    EXPECT_TRUE(j.complete());
    EXPECT_LE(j.legs(), static_cast<std::size_t>(route.max_hops()));
  }
}

TEST(CausalJourneys, CompleteAcrossAllSchemesMailbox) {
  for (const auto scheme : ygm::routing::all_schemes) {
    SCOPED_TRACE(std::string(ygm::routing::to_string(scheme)));
    run_journey_trial<mailbox>(scheme);
  }
}

TEST(CausalJourneys, CompleteAcrossAllSchemesHybrid) {
  for (const auto scheme : ygm::routing::all_schemes) {
    SCOPED_TRACE(std::string(ygm::routing::to_string(scheme)));
    run_journey_trial<hybrid_mailbox>(scheme);
  }
}

TEST(CausalJourneys, SurviveChaosAcrossSeedsAndSampleRates) {
  // 16 seeds of the chaos harness with tracing enabled: the invariant
  // checks must stay green AND every sampled journey must still stitch
  // complete — packet corruption of the annotation records would break
  // both.
  causal_config_guard guard;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    tel::session session;
    tel::set_global(&session);
    causal::set_sample_rate(seed % 2 == 0 ? 1.0 : 0.5);

    ygm::core::trial_config t;
    t.seed = seed;
    t.scheme = ygm::routing::all_schemes[seed % 4];
    t.nodes = 2;
    t.cores = 2;
    t.capacity = (seed % 3 == 0) ? 1 : 96;
    t.msgs_per_rank = 12;
    t.bcasts_per_rank = 2;
    t.epochs = 1;
    t.chaos = sim::chaos_config::light(seed);

    std::vector<std::string> violations;
    const bool hybrid = (seed % 2) == 1;
    sim::run(t.num_ranks(), t.chaos, [&](sim::comm& c) {
      const auto local =
          hybrid ? ygm::core::run_chaos_trial<hybrid_mailbox>(c, t)
                 : ygm::core::run_chaos_trial<mailbox>(c, t);
      const auto gathered = c.gather(local, 0);
      if (c.rank() == 0) {
        for (const auto& per_rank : gathered) {
          violations.insert(violations.end(), per_rank.begin(),
                            per_rank.end());
        }
      }
    });
    tel::set_global(nullptr);
    for (const auto& v : violations) ADD_FAILURE() << v;

    const auto journeys = causal::stitch(causal::extract_hops(session));
    EXPECT_FALSE(journeys.empty());
    const router route(t.scheme, topology(t.nodes, t.cores));
    const auto errors = causal::check_journeys(journeys);
    for (const auto& e : errors) ADD_FAILURE() << e;
    for (const auto& [key, j] : journeys) {
      EXPECT_LE(j.legs(), static_cast<std::size_t>(route.max_hops()));
    }
  }
}

// ------------------------------------------------------- stall watchdog

TEST(CausalWatchdog, StallDumpsParseablePostmortem) {
  causal_config_guard guard;
  const std::string dump = "test_causal_postmortem.json";
  std::remove(dump.c_str());

  tel::session session;
  tel::set_global(&session);
  causal::set_sample_rate(1.0);
  causal::set_postmortem_path(dump);
  causal::set_stall_timeout_ms(50);

  // Rank 0 flushes a message toward rank 1 and waits; rank 1 sleeps through
  // the watchdog window before servicing its mailbox, so rank 0 sees zero
  // quiescence progress and must dump the flight recorder.
  sim::run(2, [&](sim::comm& c) {
    comm_world world(c, topology(2, 1), scheme_kind::no_route);
    int recv = 0;
    mailbox<int> mb(world, [&](const int&) { ++recv; }, 64);
    if (c.rank() == 0) {
      mb.send(1, 42);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
    }
    mb.wait_empty();
    if (c.rank() == 1) EXPECT_EQ(recv, 1);
  });
  tel::set_global(nullptr);

  ASSERT_TRUE(causal::postmortem_fired());
  std::ifstream in(dump);
  ASSERT_TRUE(in.good()) << "postmortem file missing: " << dump;
  std::ostringstream buf;
  buf << in.rdbuf();
  json_value root;
  ASSERT_NO_THROW(root = json_parser(buf.str()).parse());

  // The stuck rank is named...
  const auto& stalled = root.obj().at("stalled").obj();
  EXPECT_EQ(static_cast<int>(stalled.at("rank").num()), 0);
  EXPECT_GE(stalled.at("stalled_ms").num(), 50.0);
  // ...and the in-flight journey's last-seen hop shows the message left the
  // origin's buffer (flushed) but never arrived.
  const auto& journeys = root.obj().at("journeys").obj();
  const auto& in_flight = journeys.at("in_flight").arr();
  ASSERT_FALSE(in_flight.empty());
  bool saw_flushed = false;
  for (const auto& j : in_flight) {
    const auto& last = j.obj().at("last").obj();
    if (last.at("kind").str() == "trace.flush") saw_flushed = true;
  }
  EXPECT_TRUE(saw_flushed);

  std::remove(dump.c_str());
}

TEST(CausalWatchdog, QuiescentRunNeverFires) {
  causal_config_guard guard;
  tel::session session;
  tel::set_global(&session);
  causal::set_stall_timeout_ms(10000);
  sim::run(2, [&](sim::comm& c) {
    comm_world world(c, topology(2, 1), scheme_kind::no_route);
    int recv = 0;
    mailbox<int> mb(world, [&](const int&) { ++recv; });
    mb.send(1 - c.rank(), 7);
    mb.wait_empty();
    EXPECT_EQ(recv, 1);
  });
  tel::set_global(nullptr);
  EXPECT_FALSE(causal::postmortem_fired());
}

// --------------------------------------------------- bench flag hygiene

TEST(BenchFlagsDeathTest, UnknownTelemetryFlagIsRejected) {
  const char* argv[] = {"bench", "--trace-sampel=1.0"};
  EXPECT_EXIT(
      ygm::bench::check_telemetry_flags(2, const_cast<char**>(argv)),
      ::testing::ExitedWithCode(2), "unknown telemetry flag");
}

TEST(BenchFlags, KnownTelemetryFlagsPass) {
  const char* argv[] = {"bench", "--trace-out=/tmp/t.json",
                        "--trace-sample=0.5", "--telemetry-summary"};
  // Must not exit.
  ygm::bench::check_telemetry_flags(4, const_cast<char**>(argv));
  SUCCEED();
}

}  // namespace
