// Chaos-mode tests: seeded fault injection (mpisim/chaos.hpp) against the
// delivery-invariant checker (core/invariants.hpp), plus deterministic unit
// tests of each fault mechanism. docs/CHAOS.md has the methodology and the
// seed-reproduction recipe.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/hybrid_mailbox.hpp"
#include "core/invariants.hpp"
#include "core/ygm.hpp"
#include "telemetry/telemetry.hpp"

namespace {

namespace sim = ygm::mpisim;
using sim::chaos_config;
using ygm::core::comm_world;
using ygm::core::delivery_ledger;
using ygm::core::hybrid_mailbox;
using ygm::core::mailbox;
using ygm::core::probe_msg;
using ygm::core::run_chaos_trial;
using ygm::core::trial_config;
using ygm::routing::scheme_kind;
using ygm::routing::topology;

// ----------------------------------------------------------- chaos sweep
//
// The tentpole test: random traffic + broadcasts under seeded adversity,
// all delivery invariants checked at quiescence. Each (scheme, mailbox)
// cell sweeps its own block of seeds while the remaining dimensions —
// machine shape, capacity (down to 1 byte: flush on every send), timed
// virtual-time mode, light/heavy chaos, serialized self-sends — rotate
// with the seed, so the 64-trial default shard touches the whole matrix.
// tools/stress_ygm runs the same harness at arbitrary scale.

struct sweep_cell {
  scheme_kind kind;
  bool hybrid;
};

std::string cell_name(const ::testing::TestParamInfo<sweep_cell>& info) {
  return std::string(ygm::routing::to_string(info.param.kind)) +
         (info.param.hybrid ? "_hybrid" : "_mailbox");
}

std::vector<sweep_cell> sweep_cells() {
  std::vector<sweep_cell> cells;
  for (auto kind : ygm::routing::all_schemes) {
    cells.push_back({kind, false});
    cells.push_back({kind, true});
  }
  return cells;
}

trial_config make_trial(const sweep_cell& cell, std::uint64_t seed) {
  static constexpr std::pair<int, int> kTopos[] = {
      {2, 2}, {1, 4}, {4, 2}, {2, 3}};
  static constexpr std::size_t kCapacities[] = {1, 24, 96, 65536};

  trial_config t;
  t.seed = seed;
  t.scheme = cell.kind;
  const auto [n, c] = kTopos[seed % 4];
  t.nodes = n;
  t.cores = c;
  t.capacity = kCapacities[(seed / 2) % 4];
  t.timed = ((seed >> 2) % 2) == 1;
  t.serialize_self_sends = (seed % 4) == 2;
  t.msgs_per_rank = 30;
  t.bcasts_per_rank = 3;
  t.epochs = 2;
  t.chaos = (seed % 2) == 0 ? chaos_config::light(seed) : chaos_config::heavy(seed);
  return t;
}

/// Run one trial end to end; returns all ranks' violations (rank 0's view).
template <template <class> class MailboxT>
std::vector<std::string> sweep_one(const trial_config& t) {
  std::vector<std::string> all;
  sim::run(t.num_ranks(), t.chaos, [&](sim::comm& c) {
    const auto local = run_chaos_trial<MailboxT>(c, t);
    const auto gathered = c.gather(local, 0);
    if (c.rank() == 0) {
      for (const auto& per_rank : gathered) {
        all.insert(all.end(), per_rank.begin(), per_rank.end());
      }
    }
  });
  return all;
}

class ChaosSweep : public ::testing::TestWithParam<sweep_cell> {};

TEST_P(ChaosSweep, InvariantsHoldUnderSeededAdversity) {
  const auto& cell = GetParam();
  // Disjoint seed blocks per cell: the suite as a whole covers seeds 0..63.
  std::uint64_t base = 0;
  for (std::size_t i = 0; i < sweep_cells().size(); ++i) {
    if (sweep_cells()[i].kind == cell.kind &&
        sweep_cells()[i].hybrid == cell.hybrid) {
      base = 8 * i;
    }
  }
  for (std::uint64_t s = base; s < base + 8; ++s) {
    const auto t = make_trial(cell, s);
    const auto violations =
        cell.hybrid ? sweep_one<hybrid_mailbox>(t) : sweep_one<mailbox>(t);
    EXPECT_TRUE(violations.empty())
        << "REPRO: stress_ygm recipe -> mailbox="
        << (cell.hybrid ? "hybrid" : "mailbox") << " " << t.describe() << "\n"
        << [&] {
             std::string joined;
             for (const auto& v : violations) joined += "  " + v + "\n";
             return joined;
           }();
    if (::testing::Test::HasFailure()) break;  // first failing seed is enough
  }
}

INSTANTIATE_TEST_SUITE_P(Cells, ChaosSweep, ::testing::ValuesIn(sweep_cells()),
                         cell_name);

// --------------------------------------------- deterministic fault checks

TEST(ChaosUnit, IprobeMissCapBoundsConsecutiveFalseNegatives) {
  chaos_config cfg;
  cfg.seed = 9;
  cfg.iprobe_miss_prob = 1.0;  // every eligible probe misses...
  cfg.max_consecutive_misses = 4;  // ...but never more than 4 in a row
  sim::run(2, cfg, [&](sim::comm& c) {
    constexpr int kTag = 5;
    if (c.rank() == 1) c.send(42, 0, kTag);
    c.barrier();  // message is queued at rank 0 before it probes
    if (c.rank() == 0) {
      int misses = 0;
      std::optional<sim::status> st;
      while (!(st = c.iprobe(1, kTag))) ++misses;
      EXPECT_EQ(misses, 4);
      EXPECT_EQ(c.recv<int>(1, kTag), 42);
    }
    c.barrier();
  });
}

TEST(ChaosUnit, PerSourceOrderSurvivesMaximalDelay) {
  // MPI non-overtaking: even with every message delayed by a random number
  // of ticks, one (source, context) stream may never reorder.
  chaos_config cfg;
  cfg.seed = 31;
  cfg.delay_prob = 1.0;
  cfg.max_delay_ticks = 16;
  sim::run(2, cfg, [&](sim::comm& c) {
    constexpr int kTag = 7;
    constexpr int kCount = 50;
    if (c.rank() == 1) {
      for (int i = 0; i < kCount; ++i) c.send(i, 0, kTag);
    } else {
      for (int i = 0; i < kCount; ++i) {
        EXPECT_EQ(c.recv<int>(1, kTag), i);
      }
    }
    c.barrier();
  });
}

TEST(ChaosUnit, BlockingRecvAgesDelaysInsteadOfDeadlocking) {
  // A blocked receiver whose only matching message is delay-hidden must
  // still complete: the timed wait re-ticks the receiver's clock until the
  // delay expires.
  chaos_config cfg;
  cfg.seed = 3;
  cfg.delay_prob = 1.0;
  cfg.max_delay_ticks = 64;
  sim::run(2, cfg, [&](sim::comm& c) {
    if (c.rank() == 1) c.send(std::string("late"), 0, 2);
    if (c.rank() == 0) EXPECT_EQ(c.recv<std::string>(1, 2), "late");
    c.barrier();
  });
}

TEST(ChaosUnit, PresetsAndEnvParsingRoundTrip) {
  const auto heavy = chaos_config::heavy(123);
  EXPECT_TRUE(heavy.enabled());
  EXPECT_TRUE(heavy.delays_active());
  EXPECT_TRUE(heavy.probe_misses_active());
  EXPECT_FALSE(chaos_config{}.enabled());

  ASSERT_EQ(unsetenv("YGM_CHAOS"), 0);
  EXPECT_FALSE(chaos_config::from_env().has_value());

  ASSERT_EQ(setenv("YGM_CHAOS", "heavy:123", 1), 0);
  const auto parsed = chaos_config::from_env();
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seed, heavy.seed);
  EXPECT_EQ(parsed->delay_prob, heavy.delay_prob);
  EXPECT_EQ(parsed->max_delay_ticks, heavy.max_delay_ticks);
  EXPECT_EQ(parsed->iprobe_miss_prob, heavy.iprobe_miss_prob);
  ASSERT_EQ(unsetenv("YGM_CHAOS"), 0);

  ASSERT_EQ(setenv("YGM_CHAOS_SEED", "7", 1), 0);
  ASSERT_EQ(setenv("YGM_CHAOS_DELAY_PROB", "0.5", 1), 0);
  ASSERT_EQ(setenv("YGM_CHAOS_MAX_DELAY_TICKS", "9", 1), 0);
  const auto knobs = chaos_config::from_env();
  ASSERT_TRUE(knobs.has_value());
  EXPECT_EQ(knobs->seed, 7u);
  EXPECT_DOUBLE_EQ(knobs->delay_prob, 0.5);
  EXPECT_EQ(knobs->max_delay_ticks, 9u);
  ASSERT_EQ(unsetenv("YGM_CHAOS_SEED"), 0);
  ASSERT_EQ(unsetenv("YGM_CHAOS_DELAY_PROB"), 0);
  ASSERT_EQ(unsetenv("YGM_CHAOS_MAX_DELAY_TICKS"), 0);
}

TEST(ChaosUnit, SameSeedSameFaultPattern) {
  // Determinism contract: a given seed yields the same iprobe miss pattern
  // for the same probe stream, independent of wall-clock interleaving.
  const auto probe_pattern = [](std::uint64_t seed) {
    std::vector<int> pattern;
    chaos_config cfg;
    cfg.seed = seed;
    cfg.iprobe_miss_prob = 0.5;
    cfg.max_consecutive_misses = 8;
    sim::run(2, cfg, [&](sim::comm& c) {
      if (c.rank() == 1) {
        for (int i = 0; i < 20; ++i) c.send(i, 0, 4);
      }
      c.barrier();
      if (c.rank() == 0) {
        for (int i = 0; i < 20; ++i) {
          int misses = 0;
          while (!c.iprobe(1, 4)) ++misses;
          pattern.push_back(misses);
          EXPECT_EQ(c.recv<int>(1, 4), i);
        }
      }
      c.barrier();
    });
    return pattern;
  };
  const auto a = probe_pattern(555);
  const auto b = probe_pattern(555);
  const auto c = probe_pattern(556);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // distinct seeds give distinct adversity
}

// --------------------------------------- ledger unit behaviour (no chaos)

TEST(DeliveryLedger, FlagsDuplicatesSealedDeliveriesAndCorruption) {
  sim::run(1, [](sim::comm& c) {
    delivery_ledger ledger(0, 1);
    auto m = ledger.make_p2p(0, 16);
    ledger.note_delivery(m);
    ledger.note_delivery(m);  // duplicate
    ledger.seal();
    auto m2 = ledger.make_p2p(0, 8);
    ledger.note_delivery(m2);  // post-seal
    ledger.unseal();
    auto m3 = ledger.make_p2p(0, 8);
    m3.filler[3] ^= 0xFF;
    ledger.note_delivery(m3);  // corrupted

    ygm::core::mailbox_stats st;
    st.app_sends = 3;
    st.deliveries = 4;
    const auto v = ledger.verify(c, st);
    ASSERT_EQ(v.size(), 3u);
    EXPECT_NE(v[0].find("duplicate"), std::string::npos);
    EXPECT_NE(v[1].find("after quiescence"), std::string::npos);
    EXPECT_NE(v[2].find("corrupted"), std::string::npos);
  });
}

// ------------------------------------------- telemetry <-> ledger bridge

TEST(ChaosTelemetry, CountersAgreeWithLedgerAccounting) {
  // The same counters the ledger cross-checks per rank (mailbox_stats) are
  // published into telemetry; at global scope the merged counters must
  // reproduce the sweep's exact arithmetic.
  trial_config t;
  t.seed = 77;
  t.scheme = scheme_kind::nlnr;
  t.nodes = 2;
  t.cores = 2;
  t.capacity = 96;
  t.msgs_per_rank = 25;
  t.bcasts_per_rank = 2;
  t.epochs = 2;
  t.chaos = chaos_config::light(77);

  ygm::telemetry::session sess;
  ygm::telemetry::set_global(&sess);
  std::vector<std::string> violations;
  sim::run(t.num_ranks(), t.chaos, [&](sim::comm& c) {
    const auto local = run_chaos_trial<mailbox>(c, t);
    if (c.rank() == 0) violations = local;
  });
  ygm::telemetry::set_global(nullptr);
  EXPECT_TRUE(violations.empty());

  const auto ranks = static_cast<std::uint64_t>(t.num_ranks());
  const auto sends =
      ranks * static_cast<std::uint64_t>(t.epochs * t.msgs_per_rank);
  const auto bcast_deliveries = ranks * (ranks - 1) *
                                static_cast<std::uint64_t>(t.epochs) *
                                static_cast<std::uint64_t>(t.bcasts_per_rank);
  const auto m = sess.merged_metrics();
  EXPECT_EQ(m.counters().at("mailbox.app_sends"), sends);
  EXPECT_EQ(m.counters().at("mailbox.deliveries"), sends + bcast_deliveries);
  EXPECT_EQ(m.counters().at("mailbox.hops_sent"),
            m.counters().at("mailbox.hops_received"));
}

// --------------------------------- self-send serialization (debug knob)

struct asym_msg {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  // Deliberately asymmetric: remote round-trips swap the fields. With the
  // default self-send bypass a single-rank run never notices.
  template <class Ar>
  void serialize(Ar& ar) {
    if constexpr (std::is_same_v<Ar, ygm::ser::oarchive>) {
      ar & a & b;
    } else {
      ar & b & a;
    }
  }
};

TEST(ChaosSelfSend, SerializedLoopbackSurfacesAsymmetricSerialize) {
  sim::run(1, [](sim::comm& c) {
    comm_world world(c, 1, scheme_kind::no_route);
    asym_msg got;
    mailbox<asym_msg> mb(world, [&](const asym_msg& m) { got = m; });

    mb.send(0, {1, 2});  // bypass: the object is handed through untouched
    EXPECT_EQ(got.a, 1u);
    EXPECT_EQ(got.b, 2u);

    world.set_serialize_self_sends(true);
    mb.send(0, {1, 2});  // ser:: round trip exposes the field swap
    EXPECT_EQ(got.a, 2u);
    EXPECT_EQ(got.b, 1u);
    mb.wait_empty();
  });
}

TEST(ChaosSelfSend, HybridSerializedLoopbackMatches) {
  sim::run(1, [](sim::comm& c) {
    comm_world world(c, 1, scheme_kind::no_route);
    asym_msg got;
    hybrid_mailbox<asym_msg> mb(world, [&](const asym_msg& m) { got = m; });
    world.set_serialize_self_sends(true);
    mb.send(0, {3, 4});
    EXPECT_EQ(got.a, 4u);
    EXPECT_EQ(got.b, 3u);
    mb.wait_empty();
  });
}

TEST(ChaosSelfSend, SymmetricTypesRoundTripUnchanged) {
  sim::run(1, [](sim::comm& c) {
    comm_world world(c, 1, scheme_kind::no_route);
    std::vector<probe_msg> got;
    mailbox<probe_msg> mb(world,
                          [&](const probe_msg& m) { got.push_back(m); });
    world.set_serialize_self_sends(true);
    delivery_ledger ledger(0, 1);
    mb.send(0, ledger.make_p2p(0, 21));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_TRUE(got[0].filler_intact());
    EXPECT_EQ(got[0].filler.size(), 21u);
    mb.wait_empty();
  });
}

}  // namespace
