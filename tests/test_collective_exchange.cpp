// Tests for the synchronous ALLTOALLV exchange variant (paper §III-A),
// across all schemes and machine shapes, cross-checked against the
// asynchronous mailbox on identical traffic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/collective_exchange.hpp"
#include "core/ygm.hpp"

namespace {

namespace sim = ygm::mpisim;
using ygm::core::collective_exchange;
using ygm::core::comm_world;
using ygm::core::mailbox;
using ygm::routing::scheme_kind;
using ygm::routing::topology;

struct machine_case {
  scheme_kind kind;
  int nodes;
  int cores;
};

std::vector<machine_case> machine_cases() {
  std::vector<machine_case> cases;
  for (auto kind : ygm::routing::all_schemes) {
    for (auto [n, c] : {std::pair{1, 1}, {1, 4}, {2, 2}, {2, 4}, {4, 2},
                        {3, 3}, {4, 4}}) {
      cases.push_back({kind, n, c});
    }
  }
  return cases;
}

class CollectiveExchangeMachines
    : public ::testing::TestWithParam<machine_case> {};

TEST_P(CollectiveExchangeMachines, DeliversRandomTrafficExactlyOnce) {
  const auto& mc = GetParam();
  const topology topo(mc.nodes, mc.cores);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, mc.kind);
    collective_exchange<std::uint64_t> ex(world);

    ygm::xoshiro256 rng(11 + static_cast<std::uint64_t>(c.rank()));
    std::vector<std::pair<int, std::uint64_t>> outgoing;
    std::vector<std::uint64_t> count_to(static_cast<std::size_t>(c.size()), 0);
    std::vector<std::uint64_t> sum_to(static_cast<std::size_t>(c.size()), 0);
    const int sends = 100 + static_cast<int>(rng.below(100));
    for (int i = 0; i < sends; ++i) {
      const int dest =
          static_cast<int>(rng.below(static_cast<std::uint64_t>(c.size())));
      const std::uint64_t value = rng() >> 16;
      outgoing.emplace_back(dest, value);
      ++count_to[static_cast<std::size_t>(dest)];
      sum_to[static_cast<std::size_t>(dest)] += value;
    }

    const auto delivered = ex.exchange(std::move(outgoing));

    const auto expect_count = c.allreduce_vec(count_to, sim::op_sum{});
    const auto expect_sum = c.allreduce_vec(sum_to, sim::op_sum{});
    EXPECT_EQ(delivered.size(),
              expect_count[static_cast<std::size_t>(c.rank())]);
    std::uint64_t sum = 0;
    for (const auto v : delivered) sum += v;
    EXPECT_EQ(sum, expect_sum[static_cast<std::size_t>(c.rank())]);
  });
}

TEST_P(CollectiveExchangeMachines, RepeatedExchangesStayConsistent) {
  const auto& mc = GetParam();
  const topology topo(mc.nodes, mc.cores);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, mc.kind);
    collective_exchange<int> ex(world);
    for (int round = 0; round < 3; ++round) {
      // Everyone sends its rank to every rank (including itself).
      std::vector<std::pair<int, int>> outgoing;
      for (int d = 0; d < c.size(); ++d) outgoing.emplace_back(d, c.rank());
      auto got = ex.exchange(std::move(outgoing));
      std::sort(got.begin(), got.end());
      ASSERT_EQ(got.size(), static_cast<std::size_t>(c.size()));
      for (int r = 0; r < c.size(); ++r) {
        EXPECT_EQ(got[static_cast<std::size_t>(r)], r);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Machines, CollectiveExchangeMachines,
    ::testing::ValuesIn(machine_cases()),
    [](const ::testing::TestParamInfo<machine_case>& info) {
      return std::string(ygm::routing::to_string(info.param.kind)) + "_N" +
             std::to_string(info.param.nodes) + "_C" +
             std::to_string(info.param.cores);
    });

TEST(CollectiveExchange, VariableLengthMessagesSurvivePhases) {
  const topology topo(2, 4);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::nlnr);
    collective_exchange<std::string> ex(world);
    std::vector<std::pair<int, std::string>> outgoing;
    for (int d = 0; d < c.size(); ++d) {
      outgoing.emplace_back(
          d, std::string(static_cast<std::size_t>(c.rank() * 10 + d), 'x'));
    }
    const auto got = ex.exchange(std::move(outgoing));
    ASSERT_EQ(got.size(), static_cast<std::size_t>(c.size()));
    std::vector<std::size_t> lens;
    for (const auto& s : got) lens.push_back(s.size());
    std::sort(lens.begin(), lens.end());
    for (int s = 0; s < c.size(); ++s) {
      EXPECT_EQ(lens[static_cast<std::size_t>(s)],
                static_cast<std::size_t>(s * 10 + c.rank()));
    }
  });
}

TEST(CollectiveExchange, AgreesWithMailboxOnIdenticalTraffic) {
  const topology topo(2, 4);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::node_remote);

    std::uint64_t mailbox_sum = 0;
    mailbox<std::uint64_t> mb(
        world, [&](const std::uint64_t& v) { mailbox_sum += v; });
    collective_exchange<std::uint64_t> ex(world);

    ygm::xoshiro256 rng(71 + static_cast<std::uint64_t>(c.rank()));
    std::vector<std::pair<int, std::uint64_t>> outgoing;
    for (int i = 0; i < 200; ++i) {
      const int dest =
          static_cast<int>(rng.below(static_cast<std::uint64_t>(c.size())));
      const std::uint64_t v = rng() >> 40;
      outgoing.emplace_back(dest, v);
      mb.send(dest, v);
    }
    mb.wait_empty();

    const auto delivered = ex.exchange(std::move(outgoing));
    std::uint64_t collective_sum = 0;
    for (const auto v : delivered) collective_sum += v;
    EXPECT_EQ(collective_sum, mailbox_sum);
  });
}

TEST(CollectiveExchange, RejectsInvalidDestination) {
  sim::run(2, [](sim::comm& c) {
    comm_world world(c, 1, scheme_kind::no_route);
    collective_exchange<int> ex(world);
    std::vector<std::pair<int, int>> bad{{5, 1}};
    EXPECT_THROW(ex.exchange(std::move(bad)), ygm::error);
  });
}

}  // namespace
