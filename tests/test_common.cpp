// Tests for the common substrate: RNG quality basics, formatting helpers,
// and the assertion macros every other library leans on.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace {

// ------------------------------------------------------------------- rng

TEST(Rng, Splitmix64IsDeterministicAndMixes) {
  EXPECT_EQ(ygm::splitmix64(1), ygm::splitmix64(1));
  EXPECT_NE(ygm::splitmix64(1), ygm::splitmix64(2));
  // Adjacent inputs should differ in many bits (avalanche sanity).
  const auto a = ygm::splitmix64(1000);
  const auto b = ygm::splitmix64(1001);
  int diff_bits = 0;
  for (std::uint64_t x = a ^ b; x != 0; x >>= 1) diff_bits += x & 1;
  EXPECT_GT(diff_bits, 16);
}

TEST(Rng, XoshiroStreamsAreSeedDeterministic) {
  ygm::xoshiro256 a(7);
  ygm::xoshiro256 b(7);
  ygm::xoshiro256 c(8);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    any_diff = any_diff || va != c();
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowStaysInRangeAndHitsAllResidues) {
  ygm::xoshiro256 rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
  // bound 1 is always 0.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  ygm::xoshiro256 rng(11);
  std::vector<int> hist(10, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    ++hist[rng.below(10)];
  }
  for (const int h : hist) {
    EXPECT_GT(h, kSamples / 10 - 600);
    EXPECT_LT(h, kSamples / 10 + 600);
  }
}

TEST(Rng, UniformIsInHalfOpenUnitInterval) {
  ygm::xoshiro256 rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

// ------------------------------------------------------------ formatting

TEST(Units, FormatBytesUsesBinaryPrefixes) {
  EXPECT_EQ(ygm::format_bytes(0), "0 B");
  EXPECT_EQ(ygm::format_bytes(512), "512 B");
  EXPECT_EQ(ygm::format_bytes(1024), "1.0 KiB");
  EXPECT_EQ(ygm::format_bytes(16 * 1024), "16 KiB");
  EXPECT_EQ(ygm::format_bytes(1.5 * 1024 * 1024), "1.5 MiB");
  EXPECT_EQ(ygm::format_bytes(3.0 * 1024 * 1024 * 1024), "3.0 GiB");
}

TEST(Units, FormatRateUsesDecimalPrefixes) {
  EXPECT_EQ(ygm::format_rate(500), "500.00 B/s");
  EXPECT_EQ(ygm::format_rate(2e9), "2.00 GB/s");
  EXPECT_EQ(ygm::format_rate(12.3e9), "12.30 GB/s");
}

TEST(Units, FormatCountSwitchesToScientific) {
  EXPECT_EQ(ygm::format_count(5), "5.00");
  EXPECT_EQ(ygm::format_count(1234), "1234");
  EXPECT_EQ(ygm::format_count(2.5e8), "2.50e+08");
}

// ------------------------------------------------------------ assertions

TEST(Assertions, CheckThrowsWithMessage) {
  try {
    YGM_CHECK(1 == 2, "one is not two");
    FAIL() << "YGM_CHECK did not throw";
  } catch (const ygm::error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(Assertions, AssertThrowsOnFalseAndPassesOnTrue) {
  EXPECT_THROW(YGM_ASSERT(false), ygm::error);
  EXPECT_NO_THROW(YGM_ASSERT(2 + 2 == 4));
  EXPECT_NO_THROW(YGM_CHECK(true, "unused"));
}

}  // namespace
